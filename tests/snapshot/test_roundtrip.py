"""Full-platform round-trips: checkpoint/rewind on a wired attack
environment (machine + kernel + SGX + MicroScope module), the
warm-start cache, and snapshot error handling."""

import dataclasses

import pytest

from repro.core.replayer import AttackEnvironment, Replayer
from repro.cpu.machine import Machine
from repro.reporting import machine_report
from repro.snapshot import (
    MachineSnapshot,
    SnapshotError,
    cache_size,
    clear_cache,
    warm_start,
)
from repro.victims.control_flow import setup_control_flow_victim


def _platform_report(rep: Replayer) -> dict:
    return dataclasses.asdict(
        machine_report(rep.machine, rep.kernel, rep.module))


def test_replayer_checkpoint_rewind_full_platform():
    """An enclave victim run exercises demand paging, SGX entry and
    kernel accounting; rewinding must reproduce the run exactly."""
    rep = Replayer(AttackEnvironment.build())
    proc = rep.create_victim_process("victim")
    victim = setup_control_flow_victim(proc, 1)
    rep.launch_victim(proc, victim.program)
    rep.checkpoint()
    rep.run_until_victim_done(context_id=0)
    first = _platform_report(rep)
    assert first["contexts"][0]["retired"] > 0   # the run did real work
    rep.rewind()
    rep.run_until_victim_done(context_id=0)
    assert _platform_report(rep) == first


def test_rewind_can_retarget_the_secret():
    """Rewind + rewrite of the secret word equals a fresh build with
    that secret — the warm-start contract of the Fig. 10 driver."""
    def run_once(rep, proc, victim):
        rep.run_until_victim_done(context_id=0)
        return _platform_report(rep), proc.read(victim.operand_va)

    cold = Replayer(AttackEnvironment.build())
    cold_proc = cold.create_victim_process("victim")
    cold_victim = setup_control_flow_victim(cold_proc, 0)
    cold.launch_victim(cold_proc, cold_victim.program)
    expected = run_once(cold, cold_proc, cold_victim)

    rep = Replayer(AttackEnvironment.build())
    proc = rep.create_victim_process("victim")
    victim = setup_control_flow_victim(proc, 1)
    rep.launch_victim(proc, victim.program)
    rep.checkpoint()
    rep.run_until_victim_done(context_id=0)
    rep.rewind()
    victim.write_secret(proc, 0)
    assert run_once(rep, proc, victim) == expected


def test_rewind_without_checkpoint_raises():
    rep = Replayer(AttackEnvironment.build())
    with pytest.raises(RuntimeError):
        rep.rewind()


def test_warm_start_builds_once_then_restores():
    clear_cache()
    builds = []

    def builder():
        builds.append(1)
        return Machine(), "payload"

    env1, payload1 = warm_start("roundtrip-key", builder)
    env1.phys.write(0x10_0000, 0xBEEF)
    env2, payload2 = warm_start("roundtrip-key", builder)
    assert env2 is env1
    assert payload2 == "payload"
    assert builds == [1]
    assert cache_size() == 1
    assert env2.phys.read(0x10_0000) == 0   # rewound on the hit
    clear_cache()
    assert cache_size() == 0


def test_version_mismatch_raises():
    machine = Machine()
    snapshot = MachineSnapshot.take(machine)
    snapshot.version = 999
    with pytest.raises(SnapshotError):
        snapshot.restore(machine)


def test_restore_onto_bare_machine_rejects_platform_snapshot():
    env = AttackEnvironment.build()
    snapshot = MachineSnapshot.take(env)
    with pytest.raises(SnapshotError):
        snapshot.restore(Machine())
