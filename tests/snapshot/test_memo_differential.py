"""Differential testing of replay-window memoization.

Hypothesis generates random terminating programs and random window
start points; a window served from :class:`repro.memo.WindowMemo`
must leave the machine — architectural state, machine report and
``MetricsRegistry`` counter state — bit-identical to running the
window cold, and execution continued past the splice must stay
identical to the end.  This is the Level-1 soundness contract: a
memoized replay is indistinguishable from the replay it replaced.
"""

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu.machine import Machine
from repro.isa import instructions as ins
from repro.isa.program import ProgramBuilder
from repro.memo import WindowMemo
from repro.reporting import machine_report
from repro.snapshot import MachineSnapshot

DATA_BASE = 0x0010_0000
_DATA_REGS = [f"r{i}" for i in range(2, 10)]


@st.composite
def _random_program(draw):
    """Init + bounded loop rich in loads/stores/mul/div, so windows
    start and end in interesting pipeline and cache states."""
    builder = ProgramBuilder("memo-differential")
    builder.li("r1", DATA_BASE)
    for reg in _DATA_REGS:
        builder.li(reg, draw(st.integers(0, 1 << 20)))
    builder.li("r0", draw(st.integers(min_value=1, max_value=4)))
    builder.label("loop")
    for _ in range(draw(st.integers(min_value=2, max_value=8))):
        kind = draw(st.sampled_from(
            ["alu", "mul", "div", "load", "store"]))
        rd = draw(st.sampled_from(_DATA_REGS))
        rs1 = draw(st.sampled_from(_DATA_REGS))
        rs2 = draw(st.sampled_from(_DATA_REGS))
        offset = draw(st.sampled_from([0, 8, 16, 64]))
        if kind == "alu":
            ctor = draw(st.sampled_from([ins.add, ins.sub, ins.xor]))
            builder.emit(ctor(rd, rs1, rs2))
        elif kind == "mul":
            builder.emit(ins.mul(rd, rs1, rs2))
        elif kind == "div":
            builder.emit(ins.div(rd, rs1, rs2))
        elif kind == "load":
            builder.emit(ins.load(rd, "r1", offset))
        else:
            builder.emit(ins.store("r1", rs1, offset))
    builder.subi("r0", "r0", 1)
    builder.li("r13", 0)
    builder.bne("r0", "r13", "loop")
    builder.halt()
    return builder.build()


def _full_state(machine):
    """Everything the soundness contract covers, metrics included."""
    context = machine.contexts[0]
    return (machine.cycle,
            dict(context.int_regs),
            dict(context.fp_regs),
            [machine.phys.read(addr)
             for addr in range(DATA_BASE, DATA_BASE + 128, 8)],
            dataclasses.asdict(machine_report(machine)),
            machine.metrics.dump())


def _never_runs():
    raise AssertionError("a memo hit must not execute the window")


@given(_random_program(), st.integers(min_value=0, max_value=300),
       st.integers(min_value=50, max_value=1500))
@settings(max_examples=25, deadline=None)
def test_memoized_window_is_indistinguishable(program, start, length):
    machine = Machine()
    machine.contexts[0].load_program(program)
    machine.run(start)
    base = MachineSnapshot.take(machine)
    memo = WindowMemo()

    def window():
        machine.run(length)
        return (machine.cycle,
                dict(machine.contexts[0].int_regs))

    cold = memo.run(machine, {"len": length}, window)
    mid_state = _full_state(machine)
    machine.run(3_000_000)
    final_state = _full_state(machine)

    base.restore(machine)
    warm = memo.run(machine, {"len": length}, _never_runs)
    assert memo.counts()["hits"] == 1
    assert warm == cold
    # The splice itself is bit-exact, counters included...
    assert _full_state(machine) == mid_state
    # ...and execution continued past it cannot tell the difference.
    machine.run(3_000_000)
    assert _full_state(machine) == final_state


@given(_random_program(), st.integers(min_value=0, max_value=200))
@settings(max_examples=10, deadline=None)
def test_memo_hits_survive_repeated_splices(program, start):
    """One recorded window, many hits: every splice lands the same
    state, even after the machine ran on and dirtied COW frames."""
    machine = Machine()
    machine.contexts[0].load_program(program)
    machine.run(start)
    base = MachineSnapshot.take(machine)
    memo = WindowMemo()
    memo.run(machine, "w", lambda: machine.run(800))
    expected = _full_state(machine)
    for _ in range(3):
        machine.run(5_000)       # disturb past the recorded window
        base.restore(machine)
        memo.run(machine, "w", _never_runs)
        assert _full_state(machine) == expected
    assert memo.counts() == dict(memo.counts(), hits=3, misses=1)
