"""Differential testing of machine snapshot/restore.

Hypothesis generates random terminating programs and random checkpoint
points; a machine that is snapshotted mid-run, disturbed, and restored
must finish with a :func:`repro.reporting.machine_report` (and final
architectural state) byte-identical to an uninterrupted run.  This is
the correctness contract the warm-start experiment drivers rely on:
a restore is indistinguishable from never having deviated.
"""

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu.machine import Machine
from repro.isa import instructions as ins
from repro.isa.program import ProgramBuilder
from repro.reporting import machine_report
from repro.snapshot import MachineSnapshot

#: Bare-metal runs identity-map VAs, so data lives in low DRAM.
DATA_BASE = 0x0010_0000
_DATA_REGS = [f"r{i}" for i in range(2, 10)]
_OFFSETS = [0, 8, 16, 24, 64, 128]


@st.composite
def _random_program(draw):
    """Init + bounded loop + halt, rich in loads/stores/branches so a
    mid-run snapshot lands in interesting pipeline states."""
    builder = ProgramBuilder("snapshot-differential")
    builder.li("r1", DATA_BASE)
    for reg in _DATA_REGS:
        builder.li(reg, draw(st.integers(0, 1 << 20)))
    iterations = draw(st.integers(min_value=1, max_value=5))
    builder.li("r0", iterations)
    builder.label("loop")
    for _ in range(draw(st.integers(min_value=2, max_value=10))):
        kind = draw(st.sampled_from(
            ["alu", "mul", "div", "load", "store"]))
        rd = draw(st.sampled_from(_DATA_REGS))
        rs1 = draw(st.sampled_from(_DATA_REGS))
        rs2 = draw(st.sampled_from(_DATA_REGS))
        offset = draw(st.sampled_from(_OFFSETS))
        if kind == "alu":
            ctor = draw(st.sampled_from([ins.add, ins.sub, ins.xor]))
            builder.emit(ctor(rd, rs1, rs2))
        elif kind == "mul":
            builder.emit(ins.mul(rd, rs1, rs2))
        elif kind == "div":
            builder.emit(ins.div(rd, rs1, rs2))
        elif kind == "load":
            builder.emit(ins.load(rd, "r1", offset))
        else:
            builder.emit(ins.store("r1", rs1, offset))
    if draw(st.booleans()):
        r_a = draw(st.sampled_from(_DATA_REGS))
        r_b = draw(st.sampled_from(_DATA_REGS))
        builder.beq(r_a, r_b, "skip")
        builder.emit(ins.store("r1", r_a, 192))
        builder.label("skip")
    builder.subi("r0", "r0", 1)
    builder.li("r13", 0)
    builder.bne("r0", "r13", "loop")
    builder.halt()
    return builder.build()


def _finish(machine: Machine):
    machine.run(3_000_000)
    assert machine.contexts[0].finished(), "program did not finish"


def _state_of(machine: Machine):
    context = machine.contexts[0]
    memory = [machine.phys.read(addr)
              for addr in range(DATA_BASE, DATA_BASE + 256, 8)]
    return (machine.cycle,
            dict(context.int_regs),
            dict(context.fp_regs),
            memory,
            dataclasses.asdict(machine_report(machine)))


@given(_random_program(), st.integers(min_value=0, max_value=400))
@settings(max_examples=40, deadline=None)
def test_restore_matches_uninterrupted_run(program, checkpoint_cycles):
    """take() mid-run must not perturb, and restore + re-run must be
    bit-identical to the uninterrupted execution."""
    baseline = Machine()
    baseline.contexts[0].load_program(program)
    _finish(baseline)
    expected = _state_of(baseline)

    machine = Machine()
    machine.contexts[0].load_program(program)
    machine.run(checkpoint_cycles)
    snapshot = MachineSnapshot.take(machine)
    _finish(machine)
    # The snapshot was a pure observation: the split run still matches.
    assert _state_of(machine) == expected
    # The finished machine is maximally disturbed relative to the
    # checkpoint; restoring must rewind every subsystem.
    snapshot.restore(machine)
    _finish(machine)
    assert _state_of(machine) == expected


@given(_random_program(), st.integers(min_value=0, max_value=300))
@settings(max_examples=15, deadline=None)
def test_snapshot_survives_repeated_restores(program, checkpoint_cycles):
    """One snapshot, many rewinds: every replay from it is identical,
    including after the restored machine ran and dirtied COW frames."""
    machine = Machine()
    machine.contexts[0].load_program(program)
    machine.run(checkpoint_cycles)
    snapshot = MachineSnapshot.take(machine)
    outcomes = []
    for _ in range(3):
        snapshot.restore(machine)
        _finish(machine)
        outcomes.append(_state_of(machine))
    assert outcomes[0] == outcomes[1] == outcomes[2]


def test_restore_rewinds_physical_memory_writes():
    """Debug writes after take() must vanish on restore (COW frames)."""
    machine = Machine()
    snapshot = MachineSnapshot.take(machine)
    machine.phys.write(DATA_BASE, 0xDEAD)
    assert machine.phys.read(DATA_BASE) == 0xDEAD
    snapshot.restore(machine)
    assert machine.phys.read(DATA_BASE) == 0
