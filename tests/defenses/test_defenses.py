"""Section 8 countermeasures behave as the paper describes."""


from repro.evaluation.defenses.dejavu import evaluate_dejavu
from repro.evaluation.defenses.fences import evaluate_fence_on_flush
from repro.evaluation.defenses.pf_oblivious import (
    evaluate_pf_obliviousness,
    page_trace,
    setup_oblivious_cf_victim,
)
from repro.evaluation.defenses.tsgx import TSGX_THRESHOLD, evaluate_tsgx, wrap_with_tsgx
from repro.victims.control_flow import setup_control_flow_victim
from tests.conftest import run_program


def test_fence_on_flush_blocks_replayed_leak():
    report = evaluate_fence_on_flush(replays=8)
    assert report.transmit_issues_undefended >= 8
    assert report.leakage_blocked
    assert report.transmit_issues_defended \
        < report.transmit_issues_undefended // 2


def test_tsgx_gives_n_minus_1_replays():
    report = evaluate_tsgx()
    assert report.threshold == TSGX_THRESHOLD
    assert report.victim_terminated          # fail-stop defense fired
    assert report.os_faults_seen == 0        # faults suppressed by TSX
    assert report.matches_paper              # but N-1 windows leaked


def test_tsgx_wrapped_program_still_computes(system):
    """Without an attacker, the T-SGX transformation is transparent."""
    machine, kernel = system
    process = kernel.create_process("v")
    victim = setup_control_flow_victim(process, secret=1)
    wrapped = wrap_with_tsgx(victim.program, process)
    context = run_program(machine, kernel, wrapped, process=process,
                          max_cycles=500_000)
    assert process.read(victim.handle_va + 0x20) == 1
    assert context.stats.txn_aborts == 0


def test_dejavu_detects_many_replays():
    report = evaluate_dejavu(replays=50)
    assert report.detected


def test_dejavu_masking_with_few_replays():
    """The §8 masking argument: a handful of replays hides under a
    budget sized for legitimate demand-paging faults."""
    report = evaluate_dejavu(replays=2)
    assert not report.detected
    assert report.elapsed_ticks > 0


def test_pf_obliviousness_defeats_page_channel_helps_microscope(kernel):
    process = kernel.create_process("p")
    report = evaluate_pf_obliviousness(process)
    assert report.defeats_controlled_channel
    assert report.helps_microscope
    assert report.oblivious_memory_ops > report.plain_memory_ops


def test_page_trace_static_walker(kernel):
    process = kernel.create_process("p")
    victim = setup_oblivious_cf_victim(process, secret=0)
    plain0 = page_trace(victim.plain, 0)
    plain1 = page_trace(victim.plain, 1)
    assert plain0 != plain1
    obliv0 = page_trace(victim.oblivious, 0)
    obliv1 = page_trace(victim.oblivious, 1)
    assert obliv0 == obliv1


def test_oblivious_victim_still_computes(system):
    machine, kernel = system
    process = kernel.create_process("p")
    victim = setup_oblivious_cf_victim(process, secret=1)
    run_program(machine, kernel, victim.oblivious, process=process)


def test_fence_first_window_still_leaks():
    """The paper's corner case: the fence applies only after a flush,
    so a straight-line victim's FIRST speculative window (before any
    squash has happened) still executes and leaks once."""
    from repro.core.recipes import ReplayAction, ReplayDecision
    from repro.core.replayer import AttackEnvironment, Replayer
    from repro.cpu.config import CoreConfig
    from repro.config import MachineConfig
    from repro.isa.instructions import Opcode
    from repro.isa.program import ProgramBuilder

    rep = Replayer(AttackEnvironment.build(
        machine_config=MachineConfig(core=CoreConfig(
            fence_on_flush=True))))
    process = rep.create_victim_process("v", enclave=False)
    data = process.alloc(4096, "d")
    # Straight-line victim: no branch, so no mispredict flush precedes
    # the first window.
    program = (ProgramBuilder()
               .li("r1", data)
               .fli("f0", 8.0).fli("f1", 2.0)
               .load("r2", "r1", 0)
               .fdiv("f2", "f0", "f1")
               .fdiv("f3", "f0", "f1")
               .halt().build())
    issues = []

    def hook(context, entry):
        if entry.instr.op is Opcode.FDIV:
            issues.append(rep.machine.cycle)

    rep.machine.core.issue_hooks.append(hook)
    recipe = rep.module.provide_replay_handle(
        process, data,
        attack_function=lambda e: ReplayDecision(
            ReplayAction.RELEASE if e.replay_no >= 6
            else ReplayAction.REPLAY))
    rep.launch_victim(process, program)
    rep.arm(recipe)
    rep.run_until_victim_done()
    # 2 leaks in window 1 + 2 architectural at the end; the 5 replayed
    # windows after the first flush leak nothing.
    assert len(issues) == 4
