"""The machine-level defense mechanisms: registry wiring, the
per-scheme state machines (tracking decay, shadow release ordering,
throttle hysteresis), snapshot support, and the end-to-end
suppression claims of their evaluation drivers."""

from types import SimpleNamespace

import pytest

from repro.config import DefenseHookConfig, MachineConfig
from repro.cpu.machine import Machine
from repro.cpu.rob import EntryState
from repro.evaluation.defenses import (
    DelayOnSquashMechanism,
    JamaisVuMechanism,
    LeashMechanism,
    SIMFFlushMechanism,
    delay_on_squash_machine,
    evaluate_delay_on_squash,
    evaluate_jamais_vu,
    evaluate_leash,
    evaluate_simf,
    is_kernel_entry,
    jamais_vu_machine,
    leash_machine,
    simf_machine,
)
from repro.evaluation.defenses.mechanisms import (
    MECHANISMS,
    build_mechanism,
    nonspeculative,
    register_mechanism,
)


def _entry(seq, index=None, state=EntryState.COMPLETED, fault=None,
           op_cls="alu"):
    return SimpleNamespace(seq=seq,
                           index=seq if index is None else index,
                           state=state, fault=fault,
                           faulted=fault is not None, op_cls=op_cls)


def _context(entries=(), context_id=0, squash_events=0):
    return SimpleNamespace(
        context_id=context_id,
        rob=SimpleNamespace(entries=list(entries)),
        stats=SimpleNamespace(squash_events=squash_events))


class _NullCounter:
    def inc(self, n=1):
        pass


def _fake_machine(issue_width=6):
    core = SimpleNamespace(cycle=0,
                           config=SimpleNamespace(
                               issue_width=issue_width),
                           squash_hooks=[], retire_hooks=[],
                           issue_hooks=[], issue_gates=[])
    metrics = SimpleNamespace(counter=lambda name: _NullCounter())
    return SimpleNamespace(core=core, metrics=metrics)


# --- registry --------------------------------------------------------------


def test_registry_has_all_schemes():
    assert {"jamais-vu", "delay-on-squash", "simf",
            "leash"} <= set(MECHANISMS)


def test_unknown_scheme_raises_with_registered_list():
    with pytest.raises(KeyError, match="jamais-vu"):
        build_mechanism(DefenseHookConfig(scheme="no-such-defense"))


def test_duplicate_registration_rejected():
    with pytest.raises(ValueError, match="already registered"):
        register_mechanism("jamais-vu")(JamaisVuMechanism)


def test_machine_installs_and_wires_mechanism():
    machine = Machine(jamais_vu_machine())
    assert isinstance(machine.defense, JamaisVuMechanism)
    assert machine.core.issue_gates
    assert machine.core.squash_hooks
    # params reach the factory
    machine = Machine(jamais_vu_machine("epoch", epoch_retires=7))
    assert machine.defense.variant == "epoch"
    assert machine.defense.epoch_retires == 7


def test_default_machine_has_no_defense():
    machine = Machine()
    assert machine.defense is None
    assert not machine.core.issue_gates
    assert not machine.core.squash_hooks


# --- the nonspeculative release condition ----------------------------------


def test_head_entry_is_nonspeculative():
    entry = _entry(5)
    assert nonspeculative(_context([entry]), entry)


def test_incomplete_older_entry_blocks():
    older = _entry(1, state=EntryState.EXECUTING)
    entry = _entry(2)
    assert not nonspeculative(_context([older, entry]), entry)


def test_faulted_older_entry_blocks_even_when_completed():
    older = _entry(1, fault=object())
    entry = _entry(2)
    assert not nonspeculative(_context([older, entry]), entry)


def test_clean_completed_prefix_releases():
    older = _entry(1)
    entry = _entry(2)
    assert nonspeculative(_context([older, entry]), entry)


# --- Jamais Vu -------------------------------------------------------------


def test_counter_variant_saturates():
    mech = JamaisVuMechanism(variant="counter", saturate=3)
    ctx = _context()
    for _ in range(5):
        mech._on_squash(ctx, [_entry(1, index=7)], "page-fault", None)
    assert mech.flagged(0) == {7: 3}


def test_counter_variant_decays_on_retire():
    mech = JamaisVuMechanism(variant="counter", saturate=3)
    ctx = _context()
    for _ in range(2):
        mech._on_squash(ctx, [_entry(1, index=7)], "page-fault", None)
    mech._on_retire(ctx, _entry(1, index=7))
    assert mech.flagged(0) == {7: 1}
    mech._on_retire(ctx, _entry(1, index=7))
    assert mech.flagged(0) == {}


def test_epoch_variant_clears_in_bulk():
    mech = JamaisVuMechanism(variant="epoch", epoch_retires=3)
    ctx = _context()
    mech._on_squash(ctx, [_entry(1, index=1), _entry(2, index=2)],
                    "page-fault", None)
    mech._on_retire(ctx, _entry(3, index=3))
    mech._on_retire(ctx, _entry(4, index=4))
    assert mech.flagged(0) == {1: 1, 2: 1}  # epoch not over yet
    mech._on_retire(ctx, _entry(5, index=5))
    assert mech.flagged(0) == {}


def test_clear_on_retire_is_per_entry():
    mech = JamaisVuMechanism(variant="clear-on-retire")
    ctx = _context()
    mech._on_squash(ctx, [_entry(1, index=1), _entry(2, index=2)],
                    "page-fault", None)
    mech._on_retire(ctx, _entry(1, index=1))
    assert mech.flagged(0) == {2: 1}


def test_unknown_variant_rejected():
    with pytest.raises(ValueError, match="unknown Jamais Vu variant"):
        JamaisVuMechanism(variant="nope")


def test_gate_blocks_flagged_speculative_entry_only():
    mech = JamaisVuMechanism()
    older = _entry(1, index=1, state=EntryState.EXECUTING)
    flagged = _entry(2, index=2)
    ctx = _context([older, flagged])
    mech._on_squash(ctx, [flagged], "page-fault", None)
    assert not mech._gate(ctx, flagged)          # speculative: held
    assert mech._gate(ctx, older)                # unflagged: passes
    ctx_head = _context([flagged])
    assert mech._gate(ctx_head, flagged)         # nonspeculative: released


def test_jamais_vu_capture_restore_round_trip():
    mech = JamaisVuMechanism(variant="epoch")
    ctx = _context()
    mech._on_squash(ctx, [_entry(1, index=4)], "page-fault", None)
    state = mech.capture()
    mech._on_squash(ctx, [_entry(2, index=9)], "mispredict", None)
    mech.restore(state)
    assert mech.flagged(0) == {4: 1}


# --- Delay-on-Squash -------------------------------------------------------


def test_shadow_arms_and_decays():
    mech = DelayOnSquashMechanism(shadow_retires=2)
    ctx = _context()
    mech._on_squash(ctx, [], "mispredict", None)
    assert mech.in_shadow(0)
    mech._on_retire(ctx, _entry(1))
    assert mech.in_shadow(0)
    mech._on_retire(ctx, _entry(2))
    assert not mech.in_shadow(0)


def test_shadow_gates_only_side_channel_classes():
    mech = DelayOnSquashMechanism()
    older = _entry(1, state=EntryState.EXECUTING)
    load = _entry(2, op_cls="load")
    alu = _entry(3, op_cls="alu")
    ctx = _context([older, load, alu])
    mech._on_squash(ctx, [], "page-fault", None)
    assert not mech._gate(ctx, load)   # side-channel-capable: held
    assert mech._gate(ctx, alu)        # harmless class: passes


def test_shadow_releases_in_program_order():
    mech = DelayOnSquashMechanism()
    first = _entry(1, op_cls="load", state=EntryState.READY)
    second = _entry(2, op_cls="load", state=EntryState.READY)
    ctx = _context([first, second])
    mech._on_squash(ctx, [], "page-fault", None)
    assert mech._gate(ctx, first)        # oldest: may proceed
    assert not mech._gate(ctx, second)   # younger: waits for first


def test_no_shadow_no_gating():
    mech = DelayOnSquashMechanism()
    older = _entry(1, state=EntryState.EXECUTING)
    load = _entry(2, op_cls="load")
    ctx = _context([older, load])
    assert mech._gate(ctx, load)


# --- SIMF ------------------------------------------------------------------


@pytest.mark.parametrize("reason,expected", [
    ("page-fault", True),
    ("interrupt:timer", True),
    ("mispredict", False),
    ("memory-order", False),
    ("txn-abort:conflict", False),
])
def test_is_kernel_entry(reason, expected):
    assert is_kernel_entry(reason) is expected


def test_simf_flushes_hierarchy_on_kernel_entry():
    machine = Machine(simf_machine())
    hierarchy = machine.hierarchy
    threshold = hierarchy.hit_latency(1)
    hierarchy.access(0x4000)
    assert hierarchy.access(0x4000) <= threshold       # warm
    machine.defense._on_squash(_context(), [], "mispredict", None)
    assert hierarchy.access(0x4000) <= threshold       # still warm
    machine.defense._on_squash(_context(), [], "page-fault", None)
    assert hierarchy.access(0x4000) > threshold        # flushed
    flushes = machine.metrics.counter("defense.simf.flushes")
    assert flushes.value == 1


def test_simf_flush_tlbs_knob():
    machine = Machine(simf_machine(flush_tlbs=False))
    assert isinstance(machine.defense, SIMFFlushMechanism)
    assert machine.defense.flush_tlbs is False


# --- LEASH -----------------------------------------------------------------


def _leash(hi=3, lo=1, window=100, factor=2, issue_width=6):
    mech = LeashMechanism(hi=hi, lo=lo, window_cycles=window,
                          throttle_factor=factor)
    machine = _fake_machine(issue_width=issue_width)
    mech.attach(machine)
    return mech, machine.core


def test_leash_hysteresis_engage_hold_release():
    mech, core = _leash()
    ctx = _context()
    core.cycle = 100                       # quiet window
    assert not mech.throttled(ctx)
    ctx.stats.squash_events += 5           # storm: rate 5 >= hi
    core.cycle = 200
    assert mech.throttled(ctx)
    ctx.stats.squash_events += 2           # mid-band: lo < 2 < hi
    core.cycle = 300
    assert mech.throttled(ctx)             # hysteresis holds
    core.cycle = 400                       # silence: rate 0 <= lo
    assert not mech.throttled(ctx)
    ctx.stats.squash_events += 2           # mid-band from off
    core.cycle = 500
    assert not mech.throttled(ctx)         # stays off


def test_leash_requires_lo_below_hi():
    with pytest.raises(ValueError, match="lo <= hi"):
        LeashMechanism(hi=1, lo=2)


def test_leash_gate_enforces_issue_budget():
    mech, core = _leash(issue_width=6, factor=2)
    ctx = _context()
    ctx.stats.squash_events = 9
    core.cycle = 100
    assert mech.throttled(ctx)
    entry = _entry(1)
    core.cycle = 110                       # inside the next window
    for _ in range(3):                     # budget = 6 // 2
        assert mech._gate(ctx, entry)
        mech._on_issue(ctx, entry)
    assert not mech._gate(ctx, entry)      # over budget this cycle
    core.cycle = 111                       # new cycle, fresh budget
    assert mech._gate(ctx, entry)


def test_leash_capture_restore_round_trip():
    mech, core = _leash()
    ctx = _context()
    ctx.stats.squash_events = 9
    core.cycle = 100
    assert mech.throttled(ctx)
    state = mech.capture()
    core.cycle = 200
    assert not mech.throttled(ctx)
    mech.restore(state)
    assert mech._state.get(0) is True


# --- machine snapshot integration ------------------------------------------


def test_capture_appends_defense_state():
    machine = Machine(jamais_vu_machine())
    ctx = _context()
    machine.defense._on_squash(ctx, [_entry(1, index=3)],
                               "page-fault", None)
    payload = machine.capture()
    assert len(payload) == 8
    machine.defense._on_squash(ctx, [_entry(2, index=5)],
                               "page-fault", None)
    machine.restore(payload)
    assert machine.defense.flagged(0) == {3: 1}


def test_default_capture_keeps_historical_shape():
    assert len(Machine().capture()) == 7


def test_restore_rejects_snapshot_without_defense_state():
    defended = Machine(jamais_vu_machine())
    with pytest.raises(ValueError, match="lacks defense state"):
        defended.restore(Machine().capture())


# --- evaluation drivers ----------------------------------------------------


@pytest.mark.parametrize("variant", ["counter", "epoch",
                                     "clear-on-retire"])
def test_jamais_vu_suppresses_replay(variant):
    report = evaluate_jamais_vu(replays=4, variant=variant)
    assert report.transmit_issues_undefended > 0
    assert report.transmit_issues_defended == 0
    assert report.replay_suppressed


def test_delay_on_squash_suppresses_replay():
    report = evaluate_delay_on_squash(replays=4)
    assert report.transmit_issues_undefended > 0
    assert report.transmit_issues_defended == 0
    assert report.replay_suppressed


def test_simf_erases_residue():
    report = evaluate_simf(secret=1, replays=4)
    assert report.undefended_guess == 1
    assert report.residue_erased
    assert report.defended_hits < report.undefended_hits


def test_leash_hysteresis_observed_end_to_end():
    report = evaluate_leash()
    assert report.hysteresis_observed
    assert report.trace[0] is True
    assert report.trace[-1] is False
