"""Full-system integration: the paper's claims exercised end-to-end,
crossing every substrate at once."""

import pytest

from repro.core.attacks.aes_cache import AESCacheAttack
from repro.core.attacks.port_contention import PortContentionAttack
from repro.core.recipes import ReplayAction, ReplayDecision, WalkLocation, WalkTuning
from repro.core.replayer import AttackEnvironment, Replayer
from repro.crypto.aes import encrypt_block
from repro.isa.assembler import assemble
from repro.sgx.attestation import RunOnceGuard
from repro.victims.control_flow import setup_control_flow_victim


def test_single_logical_run_invariant():
    """The central claim: the attack gathers many traces from ONE
    architectural run.  The run-once guard admits the victim once, the
    victim's architectural side effects happen once, yet the attacker
    observes many replays."""
    guard = RunOnceGuard()
    guard.begin_run("victim-input-1")  # would reject a second run

    rep = Replayer(AttackEnvironment.build())
    victim_proc = rep.create_victim_process()
    victim = setup_control_flow_victim(victim_proc, secret=1)

    recipe = rep.module.provide_replay_handle(
        victim_proc, victim.handle_va + 0x20,
        attack_function=lambda e: ReplayDecision(
            ReplayAction.RELEASE if e.replay_no >= 12
            else ReplayAction.REPLAY))
    rep.launch_victim(victim_proc, victim.program)
    rep.arm(recipe)
    rep.run_until_victim_done()

    assert recipe.replays == 12
    # Architectural effect happened exactly once despite 12 replays.
    assert victim_proc.read(victim.handle_va + 0x20) == 1
    with pytest.raises(PermissionError):
        guard.begin_run("victim-input-1")


def test_assembled_victim_attackable():
    """A victim written in assembler text goes through the whole
    stack: assemble -> enclave -> replay -> extract."""
    rep = Replayer(AttackEnvironment.build())
    process = rep.create_victim_process()
    handle = process.alloc(4096, "handle")
    table = process.alloc(4096, "table")
    secret_line = 11
    process.write(process.enclave.private_base, secret_line)
    source = f"""
        li   r1, {handle}
        li   r2, {process.enclave.private_base}
        li   r3, {table}
        load r4, [r1]          ; replay handle
        load r5, [r2]          ; secret line index
        li   r6, 64
        mul  r7, r5, r6
        add  r7, r7, r3
        load r8, [r7]          ; transmit
        halt
    """
    program = assemble(source, name="asm-victim")
    probe_addrs = [table + i * 64 for i in range(16)]
    hits = []

    def attack_fn(event):
        latencies = rep.module.probe_lines(process, probe_addrs)
        hits.append([i for i, lat in enumerate(latencies) if lat <= 20])
        cost = rep.module.prime_lines(process, probe_addrs)
        action = (ReplayAction.RELEASE if event.replay_no >= 3
                  else ReplayAction.REPLAY)
        return ReplayDecision(action, extra_cost=cost)

    recipe = rep.module.provide_replay_handle(
        process, handle, attack_function=attack_fn)
    rep.launch_victim(process, program)
    rep.module.prime_lines(process, probe_addrs)
    rep.arm(recipe)
    rep.run_until_victim_done()
    assert all(h == [secret_line] for h in hits[1:])


def test_aes192_and_256_extraction():
    """The stepper generalises beyond AES-128: more rounds, same
    noise-free extraction."""
    for key_len in (24, 32):
        key = bytes(range(key_len))
        ciphertext = encrypt_block(key, b"sixteen byte msg")
        attack = AESCacheAttack(key, ciphertext)
        result = attack.run_full_extraction()
        assert result.plaintext_ok
        assert result.union_recall() == 1.0


def test_attack_respects_enclave_isolation():
    """The attack never reads enclave memory directly: the SGX access
    guard would raise."""
    from repro.sgx.enclave import EnclaveProtectionError
    rep = Replayer(AttackEnvironment.build())
    process = rep.create_victim_process()
    enclave = process.enclave
    with pytest.raises(EnclaveProtectionError):
        rep.sgx.supervisor_read(process, enclave.private_base)


def test_port_contention_attack_inside_enclave_with_flush():
    """Even with the branch predictor flushed at the enclave boundary
    (the [12] countermeasure), the port channel reads the secret —
    the paper's motivating scenario for §4.3."""
    attack = PortContentionAttack(measurements=600)
    threshold = attack.calibrate(samples=300)
    result = attack.run(secret=1, threshold=threshold)
    assert result.correct


def test_walk_window_scales_with_tuning():
    """Longer walks -> more speculative instructions per replay."""
    from repro.isa.instructions import Opcode

    def divs_per_replay(leaf):
        rep = Replayer(AttackEnvironment.build())
        process = rep.create_victim_process()
        victim = setup_control_flow_victim(process, secret=1,
                                           divisions=2)
        count = [0]

        def hook(context, entry):
            if context.context_id == 0 \
                    and entry.instr.op is Opcode.FDIV:
                count[0] += 1

        rep.machine.core.issue_hooks.append(hook)
        recipe = rep.module.provide_replay_handle(
            process, victim.handle_va + 0x20,
            attack_function=lambda e: ReplayDecision(
                ReplayAction.RELEASE if e.replay_no >= 6
                else ReplayAction.REPLAY),
            walk_tuning=WalkTuning(upper=WalkLocation.PWC, leaf=leaf))
        rep.launch_victim(process, victim.program)
        rep.arm(recipe)
        rep.run_until_victim_done()
        return count[0]

    short = divs_per_replay(WalkLocation.L1)
    long = divs_per_replay(WalkLocation.DRAM)
    # The victim's divs sit ~15 cycles past the handle (after a
    # mispredicted branch resolves): an 11-cycle walk cannot reach
    # them, a DRAM walk replays them every time.
    assert long >= 6
    assert short < long
