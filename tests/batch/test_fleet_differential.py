"""Differential testing of the batch fleet against scalar machines.

Hypothesis generates random terminating programs plus random per-lane
secrets; every fleet lane must end **bit-identical** to an
independently-run scalar :class:`~repro.cpu.machine.Machine` with the
same seed — full snapshot digest, MetricsRegistry counter dump and
final architectural state, not just the extracted result.  Programs
mix secret-dependent branches, secret-indexed loads and plain data
flow so examples cover all three regimes: fully convergent fleets,
partial divergence with peel-off, and everyone-peels.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batch import FleetPlan, LaneInit, MachineFleet, make_ops
from repro.batch.plan import build_lane_machine
from repro.isa import instructions as ins
from repro.isa.program import ProgramBuilder
from repro.snapshot import MachineSnapshot

DATA_BASE = 0x0010_0000
N_WORDS = 8
_DATA_REGS = ["r2", "r3", "r4", "r5", "r6"]


def lane_init(seed, params):
    """Per-lane data: N_WORDS random memory words and one register."""
    rng = random.Random(seed)
    mem = tuple((DATA_BASE + 8 * i, 8, rng.getrandbits(64))
                for i in range(N_WORDS))
    return LaneInit(mem=mem,
                    regs=((0, "r7", rng.getrandbits(16)),))


def extract(machine):
    """Everything bit-exactness is judged on."""
    context = machine.contexts[0]
    return (MachineSnapshot.take(machine).digest(),
            machine.metrics.dump(),
            dict(context.int_regs), dict(context.fp_regs),
            machine.cycle, context.stats.retired,
            context.stats.squashed,
            [machine.phys.read(DATA_BASE + 8 * i)
             for i in range(N_WORDS)])


def run_scalar(plan, seed, params):
    machine = build_lane_machine(plan, seed, params)
    machine.run_until_cycle(plan.max_cycles)
    return extract(machine)


@st.composite
def _random_program(draw):
    builder = ProgramBuilder("fleet-differential")
    builder.li("r1", DATA_BASE)
    for reg in _DATA_REGS:
        builder.li(reg, draw(st.integers(0, 1 << 20)))
    iterations = draw(st.integers(min_value=1, max_value=4))
    builder.li("r0", iterations)
    builder.label("loop")
    for _ in range(draw(st.integers(min_value=2, max_value=8))):
        kind = draw(st.sampled_from(
            ["alu", "imm", "mul", "div", "load", "store",
             "secret_load", "secret_branch", "fdiv"]))
        rd = draw(st.sampled_from(_DATA_REGS))
        rs1 = draw(st.sampled_from(_DATA_REGS))
        rs2 = draw(st.sampled_from(_DATA_REGS))
        offset = 8 * draw(st.integers(0, N_WORDS - 1))
        if kind == "alu":
            ctor = draw(st.sampled_from(
                [ins.add, ins.sub, ins.xor, ins.and_, ins.or_]))
            builder.emit(ctor(rd, rs1, rs2))
        elif kind == "imm":
            ctor = draw(st.sampled_from([ins.addi, ins.xori]))
            builder.emit(ctor(rd, rs1, draw(st.integers(0, 255))))
        elif kind == "mul":
            builder.emit(ins.mul(rd, rs1, rs2))
        elif kind == "div":
            builder.emit(ins.div(rd, rs1, rs2))
        elif kind == "load":
            builder.emit(ins.load(rd, "r1", offset))
            builder.emit(ins.xor(rd, rd, rs1))
        elif kind == "store":
            builder.emit(ins.store("r1", rs1, offset))
        elif kind == "secret_load":
            # Index memory by secret-derived data: lane-variant
            # addresses, the "addr" divergence class.
            builder.emit(ins.andi(rd, "r7",
                                  8 * draw(st.sampled_from([1, 3, 7]))))
            builder.emit(ins.add(rd, rd, "r1"))
            builder.emit(ins.load(rd, rd, 0))
        elif kind == "secret_branch":
            # Branch on a secret-derived bit: the "branch" class.
            builder.emit(ins.andi(rd, "r7", draw(st.integers(1, 15))))
            label = f"sk{builder.next_index}"
            builder.beq(rd, "r15", label)
            builder.emit(ins.addi(rs1, rs1, 1))
            builder.label(label)
        else:  # fdiv
            builder.emit(ins.fdiv("f1", "f2", "f3"))
    builder.subi("r0", "r0", 1)
    builder.bne("r0", "r15", "loop")
    builder.halt()
    return builder.build()


@given(program=_random_program(),
       seeds=st.lists(st.integers(0, 1 << 32), min_size=2,
                      max_size=6, unique=True),
       engine=st.sampled_from(["pure", "numpy"]),
       sync_base=st.sampled_from([8, 64, 1024]))
@settings(max_examples=25, deadline=None)
def test_every_lane_bit_identical_to_scalar(program, seeds, engine,
                                            sync_base):
    plan = FleetPlan(programs=((0, program),), lane_init=lane_init,
                     max_cycles=3_000_000, extract=extract)
    lanes = [(seed, None) for seed in seeds]
    fleet = MachineFleet(plan, lanes, ops=make_ops(engine),
                         sync_base=sync_base)
    outcomes = fleet.run()
    assert len(outcomes) == len(lanes)
    for outcome, (seed, params) in zip(outcomes, lanes):
        assert outcome.error is None, (
            f"lane {outcome.lane} raised {outcome.error!r}")
        reference = run_scalar(plan, seed, params)
        assert outcome.result == reference, (
            f"lane {outcome.lane} (seed {seed}, "
            f"peeled={outcome.peeled}, reason={outcome.reason}) "
            f"diverged from its scalar run")


@given(seeds=st.lists(st.integers(0, 1 << 32), min_size=3,
                      max_size=8, unique=True))
@settings(max_examples=10, deadline=None)
def test_divergent_fleet_with_peel_off(seeds):
    """A secret-dependent branch forces real peel-off; peeled and
    batched lanes alike must match their scalar runs bit-for-bit."""
    builder = ProgramBuilder("forced-divergence")
    builder.li("r1", DATA_BASE)
    builder.load("r2", "r1", 0)
    builder.li("r3", 1 << 63)
    builder.li("r4", 0)
    # Taken for lanes whose first secret word has the top bit set.
    builder.and_("r5", "r2", "r3")
    builder.beq("r5", "r15", "low")
    builder.addi("r4", "r4", 100)
    builder.label("low")
    builder.li("r0", 12)
    builder.label("loop")
    builder.mul("r4", "r4", "r2")
    builder.addi("r4", "r4", 3)
    builder.subi("r0", "r0", 1)
    builder.bne("r0", "r15", "loop")
    builder.halt()
    program = builder.build()
    plan = FleetPlan(programs=((0, program),), lane_init=lane_init,
                     max_cycles=3_000_000, extract=extract)
    lanes = [(seed, None) for seed in seeds]
    fleet = MachineFleet(plan, lanes, sync_base=16)
    outcomes = fleet.run()
    for outcome, (seed, params) in zip(outcomes, lanes):
        assert outcome.error is None
        assert outcome.result == run_scalar(plan, seed, params)
