"""Backend wiring: ``run_sweep(backend="batch")``,
``run_resilient_sweep(backend="batch")`` and
``Experiment(backend="batch")`` must be drop-in equivalent to the
scalar backend — same results, same seeds, same store/journal
behaviour."""

import pytest

import repro
from repro.batch import FleetPlan, FleetTrial, LaneInit
from repro.harness import run_resilient_sweep, run_sweep
from repro.isa.program import ProgramBuilder
from repro.mem.physical import PhysicalMemoryError
from repro.snapshot import MachineSnapshot

DATA_BASE = 0x0010_0000
BAD_BASE = 1 << 60


def _extract(machine):
    context = machine.contexts[0]
    return (MachineSnapshot.take(machine).digest(),
            context.int_regs["r2"], machine.cycle,
            context.stats.retired)


def _program():
    return (ProgramBuilder("backend-trial")
            .load("r2", "r1", 0)
            .li("r0", 10)
            .label("loop")
            .mul("r2", "r2", "r2")
            .addi("r2", "r2", 7)
            .subi("r0", "r0", 1)
            .bne("r0", "r15", "loop")
            .halt().build())


def _lane_init(seed, params):
    scale = params["scale"] if params else 1
    return LaneInit(regs=((0, "r1", DATA_BASE),),
                    mem=((DATA_BASE, 8, seed * scale + 1),))


def _bad_lane_init(seed, params):
    # Every third seed points at unreachable memory -> that trial
    # raises, scalar and batch alike.
    base = BAD_BASE if seed % 3 == 0 else DATA_BASE
    return LaneInit(regs=((0, "r1", base),),
                    mem=((DATA_BASE, 8, seed + 1),))


PLAN = FleetPlan(programs=((0, _program()),), lane_init=_lane_init,
                 max_cycles=1_000_000, extract=_extract)
TRIAL = FleetTrial(PLAN)
BAD_PLAN = FleetPlan(programs=((0, _program()),),
                     lane_init=_bad_lane_init, max_cycles=1_000_000,
                     extract=_extract)
BAD_TRIAL = FleetTrial(BAD_PLAN)

PARAMS = [{"scale": s} for s in (1, 2, 3, 4, 5, 6)]


def test_run_sweep_batch_equals_scalar():
    scalar = run_sweep(TRIAL, PARAMS, master_seed=11, label="be",
                       workers=1)
    batch = run_sweep(TRIAL, PARAMS, master_seed=11, label="be",
                      backend="batch")
    assert batch.results() == scalar.results()
    assert ([t.seed for t in batch.trials]
            == [t.seed for t in scalar.trials])


def test_run_sweep_batch_requires_fleet_plan():
    with pytest.raises(ValueError, match="fleet_plan"):
        run_sweep(lambda p, s: None, PARAMS, backend="batch")


def test_run_sweep_unknown_backend():
    with pytest.raises(ValueError, match="backend"):
        run_sweep(TRIAL, PARAMS, backend="simd")
    with pytest.raises(ValueError, match="backend"):
        run_resilient_sweep(TRIAL, PARAMS, backend="simd")


def test_run_sweep_batch_raises_first_lane_error():
    # Find a master seed whose derived seeds actually hit the bad
    # lane-init predicate, so the test cannot rot silently.
    from repro.harness import derive_seed
    master = next(m for m in range(100)
                  if any(derive_seed(m, i) % 3 == 0
                         for i in range(len(PARAMS))))
    with pytest.raises(PhysicalMemoryError):
        run_sweep(BAD_TRIAL, PARAMS, master_seed=master, workers=1)
    with pytest.raises(PhysicalMemoryError):
        run_sweep(BAD_TRIAL, PARAMS, master_seed=master,
                  backend="batch")


def test_resilient_batch_equals_scalar():
    scalar = run_resilient_sweep(TRIAL, PARAMS, master_seed=5,
                                 label="rs", workers=1)
    batch = run_resilient_sweep(TRIAL, PARAMS, master_seed=5,
                                label="rs", backend="batch")
    assert batch.results() == scalar.results()
    assert batch.report is not None
    counts = batch.report.resolution_counts()
    assert counts["ok"] == len(PARAMS)
    for trial_report in batch.report.trials:
        assert [a.attempt for a in trial_report.attempts] == [0]
        assert trial_report.attempts[0].outcome == "ok"


def test_resilient_batch_failed_lane_falls_to_scalar_ladder():
    """A lane the fleet cannot complete gets the full scalar retry
    ladder (no attempt burned by the fleet) and then the policy's
    exhaustion handling."""
    from repro.harness import FaultPolicy, derive_seed
    master = next(m for m in range(100)
                  if any(derive_seed(m, i, "lad") % 3 == 0
                         for i in range(len(PARAMS))))
    policy = FaultPolicy(max_attempts=2, backoff_base=0,
                         on_exhausted="default", default="gave-up")
    scalar = run_resilient_sweep(BAD_TRIAL, PARAMS, master_seed=master,
                                 label="lad", workers=1, policy=policy)
    batch = run_resilient_sweep(BAD_TRIAL, PARAMS, master_seed=master,
                                label="lad", policy=policy,
                                backend="batch")
    assert batch.outcomes == scalar.outcomes
    s_res = scalar.report.resolution_counts()
    b_res = batch.report.resolution_counts()
    assert b_res == s_res
    assert b_res["defaulted"] >= 1
    for trial_report in batch.report.trials:
        if trial_report.resolution == "defaulted":
            # The fleet recorded no attempt for the failed lane: the
            # ladder ran its full budget from attempt 0.
            assert ([a.attempt for a in trial_report.attempts]
                    == [0, 1])


def test_resilient_batch_populates_store_for_scalar(tmp_path):
    """Trials resolved by the fleet land in the content-addressed
    store and are served back to a later *scalar* sweep unchanged."""
    store = tmp_path / "trials"
    first = run_resilient_sweep(TRIAL, PARAMS, master_seed=3,
                                label="st", backend="batch",
                                store=store)
    assert first.report.cache["stores"] == len(PARAMS)
    second = run_resilient_sweep(TRIAL, PARAMS, master_seed=3,
                                 label="st", workers=1, store=store)
    assert second.results() == first.results()
    assert (second.report.resolution_counts()["cached"]
            == len(PARAMS))


def test_resilient_batch_journal_resume(tmp_path):
    journal = tmp_path / "sweep.journal"
    first = run_resilient_sweep(TRIAL, PARAMS, master_seed=9,
                                label="jr", backend="batch",
                                journal=journal)
    second = run_resilient_sweep(TRIAL, PARAMS, master_seed=9,
                                 label="jr", backend="batch",
                                 journal=journal)
    assert second.results() == first.results()
    assert (second.report.resolution_counts()["journal"]
            == len(PARAMS))


def test_experiment_backend_batch():
    scalar = repro.Experiment(trial=TRIAL, sweep=PARAMS,
                              master_seed=21, label="exp").run()
    batch = repro.Experiment(trial=TRIAL, sweep=PARAMS,
                             master_seed=21, label="exp",
                             backend="batch").run()
    assert batch.results == scalar.results
    assert batch.report.resolution_counts()["ok"] == len(PARAMS)
