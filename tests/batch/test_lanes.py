"""Lane-vector engine tests: the pure engine is exact by construction
and the NumPy fast path is exactly the pure engine, or it must not
fire at all."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.batch.lanes import (
    MASK64,
    NumpyOps,
    PurePythonOps,
    make_ops,
)

np = pytest.importorskip("numpy")

BINOPS = ["add", "sub", "and", "or", "xor", "shl", "shr", "mul",
          "div"]
IMMOPS = ["addi", "subi", "andi", "ori", "xori", "shli", "shri"]

#: Values the scalar core can actually put in an int register:
#: anything ``li`` loads (arbitrary Python ints) plus every masked
#: ALU result.
_ints = st.one_of(
    st.integers(min_value=0, max_value=MASK64),
    st.integers(min_value=-(1 << 70), max_value=1 << 70),
    st.sampled_from([0, 1, MASK64, 1 << 64, -1, 1 << 63]),
)


def _scalar_binop(op, x, y):
    """The scalar core's own expression (core._execute_alu)."""
    if op == "add":
        return (x + y) & MASK64
    if op == "sub":
        return (x - y) & MASK64
    if op == "and":
        return x & y
    if op == "or":
        return x | y
    if op == "xor":
        return x ^ y
    if op == "shl":
        return (x << (y & 63)) & MASK64
    if op == "shr":
        return (x & MASK64) >> (y & 63)
    if op == "mul":
        return (x * y) & MASK64
    assert op == "div"
    return (x // y) & MASK64 if y else 0


@pytest.fixture(params=["pure", "numpy"])
def ops(request):
    return make_ops(request.param)


@given(op=st.sampled_from(BINOPS),
       pairs=st.lists(st.tuples(_ints, _ints), min_size=1,
                      max_size=12))
def test_binop_matches_scalar_expression(op, pairs):
    for ops in (PurePythonOps(), NumpyOps(np)):
        a = [x for x, _ in pairs]
        b = [y for _, y in pairs]
        expected = [_scalar_binop(op, x, y) for x, y in pairs]
        assert ops.binop(op, a, b) == expected


@given(op=st.sampled_from(IMMOPS),
       vec=st.lists(_ints, min_size=1, max_size=12),
       imm=st.integers(min_value=-(1 << 20), max_value=1 << 65))
def test_immop_matches_scalar_expression(op, vec, imm):
    base = {"addi": "add", "subi": "sub", "andi": "and",
            "ori": "or", "xori": "xor", "shli": "shl",
            "shri": "shr"}[op]
    expected = [_scalar_binop(base, x, imm) for x in vec]
    for ops in (PurePythonOps(), NumpyOps(np)):
        assert ops.immop(op, vec, imm) == expected


def test_fdiv_zero_convention(ops):
    out = ops.binop("fdiv", [1.0, -2.0, 0.0, 6.0],
                    [0.0, 0.0, 0.0, 3.0])
    assert out == [math.inf, -math.inf, 0.0, 2.0]


def test_float_ops_stay_on_pure_path(ops):
    a, b = [1.5, 2.5, 3.5, 4.5], [0.5] * 4
    assert ops.binop("fadd", a, b) == [2.0, 3.0, 4.0, 5.0]
    assert ops.binop("fmul", a, b) == [0.75, 1.25, 1.75, 2.25]


def test_unknown_op_raises(ops):
    with pytest.raises(ValueError):
        ops.binop("nope", [1], [2])
    with pytest.raises(ValueError):
        ops.immop("nope", [1], 2)


class _TrappingNumpyOps(NumpyOps):
    """NumpyOps that records whether the fast path fired."""

    def __init__(self, np_module, min_lanes=4):
        super().__init__(np_module, min_lanes)
        self.fast_calls = 0

    def _u64_binop(self, op, av, bv):
        self.fast_calls += 1
        return super()._u64_binop(op, av, bv)

    def _u64_immop(self, op, av, imm):
        self.fast_calls += 1
        return super()._u64_immop(op, av, imm)


def test_numpy_guard_rejects_out_of_range_elements():
    ops = _TrappingNumpyOps(np)
    bignum = [1 << 64, 1, 2, 3]
    negative = [-1, 1, 2, 3]
    bools = [True, False, True, False]
    in_range = [1, 2, 3, 4]
    # Floats never qualify for the uint64 path (they would silently
    # truncate); the guard rejects them before any arithmetic runs.
    assert ops._as_u64([1.0, 2.0, 3.0, 4.0]) is None
    for bad in (bignum, negative, bools):
        assert (ops.binop("add", bad, in_range)
                == PurePythonOps().binop("add", bad, in_range))
        assert (ops.immop("addi", bad, 1)
                == PurePythonOps().immop("addi", bad, 1))
    assert ops.fast_calls == 0
    ops.binop("add", in_range, in_range)
    assert ops.fast_calls == 1


def test_numpy_guard_rejects_short_vectors_and_fp_ops():
    ops = _TrappingNumpyOps(np, min_lanes=4)
    ops.binop("add", [1, 2], [3, 4])          # too short
    ops.binop("div", [8, 8, 8, 8], [2, 0, 2, 2])   # excluded op
    ops.binop("fadd", [1.0] * 4, [2.0] * 4)   # fp op
    ops.immop("andi", [1, 2, 3, 4], -5)       # out-of-range imm
    assert ops.fast_calls == 0
    ops.immop("addi", [1, 2, 3, 4], -5)       # wraparound-safe imm
    assert ops.fast_calls == 1


def test_make_ops_selection(monkeypatch):
    monkeypatch.delenv("REPRO_NO_NUMPY", raising=False)
    assert make_ops("pure").name == "pure"
    assert make_ops("numpy").name == "numpy"
    assert make_ops().name == "numpy"
    monkeypatch.setenv("REPRO_NO_NUMPY", "1")
    assert make_ops().name == "pure"
    # Explicit request still overrides the environment knob.
    assert make_ops("numpy").name == "numpy"
    with pytest.raises(ValueError):
        make_ops("simd")
