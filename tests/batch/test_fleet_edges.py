"""Lane-divergence edge cases: traps on the leader, fleet-wide
squashes that are *not* divergence, and the single-lane degenerate
fleet."""

import pytest

from repro.batch import FleetPlan, LaneInit, MachineFleet
from repro.batch.plan import build_lane_machine, run_lane_scalar
from repro.isa.program import ProgramBuilder
from repro.mem.physical import PhysicalMemoryError
from repro.snapshot import MachineSnapshot

DATA_BASE = 0x0010_0000
#: Far beyond the simulated DRAM: touching it raises
#: PhysicalMemoryError on any scalar machine.
BAD_BASE = 1 << 60


def extract(machine):
    context = machine.contexts[0]
    return (MachineSnapshot.take(machine).digest(),
            machine.metrics.dump(), dict(context.int_regs),
            machine.cycle, context.stats.retired)


def run_scalar(plan, seed, params):
    machine = build_lane_machine(plan, seed, params)
    machine.run_until_cycle(plan.max_cycles)
    return extract(machine)


def _pointer_chase_program():
    """Load through a per-lane pointer, then a shared epilogue."""
    return (ProgramBuilder("pointer-chase")
            .load("r2", "r1", 0)
            .addi("r2", "r2", 5)
            .li("r0", 8)
            .label("loop")
            .mul("r2", "r2", "r2")
            .subi("r0", "r0", 1)
            .bne("r0", "r15", "loop")
            .halt().build())


def _trap_lane0_init(seed, params):
    """Lane seed 0 (and only it) points at unreachable memory."""
    base = BAD_BASE if seed == 0 else DATA_BASE
    return LaneInit(regs=((0, "r1", base),),
                    mem=((DATA_BASE, 8, 41 + seed),))


def test_trap_on_lane_zero_only():
    """The leader (lane 0) traps; followers must still complete
    bit-identically to their scalar runs, and lane 0's outcome must
    carry the same exception its scalar run raises."""
    plan = FleetPlan(programs=((0, _pointer_chase_program()),),
                     lane_init=_trap_lane0_init, max_cycles=1_000_000,
                     extract=extract)
    lanes = [(0, None), (7, None), (9, None), (11, None)]
    outcomes = MachineFleet(plan, lanes).run()

    assert isinstance(outcomes[0].error, PhysicalMemoryError)
    with pytest.raises(PhysicalMemoryError):
        run_lane_scalar(plan, 0, None)
    for outcome, (seed, params) in zip(outcomes[1:], lanes[1:]):
        assert outcome.error is None
        assert outcome.result == run_scalar(plan, seed, params)


def test_trap_on_follower_lane_only():
    """A single follower traps; the leader and the other followers
    stay batched and bit-identical."""
    def init(seed, params):
        base = BAD_BASE if seed == 3 else DATA_BASE
        return LaneInit(regs=((0, "r1", base),),
                        mem=((DATA_BASE, 8, 41 + seed),))

    plan = FleetPlan(programs=((0, _pointer_chase_program()),),
                     lane_init=init, max_cycles=1_000_000,
                     extract=extract)
    lanes = [(1, None), (2, None), (3, None), (4, None)]
    outcomes = MachineFleet(plan, lanes).run()
    for outcome, (seed, params) in zip(outcomes, lanes):
        if seed == 3:
            assert isinstance(outcome.error, PhysicalMemoryError)
            with pytest.raises(PhysicalMemoryError):
                run_lane_scalar(plan, seed, params)
        else:
            assert outcome.error is None
            assert outcome.result == run_scalar(plan, seed, params)


def test_simultaneous_squash_on_all_lanes_stays_batched():
    """A mispredicted branch squashes in-flight work on *every* lane
    at once — but identically, because the branch operands are
    lane-invariant.  That is a fleet-wide squash, not divergence: no
    lane may peel."""
    program = (ProgramBuilder("shared-squash")
               .li("r1", DATA_BASE)
               .load("r2", "r1", 0)       # lane-variant data
               .li("r0", 20)
               .label("loop")
               .mul("r2", "r2", "r2")     # tainted compute in flight
               .addi("r2", "r2", 1)
               .subi("r0", "r0", 1)
               .bne("r0", "r15", "loop")  # mispredicts identically
               .halt().build())

    def init(seed, params):
        return LaneInit(mem=((DATA_BASE, 8, 1000 + seed),))

    plan = FleetPlan(programs=((0, program),), lane_init=init,
                     max_cycles=1_000_000, extract=extract)
    lanes = [(seed, None) for seed in range(5)]
    fleet = MachineFleet(plan, lanes, sync_base=8)
    outcomes = fleet.run()

    assert fleet.stats["peeled"] == 0
    probe = build_lane_machine(plan, 0, None)
    probe.run_until_cycle(plan.max_cycles)
    assert probe.contexts[0].stats.squash_events > 0, \
        "workload no longer squashes; the test lost its point"
    for outcome, (seed, params) in zip(outcomes, lanes):
        assert outcome.error is None
        assert not outcome.peeled
        assert outcome.result == run_scalar(plan, seed, params)


def test_squashed_speculative_load_in_heap_is_lane_patched():
    """Memory-order replay regression (found by Hypothesis): a
    speculative load reads lane-variant memory before an older store's
    address resolves, gets squashed and refetched — but the dead entry
    lingers in the event heap past HALT and is part of the bit-exact
    capture.  Each materialized lane must carry *its own* stale
    speculative value in that heap entry, not the leader's."""
    program = (ProgramBuilder("replay-ghost")
               .li("r1", DATA_BASE)
               .li("r2", 0).li("r3", 0).li("r4", 0)
               .li("r5", 0).li("r6", 0)
               .li("r0", 1)
               .label("loop")
               .fdiv("f1", "f2", "f3")
               .add("r2", "r2", "r2")
               .mul("r2", "r2", "r2")
               .store("r1", "r2", 0)
               .add("r2", "r2", "r2")
               .load("r2", "r1", 0)
               .xor("r2", "r2", "r2")
               .subi("r0", "r0", 1)
               .bne("r0", "r15", "loop")
               .halt().build())

    def init(seed, params):
        # Word 0 is what the squashed load speculatively reads; make
        # it (and the rest) lane-variant.
        return LaneInit(mem=tuple((DATA_BASE + 8 * i, 8,
                                   (seed + 1) * 0x0101010101 + i)
                                  for i in range(4)))

    plan = FleetPlan(programs=((0, program),), lane_init=init,
                     max_cycles=1_000_000, extract=extract)
    probe = build_lane_machine(plan, 0, None)
    probe.run_until_cycle(plan.max_cycles)
    assert probe.contexts[0].stats.replays > 0, \
        "workload no longer triggers a memory-order replay; the " \
        "test lost its point"

    lanes = [(seed, None) for seed in range(3)]
    fleet = MachineFleet(plan, lanes, sync_base=8)
    outcomes = fleet.run()
    assert fleet.stats["peeled"] == 0
    for outcome, (seed, params) in zip(outcomes, lanes):
        assert outcome.error is None
        assert outcome.result == run_scalar(plan, seed, params)


def test_single_lane_fleet_degenerates_to_scalar():
    """n=1: no followers, no windows, no taint — the leader simply
    runs the plan like a plain scalar machine."""
    program = (ProgramBuilder("solo")
               .li("r1", DATA_BASE)
               .load("r2", "r1", 0)
               .li("r0", 6)
               .label("loop")
               .xor("r2", "r2", "r0")
               .mul("r2", "r2", "r2")
               .subi("r0", "r0", 1)
               .bne("r0", "r15", "loop")
               .halt().build())

    def init(seed, params):
        return LaneInit(mem=((DATA_BASE, 8, 0xfeed + seed),))

    plan = FleetPlan(programs=((0, program),), lane_init=init,
                     max_cycles=1_000_000, extract=extract)
    fleet = MachineFleet(plan, [(42, None)])
    outcomes = fleet.run()
    assert len(outcomes) == 1
    assert fleet.stats["windows"] == 0
    assert fleet.stats["peeled"] == 0
    assert not outcomes[0].peeled
    assert outcomes[0].result == run_scalar(plan, 42, None)
    assert not fleet.reg_taint and not fleet.mem_taint


def test_empty_fleet_rejected():
    plan = FleetPlan(programs=(), lane_init=lambda s, p: LaneInit(),
                     max_cycles=1, extract=lambda m: None)
    with pytest.raises(ValueError):
        MachineFleet(plan, [])


def test_conflicting_lane_init_widths_rejected():
    def init(seed, params):
        width = 8 if seed == 0 else 4
        return LaneInit(mem=((DATA_BASE, width, 1),))

    plan = FleetPlan(programs=(), lane_init=init, max_cycles=1,
                     extract=lambda m: None)
    with pytest.raises(ValueError, match="width"):
        MachineFleet(plan, [(0, None), (1, None)])
