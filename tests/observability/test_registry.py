"""Metrics registry unit tests: instrument semantics, histogram
bucketing, dump flattening, merge, and (via Hypothesis) bit-exact
capture/restore of standalone instruments."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.observability import (
    DEFAULT_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_dumps,
)
from repro.observability.stats import CacheStats


# --- counters and gauges ---------------------------------------------------

def test_counter_accumulates_and_resets():
    c = Counter("c")
    c.inc()
    c.inc(41)
    assert c.dump() == 42
    c.reset()
    assert c.dump() == 0


def test_gauge_holds_last_value():
    g = Gauge("g")
    g.set(7)
    g.set(3)
    assert g.dump() == 3


# --- histogram bucketing ---------------------------------------------------

def test_histogram_bucket_edges_are_inclusive_upper_bounds():
    h = Histogram("h", bounds=(4, 8, 16))
    # A bound is the *last* value of its bucket.
    assert h.bucket_for(1) == 0
    assert h.bucket_for(4) == 0
    assert h.bucket_for(5) == 1
    assert h.bucket_for(8) == 1
    assert h.bucket_for(16) == 2
    assert h.bucket_for(17) == 3      # overflow bucket


def test_histogram_observe_fills_expected_buckets():
    h = Histogram("h", bounds=(4, 8, 16))
    for value in (1, 4, 5, 100, 100):
        h.observe(value)
    assert h.counts == [2, 1, 0, 2]
    assert h.count == 5
    assert h.total == 210
    assert h.min == 1
    assert h.max == 100
    assert h.mean == pytest.approx(42.0)


def test_histogram_default_bounds_cover_cache_to_dram():
    h = Histogram("lat")
    assert h.bounds == DEFAULT_BOUNDS
    assert len(h.counts) == len(DEFAULT_BOUNDS) + 1


def test_histogram_rejects_unsorted_bounds():
    with pytest.raises(ValueError):
        Histogram("bad", bounds=(8, 4))
    with pytest.raises(ValueError):
        Histogram("bad", bounds=(4, 4, 8))


def test_histogram_dump_shape():
    h = Histogram("h", bounds=(2, 4))
    h.observe(3)
    assert h.dump() == {"bounds": [2, 4], "counts": [0, 1, 0],
                        "count": 1, "sum": 3, "min": 3, "max": 3}


# --- registry --------------------------------------------------------------

def test_instruments_are_memoised_by_name():
    reg = MetricsRegistry()
    assert reg.counter("a.b") is reg.counter("a.b")
    with pytest.raises(ValueError):
        reg.gauge("a.b")            # same name, different kind


def test_register_group_prefix_collision():
    reg = MetricsRegistry()
    group = CacheStats()
    reg.register_group("mem.l1d", group)
    # Idempotent for the same object, error for a different one.
    reg.register_group("mem.l1d", group)
    with pytest.raises(ValueError):
        reg.register_group("mem.l1d", CacheStats())
    replacement = CacheStats()
    assert reg.register_group("mem.l1d", replacement,
                              replace=True) is replacement


def test_dump_flattens_groups_instruments_and_pulls():
    reg = MetricsRegistry()
    group = reg.register_group("mem.l1d", CacheStats())
    group.hits += 3
    reg.counter("events.total").inc(5)
    reg.register_pull("recipe", lambda: {"replays": 9})
    dump = reg.dump()
    assert dump["mem.l1d.hits"] == 3
    assert dump["mem.l1d.misses"] == 0
    assert dump["events.total"] == 5
    assert dump["recipe.replays"] == 9
    assert list(dump) == sorted(dump)     # deterministic ordering


def test_reset_zeroes_groups_and_instruments():
    reg = MetricsRegistry()
    group = reg.register_group("g", CacheStats())
    group.misses += 2
    reg.counter("c").inc(4)
    reg.reset()
    assert reg.dump() == {"c": 0, "g.evictions": 0, "g.hits": 0,
                          "g.invalidations": 0, "g.misses": 0}


def test_restore_rejects_unknown_instrument():
    reg = MetricsRegistry()
    reg.counter("known").inc()
    state = reg.capture()
    fresh = MetricsRegistry()
    with pytest.raises(ValueError):
        fresh.restore(state)


# --- merge (per-experiment artifacts with several machines) ---------------

def test_merge_dumps_sums_numbers_and_histograms():
    h1 = Histogram("h", bounds=(4, 8))
    h1.observe(3)
    h2 = Histogram("h", bounds=(4, 8))
    h2.observe(100)
    merged = merge_dumps([
        {"a": 1, "h": h1.dump(), "label": "x"},
        {"a": 2, "h": h2.dump(), "label": "y"},
    ])
    assert merged["a"] == 3
    assert merged["label"] == "y"
    assert merged["h"]["counts"] == [1, 0, 1]
    assert merged["h"]["count"] == 2
    assert merged["h"]["min"] == 3
    assert merged["h"]["max"] == 100


def test_merge_dumps_rejects_mismatched_histograms():
    a = Histogram("h", bounds=(4,)).dump()
    b = Histogram("h", bounds=(8,)).dump()
    with pytest.raises(ValueError):
        merge_dumps([{"h": a}, {"h": b}])


# --- Hypothesis: snapshot round-trip ---------------------------------------

@given(observations=st.lists(st.integers(0, 10_000), max_size=50),
       counter_incs=st.lists(st.integers(1, 1000), max_size=20),
       gauge_value=st.integers(-100, 100),
       disturb=st.lists(st.integers(0, 10_000), min_size=1, max_size=20))
def test_registry_capture_restore_round_trip(observations, counter_incs,
                                             gauge_value, disturb):
    """A registry restored from a snapshot dumps exactly what it
    dumped when captured, regardless of what happened in between —
    the contract machine snapshots rely on."""
    reg = MetricsRegistry()
    hist = reg.histogram("lat")
    ctr = reg.counter("ops")
    reg.gauge("depth").set(gauge_value)
    for value in observations:
        hist.observe(value)
    for amount in counter_incs:
        ctr.inc(amount)

    state = reg.capture()
    at_capture = reg.dump()

    for value in disturb:            # diverge...
        hist.observe(value)
        ctr.inc(value + 1)
    reg.gauge("depth").set(gauge_value - 1)
    assert reg.dump() != at_capture

    reg.restore(state)               # ...and come back bit-exactly
    assert reg.dump() == at_capture
