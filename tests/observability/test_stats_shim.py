"""Regression tests for the stats consolidation shim.

The per-subsystem ``*Stats`` dataclasses moved into
``repro.observability.stats`` as :class:`StatGroup` subclasses.  Code
written against the old surface — importing the classes from their
historical homes, reading/incrementing plain attributes, constructing
with keyword arguments — must keep working unchanged."""

import pytest

from repro.observability.stats import StatGroup


# --- legacy import paths ---------------------------------------------------

def test_stats_classes_still_importable_from_historical_homes():
    from repro.cpu.branch import PredictorStats       # noqa: F401
    from repro.cpu.context import ContextStats
    from repro.cpu.ports import PortStats             # noqa: F401
    from repro.kernel.kernel import KernelStats       # noqa: F401
    from repro.mem.cache import CacheStats
    from repro.vm.pwc import PWCStats                 # noqa: F401
    from repro.vm.tlb import TLBStats                 # noqa: F401
    from repro.vm.walker import WalkerStats           # noqa: F401
    from repro.observability import stats as canonical
    assert ContextStats is canonical.ContextStats
    assert CacheStats is canonical.CacheStats


# --- legacy attribute access ----------------------------------------------

def test_context_stats_legacy_attribute_access():
    """The exact access pattern scattered through the simulator and
    the analysis scripts: bare attribute reads and ``+=``."""
    from repro.cpu.context import ContextStats
    stats = ContextStats()
    assert stats.fetched == 0
    assert stats.retired == 0
    assert stats.squashed == 0
    assert stats.replays == 0
    stats.fetched += 3
    stats.retired += 2
    stats.replays += 1
    assert (stats.fetched, stats.retired, stats.replays) == (3, 2, 1)


def test_keyword_construction_preserved():
    from repro.mem.cache import CacheStats
    stats = CacheStats(hits=5, misses=2)
    assert stats.hits == 5
    assert stats.misses == 2
    assert stats.evictions == 0


def test_unknown_keyword_rejected():
    from repro.mem.cache import CacheStats
    with pytest.raises(TypeError):
        CacheStats(hit=1)       # typo'd field must not pass silently


def test_stat_groups_are_slotted():
    from repro.cpu.context import ContextStats
    stats = ContextStats()
    with pytest.raises(AttributeError):
        stats.retierd = 1       # typo'd write must not pass silently


def test_equality_and_repr():
    from repro.vm.pwc import PWCStats
    a, b = PWCStats(hits=1), PWCStats(hits=1)
    assert a == b
    b.misses += 1
    assert a != b
    assert "hits=1" in repr(a)


def test_capture_restore_reset_lifecycle():
    from repro.vm.walker import WalkerStats
    stats = WalkerStats(walks=4, faults=1, total_latency=900)
    state = stats.capture()
    stats.reset()
    assert stats.as_dict() == {"walks": 0, "faults": 0,
                               "total_latency": 0}
    stats.restore(state)
    assert stats.walks == 4 and stats.total_latency == 900
    with pytest.raises(ValueError):
        stats.restore((1, 2))   # wrong arity = incompatible snapshot


def test_all_groups_declare_slots_matching_fields():
    """Every concrete group keeps __slots__ == FIELDS, so instances
    stay dict-free (the consolidation must not regress footprint)."""
    from repro.observability import stats as mod
    groups = [cls for cls in vars(mod).values()
              if isinstance(cls, type) and issubclass(cls, StatGroup)
              and cls is not StatGroup]
    assert len(groups) >= 10
    for cls in groups:
        assert tuple(cls.__slots__) == cls.FIELDS
        assert not hasattr(cls(), "__dict__")


# --- live wiring ----------------------------------------------------------

def test_hierarchy_dram_accesses_property_shim():
    """`hierarchy.dram_accesses` was a plain counter attribute; it is
    now backed by the stats group but reads identically."""
    from repro.cpu.machine import Machine
    machine = Machine()
    assert machine.hierarchy.dram_accesses == 0
    machine.hierarchy.stats.dram_accesses += 7
    assert machine.hierarchy.dram_accesses == 7


def test_context_stats_feed_machine_metrics_dump():
    """Attributes mutated by the pipeline are the same objects the
    registry reads: a short run shows up both ways."""
    from repro.cpu.machine import Machine
    from repro.isa.program import ProgramBuilder
    machine = Machine()
    program = (ProgramBuilder("t")
               .li("r1", 0).li("r2", 10)
               .label("loop").addi("r1", "r1", 1)
               .bne("r1", "r2", "loop").halt().build())
    machine.contexts[0].load_program(program)
    machine.run(10_000)
    ctx = machine.contexts[0]
    assert ctx.stats.retired > 0
    assert ctx.stats.issued >= ctx.stats.retired
    dump = machine.metrics.dump()
    assert dump["cpu.ctx0.retired"] == ctx.stats.retired
    assert dump["cpu.ctx0.issued"] == ctx.stats.issued
    l1 = machine.hierarchy.levels[0]
    assert dump[f"mem.{l1.name.lower()}.hits"] == l1.stats.hits
