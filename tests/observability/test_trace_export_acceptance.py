"""Acceptance: a traced AES key-recovery run exports a loadable
Chrome trace and a metrics JSON carrying per-level cache miss counts
and replay counts — the ISSUE's end-to-end observability check.

The run is the Figure 11 window (one rk handle site, three replays):
small enough for CI, and it exercises every emitter — pipeline
slices from the core, page-fault slices from the kernel, replay
slices from the MicroScope module."""

import json

import pytest

from repro.observability import KERNEL_TID, MICROSCOPE_TID, EventTracer
from repro.reporting import export_metrics_json

KEY = bytes(range(16))
CIPHERTEXT = bytes.fromhex("00112233445566778899aabbccddeeff")


@pytest.fixture(scope="module")
def traced_run(tmp_path_factory):
    from repro.core.attacks.aes_cache import AESCacheAttack

    attack = AESCacheAttack(KEY, CIPHERTEXT)
    rep, victim, stepper = attack._setup(prime_before_first=False)
    stepper.stop_after_rk_sites = 1
    tracer = EventTracer(capacity=1 << 15)
    rep.machine.attach_tracer(tracer)
    rep.machine.run(50_000_000, until=lambda _m: stepper.done)
    rep.machine.detach_tracer()

    out = tmp_path_factory.mktemp("trace-export")
    trace_path = out / "aes_fig11.trace.json"
    metrics_path = out / "aes_fig11.metrics.json"
    tracer.export_chrome_trace(trace_path)
    export_metrics_json(rep.machine, metrics_path)
    return rep, stepper, tracer, trace_path, metrics_path


def test_run_recovered_the_window(traced_run):
    """Sanity: the traced run still performs the attack (tracing is
    observational — it must not break key recovery)."""
    rep, stepper, *_ = traced_run
    assert stepper.done
    assert any(p.replay >= 1 for p in stepper.probes)


def test_metrics_json_carries_cache_misses_and_replays(traced_run):
    rep, stepper, _tracer, _trace, metrics_path = traced_run
    payload = json.loads(metrics_path.read_text())
    assert payload["cycle"] == rep.machine.cycle
    metrics = payload["metrics"]

    # Per-level cache miss counts, one entry per level of the wired
    # hierarchy (L1D/L2/L3 by default).
    levels = [c.name.lower() for c in rep.machine.hierarchy.levels]
    assert len(levels) >= 3
    for name in levels:
        assert metrics[f"mem.{name}.misses"] > 0, name
    assert metrics["mem.hierarchy.dram_accesses"] > 0

    # Replay counts: the victim context replayed, the module fired on
    # handle faults, and the per-recipe pull shows up.
    assert metrics["cpu.ctx0.replays"] >= 3
    assert metrics["microscope.handle_faults"] >= 3
    replay_keys = [k for k in metrics
                   if k.startswith("microscope.recipe.")
                   and k.endswith(".replays")]
    assert replay_keys
    assert sum(metrics[k] for k in replay_keys) >= 3

    # Kernel accounting and walker distribution ride along.
    assert metrics["kernel.page_faults"] > 0
    assert metrics["vm.walker.latency_cycles"]["count"] \
        == metrics["vm.walker.walks"] > 0


def test_chrome_trace_loads_and_shows_all_tracks(traced_run):
    *_, tracer, trace_path, _metrics = traced_run
    payload = json.loads(trace_path.read_text())
    events = payload["traceEvents"]
    data = [e for e in events if e["ph"] != "M"]
    assert data
    assert tracer.total_emitted > 0

    by_tid_cat = {(e["tid"], e["cat"]) for e in data}
    # Pipeline slices on the victim's context track, kernel fault
    # slices, and replay slices on the MicroScope track.
    assert (0, "pipeline") in by_tid_cat
    assert (KERNEL_TID, "kernel") in by_tid_cat
    assert (MICROSCOPE_TID, "replay") in by_tid_cat

    replays = [e for e in data
               if e["tid"] == MICROSCOPE_TID and e["cat"] == "replay"]
    assert len(replays) >= 3
    for event in replays:
        assert event["ph"] == "X" and event["dur"] >= 1
        assert "replay_no" in event["args"]

    faults = [e for e in data if e["tid"] == KERNEL_TID]
    assert any(e["name"] == "page_fault" for e in faults)

    # Track names resolve in the viewer.
    thread_names = {e["tid"]: e["args"]["name"] for e in events
                    if e["ph"] == "M" and e["name"] == "thread_name"}
    assert thread_names[KERNEL_TID] == "kernel"
    assert thread_names[MICROSCOPE_TID] == "microscope"


def test_squash_storm_is_visible(traced_run):
    """MicroScope's signature: replays appear as squashed instruction
    slices on the victim track between replay windows."""
    *_, tracer, trace_path, _metrics = traced_run
    payload = json.loads(trace_path.read_text())
    squashes = [e for e in payload["traceEvents"]
                if e["ph"] == "X" and e["cat"] == "squash"]
    assert squashes
    assert any(e["args"].get("reason") for e in squashes)
