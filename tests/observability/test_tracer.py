"""Event tracer unit tests: ring-buffer wraparound, emission kinds,
and the validity of both exporters' output (JSONL and Chrome
``trace_event`` JSON)."""

import json

import pytest

from repro.observability import (
    KERNEL_TID,
    MICROSCOPE_TID,
    EventTracer,
    TraceEvent,
)


# --- ring mechanics --------------------------------------------------------

def test_ring_keeps_newest_events_on_wraparound():
    tracer = EventTracer(capacity=4)
    for i in range(10):
        tracer.instant(f"e{i}", ts=i)
    assert len(tracer) == 4
    assert tracer.total_emitted == 10
    assert tracer.dropped == 6
    # Oldest-first iteration across the wrap point.
    assert [e.name for e in tracer.events()] == ["e6", "e7", "e8", "e9"]
    assert [e.ts for e in tracer.events()] == [6, 7, 8, 9]


def test_ring_before_wrap_iterates_in_emission_order():
    tracer = EventTracer(capacity=8)
    for i in range(3):
        tracer.instant(f"e{i}", ts=i)
    assert len(tracer) == 3
    assert tracer.dropped == 0
    assert [e.name for e in tracer.events()] == ["e0", "e1", "e2"]


def test_exact_fill_does_not_drop():
    tracer = EventTracer(capacity=3)
    for i in range(3):
        tracer.instant(f"e{i}", ts=i)
    assert tracer.dropped == 0
    assert [e.name for e in tracer.events()] == ["e0", "e1", "e2"]


def test_clear_empties_ring_and_counters():
    tracer = EventTracer(capacity=2)
    tracer.instant("a", ts=0)
    tracer.clear()
    assert len(tracer) == 0
    assert tracer.total_emitted == 0
    assert list(tracer.events()) == []


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        EventTracer(capacity=0)


# --- emission --------------------------------------------------------------

def test_complete_slices_have_minimum_duration_one():
    tracer = EventTracer()
    tracer.complete("span", ts=5, dur=0)
    (event,) = tracer.events()
    assert event.dur == 1       # zero-width slices vanish in viewers


def test_event_args_are_attached():
    tracer = EventTracer()
    tracer.complete("page_fault", ts=10, dur=3, cat="kernel",
                    tid=KERNEL_TID, va=0x1000, claimed=True)
    (event,) = tracer.events()
    assert event.args == {"va": 0x1000, "claimed": True}
    assert event.tid == KERNEL_TID


# --- Chrome trace_event schema --------------------------------------------

def _chrome_payload(tracer):
    """Round-trip through JSON so we validate what a viewer parses."""
    return json.loads(json.dumps(tracer.chrome_trace()))


def test_chrome_trace_schema_validity():
    tracer = EventTracer()
    tracer.complete("replay:recipe", ts=100, dur=50, cat="replay",
                    tid=MICROSCOPE_TID, replay_no=1)
    tracer.instant("squash", ts=120, tid=0)
    tracer.counter("misses", ts=130, values={"l1d": 4})
    payload = _chrome_payload(tracer)

    assert set(payload) == {"traceEvents", "displayTimeUnit",
                            "otherData"}
    assert payload["otherData"]["timestamp_unit"] == "cycles"
    assert payload["otherData"]["dropped_events"] == 0

    events = payload["traceEvents"]
    meta = [e for e in events if e["ph"] == "M"]
    data = [e for e in events if e["ph"] != "M"]
    # One process_name record plus one thread_name per referenced tid.
    assert {e["name"] for e in meta} == {"process_name", "thread_name"}
    named_tids = {e["tid"] for e in meta if e["name"] == "thread_name"}
    assert named_tids == {0, MICROSCOPE_TID}
    by_tid = {e["tid"]: e["args"]["name"] for e in meta
              if e["name"] == "thread_name"}
    assert by_tid[MICROSCOPE_TID] == "microscope"
    assert by_tid[0] == "ctx0"

    for event in data:
        # Required trace_event fields, correctly typed.
        assert isinstance(event["name"], str)
        assert event["ph"] in ("X", "i", "C")
        assert isinstance(event["ts"], int)
        assert event["pid"] == 0
        if event["ph"] == "X":
            assert event["dur"] >= 1
        if event["ph"] == "i":
            assert event["s"] == "t"


def test_chrome_trace_reports_drops():
    tracer = EventTracer(capacity=2)
    for i in range(5):
        tracer.instant(f"e{i}", ts=i)
    payload = _chrome_payload(tracer)
    assert payload["otherData"]["dropped_events"] == 3


def test_export_chrome_trace_writes_loadable_json(tmp_path):
    tracer = EventTracer()
    tracer.complete("w", ts=0, dur=2)
    path = tmp_path / "trace.json"
    assert tracer.export_chrome_trace(path) == 1
    loaded = json.loads(path.read_text())
    assert any(e["name"] == "w" for e in loaded["traceEvents"])


# --- JSONL exporter --------------------------------------------------------

def test_export_jsonl_one_valid_object_per_line(tmp_path):
    tracer = EventTracer()
    tracer.instant("a", ts=1, tid=2, reason="x")
    tracer.complete("b", ts=2, dur=3)
    path = tmp_path / "events.jsonl"
    assert tracer.export_jsonl(path) == 2
    lines = path.read_text().splitlines()
    assert len(lines) == 2
    first, second = (json.loads(line) for line in lines)
    assert first == {"name": "a", "cat": "event", "ph": "i", "ts": 1,
                     "tid": 2, "args": {"reason": "x"}}
    assert second["dur"] == 3


# --- pipeline-tracer protocol ---------------------------------------------

class _Entry:
    """Minimal stand-in for a core pipeline entry."""

    def __init__(self, context_id, seq, index=0, issue=None,
                 complete=None, is_replay=False):
        self.context_id = context_id
        self.seq = seq
        self.index = index
        self.issue_cycle = issue
        self.complete_cycle = complete
        self.is_replay = is_replay
        self.instr = f"instr#{seq}"


def test_retire_emits_fetch_to_retire_slice():
    tracer = EventTracer()
    entry = _Entry(context_id=1, seq=7, issue=12, complete=15,
                   is_replay=True)
    tracer.on_fetch(10, entry)
    tracer.on_retire(20, entry)
    (event,) = tracer.events()
    assert event.ts == 10 and event.dur == 10
    assert event.tid == 1
    assert event.cat == "pipeline"
    assert event.args["issue"] == 12
    assert event.args["complete"] == 15
    assert event.args["replay"] is True


def test_squash_emits_slices_with_reason():
    tracer = EventTracer()
    entries = [_Entry(0, seq) for seq in (1, 2)]
    for entry in entries:
        tracer.on_fetch(5, entry)
    tracer.on_squash(9, entries, reason="page_fault")
    events = list(tracer.events())
    assert len(events) == 2
    assert all(e.cat == "squash" for e in events)
    assert all(e.args["reason"] == "page_fault" for e in events)


def test_retire_without_fetch_is_ignored():
    tracer = EventTracer()
    tracer.on_retire(20, _Entry(0, 1))    # fetched before attach
    assert len(tracer) == 0


def test_trace_instructions_off_suppresses_pipeline_slices():
    tracer = EventTracer(trace_instructions=False)
    entry = _Entry(0, 1)
    tracer.on_fetch(1, entry)
    tracer.on_retire(2, entry)
    tracer.on_squash(3, [entry], reason="x")
    assert len(tracer) == 0


def test_trace_event_repr_is_informative():
    event = TraceEvent("n", "c", "X", ts=1, dur=2, tid=3)
    assert "n" in repr(event) and "ts=1" in repr(event)
