"""Machine-level observability wiring: the registry every subsystem
registers into, ``Machine.profile()``, the machine collector used by
the benchmark harness, and bit-exact snapshot travel of registry
state (including the walker latency histogram)."""

from repro.cpu.machine import Machine
from repro.isa.program import ProgramBuilder
from repro.observability import collect_machines
from repro.reporting import export_metrics_json, metrics_payload

DATA_BASE = 0x0010_0000


def _memory_program(iterations=20):
    """Loads and stores force TLB fills and page walks, so the walker
    latency histogram sees real observations."""
    return (ProgramBuilder("mem")
            .li("r1", DATA_BASE).li("r2", 0).li("r3", iterations)
            .label("loop")
            .store("r1", "r2")
            .load("r4", "r1")
            .addi("r1", "r1", 4096)     # new page every iteration
            .addi("r2", "r2", 1)
            .bne("r2", "r3", "loop")
            .halt().build())


def _run_machine(program):
    machine = Machine()
    machine.contexts[0].load_program(program)
    machine.run(200_000)
    return machine


def test_registry_covers_every_subsystem():
    dump = Machine().metrics.dump()
    for required in ("mem.hierarchy.dram_accesses", "vm.pwc.hits",
                     "vm.tlb.l1d.misses", "vm.walker.walks",
                     "vm.walker.latency_cycles", "cpu.predictor.predictions",
                     "cpu.ctx0.retired", "cpu.port.p0.issued"):
        assert required in dump, required


def test_walker_latency_histogram_observes_walks():
    """Bare-metal machines identity-map (no walks); a kernel-backed
    victim run drives the hardware walker, and every walk lands in
    the registry's latency histogram."""
    from repro.core.replayer import AttackEnvironment, Replayer
    from repro.victims.control_flow import setup_control_flow_victim

    rep = Replayer(AttackEnvironment.build())
    proc = rep.create_victim_process("victim")
    victim = setup_control_flow_victim(proc, secret=1)
    rep.launch_victim(proc, victim.program)
    rep.run_until_victim_done(context_id=0)

    machine = rep.machine
    hist = machine.metrics.histogram("vm.walker.latency_cycles")
    assert hist.count == machine.walker.stats.walks > 0
    assert hist.total == machine.walker.stats.total_latency
    dump = machine.metrics.dump()["vm.walker.latency_cycles"]
    assert dump["count"] == hist.count


def test_machine_snapshot_round_trips_registry_state():
    """Capture mid-run, diverge, restore: the metrics dump (stat
    groups riding in their owners, instruments riding in the
    registry) must be bit-identical to the capture point."""
    machine = Machine()
    machine.contexts[0].load_program(_memory_program(500))
    machine.run(1_000)                         # mid-run capture point
    state = machine.capture()
    at_capture = machine.metrics.dump()

    machine.run(200_000)                       # diverge
    assert machine.metrics.dump() != at_capture

    machine.restore(state)
    assert machine.metrics.dump() == at_capture

    # And the restored machine keeps counting from where it was.
    machine.run(200_000)
    assert machine.metrics.dump()["cpu.ctx0.retired"] \
        > at_capture["cpu.ctx0.retired"]


def test_profile_context_manager_attributes_cycles_and_host_time():
    machine = Machine()
    machine.contexts[0].load_program(_memory_program(5))
    with machine.profile("attack") as prof:
        machine.run(200_000)
    assert prof.label == "attack"
    assert prof.cycles == machine.cycle > 0
    assert prof.host_seconds > 0
    assert prof.cycles_per_host_second > 0
    payload = prof.as_dict()
    assert payload["cycles"] == prof.cycles


def test_collect_machines_sees_construction():
    with collect_machines() as outer:
        Machine()
        with collect_machines() as inner:   # nested blocks shadow
            Machine()
            Machine()
        assert len(inner) == 2
        Machine()
    assert len(outer) == 2
    # Outside any block, construction is not recorded anywhere.
    machine = Machine()
    assert machine not in outer


def test_metrics_payload_and_json_export(tmp_path):
    import json

    machine = _run_machine(_memory_program(5))
    payload = metrics_payload(machine)
    assert payload["cycle"] == machine.cycle
    assert payload["metrics"]["cpu.ctx0.retired"] > 0

    path = tmp_path / "metrics.json"
    export_metrics_json(machine, path)
    on_disk = json.loads(path.read_text())
    assert on_disk == payload
