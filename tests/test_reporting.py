"""Machine statistics reporting."""

from repro.core.recipes import replay_n_times
from repro.core.replayer import AttackEnvironment, Replayer
from repro.isa.program import ProgramBuilder
from repro.reporting import machine_report


def test_report_on_idle_machine(machine):
    report = machine_report(machine)
    assert report.cycles == 0
    assert all(c.ipc == 0 for c in report.contexts)
    assert "machine report" in report.render()


def test_report_counts_basic_run(system):
    machine, kernel = system
    process = kernel.create_process("p")
    data = process.alloc(4096, "d")
    program = (ProgramBuilder()
               .li("r1", data)
               .load("r2", "r1", 0)
               .load("r3", "r1", 0)
               .halt().build())
    kernel.launch(process, program)
    machine.run(100_000)
    report = machine_report(machine, kernel=kernel)
    ctx0 = report.contexts[0]
    assert ctx0.retired == 4
    assert 0 < ctx0.ipc <= 1
    assert report.walks == 1                 # one TLB miss
    assert report.tlb_hit_rate > 0           # second load hit
    assert report.kernel_page_faults == 0
    text = report.render()
    assert "IPC" in text and "TLB hit rate" in text


def test_report_shows_attack_signature():
    """Replays appear as squash storms on the victim context."""
    rep = Replayer(AttackEnvironment.build())
    process = rep.create_victim_process(enclave=False)
    data = process.alloc(4096, "d")
    program = (ProgramBuilder()
               .li("r1", data).load("r2", "r1", 0).halt().build())
    recipe = rep.module.provide_replay_handle(
        process, data, attack_function=replay_n_times(8))
    rep.launch_victim(process, program)
    rep.arm(recipe)
    rep.run_until_victim_done()
    report = machine_report(rep.machine, kernel=rep.kernel,
                            module=rep.module)
    ctx0 = report.contexts[0]
    assert ctx0.faults == 8
    assert ctx0.replays >= 8
    assert report.microscope_replays == 8
    assert report.walk_faults == 8
    assert "microscope handle faults: 8" in report.render()


def test_cache_hit_rates_present(system):
    machine, kernel = system
    process = kernel.create_process("p")
    data = process.alloc(4096, "d")
    program = (ProgramBuilder()
               .li("r1", data)
               .load("r2", "r1", 0)
               .load("r2", "r1", 0)
               .load("r2", "r1", 0)
               .halt().build())
    kernel.launch(process, program)
    machine.run(100_000)
    report = machine_report(machine)
    l1 = next(c for c in report.caches if c.name == "L1D")
    # The page walk's PTE fetches count as L1 misses too, so the rate
    # sits below the naive 2/3.
    assert l1.hit_rate > 0.2
    assert l1.hits >= 2


def test_cli_parser():
    """The `python -m repro` front end parses its subcommands."""
    import pytest as _pytest
    from repro.__main__ import main
    with _pytest.raises(SystemExit):
        main([])                      # subcommand required
    with _pytest.raises(SystemExit):
        main(["bogus"])
