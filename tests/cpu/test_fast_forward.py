"""Differential testing for the quiescence fast-forward scheduler.

``CoreConfig.fast_forward`` lets the core jump the clock over cycles
in which no context can fetch, dispatch, complete, or retire — exactly
the cycles a MicroScope victim spends stalled behind a tuned page walk
or kernel fault handling.  The optimisation claims *bit-exactness*:
the same final cycle count, architectural state, and every statistics
counter as naive per-cycle stepping.  These tests hold it to that
claim on three workload shapes:

* Hypothesis-generated random programs (single context and 2-context
  SMT), the same generator family as tests/cpu/test_differential.py;
* the replay-attack workload itself — a control-flow victim replayed
  behind a non-present page, where fast-forward does nearly all the
  work;
* unit cases for the quiescence predicate (`next_work_cycle`) and the
  jump clamp.
"""

from dataclasses import asdict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.recipes import WalkLocation, WalkTuning, replay_n_times
from repro.core.replayer import AttackEnvironment, Replayer
from repro.cpu.config import CoreConfig
from repro.config import MachineConfig
from repro.cpu.machine import Machine
from repro.isa import instructions as ins
from repro.isa.program import ProgramBuilder
from repro.reporting import machine_report
from repro.victims.control_flow import setup_control_flow_victim

_DATA_REGS = [f"r{i}" for i in range(2, 10)]
_OFFSETS = [0, 8, 16, 64]
DATA_BASE = 0x0010_0000


def _machine(fast_forward: bool) -> Machine:
    return Machine(MachineConfig(
        core=CoreConfig(fast_forward=fast_forward)))


@st.composite
def _block(draw, max_len=10):
    """Straight-line block biased toward long-latency producers
    (div, loads) so the pipeline actually drains mid-program."""
    instrs = []
    for _ in range(draw(st.integers(min_value=1, max_value=max_len))):
        kind = draw(st.sampled_from(
            ["alu", "alui", "mul", "div", "div", "load", "load",
             "store"]))
        rd = draw(st.sampled_from(_DATA_REGS))
        rs1 = draw(st.sampled_from(_DATA_REGS))
        rs2 = draw(st.sampled_from(_DATA_REGS))
        offset = draw(st.sampled_from(_OFFSETS))
        if kind == "alu":
            ctor = draw(st.sampled_from([ins.add, ins.sub, ins.xor]))
            instrs.append(ctor(rd, rs1, rs2))
        elif kind == "alui":
            instrs.append(ins.addi(rd, rs1,
                                   draw(st.integers(0, 1 << 12))))
        elif kind == "mul":
            instrs.append(ins.mul(rd, rs1, rs2))
        elif kind == "div":
            instrs.append(ins.div(rd, rs1, rs2))
        elif kind == "load":
            instrs.append(ins.load(rd, "r1", offset))
        else:
            instrs.append(ins.store("r1", rs1, offset))
    return instrs


@st.composite
def _random_program(draw):
    builder = ProgramBuilder("ff-differential")
    builder.li("r1", DATA_BASE)
    for reg in _DATA_REGS:
        builder.li(reg, draw(st.integers(0, 1 << 20)))
    builder.li("r0", draw(st.integers(min_value=1, max_value=4)))
    builder.label("loop")
    for instr in draw(_block()):
        builder.emit(instr)
    builder.subi("r0", "r0", 1)
    builder.li("r13", 0)
    builder.bne("r0", "r13", "loop")
    builder.halt()
    return builder.build()


def _snapshot(machine: Machine):
    """Cycle count, architectural state, and the full stats report."""
    report = asdict(machine_report(machine))
    regs = [(dict(ctx.int_regs), dict(ctx.fp_regs))
            for ctx in machine.contexts]
    return machine.cycle, regs, report


def _run_programs(programs, fast_forward: bool):
    machine = _machine(fast_forward)
    for context_id, program in enumerate(programs):
        machine.contexts[context_id].load_program(program)
    ran = machine.run(3_000_000)
    assert all(machine.contexts[i].finished()
               for i in range(len(programs)))
    return ran, _snapshot(machine)


@given(_random_program())
@settings(max_examples=40, deadline=None)
def test_fast_forward_matches_naive_single_context(program):
    naive_ran, naive = _run_programs([program], fast_forward=False)
    fast_ran, fast = _run_programs([program], fast_forward=True)
    assert fast_ran == naive_ran
    assert fast == naive


@given(_random_program(), _random_program())
@settings(max_examples=25, deadline=None)
def test_fast_forward_matches_naive_smt(program_a, program_b):
    naive_ran, naive = _run_programs([program_a, program_b],
                                     fast_forward=False)
    fast_ran, fast = _run_programs([program_a, program_b],
                                   fast_forward=True)
    assert fast_ran == naive_ran
    assert fast == naive


def _run_replay_attack(fast_forward: bool, replays: int = 40):
    """The MicroScope shape: victim stalled behind tuned page walks
    and kernel fault handling while the module replays it."""
    rep = Replayer(AttackEnvironment.build(
        machine_config=MachineConfig(
            core=CoreConfig(fast_forward=fast_forward))))
    victim_proc = rep.create_victim_process("victim")
    victim = setup_control_flow_victim(victim_proc, secret=1,
                                       divisions=2, multiplications=2)
    recipe = rep.module.provide_replay_handle(
        victim_proc, victim.handle_va + 0x20, name="ff-replay",
        attack_function=replay_n_times(replays),
        walk_tuning=WalkTuning(upper=WalkLocation.PWC,
                               leaf=WalkLocation.DRAM),
        max_replays=10 ** 9)
    rep.launch_victim(victim_proc, victim.program)
    rep.arm(recipe)
    rep.run_until_victim_done(context_id=0, max_cycles=20_000_000)
    report = asdict(machine_report(rep.machine, rep.kernel,
                                   rep.module))
    regs = dict(rep.machine.contexts[0].int_regs)
    return rep.machine.cycle, recipe.replays, regs, report


def test_fast_forward_matches_naive_on_replay_attack():
    naive = _run_replay_attack(fast_forward=False)
    fast = _run_replay_attack(fast_forward=True)
    assert fast == naive
    assert naive[1] >= 40  # the attack really replayed


def test_next_work_cycle_none_when_work_pending():
    """With a runnable context the core must not skip anything."""
    machine = _machine(True)
    program = (ProgramBuilder("p").li("r2", 1).halt().build())
    machine.contexts[0].load_program(program)
    assert machine.core.next_work_cycle() is None
    assert machine.core.fast_forward() == 0


def test_fast_forward_idle_after_halt():
    """After every context halts there is no future deadline either:
    nothing to skip to, and run() exits on its own."""
    machine = _machine(True)
    program = (ProgramBuilder("p").li("r2", 1).halt().build())
    machine.contexts[0].load_program(program)
    machine.run(10_000)
    assert machine.contexts[0].finished()
    assert machine.core.next_work_cycle() is None


def test_fast_forward_clamps_to_limit():
    """Jumps never overshoot an explicit cycle target."""
    machine = _machine(True)
    program = (ProgramBuilder("p").li("r2", 1).halt().build())
    machine.contexts[0].load_program(program)
    machine.run(10_000)
    finish = machine.cycle
    # Block the only context far in the future; the next deadline is
    # beyond the clamp, so fast_forward stops exactly at the clamp.
    machine.contexts[0].blocked_until = finish + 1_000_000
    from repro.cpu.context import ContextState
    machine.contexts[0].state = ContextState.BLOCKED
    skipped = machine.core.fast_forward(limit=finish + 100)
    assert skipped == 100
    assert machine.cycle == finish + 100


def test_run_until_cycle_exact_under_fast_forward():
    machine = _machine(True)
    program = (ProgramBuilder("p").li("r2", 1).halt().build())
    machine.contexts[0].load_program(program)
    machine.run(10_000)
    finish = machine.cycle
    machine.contexts[0].blocked_until = finish + 10_000
    from repro.cpu.context import ContextState
    machine.contexts[0].state = ContextState.BLOCKED
    machine.run_until_cycle(finish + 777)
    assert machine.cycle == finish + 777
