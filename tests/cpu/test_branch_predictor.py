import pytest

from repro.cpu.branch import (
    STRONG_NOT_TAKEN,
    STRONG_TAKEN,
    WEAK_NOT_TAKEN,
    BranchPredictor,
)


def test_initial_prediction_not_taken():
    predictor = BranchPredictor(16)
    assert predictor.predict(0) is False


def test_training_towards_taken():
    predictor = BranchPredictor(16)
    predictor.update(5, taken=True, mispredicted=True)
    predictor.update(5, taken=True, mispredicted=False)
    assert predictor.predict(5) is True


def test_hysteresis():
    predictor = BranchPredictor(16)
    for _ in range(4):
        predictor.update(3, taken=True, mispredicted=False)
    assert predictor.peek(3) == STRONG_TAKEN
    predictor.update(3, taken=False, mispredicted=True)
    # One not-taken does not flip a strong counter.
    assert predictor.predict(3) is True


def test_flush_restores_initial_state():
    predictor = BranchPredictor(16)
    for _ in range(4):
        predictor.update(3, taken=True, mispredicted=False)
    predictor.flush()
    assert predictor.peek(3) == WEAK_NOT_TAKEN


def test_prime():
    predictor = BranchPredictor(16)
    predictor.prime(7, taken=True)
    assert predictor.peek(7) == STRONG_TAKEN
    predictor.prime(7, taken=False)
    assert predictor.peek(7) == STRONG_NOT_TAKEN


def test_aliasing_by_table_size():
    predictor = BranchPredictor(8)
    predictor.prime(1, taken=True)
    assert predictor.predict(9) is True  # 9 % 8 == 1


def test_stats_and_accuracy():
    predictor = BranchPredictor(16)
    predictor.predict(0)
    predictor.update(0, taken=True, mispredicted=True)
    predictor.predict(0)
    predictor.update(0, taken=True, mispredicted=False)
    assert predictor.stats.predictions == 2
    assert predictor.stats.mispredictions == 1
    assert predictor.stats.accuracy == 0.5


def test_invalid_size():
    with pytest.raises(ValueError):
        BranchPredictor(0)
