import pytest

from repro.cpu.config import CoreConfig, default_latencies, op_class
from repro.config import MachineConfig
from repro.cpu.machine import Machine
from repro.isa import instructions as ins
from repro.isa.program import ProgramBuilder


def test_machine_wiring():
    machine = Machine()
    assert machine.core.phys is machine.phys
    assert machine.core.hierarchy is machine.hierarchy
    assert machine.walker.pwc is machine.pwc
    assert machine.walker.hierarchy is machine.hierarchy
    assert len(machine.contexts) == 2


def test_machine_config_applies():
    config = MachineConfig(core=CoreConfig(num_contexts=1, rob_size=32))
    machine = Machine(config)
    assert len(machine.contexts) == 1
    assert machine.contexts[0].rob.capacity == 32


def test_run_stops_when_idle():
    machine = Machine()
    cycles = machine.run(1000)
    assert cycles == 0


def test_run_until_predicate():
    machine = Machine()
    machine.contexts[0].load_program(
        ProgramBuilder().li("r1", 0).li("r2", 1000)
        .label("l").addi("r1", "r1", 1).bne("r1", "r2", "l")
        .halt().build())
    machine.run(100_000,
                until=lambda m: m.contexts[0].int_regs["r1"] >= 0
                and m.cycle >= 50)
    assert machine.cycle >= 50
    assert not machine.contexts[0].finished()


def test_step_advances_cycle():
    machine = Machine()
    machine.step(5)
    assert machine.cycle == 5


def test_op_class_mapping():
    assert op_class(ins.load("r1", "r2")) == "load"
    assert op_class(ins.fstore("r1", "f1")) == "store"
    assert op_class(ins.mul("r1", "r2", "r3")) == "mul"
    assert op_class(ins.fdiv("f1", "f2", "f3")) == "div"
    assert op_class(ins.fadd("f1", "f2", "f3")) == "fpalu"
    assert op_class(ins.beq("r1", "r2", "x")) == "branch"
    assert op_class(ins.li("r1", 0)) == "alu"
    assert op_class(ins.rdrand("r1")) == "alu"


def test_latency_table_complete_for_classes():
    latencies = default_latencies()
    for cls in ("alu", "mul", "div", "fpalu", "branch", "store"):
        assert cls in latencies


def test_latency_of_unknown_key():
    config = CoreConfig()
    with pytest.raises(KeyError):
        config.latency_of("warp-drive")


def test_subnormal_divide_takes_slow_path():
    machine = Machine()
    machine.contexts[0].load_program(
        ProgramBuilder()
        .fli("f1", 5e-320)   # subnormal operand
        .fli("f2", 2.0)
        .fdiv("f3", "f1", "f2")
        .halt().build())
    machine.run(10_000)
    slow = machine.cycle
    machine2 = Machine()
    machine2.contexts[0].load_program(
        ProgramBuilder()
        .fli("f1", 5.0).fli("f2", 2.0)
        .fdiv("f3", "f1", "f2")
        .halt().build())
    machine2.run(10_000)
    assert slow > machine2.cycle + 80


def test_run_context_to_completion():
    machine = Machine()
    machine.contexts[0].load_program(
        ProgramBuilder().li("r1", 9).halt().build())
    machine.run_context_to_completion(0)
    assert machine.contexts[0].finished()
