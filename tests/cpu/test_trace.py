"""Pipeline tracer: lifecycle capture and rendering."""

from repro.cpu.machine import Machine
from repro.cpu.trace import PipelineTracer, render_pipeline
from repro.isa.program import ProgramBuilder


def traced_machine(program):
    machine = Machine()
    tracer = PipelineTracer()
    machine.core.tracer = tracer
    machine.contexts[0].load_program(program)
    machine.run(100_000)
    return machine, tracer


def test_lifecycle_recorded_in_order():
    _machine, tracer = traced_machine(
        ProgramBuilder().li("r1", 1).addi("r2", "r1", 1).halt().build())
    for record in tracer.records:
        assert record.fetch_cycle is not None
        if record.retire_cycle is not None:
            assert record.fetch_cycle <= record.retire_cycle
        if record.issue_cycle is not None:
            assert record.fetch_cycle <= record.issue_cycle
        if record.complete_cycle is not None \
                and record.issue_cycle is not None:
            assert record.issue_cycle < record.complete_cycle


def test_all_retired_for_clean_program():
    _machine, tracer = traced_machine(
        ProgramBuilder().li("r1", 1).mul("r2", "r1", "r1")
        .halt().build())
    assert len(tracer.records) == 3
    assert all(r.retire_cycle is not None for r in tracer.records)
    assert not tracer.squashed()


def test_mispredict_squashes_traced():
    program = (ProgramBuilder()
               .li("r1", 0).li("r2", 20)
               .label("l")
               .addi("r1", "r1", 1)
               .bne("r1", "r2", "l")
               .li("r3", 9)
               .halt().build())
    _machine, tracer = traced_machine(program)
    squashed = tracer.squashed()
    assert squashed
    assert any(r.squash_reason == "mispredict" for r in squashed)


def test_replay_trail_visible():
    """Replays show as multiple dynamic instances of the same static
    instruction, all but the last squashed by page faults."""
    from repro.core.recipes import replay_n_times
    from repro.core.replayer import AttackEnvironment, Replayer
    rep = Replayer(AttackEnvironment.build())
    tracer = PipelineTracer()
    rep.machine.core.tracer = tracer
    process = rep.create_victim_process(enclave=False)
    data = process.alloc(4096, "d")
    program = (ProgramBuilder()
               .li("r1", data)
               .load("r2", "r1", 0)
               .halt().build())
    recipe = rep.module.provide_replay_handle(
        process, data, attack_function=replay_n_times(4))
    rep.launch_victim(process, program)
    rep.arm(recipe)
    rep.run_until_victim_done()
    instances = tracer.replays_of(index=1)   # the load
    assert len(instances) == 5               # 4 replays + final
    assert sum(1 for r in instances
               if r.squash_reason == "page-fault") == 4
    assert instances[-1].retire_cycle is not None


def test_render_pipeline_output():
    _machine, tracer = traced_machine(
        ProgramBuilder().li("r1", 1).fli("f1", 2.0)
        .fdiv("f2", "f1", "f1").halt().build())
    text = render_pipeline(tracer.records)
    assert "cycles" in text
    assert "fdiv" in text
    assert "F" in text and "R" in text


def test_render_empty():
    assert "no instructions" in render_pipeline([])


def test_capacity_cap():
    tracer = PipelineTracer(capacity=2)
    machine = Machine()
    machine.core.tracer = tracer
    machine.contexts[0].load_program(
        ProgramBuilder().nop().nop().nop().nop().halt().build())
    machine.run(10_000)
    assert len(tracer.records) == 2


def test_for_context_filter():
    machine = Machine()
    tracer = PipelineTracer()
    machine.core.tracer = tracer
    machine.contexts[0].load_program(
        ProgramBuilder().li("r1", 1).halt().build())
    machine.contexts[1].load_program(
        ProgramBuilder().li("r1", 2).nop().halt().build())
    machine.run(10_000)
    assert len(tracer.for_context(0)) == 2
    assert len(tracer.for_context(1)) == 3
