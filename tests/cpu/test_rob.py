import pytest

from repro.cpu.rob import EntryState, ReorderBuffer, ROBEntry
from repro.isa import instructions as ins


def entry(seq, index=0, instr=None):
    instr = instr or ins.nop()
    return ROBEntry(seq, 0, index, instr, "alu")


def test_capacity():
    rob = ReorderBuffer(2)
    rob.push(entry(0))
    rob.push(entry(1))
    assert rob.full
    with pytest.raises(OverflowError):
        rob.push(entry(2))


def test_invalid_capacity():
    with pytest.raises(ValueError):
        ReorderBuffer(0)


def test_fifo_order():
    rob = ReorderBuffer(4)
    for i in range(3):
        rob.push(entry(i))
    assert rob.head.seq == 0
    assert rob.pop_head().seq == 0
    assert rob.head.seq == 1


def test_empty_head():
    rob = ReorderBuffer(4)
    assert rob.head is None
    assert rob.empty


def test_squash_younger_than():
    rob = ReorderBuffer(8)
    entries = [entry(i) for i in range(5)]
    for e in entries:
        rob.push(e)
    squashed = rob.squash_younger_than(2)
    assert [e.seq for e in squashed] == [3, 4]
    assert all(e.squashed for e in squashed)
    assert len(rob) == 3
    assert not entries[0].squashed


def test_squash_everything():
    rob = ReorderBuffer(8)
    for i in range(3):
        rob.push(entry(i))
    squashed = rob.squash_younger_than(-1)
    assert len(squashed) == 3
    assert rob.empty


def test_stores_older_than():
    rob = ReorderBuffer(8)
    rob.push(entry(0, instr=ins.store("r1", "r2")))
    rob.push(entry(1, instr=ins.load("r1", "r2")))
    rob.push(entry(2, instr=ins.fstore("r1", "f2")))
    rob.push(entry(3, instr=ins.store("r1", "r2")))
    stores = rob.stores_older_than(3)
    assert [e.seq for e in stores] == [0, 2]


def test_entry_initial_state():
    e = entry(0)
    assert e.state is EntryState.DISPATCHED
    assert not e.completed
    assert not e.faulted
    assert e.pending == 0


def test_entry_repr_mentions_opcode():
    e = entry(0, instr=ins.mul("r1", "r2", "r3"))
    assert "mul" in repr(e)
