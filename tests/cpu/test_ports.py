from repro.cpu.config import default_ports
from repro.cpu.ports import PortSet


def make_ports():
    return PortSet(default_ports(), frozenset({"div"}))


def test_class_routing():
    ports = make_ports()
    port = ports.try_issue(0, "load", 4)
    assert port.name in ("p2", "p3")
    port = ports.try_issue(0, "div", 24)
    assert port.name == "p0"


def test_one_issue_per_port_per_cycle():
    ports = make_ports()
    first = ports.try_issue(0, "load", 4)
    second = ports.try_issue(0, "load", 4)
    third = ports.try_issue(0, "load", 4)
    assert first and second
    assert first.name != second.name
    assert third is None  # both load ports used this cycle
    ports.new_cycle()
    assert ports.try_issue(1, "load", 4) is not None


def test_non_pipelined_divider_occupies_port():
    ports = make_ports()
    assert ports.try_issue(0, "div", 24) is not None
    ports.new_cycle()
    assert ports.try_issue(1, "div", 24) is None   # busy until 24
    ports.new_cycle()
    assert ports.try_issue(24, "div", 24) is not None


def test_pipelined_ops_do_not_occupy():
    ports = make_ports()
    assert ports.try_issue(0, "mul", 3) is not None
    ports.new_cycle()
    assert ports.try_issue(1, "mul", 3) is not None


def test_alu_falls_back_across_ports():
    ports = make_ports()
    names = set()
    for _ in range(4):
        port = ports.try_issue(0, "alu", 1)
        assert port is not None
        names.add(port.name)
    assert names == {"p0", "p1", "p5", "p6"}
    assert ports.try_issue(0, "alu", 1) is None


def test_divider_blocks_alu_on_port0_only():
    ports = make_ports()
    ports.try_issue(0, "div", 24)
    ports.new_cycle()
    # p0 is busy, but p1/p5/p6 still take ALU ops.
    assert ports.try_issue(1, "alu", 1).name != "p0"


def test_contention_stat_counts():
    ports = make_ports()
    ports.try_issue(0, "div", 24)
    ports.new_cycle()
    ports.try_issue(1, "div", 24)
    assert ports.port_named("p0").stats.contended >= 1


def test_unknown_class_returns_none():
    ports = make_ports()
    assert ports.try_issue(0, "warp", 1) is None


def test_contention_report_shape():
    ports = make_ports()
    ports.try_issue(0, "mul", 3)
    report = ports.contention_report()
    assert report["p1"][0] == 1
