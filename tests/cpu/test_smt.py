"""SMT behaviour: both contexts make progress, state is isolated, and
execution ports are genuinely shared (the attack's foundation)."""

from repro.cpu.machine import Machine
from repro.isa.program import ProgramBuilder


def counting_loop(iterations, reg="r1"):
    return (ProgramBuilder()
            .li(reg, 0).li("r2", iterations)
            .label("loop")
            .addi(reg, reg, 1)
            .bne(reg, "r2", "loop")
            .halt().build())


def div_loop(iterations):
    return (ProgramBuilder()
            .li("r1", 0).li("r2", iterations)
            .fli("f1", 9.0).fli("f2", 3.0)
            .label("loop")
            .fdiv("f3", "f1", "f2")
            .addi("r1", "r1", 1)
            .bne("r1", "r2", "loop")
            .halt().build())


def test_both_contexts_finish():
    machine = Machine()
    machine.contexts[0].load_program(counting_loop(40))
    machine.contexts[1].load_program(counting_loop(60))
    machine.run(100_000)
    assert machine.contexts[0].int_regs["r1"] == 40
    assert machine.contexts[1].int_regs["r1"] == 60


def test_register_state_isolated():
    machine = Machine()
    machine.contexts[0].load_program(
        ProgramBuilder().li("r5", 111).halt().build())
    machine.contexts[1].load_program(
        ProgramBuilder().li("r5", 222).halt().build())
    machine.run(10_000)
    assert machine.contexts[0].int_regs["r5"] == 111
    assert machine.contexts[1].int_regs["r5"] == 222


def test_divider_contention_slows_sibling():
    """A divide-heavy sibling measurably slows a divide loop — the
    §4.3 port-contention signal."""
    def cycles_for_div_loop(with_contender):
        machine = Machine()
        machine.contexts[0].load_program(div_loop(30))
        if with_contender:
            machine.contexts[1].load_program(div_loop(30))
        machine.run(200_000,
                    until=lambda m: m.contexts[0].finished())
        return machine.cycle

    alone = cycles_for_div_loop(False)
    contended = cycles_for_div_loop(True)
    assert contended > alone * 1.5


def test_alu_work_does_not_contend_with_divider():
    """Multiplication traffic on the sibling barely affects the divide
    loop — contention is unit-specific."""
    def cycles_with_sibling(sibling_program):
        machine = Machine()
        machine.contexts[0].load_program(div_loop(30))
        if sibling_program is not None:
            machine.contexts[1].load_program(sibling_program)
        machine.run(200_000,
                    until=lambda m: m.contexts[0].finished())
        return machine.cycle

    alone = cycles_with_sibling(None)
    mul_prog = (ProgramBuilder()
                .li("r1", 0).li("r2", 200).li("r3", 7)
                .label("loop")
                .mul("r4", "r3", "r3")
                .addi("r1", "r1", 1)
                .bne("r1", "r2", "loop")
                .halt().build())
    with_muls = cycles_with_sibling(mul_prog)
    assert with_muls < alone * 1.2


def test_one_context_halting_frees_bandwidth():
    machine = Machine()
    machine.contexts[0].load_program(counting_loop(5))
    machine.contexts[1].load_program(counting_loop(500))
    machine.run(100_000)
    assert machine.contexts[0].finished()
    assert machine.contexts[1].int_regs["r1"] == 500


def test_busy_reflects_context_states():
    machine = Machine()
    assert not machine.core.busy()
    machine.contexts[0].load_program(counting_loop(3))
    assert machine.core.busy()
    machine.run(10_000)
    assert not machine.core.busy()
