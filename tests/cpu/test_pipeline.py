"""Pipeline-level behaviour: dependencies, speculation, forwarding,
memory ordering, fences and recovery."""


from repro.cpu.machine import Machine
from repro.isa.program import ProgramBuilder
from tests.conftest import run_program


def test_dependency_chain_correct(system):
    machine, kernel = system
    program = (ProgramBuilder()
               .li("r1", 1)
               .addi("r1", "r1", 1)
               .addi("r1", "r1", 1)
               .mul("r2", "r1", "r1")
               .halt().build())
    context = run_program(machine, kernel, program)
    assert context.int_regs["r1"] == 3
    assert context.int_regs["r2"] == 9


def test_independent_ops_overlap(system):
    """Two independent divides serialise on the single divider; the
    elapsed time shows the structural hazard."""
    machine, kernel = system
    program = (ProgramBuilder()
               .fli("f1", 10.0).fli("f2", 2.0)
               .fdiv("f3", "f1", "f2")
               .fdiv("f4", "f1", "f2")
               .halt().build())
    run_program(machine, kernel, program)
    # Two non-pipelined 24-cycle divides cannot finish before ~48.
    assert machine.cycle >= 48


def test_loop_with_counter(system):
    machine, kernel = system
    program = (ProgramBuilder()
               .li("r1", 0).li("r2", 25)
               .label("loop")
               .addi("r1", "r1", 1)
               .bne("r1", "r2", "loop")
               .halt().build())
    context = run_program(machine, kernel, program)
    assert context.int_regs["r1"] == 25
    assert context.stats.retired >= 2 * 25


def test_branch_not_taken_path(system):
    machine, kernel = system
    program = (ProgramBuilder()
               .li("r1", 1).li("r2", 1)
               .bne("r1", "r2", "skip")
               .li("r3", 111)
               .label("skip")
               .halt().build())
    context = run_program(machine, kernel, program)
    assert context.int_regs["r3"] == 111


def test_branch_taken_path_skips(system):
    machine, kernel = system
    program = (ProgramBuilder()
               .li("r1", 1).li("r2", 2)
               .bne("r1", "r2", "skip")
               .li("r3", 111)
               .label("skip")
               .halt().build())
    context = run_program(machine, kernel, program)
    assert context.int_regs["r3"] == 0


def test_blt_and_bge_signed(system):
    machine, kernel = system
    program = (ProgramBuilder()
               .li("r1", 0)
               .subi("r1", "r1", 1)      # r1 = -1 (unsigned max)
               .li("r2", 1)
               .blt("r1", "r2", "neg")   # signed: -1 < 1 -> taken
               .li("r3", 0)
               .halt()
               .label("neg")
               .li("r3", 1)
               .halt().build())
    context = run_program(machine, kernel, program)
    assert context.int_regs["r3"] == 1


def test_mispredict_recovery_no_architectural_damage(system):
    """Wrong-path instructions must not change architected state."""
    machine, kernel = system
    builder = ProgramBuilder().li("r1", 0).li("r2", 50).li("r4", 0)
    builder.label("loop")
    builder.addi("r1", "r1", 1)
    builder.bne("r1", "r2", "loop")
    # Fall-through path is mispredicted for iterations 1..49.
    builder.addi("r4", "r4", 1)
    builder.halt()
    context = run_program(machine, kernel, builder.build())
    assert context.int_regs["r4"] == 1
    assert machine.core.predictor.stats.mispredictions >= 1


def test_store_load_roundtrip(system):
    machine, kernel = system
    process = kernel.create_process("p")
    data = process.alloc(4096, "data")
    program = (ProgramBuilder()
               .li("r1", data)
               .li("r2", 0xABCD)
               .store("r1", "r2", 8)
               .load("r3", "r1", 8)
               .halt().build())
    context = run_program(machine, kernel, program, process=process)
    assert context.int_regs["r3"] == 0xABCD
    assert process.read(data + 8) == 0xABCD


def test_store_to_load_forwarding_before_retire(system):
    """The load must observe the older store's value even while the
    store sits in the store buffer."""
    machine, kernel = system
    process = kernel.create_process("p")
    data = process.alloc(4096, "data")
    program = (ProgramBuilder()
               .li("r1", data)
               .li("r2", 77)
               .store("r1", "r2", 0)
               .load("r3", "r1", 0)
               .addi("r4", "r3", 1)
               .halt().build())
    context = run_program(machine, kernel, program, process=process)
    assert context.int_regs["r3"] == 77
    assert context.int_regs["r4"] == 78


def test_memory_order_violation_repair(system):
    """A load that raced ahead of an aliasing store gets squashed and
    re-executed with the right value."""
    machine, kernel = system
    process = kernel.create_process("p")
    data = process.alloc(4096, "data")
    process.write(data, 1)
    program = (ProgramBuilder()
               .li("r1", data)
               .li("r5", 1000)
               # Slow address computation delays the store's address.
               .mul("r6", "r5", "r5")
               .div("r6", "r6", "r5")
               .sub("r6", "r6", "r5")
               .add("r7", "r1", "r6")    # r7 = data, but late
               .li("r2", 42)
               .store("r7", "r2", 0)     # address resolves late
               .load("r3", "r1", 0)      # same location, races ahead
               .halt().build())
    context = run_program(machine, kernel, program, process=process)
    assert context.int_regs["r3"] == 42


def test_memory_order_repair_squashes_oldest_violating_load(system):
    """Two speculative loads alias the late-resolving store.  The
    repair must squash from the *oldest* violating load — squashing
    only the younger one would leave the older load holding the stale
    pre-store value."""
    machine, kernel = system
    process = kernel.create_process("p")
    data = process.alloc(4096, "data")
    process.write(data, 1)   # stale value both loads race to read
    program = (ProgramBuilder()
               .li("r1", data)
               .li("r5", 1000)
               # Slow address computation delays the store's address.
               .mul("r6", "r5", "r5")
               .div("r6", "r6", "r5")
               .sub("r6", "r6", "r5")
               .add("r7", "r1", "r6")    # r7 = data, but late
               .li("r2", 42)
               .store("r7", "r2", 0)     # address resolves late
               .load("r3", "r1", 0)      # older aliasing load
               .load("r4", "r1", 0)      # younger aliasing load
               .halt().build())
    context = run_program(machine, kernel, program, process=process)
    assert context.stats.squash_events > 0, "no violation exercised"
    assert context.int_regs["r3"] == 42
    assert context.int_regs["r4"] == 42


def test_fp_load_store(system):
    machine, kernel = system
    process = kernel.create_process("p")
    data = process.alloc(4096, "data")
    process.write(data, 2.5)
    program = (ProgramBuilder()
               .li("r1", data)
               .fload("f1", "r1", 0)
               .fmul("f2", "f1", "f1")
               .fstore("r1", "f2", 8)
               .halt().build())
    run_program(machine, kernel, program, process=process)
    assert process.read(data + 8) == 6.25


def test_width4_load_store(system):
    machine, kernel = system
    process = kernel.create_process("p")
    data = process.alloc(4096, "data")
    process.write(data + 4, 0x1234, width=4)
    program = (ProgramBuilder()
               .li("r1", data)
               .load("r2", "r1", 4, width=4)
               .store("r1", "r2", 12, width=4)
               .halt().build())
    run_program(machine, kernel, program, process=process)
    assert process.read(data + 12, width=4) == 0x1234


def test_fence_orders_execution(system):
    machine, kernel = system
    program = (ProgramBuilder()
               .rdtsc("r1")
               .fli("f1", 9.0).fli("f2", 3.0)
               .fdiv("f3", "f1", "f2")
               .fence()
               .rdtsc("r2")
               .sub("r3", "r2", "r1")
               .halt().build())
    context = run_program(machine, kernel, program)
    # The second rdtsc waits for the divide (24 cycles) via the fence.
    assert context.int_regs["r3"] >= 24


def test_rdtsc_without_fence_can_run_early(system):
    machine, kernel = system
    program = (ProgramBuilder()
               .rdtsc("r1")
               .fli("f1", 9.0).fli("f2", 3.0)
               .fdiv("f3", "f1", "f2")
               .rdtsc("r2")
               .sub("r3", "r2", "r1")
               .halt().build())
    context = run_program(machine, kernel, program)
    assert context.int_regs["r3"] < 24


def test_program_without_halt_finishes(system):
    machine, kernel = system
    program = ProgramBuilder().li("r1", 5).addi("r1", "r1", 1).build()
    context = run_program(machine, kernel, program)
    assert context.int_regs["r1"] == 6


def test_code_after_halt_never_runs(system):
    machine, kernel = system
    program = (ProgramBuilder()
               .li("r1", 1)
               .halt()
               .li("r1", 99)
               .build())
    context = run_program(machine, kernel, program)
    assert context.int_regs["r1"] == 1


def test_deterministic_across_runs():
    def trace():
        machine = Machine()
        context = machine.contexts[0]
        program = (ProgramBuilder()
                   .li("r1", 0).li("r2", 30)
                   .label("l")
                   .addi("r1", "r1", 1)
                   .mul("r3", "r1", "r1")
                   .bne("r1", "r2", "l")
                   .halt().build())
        context.load_program(program)
        machine.run(100_000)
        return machine.cycle, context.int_regs["r3"]

    assert trace() == trace()
