"""Architectural correctness of ALU/FP semantics, validated by running
bare-metal programs on the full out-of-order core and comparing retired
register state against Python reference semantics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu.core import MASK64, _is_subnormal, _to_signed
from repro.cpu.machine import Machine
from repro.isa.program import ProgramBuilder


def run_bare(program, max_cycles=50_000):
    machine = Machine()
    context = machine.contexts[0]
    context.load_program(program)
    machine.run(max_cycles)
    assert context.finished()
    return context


@pytest.mark.parametrize("op,a,b,expected", [
    ("add", 3, 4, 7),
    ("sub", 3, 4, (3 - 4) & MASK64),
    ("and_", 0b1100, 0b1010, 0b1000),
    ("or_", 0b1100, 0b1010, 0b1110),
    ("xor", 0b1100, 0b1010, 0b0110),
    ("shl", 1, 12, 1 << 12),
    ("shr", 1 << 12, 12, 1),
    ("mul", 123, 456, 123 * 456),
    ("div", 100, 7, 100 // 7),
    ("div", 100, 0, 0),          # div-by-zero yields 0, no trap
])
def test_three_reg_ops(op, a, b, expected):
    builder = ProgramBuilder().li("r1", a).li("r2", b)
    getattr(builder, op)("r3", "r1", "r2")
    context = run_bare(builder.halt().build())
    assert context.int_regs["r3"] == expected


@pytest.mark.parametrize("op,a,imm,expected", [
    ("addi", 10, 5, 15),
    ("subi", 10, 5, 5),
    ("andi", 0xFF, 0x0F, 0x0F),
    ("ori", 0xF0, 0x0F, 0xFF),
    ("xori", 0xFF, 0x0F, 0xF0),
    ("shli", 3, 4, 48),
    ("shri", 48, 4, 3),
])
def test_reg_imm_ops(op, a, imm, expected):
    builder = ProgramBuilder().li("r1", a)
    getattr(builder, op)("r2", "r1", imm)
    context = run_bare(builder.halt().build())
    assert context.int_regs["r2"] == expected


def test_mov_and_fmov():
    context = run_bare(ProgramBuilder()
                       .li("r1", 99).mov("r2", "r1")
                       .fli("f1", 2.5).fmov("f2", "f1")
                       .halt().build())
    assert context.int_regs["r2"] == 99
    assert context.fp_regs["f2"] == 2.5


@pytest.mark.parametrize("op,a,b,expected", [
    ("fadd", 1.5, 2.25, 3.75),
    ("fsub", 5.0, 1.5, 3.5),
    ("fmul", 3.0, 0.5, 1.5),
    ("fdiv", 7.0, 2.0, 3.5),
])
def test_fp_ops(op, a, b, expected):
    builder = ProgramBuilder().fli("f1", a).fli("f2", b)
    getattr(builder, op)("f3", "f1", "f2")
    context = run_bare(builder.halt().build())
    assert context.fp_regs["f3"] == expected


def test_fdiv_by_zero_gives_inf():
    context = run_bare(ProgramBuilder()
                       .fli("f1", 1.0).fli("f2", 0.0)
                       .fdiv("f3", "f1", "f2").halt().build())
    assert context.fp_regs["f3"] == float("inf")


def test_64bit_wraparound():
    context = run_bare(ProgramBuilder()
                       .li("r1", (1 << 63)).li("r2", (1 << 63))
                       .add("r3", "r1", "r2").halt().build())
    assert context.int_regs["r3"] == 0


def test_to_signed():
    assert _to_signed(5) == 5
    assert _to_signed(MASK64) == -1
    assert _to_signed(1 << 63) == -(1 << 63)


def test_is_subnormal():
    assert _is_subnormal(5e-320)
    assert not _is_subnormal(0.0)
    assert not _is_subnormal(1.0)
    assert not _is_subnormal(float("inf"))
    assert not _is_subnormal(2.3e-308)


def test_rdtsc_monotone():
    context = run_bare(ProgramBuilder()
                       .rdtsc("r1").fence().rdtsc("r2")
                       .sub("r3", "r1", "r2").halt().build())
    delta = _to_signed(context.int_regs["r3"])
    assert delta < 0  # r1 earlier than r2


def test_rdrand_deterministic_by_seed():
    def output(seed):
        from repro.config import CoreConfig, MachineConfig
        machine = Machine(MachineConfig(core=CoreConfig(
            rdrand_seed=seed, rdrand_fenced=False)))
        context = machine.contexts[0]
        context.load_program(ProgramBuilder()
                             .rdrand("r1").halt().build())
        machine.run(10_000)
        return context.int_regs["r1"]

    assert output(1) == output(1)
    assert output(1) != output(2)


@given(st.integers(min_value=0, max_value=MASK64),
       st.integers(min_value=0, max_value=MASK64))
@settings(max_examples=30, deadline=None)
def test_addition_matches_reference(a, b):
    context = run_bare(ProgramBuilder()
                       .li("r1", a).li("r2", b)
                       .add("r3", "r1", "r2")
                       .mul("r4", "r1", "r2")
                       .xor("r5", "r1", "r2")
                       .halt().build())
    assert context.int_regs["r3"] == (a + b) & MASK64
    assert context.int_regs["r4"] == (a * b) & MASK64
    assert context.int_regs["r5"] == a ^ b
