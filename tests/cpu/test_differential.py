"""Differential testing: the out-of-order core vs the sequential
reference interpreter.

Hypothesis generates random (but well-formed, terminating) programs;
both engines execute them; final integer/FP register state and memory
contents must agree.  This pins the core's dataflow scheduling,
speculation recovery, store-buffer forwarding, memory-order repair and
branch handling against architectural semantics.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu.machine import Machine
from repro.isa import instructions as ins
from repro.isa.interpreter import run_program as interpret
from repro.isa.program import Program, ProgramBuilder

#: Registers the generator uses for data (r0/r1 are reserved for the
#: loop counter and memory base).
_DATA_REGS = [f"r{i}" for i in range(2, 12)]
_FP_REGS = [f"f{i}" for i in range(0, 8)]
#: Memory offsets inside a private page.
_OFFSETS = [0, 8, 16, 24, 32, 64, 128]

# Bare-metal runs identity-map VAs to physical addresses, so the data
# page must sit inside the default 256 MiB of simulated DRAM.
DATA_BASE = 0x0010_0000


@st.composite
def _straightline_block(draw, max_len=14):
    """A block of dependency-rich straight-line instructions."""
    instrs = []
    for _ in range(draw(st.integers(min_value=1, max_value=max_len))):
        kind = draw(st.sampled_from(
            ["alu", "alui", "mul", "div", "fp", "load", "store",
             "fload", "fstore"]))
        rd = draw(st.sampled_from(_DATA_REGS))
        rs1 = draw(st.sampled_from(_DATA_REGS))
        rs2 = draw(st.sampled_from(_DATA_REGS))
        fd = draw(st.sampled_from(_FP_REGS))
        fs1 = draw(st.sampled_from(_FP_REGS))
        fs2 = draw(st.sampled_from(_FP_REGS))
        offset = draw(st.sampled_from(_OFFSETS))
        if kind == "alu":
            ctor = draw(st.sampled_from(
                [ins.add, ins.sub, ins.xor, ins.and_, ins.or_]))
            instrs.append(ctor(rd, rs1, rs2))
        elif kind == "alui":
            ctor = draw(st.sampled_from([ins.addi, ins.subi, ins.xori]))
            instrs.append(ctor(rd, rs1,
                               draw(st.integers(0, 1 << 16))))
        elif kind == "mul":
            instrs.append(ins.mul(rd, rs1, rs2))
        elif kind == "div":
            instrs.append(ins.div(rd, rs1, rs2))
        elif kind == "fp":
            ctor = draw(st.sampled_from([ins.fadd, ins.fmul,
                                         ins.fsub]))
            instrs.append(ctor(fd, fs1, fs2))
        elif kind == "load":
            instrs.append(ins.load(rd, "r1", offset))
        elif kind == "store":
            instrs.append(ins.store("r1", rs1, offset))
        elif kind == "fload":
            instrs.append(ins.fload(fd, "r1", offset))
        else:
            instrs.append(ins.fstore("r1", fs1, offset))
    return instrs


@st.composite
def _random_program(draw):
    """Init + loop(block + branch) + block + halt: terminating by
    construction, with data-dependent branch behaviour inside."""
    builder = ProgramBuilder("differential")
    builder.li("r1", DATA_BASE)
    for i, reg in enumerate(_DATA_REGS):
        builder.li(reg, draw(st.integers(0, 1 << 20)))
    for reg in _FP_REGS:
        builder.fli(reg, draw(st.floats(
            min_value=-1e6, max_value=1e6, allow_nan=False,
            width=32)))
    iterations = draw(st.integers(min_value=1, max_value=6))
    builder.li("r0", iterations)
    builder.label("loop")
    for instr in draw(_straightline_block()):
        builder.emit(instr)
    # An extra data-dependent branch inside the loop body.
    if draw(st.booleans()):
        r_a = draw(st.sampled_from(_DATA_REGS))
        r_b = draw(st.sampled_from(_DATA_REGS))
        builder.beq(r_a, r_b, "skip")
        for instr in draw(_straightline_block(max_len=4)):
            builder.emit(instr)
        builder.label("skip")
    builder.subi("r0", "r0", 1)
    builder.li("r13", 0)
    builder.bne("r0", "r13", "loop")
    for instr in draw(_straightline_block(max_len=6)):
        builder.emit(instr)
    builder.halt()
    return builder.build()


def _run_on_core(program: Program):
    machine = Machine()
    context = machine.contexts[0]
    context.load_program(program)
    machine.run(3_000_000)
    assert context.finished(), "core did not finish the program"
    memory = {}
    for addr in range(DATA_BASE, DATA_BASE + 256, 8):
        value = machine.phys.read(addr)  # bare-metal identity mapping
        if value:
            memory[addr] = value
    return context, memory


def _fp_equal(x, y):
    if isinstance(x, float) and isinstance(y, float):
        if math.isnan(x) and math.isnan(y):
            return True
        return x == y
    return x == y


@given(_random_program())
@settings(max_examples=60, deadline=None)
def test_core_matches_reference(program):
    reference = interpret(program)
    context, core_memory = _run_on_core(program)
    for reg, value in reference.int_regs.items():
        assert context.int_regs[reg] == value, f"mismatch in {reg}"
    for reg, value in reference.fp_regs.items():
        assert _fp_equal(context.fp_regs[reg], value), \
            f"mismatch in {reg}"
    for addr, value in reference.memory.items():
        assert _fp_equal(core_memory.get(addr, 0) or 0, value or 0), \
            f"memory mismatch at {addr:#x}"


@given(_random_program())
@settings(max_examples=20, deadline=None)
def test_core_deterministic(program):
    first, _mem1 = _run_on_core(program)
    second, _mem2 = _run_on_core(program)
    assert first.int_regs == second.int_regs
    assert first.fp_regs == second.fp_regs


def test_interpreter_detects_runaway():
    from repro.isa.interpreter import Interpreter, InterpreterError
    program = (ProgramBuilder().label("spin").jmp("spin").build())
    with pytest.raises(InterpreterError):
        Interpreter(program).run(max_steps=100)
