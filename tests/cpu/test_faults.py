"""Precise page-fault semantics — the mechanism MicroScope turns into
a replay engine."""


from repro.cpu.context import ContextState
from repro.cpu.machine import Machine
from repro.cpu.traps import TrapAction, TrapHandler
from repro.isa.instructions import Opcode
from repro.isa.program import ProgramBuilder
from repro.kernel.kernel import Kernel


class CountingHandler(TrapHandler):
    """Counts faults; fixes the page after *fix_after* of them."""

    def __init__(self, kernel, process, va, fix_after=1, cost=100):
        self.kernel = kernel
        self.process = process
        self.va = va
        self.fix_after = fix_after
        self.cost = cost
        self.faults = []

    def handle_page_fault(self, context, fault):
        self.faults.append(fault)
        if len(self.faults) >= self.fix_after:
            self.kernel.set_present(self.process, self.va, True)
        else:
            self.kernel.set_present(self.process, self.va, False)
        return TrapAction(cost=self.cost)

    def handle_interrupt(self, context, reason):
        return TrapAction(cost=self.cost)


def faulting_setup(fix_after=1):
    machine = Machine()
    kernel = Kernel(machine)
    process = kernel.create_process("victim")
    data = process.alloc(4096, "data")
    process.write(data, 4242)
    kernel.set_present(process, data, False)
    machine.hierarchy.flush_all()
    machine.pwc.flush_all()
    handler = CountingHandler(kernel, process, data, fix_after)
    machine.set_trap_handler(handler)
    return machine, kernel, process, data, handler


def test_fault_resumes_at_faulting_instruction():
    machine, kernel, process, data, handler = faulting_setup()
    program = (ProgramBuilder()
               .li("r1", data)
               .load("r2", "r1", 0)
               .addi("r3", "r2", 1)
               .halt().build())
    kernel.launch(process, program)
    machine.run(100_000)
    assert len(handler.faults) == 1
    assert machine.contexts[0].int_regs["r2"] == 4242
    assert machine.contexts[0].int_regs["r3"] == 4243


def test_repeated_faults_replay_instruction():
    machine, kernel, process, data, handler = faulting_setup(fix_after=5)
    program = (ProgramBuilder()
               .li("r1", data)
               .load("r2", "r1", 0)
               .halt().build())
    kernel.launch(process, program)
    machine.run(200_000)
    assert len(handler.faults) == 5
    assert machine.contexts[0].int_regs["r2"] == 4242
    # The load's dynamic instance re-fetched at least 4 times.
    assert machine.contexts[0].stats.replays >= 4


def test_younger_instructions_execute_in_walk_shadow():
    """Independent younger code runs (and leaves port residue) while
    the faulting load's walk is outstanding — the attack's window."""
    machine, kernel, process, data, handler = faulting_setup(fix_after=3)
    issued_divs = []

    def observer(context, entry):
        if entry.instr.op is Opcode.FDIV:
            issued_divs.append(machine.cycle)

    machine.core.issue_hooks.append(observer)
    program = (ProgramBuilder()
               .li("r1", data)
               .fli("f1", 8.0).fli("f2", 2.0)
               .load("r2", "r1", 0)
               .fdiv("f3", "f1", "f2")    # independent of the load
               .halt().build())
    kernel.launch(process, program)
    machine.run(200_000)
    # Speculative executions per fault + the final architectural one.
    assert len(issued_divs) >= 3


def test_dependent_instructions_do_not_execute():
    machine, kernel, process, data, handler = faulting_setup(fix_after=3)
    issued_muls = []

    def observer(context, entry):
        if entry.instr.op is Opcode.MUL:
            issued_muls.append(machine.cycle)

    machine.core.issue_hooks.append(observer)
    program = (ProgramBuilder()
               .li("r1", data)
               .load("r2", "r1", 0)
               .mul("r3", "r2", "r2")     # depends on the faulting load
               .halt().build())
    kernel.launch(process, program)
    machine.run(200_000)
    # Only the final, non-faulting execution can issue the mul.
    assert len(issued_muls) == 1
    assert machine.contexts[0].int_regs["r3"] == 4242 * 4242


def test_speculative_loads_fill_caches_despite_squash():
    """The cache side effects of squashed loads persist — the transmit
    channel."""
    machine, kernel, process, data, handler = faulting_setup(fix_after=2)
    other = process.alloc(4096, "other")
    other_paddr = process.translate_any(other)
    program = (ProgramBuilder()
               .li("r1", data)
               .li("r4", other)
               .load("r2", "r1", 0)       # faults
               .load("r5", "r4", 0)       # independent: speculative
               .halt().build())
    kernel.launch(process, program)
    # Run until the first fault is handled (present still clear).
    machine.run(10_000, until=lambda m: len(handler.faults) >= 1)
    assert machine.hierarchy.peek_level(other_paddr) == 0


def test_blocked_context_consumes_kernel_time():
    machine, kernel, process, data, handler = faulting_setup()
    handler.cost = 5000
    program = (ProgramBuilder()
               .li("r1", data).load("r2", "r1", 0).halt().build())
    kernel.launch(process, program)
    machine.run(100_000)
    assert machine.cycle >= 5000


def test_halt_action_stops_context():
    machine = Machine()
    kernel = Kernel(machine)
    process = kernel.create_process("victim")

    class HaltingHandler(TrapHandler):
        def handle_page_fault(self, context, fault):
            return TrapAction(cost=10, halt=True)

        def handle_interrupt(self, context, reason):
            return TrapAction()

    machine.set_trap_handler(HaltingHandler())
    program = (ProgramBuilder()
               .li("r1", 0x7000_0000)     # unmapped address
               .load("r2", "r1", 0)
               .halt().build())
    kernel.launch(process, program)
    machine.run(100_000)
    assert machine.contexts[0].state is ContextState.HALTED


def test_interrupt_squashes_and_resumes():
    machine = Machine()
    kernel = Kernel(machine)
    process = kernel.create_process("p")
    program = (ProgramBuilder()
               .li("r1", 0).li("r2", 100)
               .label("loop")
               .addi("r1", "r1", 1)
               .bne("r1", "r2", "loop")
               .halt().build())
    context = kernel.launch(process, program)
    machine.run(30)
    context.pending_interrupt = "timer"
    machine.run(200_000)
    assert context.int_regs["r1"] == 100
    assert context.stats.interrupts == 1
    assert kernel.stats.interrupts == 1
