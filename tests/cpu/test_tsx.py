"""TSX transaction semantics: commit, rollback, abort triggers."""

from repro.isa.program import ProgramBuilder
from tests.conftest import run_program


def make_process(kernel):
    process = kernel.create_process("txn")
    data = process.alloc(4096, "data")
    return process, data


def test_commit_publishes_writes(system):
    machine, kernel = system
    process, data = make_process(kernel)
    program = (ProgramBuilder()
               .li("r1", data)
               .li("r2", 55)
               .tbegin("fallback")
               .store("r1", "r2", 0)
               .tend()
               .halt()
               .label("fallback")
               .li("r3", 1)
               .halt().build())
    context = run_program(machine, kernel, program, process=process)
    assert process.read(data) == 55
    assert context.stats.txn_aborts == 0


def test_writes_invisible_until_commit(system):
    machine, kernel = system
    process, data = make_process(kernel)
    program = (ProgramBuilder()
               .li("r1", data)
               .li("r2", 55)
               .tbegin("fallback")
               .store("r1", "r2", 0)
               .fli("f1", 1.0).fli("f2", 3.0)
               .fdiv("f3", "f1", "f2")    # stretch the transaction
               .fdiv("f3", "f1", "f2")
               .tend()
               .halt()
               .label("fallback")
               .halt().build())
    context = kernel.launch(process, program)
    # Run until inside the transaction (store retired, not committed).
    machine.run(10_000, until=lambda m: context.in_transaction
                and process.phys.read(process.translate_any(data)) == 0
                and context.stats.retired >= 5)
    assert context.in_transaction
    assert process.read(data) == 0
    machine.run(100_000)
    assert process.read(data) == 55


def test_explicit_abort_rolls_back(system):
    machine, kernel = system
    process, data = make_process(kernel)
    program = (ProgramBuilder()
               .li("r1", data)
               .li("r4", 7)
               .tbegin("fallback")
               .li("r4", 99)              # will be rolled back
               .li("r2", 55)
               .store("r1", "r2", 0)      # will be discarded
               .tabort()
               .tend()
               .halt()
               .label("fallback")
               .li("r5", 1)
               .halt().build())
    context = run_program(machine, kernel, program, process=process)
    assert context.stats.txn_aborts == 1
    assert context.int_regs["r4"] == 7     # register rollback
    assert context.int_regs["r5"] == 1     # fallback ran
    assert process.read(data) == 0         # store discarded


def test_abort_count_in_r15(system):
    machine, kernel = system
    process, data = make_process(kernel)
    program = (ProgramBuilder()
               .tbegin("fallback")
               .tabort()
               .tend()
               .halt()
               .label("fallback")
               .halt().build())
    context = run_program(machine, kernel, program, process=process)
    assert context.int_regs["r15"] == 1


def test_write_set_eviction_aborts(system):
    """§7.1: evicting a dirty transactional line aborts — the
    attacker-controlled replay trigger."""
    machine, kernel = system
    process, data = make_process(kernel)
    program = (ProgramBuilder()
               .li("r1", data)
               .li("r2", 1)
               .li("r6", 0)
               .label("retry")
               .tbegin("fallback")
               .store("r1", "r2", 0)
               .fli("f1", 8.0).fli("f2", 2.0)
               .fdiv("f3", "f1", "f2")
               .fdiv("f3", "f1", "f2")
               .tend()
               .halt()
               .label("fallback")
               .addi("r6", "r6", 1)
               .li("r7", 3)
               .blt("r6", "r7", "retry")
               .halt().build())
    context = kernel.launch(process, program)
    data_paddr = process.translate_any(data)
    aborted = 0
    budget = 200_000
    while budget > 0 and not context.finished():
        machine.step(5)
        budget -= 5
        if context.in_transaction and aborted < 2:
            if machine.hierarchy.l1.contains(data_paddr):
                machine.hierarchy.flush_line(data_paddr)
                aborted += 1
    assert context.finished()
    assert context.stats.txn_aborts >= 2
    assert process.read(data) == 1   # eventually committed


def test_fault_inside_transaction_aborts_without_os(system):
    """Page faults in a transaction become aborts; the kernel never
    sees them — the T-SGX premise."""
    machine, kernel = system
    process, data = make_process(kernel)
    hidden = process.alloc(4096, "hidden")
    kernel.set_present(process, hidden, False)
    machine.hierarchy.flush_all()
    machine.pwc.flush_all()
    program = (ProgramBuilder()
               .li("r1", hidden)
               .tbegin("fallback")
               .load("r2", "r1", 0)
               .tend()
               .li("r3", 2)               # success path marker
               .halt()
               .label("fallback")
               .li("r3", 1)               # abort path marker
               .halt().build())
    context = run_program(machine, kernel, program, process=process)
    assert context.int_regs["r3"] == 1
    assert context.stats.txn_aborts == 1
    assert kernel.stats.page_faults == 0


def test_interrupt_aborts_transaction(system):
    machine, kernel = system
    process, data = make_process(kernel)
    program = (ProgramBuilder()
               .tbegin("fallback")
               .fli("f1", 8.0).fli("f2", 2.0)
               .fdiv("f3", "f1", "f2")
               .fdiv("f3", "f1", "f2")
               .fdiv("f3", "f1", "f2")
               .tend()
               .li("r3", 2)
               .halt()
               .label("fallback")
               .li("r3", 1)
               .halt().build())
    context = kernel.launch(process, program)
    machine.run(10_000, until=lambda m: context.in_transaction)
    context.pending_interrupt = "timer"
    machine.run(100_000)
    assert context.int_regs["r3"] == 1
    assert context.stats.txn_aborts == 1
    assert context.last_txn_abort_reason == "interrupt"


def test_transactional_forwarding(system):
    """Loads inside a transaction observe the transaction's own
    buffered (committed-but-unpublished) stores."""
    machine, kernel = system
    process, data = make_process(kernel)
    program = (ProgramBuilder()
               .li("r1", data)
               .li("r2", 123)
               .tbegin("fallback")
               .store("r1", "r2", 0)
               .fli("f1", 8.0).fli("f2", 2.0)
               .fdiv("f3", "f1", "f2")    # delay so the store drains
               .fdiv("f3", "f1", "f2")    # into the txn buffer
               .load("r3", "r1", 0)
               .tend()
               .halt()
               .label("fallback")
               .halt().build())
    context = run_program(machine, kernel, program, process=process)
    assert context.int_regs["r3"] == 123


def test_tend_without_transaction_is_noop(system):
    machine, kernel = system
    process, _data = make_process(kernel)
    program = (ProgramBuilder().tend().li("r1", 5).halt().build())
    context = run_program(machine, kernel, program, process=process)
    assert context.int_regs["r1"] == 5
