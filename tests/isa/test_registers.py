import pytest

from repro.isa import registers


def test_register_name_lists():
    assert len(registers.INT_REGS) == 16
    assert len(registers.FP_REGS) == 16
    assert registers.INT_REGS[0] == "r0"
    assert registers.FP_REGS[15] == "f15"


def test_classification():
    assert registers.is_int_reg("r3")
    assert not registers.is_int_reg("f3")
    assert registers.is_fp_reg("f3")
    assert not registers.is_fp_reg("r3")
    assert registers.is_reg("r15") and registers.is_reg("f0")
    assert not registers.is_reg("r16")
    assert not registers.is_reg("x1")


def test_check_helpers_pass_through():
    assert registers.check_int_reg("r7") == "r7"
    assert registers.check_fp_reg("f7") == "f7"
    assert registers.check_reg("r0") == "r0"


@pytest.mark.parametrize("checker,bad", [
    (registers.check_int_reg, "f0"),
    (registers.check_int_reg, "r99"),
    (registers.check_fp_reg, "r0"),
    (registers.check_reg, "bogus"),
])
def test_check_helpers_reject(checker, bad):
    with pytest.raises(ValueError):
        checker(bad)


def test_fresh_regfiles_zeroed():
    ints = registers.fresh_int_regfile()
    fps = registers.fresh_fp_regfile()
    assert all(v == 0 for v in ints.values())
    assert all(v == 0.0 for v in fps.values())
    assert set(ints) == set(registers.INT_REGS)
    assert set(fps) == set(registers.FP_REGS)
