import math

import pytest

from repro.isa.interpreter import Interpreter, InterpreterError, run_program
from repro.isa.program import ProgramBuilder


def test_arithmetic_and_masking():
    state = run_program(ProgramBuilder()
                        .li("r1", (1 << 63))
                        .add("r2", "r1", "r1")   # wraps to 0
                        .li("r3", 5)
                        .mul("r4", "r3", "r3")
                        .halt().build())
    assert state.int_regs["r2"] == 0
    assert state.int_regs["r4"] == 25


def test_loop_semantics():
    state = run_program(ProgramBuilder()
                        .li("r1", 0).li("r2", 17)
                        .label("l")
                        .addi("r1", "r1", 1)
                        .bne("r1", "r2", "l")
                        .halt().build())
    assert state.int_regs["r1"] == 17


def test_memory_roundtrip():
    state = run_program(ProgramBuilder()
                        .li("r1", 0x1000)
                        .li("r2", 99)
                        .store("r1", "r2", 8)
                        .load("r3", "r1", 8)
                        .halt().build())
    assert state.int_regs["r3"] == 99
    assert state.memory[0x1008] == 99


def test_initial_memory():
    state = run_program(ProgramBuilder()
                        .li("r1", 0x2000)
                        .load("r2", "r1", 0)
                        .halt().build(),
                        memory={0x2000: 1234})
    assert state.int_regs["r2"] == 1234


def test_fp_semantics():
    state = run_program(ProgramBuilder()
                        .fli("f1", 7.0).fli("f2", 2.0)
                        .fdiv("f3", "f1", "f2")
                        .fli("f4", 0.0)
                        .fdiv("f5", "f1", "f4")
                        .halt().build())
    assert state.fp_regs["f3"] == 3.5
    assert state.fp_regs["f5"] == math.inf


def test_signed_branches():
    state = run_program(ProgramBuilder()
                        .li("r1", 0).subi("r1", "r1", 1)   # -1
                        .li("r2", 0)
                        .bge("r1", "r2", "big")
                        .li("r3", 1)                        # -1 < 0
                        .halt()
                        .label("big")
                        .li("r3", 2)
                        .halt().build())
    assert state.int_regs["r3"] == 1


def test_rdrand_seeded():
    program = ProgramBuilder().rdrand("r1").halt().build()
    a = run_program(program, rdrand_seed=5).int_regs["r1"]
    b = run_program(program, rdrand_seed=5).int_regs["r1"]
    c = run_program(program, rdrand_seed=6).int_regs["r1"]
    assert a == b and a != c


def test_transaction_commit():
    state = run_program(ProgramBuilder()
                        .li("r1", 0x100).li("r2", 3)
                        .tbegin("fb")
                        .store("r1", "r2", 0)
                        .tend()
                        .halt()
                        .label("fb")
                        .halt().build())
    assert state.memory[0x100] == 3


def test_transaction_abort_rolls_back():
    state = run_program(ProgramBuilder()
                        .li("r1", 0x100).li("r2", 3).li("r4", 7)
                        .tbegin("fb")
                        .li("r4", 99)
                        .store("r1", "r2", 0)
                        .tabort()
                        .tend()
                        .halt()
                        .label("fb")
                        .li("r5", 1)
                        .halt().build())
    assert 0x100 not in state.memory
    assert state.int_regs["r4"] == 7
    assert state.int_regs["r5"] == 1
    assert state.int_regs["r15"] == 1   # abort tally, as on the core


def test_runaway_detected():
    program = ProgramBuilder().label("s").jmp("s").build()
    with pytest.raises(InterpreterError):
        Interpreter(program).run(max_steps=50)


def test_falls_off_end_without_halt():
    state = run_program(ProgramBuilder().li("r1", 4).build())
    assert state.int_regs["r1"] == 4


def test_rdtsc_counts_retired():
    state = run_program(ProgramBuilder()
                        .nop().nop().rdtsc("r1").halt().build())
    assert state.int_regs["r1"] == 3
