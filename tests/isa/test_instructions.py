import pytest

from repro.isa import instructions as ins
from repro.isa.instructions import Opcode


def test_constructor_validation():
    with pytest.raises(ValueError):
        ins.add("f1", "r1", "r2")      # fp dest on int op
    with pytest.raises(ValueError):
        ins.fadd("r1", "f1", "f2")     # int dest on fp op
    with pytest.raises(ValueError):
        ins.load("r1", "f2")           # fp base register
    with pytest.raises(ValueError):
        ins.load("r1", "r2", width=2)  # bad width


def test_sources_and_dest():
    instr = ins.add("r1", "r2", "r3")
    assert instr.sources() == ("r2", "r3")
    assert instr.dest() == "r1"
    assert ins.li("r1", 5).sources() == ()
    assert ins.jmp("x").dest() is None
    store = ins.store("r1", "r2", 8)
    assert store.sources() == ("r1", "r2")
    assert store.dest() is None


def test_classification_properties():
    assert ins.load("r1", "r2").is_load
    assert ins.load("r1", "r2").is_memory
    assert not ins.load("r1", "r2").is_store
    assert ins.fstore("r1", "f2").is_store
    assert ins.beq("r1", "r2", "t").is_branch
    assert ins.beq("r1", "r2", "t").is_cond_branch
    assert ins.jmp("t").is_branch
    assert not ins.jmp("t").is_cond_branch
    assert not ins.mul("r1", "r2", "r3").is_memory


def test_width_stored():
    assert ins.load("r1", "r2", width=4).width == 4
    assert ins.store("r1", "r2").width == 8


def test_immediate_coercion():
    assert ins.li("r1", 3.0).imm == 3
    assert isinstance(ins.fli("f1", 3).imm, float)


def test_formatting_covers_all_shapes():
    samples = [
        ins.li("r1", 5),
        ins.fli("f1", 2.5),
        ins.mov("r1", "r2"),
        ins.add("r1", "r2", "r3"),
        ins.addi("r1", "r2", 7),
        ins.fdiv("f1", "f2", "f3"),
        ins.load("r1", "r2", 16),
        ins.load("r1", "r2", 16, width=4),
        ins.store("r1", "r2", -8),
        ins.beq("r1", "r2", "target"),
        ins.jmp("target"),
        ins.tbegin("fallback"),
        ins.rdtsc("r1"),
        ins.rdrand("r2"),
        ins.fence(),
        ins.halt(),
        ins.nop(),
        ins.tend(),
        ins.tabort(),
    ]
    for instr in samples:
        text = str(instr)
        assert instr.op.value in text


def test_comment_in_formatting():
    instr = ins.load("r1", "r2", comment="replay-handle")
    assert "replay-handle" in str(instr)


def test_comment_not_compared():
    a = ins.add("r1", "r2", "r3", comment="x")
    b = ins.add("r1", "r2", "r3", comment="y")
    assert a == b


def test_opcode_enum_unique_mnemonics():
    values = [op.value for op in Opcode]
    assert len(values) == len(set(values))
