import pytest

from repro.isa import instructions as ins
from repro.isa.instructions import INSTRUCTION_SIZE
from repro.isa.program import Program, ProgramBuilder, ProgramError


def build_sample():
    return (ProgramBuilder("sample")
            .li("r1", 10)
            .label("loop")
            .subi("r1", "r1", 1)
            .bne("r1", "r0", "loop")
            .halt()
            .build())


def test_builder_chaining_and_len():
    program = build_sample()
    assert len(program) == 4
    assert program.name == "sample"


def test_label_resolution():
    program = build_sample()
    assert program.resolve("loop") == 1
    assert program.label_at(1) == "loop"
    assert program.label_at(0) is None


def test_target_index():
    program = build_sample()
    branch = program[2]
    assert program.target_index(branch) == 1


def test_unknown_label_rejected_at_build():
    builder = ProgramBuilder().jmp("nowhere")
    with pytest.raises(ProgramError):
        builder.build()


def test_duplicate_label_rejected():
    builder = ProgramBuilder().label("a")
    with pytest.raises(ProgramError):
        builder.label("a")


def test_label_out_of_range_rejected():
    with pytest.raises(ProgramError):
        Program("p", (ins.nop(),), {"x": 5})


def test_resolve_unknown_label():
    program = build_sample()
    with pytest.raises(ProgramError):
        program.resolve("missing")


def test_target_index_requires_target():
    program = build_sample()
    with pytest.raises(ProgramError):
        program.target_index(program[0])


def test_code_size():
    program = build_sample()
    assert program.code_size() == 4 * INSTRUCTION_SIZE


def test_find_by_comment():
    program = (ProgramBuilder()
               .load("r1", "r2", comment="replay-handle")
               .load("r3", "r2", comment="other")
               .halt()
               .build())
    assert program.find("replay-handle") == [0]
    assert program.find_one("replay-handle") == 0
    with pytest.raises(ProgramError):
        program.find_one("missing")


def test_find_one_rejects_duplicates():
    program = (ProgramBuilder()
               .nop(comment="x")
               .nop(comment="x")
               .halt()
               .build())
    with pytest.raises(ProgramError):
        program.find_one("x")


def test_listing_contains_labels_and_instructions():
    text = build_sample().listing()
    assert "loop:" in text
    assert "subi r1, r1, 1" in text


def test_bind_label_explicit_index():
    builder = ProgramBuilder().nop().nop().halt()
    builder.bind_label("mid", 1)
    program = builder.build()
    assert program.resolve("mid") == 1


def test_trailing_label_allowed():
    program = (ProgramBuilder().nop().label("end").build())
    assert program.resolve("end") == 1


def test_extend_and_emit():
    prog = (ProgramBuilder()
            .emit(ins.nop())
            .extend([ins.nop(), ins.halt()])
            .build())
    assert len(prog) == 3
