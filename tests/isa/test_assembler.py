import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import instructions as ins
from repro.isa.assembler import AssemblerError, assemble, disassemble
from repro.isa.instructions import Opcode
from repro.isa.program import ProgramBuilder


def test_basic_assembly():
    program = assemble("""
        ; compute 6 * 7
        li   r1, 6
        li   r2, 7
        mul  r3, r1, r2
        halt
    """)
    assert len(program) == 4
    assert program[2].op is Opcode.MUL


def test_labels_and_branches():
    program = assemble("""
    loop:
        subi r1, r1, 1
        bne  r1, r0, loop
        halt
    """)
    assert program.resolve("loop") == 0
    assert program.target_index(program[1]) == 0


def test_memory_operands():
    program = assemble("""
        load   r1, [r2 + 16]
        load.w r1, [r2 + 0x20]
        store  [r3 - 8], r4
        fload  f1, [r2]
        fstore [r2 + 4], f1
    """)
    assert program[0].imm == 16
    assert program[1].width == 4
    assert program[1].imm == 32
    assert program[2].imm == -8
    assert program[3].imm == 0
    assert program[4].rs2 == "f1"


def test_hash_comments_and_blank_lines():
    program = assemble("\n# leading comment\nnop\n\nhalt # trailing\n")
    assert len(program) == 2


def test_float_literals():
    program = assemble("fli f0, 2.5")
    assert program[0].imm == 2.5


def test_misc_ops():
    program = assemble("""
        rdtsc r1
        rdrand r2
        fence
        tbegin fb
        tend
        tabort
    fb:
        halt
    """)
    ops = [instr.op for instr in program.instructions]
    assert Opcode.RDTSC in ops and Opcode.TBEGIN in ops


@pytest.mark.parametrize("bad,fragment", [
    ("bogus r1, r2", "unknown mnemonic"),
    ("li r1", "expects 2"),
    ("li r1, xyz", "bad integer"),
    ("load r1, r2", "bad memory operand"),
    ("add.w r1, r2, r3", "width suffix"),
    ("jmp nowhere\nhalt", "unknown label"),
    ("li f1, 5", "not an integer register"),
])
def test_errors(bad, fragment):
    with pytest.raises(AssemblerError) as excinfo:
        assemble(bad)
    assert fragment in str(excinfo.value)


def test_error_carries_line_number():
    with pytest.raises(AssemblerError) as excinfo:
        assemble("nop\nbogus x\n")
    assert "line 2" in str(excinfo.value)


def test_duplicate_label_error():
    with pytest.raises(AssemblerError):
        assemble("a:\nnop\na:\nnop\n")


def _roundtrip(program):
    return assemble(disassemble(program), name=program.name)


def test_roundtrip_handwritten():
    program = (ProgramBuilder("rt")
               .li("r1", 5)
               .fli("f0", 1.25)
               .label("top")
               .load("r2", "r1", 8)
               .load("r3", "r1", 0, width=4)
               .store("r1", "r2", 16)
               .fdiv("f1", "f0", "f0")
               .beq("r2", "r3", "top")
               .rdtsc("r4")
               .halt()
               .build())
    again = _roundtrip(program)
    assert again.instructions == program.instructions
    assert again.labels == program.labels


# --- property-based round-trip ------------------------------------------

_int_regs = st.sampled_from([f"r{i}" for i in range(16)])
_fp_regs = st.sampled_from([f"f{i}" for i in range(16)])
_imm = st.integers(min_value=-2**31, max_value=2**31 - 1)
_offset = st.integers(min_value=-4096, max_value=4096)
_width = st.sampled_from([4, 8])


@st.composite
def _instruction(draw):
    kind = draw(st.sampled_from(
        ["li", "alu3", "alui", "fp3", "load", "store", "misc"]))
    if kind == "li":
        return ins.li(draw(_int_regs), draw(_imm))
    if kind == "alu3":
        ctor = draw(st.sampled_from(
            [ins.add, ins.sub, ins.xor, ins.mul, ins.div, ins.shl]))
        return ctor(draw(_int_regs), draw(_int_regs), draw(_int_regs))
    if kind == "alui":
        ctor = draw(st.sampled_from([ins.addi, ins.andi, ins.shri]))
        return ctor(draw(_int_regs), draw(_int_regs),
                    draw(st.integers(min_value=0, max_value=63)))
    if kind == "fp3":
        ctor = draw(st.sampled_from([ins.fadd, ins.fmul, ins.fdiv]))
        return ctor(draw(_fp_regs), draw(_fp_regs), draw(_fp_regs))
    if kind == "load":
        return ins.load(draw(_int_regs), draw(_int_regs), draw(_offset),
                        draw(_width))
    if kind == "store":
        return ins.store(draw(_int_regs), draw(_int_regs), draw(_offset),
                         draw(_width))
    ctor = draw(st.sampled_from([ins.nop, ins.fence, ins.tend]))
    return ctor()


@given(st.lists(_instruction(), min_size=1, max_size=30))
@settings(max_examples=60, deadline=None)
def test_roundtrip_property(instrs):
    builder = ProgramBuilder("prop")
    for instr in instrs:
        builder.emit(instr)
    builder.halt()
    program = builder.build()
    again = _roundtrip(program)
    assert again.instructions == program.instructions
