"""default_workers must size pools to the CPUs the process may
actually use (cgroup cpusets, CI runners), not the host's total."""

import os

from repro.harness.pool import default_workers


def test_env_override_wins(monkeypatch):
    monkeypatch.setenv("REPRO_WORKERS", "3")
    assert default_workers() == 3


def test_env_override_clamped_to_one(monkeypatch):
    monkeypatch.setenv("REPRO_WORKERS", "0")
    assert default_workers() == 1


def test_bad_env_falls_through(monkeypatch):
    monkeypatch.setenv("REPRO_WORKERS", "lots")
    assert default_workers() >= 1


def test_respects_sched_getaffinity(monkeypatch):
    monkeypatch.delenv("REPRO_WORKERS", raising=False)
    monkeypatch.setattr(os, "sched_getaffinity",
                        lambda pid: {0, 3, 5}, raising=False)
    assert default_workers() == 3


def test_affinity_beats_cpu_count(monkeypatch):
    """The cgroup-restricted set wins even when the host has more."""
    monkeypatch.delenv("REPRO_WORKERS", raising=False)
    monkeypatch.setattr(os, "sched_getaffinity", lambda pid: {1},
                        raising=False)
    monkeypatch.setattr(os, "cpu_count", lambda: 64)
    assert default_workers() == 1


def test_falls_back_to_cpu_count(monkeypatch):
    monkeypatch.delenv("REPRO_WORKERS", raising=False)
    monkeypatch.delattr(os, "sched_getaffinity", raising=False)
    monkeypatch.setattr(os, "cpu_count", lambda: 7)
    assert default_workers() == 7


def test_affinity_oserror_falls_back(monkeypatch):
    monkeypatch.delenv("REPRO_WORKERS", raising=False)

    def boom(pid):
        raise OSError("no affinity syscall here")

    monkeypatch.setattr(os, "sched_getaffinity", boom, raising=False)
    monkeypatch.setattr(os, "cpu_count", lambda: 5)
    assert default_workers() == 5
