"""The pluggable execution-backend layer.

Every backend must honour the same contract: handed the same trials,
it fills the same outcomes, the same seeds, the same journal records
and the same ``SweepReport`` resolutions — so ``inline``, ``pool``
and ``batch`` are interchangeable execution substrates, not three
behaviours."""

import json

import pytest

from repro.batch import FleetPlan, FleetTrial, LaneInit
from repro.harness import (
    ExecutionBackend,
    ExecutionRequest,
    FaultPolicy,
    InlineBackend,
    backend_names,
    derive_seed,
    register_backend,
    resolve_backend,
    run_resilient_sweep,
)
from repro.harness.backends import BACKENDS
from repro.isa.program import ProgramBuilder
from repro.snapshot import MachineSnapshot

FAST = FaultPolicy(backoff_base=0.0)

#: Backends that can run an arbitrary picklable trial function.
GENERIC_BACKENDS = ("inline", "pool", "scalar")


def seed_echo(params, seed):
    return (params, seed)


def flaky_even_first(params, seed):
    """Even params fail on their attempt-0 seed (retries succeed)."""
    if params % 2 == 0 and seed == derive_seed(7, params, "par"):
        raise RuntimeError("flaky attempt 0")
    return (params, seed)


# --- fleet fixtures (for the batch backend) --------------------------------

DATA_BASE = 0x0010_0000


def _extract(machine):
    context = machine.contexts[0]
    return (MachineSnapshot.take(machine).digest(),
            context.int_regs["r2"], machine.cycle)


def _program():
    return (ProgramBuilder("backends-trial")
            .load("r2", "r1", 0)
            .li("r0", 6)
            .label("loop")
            .mul("r2", "r2", "r2")
            .addi("r2", "r2", 5)
            .subi("r0", "r0", 1)
            .bne("r0", "r15", "loop")
            .halt().build())


def _lane_init(seed, params):
    return LaneInit(regs=((0, "r1", DATA_BASE),),
                    mem=((DATA_BASE, 8, seed + params["k"]),))


FLEET_TRIAL = FleetTrial(FleetPlan(
    programs=((0, _program()),), lane_init=_lane_init,
    max_cycles=1_000_000, extract=_extract))

FLEET_PARAMS = [{"k": k} for k in range(4)]


# --- cross-backend parity --------------------------------------------------


@pytest.mark.parametrize("backend", GENERIC_BACKENDS)
def test_backend_parity_results_and_report(backend):
    reference = run_resilient_sweep(
        seed_echo, list(range(6)), master_seed=7, label="par",
        policy=FAST, workers=1, backend="inline")
    other = run_resilient_sweep(
        seed_echo, list(range(6)), master_seed=7, label="par",
        policy=FAST, workers=2, backend=backend)
    assert other.results() == reference.results()
    assert ([t.seed for t in other.trials]
            == [t.seed for t in reference.trials])
    assert (other.report.resolution_counts()
            == reference.report.resolution_counts())


@pytest.mark.parametrize("backend", GENERIC_BACKENDS)
def test_backend_parity_under_retries(backend):
    reference = run_resilient_sweep(
        flaky_even_first, list(range(5)), master_seed=7,
        label="par", policy=FAST, workers=1, backend="inline")
    other = run_resilient_sweep(
        flaky_even_first, list(range(5)), master_seed=7,
        label="par", policy=FAST, workers=2, backend=backend)
    assert other.results() == reference.results()
    # Same trials retried, same attempt counts.
    assert ([len(t.attempts) for t in other.report.trials]
            == [len(t.attempts) for t in reference.report.trials])


@pytest.mark.parametrize("backend", GENERIC_BACKENDS)
def test_backend_parity_journal_records(backend, tmp_path):
    path = tmp_path / f"{backend}.jsonl"
    run_resilient_sweep(seed_echo, list(range(4)), master_seed=3,
                        label="jp", policy=FAST, workers=2,
                        journal=path, backend=backend)
    records = [json.loads(line)
               for line in path.read_text().splitlines()]
    trials = [r for r in records if r["kind"] == "trial"]
    assert sorted(t["index"] for t in trials) == [0, 1, 2, 3]
    # Seeds and payload digests are backend-invariant.
    by_index = {t["index"]: (t["seed"], t["sha256"]) for t in trials}
    expect = {i: derive_seed(3, i, "jp") for i in range(4)}
    assert {i: s for i, (s, _) in by_index.items()} == expect
    reference = run_resilient_sweep(
        seed_echo, list(range(4)), master_seed=3, label="jp",
        policy=FAST, workers=1, backend="inline")
    assert ([by_index[i] is not None for i in range(4)]
            and reference.results()
            == [(i, expect[i]) for i in range(4)])


def test_batch_backend_matches_scalar_on_fleet_trial():
    scalar = run_resilient_sweep(
        FLEET_TRIAL, FLEET_PARAMS, master_seed=11, label="bb",
        policy=FAST, workers=1, backend="scalar")
    batch = run_resilient_sweep(
        FLEET_TRIAL, FLEET_PARAMS, master_seed=11, label="bb",
        policy=FAST, workers=1, backend="batch")
    assert batch.results() == scalar.results()
    assert (batch.report.resolution_counts()
            == scalar.report.resolution_counts())


def test_batch_backend_journal_matches_scalar(tmp_path):
    paths = {}
    for backend in ("scalar", "batch"):
        paths[backend] = tmp_path / f"{backend}.jsonl"
        run_resilient_sweep(
            FLEET_TRIAL, FLEET_PARAMS, master_seed=11, label="bb",
            policy=FAST, workers=1, journal=paths[backend],
            backend=backend)

    def digests(path):
        return {r["index"]: (r["seed"], r["sha256"])
                for r in map(json.loads,
                             path.read_text().splitlines())
                if r["kind"] == "trial"}

    assert digests(paths["batch"]) == digests(paths["scalar"])


# --- the registry ----------------------------------------------------------


def test_backend_names_sorted():
    names = backend_names()
    assert names == tuple(sorted(names))
    assert {"inline", "pool", "scalar", "batch"} <= set(names)


def test_resolve_backend_accepts_instance():
    backend = InlineBackend()
    assert resolve_backend(backend) is backend
    assert resolve_backend("inline") is BACKENDS["inline"]


def test_resolve_backend_unknown():
    with pytest.raises(ValueError, match="backend"):
        resolve_backend("warp-drive")


def test_register_backend_requires_name():
    class Nameless(ExecutionBackend):
        def execute(self, request):
            raise NotImplementedError

    with pytest.raises(ValueError, match="name"):
        register_backend(Nameless())


def test_register_custom_backend_runs_sweeps():
    class Doubling(ExecutionBackend):
        """Delegates to inline, then doubles every outcome —
        observable proof the custom backend actually executed."""

        name = "test-doubling"

        def execute(self, request):
            BACKENDS["inline"].execute(request)
            for index in [t.index for t in request.todo]:
                a, b = request.outcomes[index]
                request.outcomes[index] = (a * 2, b)

    register_backend(Doubling())
    try:
        result = run_resilient_sweep(
            seed_echo, [1, 2], master_seed=0, label="cb",
            policy=FAST, workers=1, backend="test-doubling")
        assert [a for a, _ in result.results()] == [2, 4]
    finally:
        del BACKENDS["test-doubling"]


def test_inline_backend_rejects_chaos():
    from repro.harness.chaos import ChaosPlan
    with pytest.raises(ValueError, match="isolation"):
        run_resilient_sweep(
            seed_echo, [1], master_seed=0, policy=FAST,
            chaos=ChaosPlan(faults={(0, 0): "exception"}),
            backend="inline")


def test_execution_request_clock_origin_is_sticky():
    request = ExecutionRequest(trial_fn=seed_echo, todo=[],
                               policy=FAST)
    origin = request.clock_origin()
    assert request.clock_origin() == origin
