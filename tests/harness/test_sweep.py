"""The `repro.harness` determinism contract.

A sweep's outcome must be a pure function of (trial_fn, params,
master_seed, label) — the worker count may change wall-clock time but
never a single bit of the merged result.  These tests pin that
contract on synthetic trials and then on the real thing: a seeded AES
key-recovery sweep run with 1 worker and with N.
"""

import os

import pytest

from repro.harness import (
    default_workers,
    derive_seed,
    merge_ordered,
    run_indexed,
    run_sweep,
)


def _square(item):
    return item * item


def _slow_for_even(item):
    # Uneven completion times: even items take longer, so a pool's
    # unordered completion really is out of submission order.
    total = 0
    for i in range((item % 2 == 0) * 20_000 + 10):
        total += i
    return item, total


def _seed_echo_trial(params, seed):
    return params, seed


def test_derive_seed_is_stable_and_distinct():
    assert derive_seed(7, 0, "x") == derive_seed(7, 0, "x")
    seeds = {derive_seed(7, i, "x") for i in range(100)}
    assert len(seeds) == 100          # no collisions across indices
    assert derive_seed(7, 0, "x") != derive_seed(8, 0, "x")
    assert derive_seed(7, 0, "x") != derive_seed(7, 0, "y")
    assert all(0 <= s < 2 ** 64 for s in seeds)


def test_run_indexed_preserves_submission_order():
    items = list(range(40))
    inline = run_indexed(_slow_for_even, items, workers=1)
    pooled = run_indexed(_slow_for_even, items, workers=4)
    assert pooled == inline
    assert [item for item, _ in pooled] == items


def test_run_indexed_empty_and_single():
    assert run_indexed(_square, [], workers=8) == []
    assert run_indexed(_square, [3], workers=8) == [9]


def test_run_sweep_hands_each_trial_its_derived_seed():
    sweep = run_sweep(_seed_echo_trial, ["a", "b", "c"],
                      master_seed=42, workers=1, label="echo")
    assert len(sweep) == 3
    for trial, (params, seed) in sweep:
        assert params == trial.params
        assert seed == trial.seed == derive_seed(42, trial.index,
                                                 "echo")


def test_run_sweep_worker_invariant_on_synthetic_trials():
    params = list(range(16))
    serial = run_sweep(_seed_echo_trial, params, master_seed=5,
                       workers=1, label="inv")
    parallel = run_sweep(_seed_echo_trial, params, master_seed=5,
                         workers=4, label="inv")
    assert serial.results() == parallel.results()
    assert serial.trials == parallel.trials


def test_merge_ordered_folds_in_trial_order():
    assert merge_ordered([1, 2, 3], lambda a, b: a * 10 + b) == 123
    assert merge_ordered([1, 2, 3], lambda a, b: a + b,
                         initial=10) == 16
    with pytest.raises(ValueError):
        merge_ordered([], lambda a, b: a)


def test_default_workers_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_WORKERS", "3")
    assert default_workers() == 3
    monkeypatch.setenv("REPRO_WORKERS", "0")
    assert default_workers() == 1
    monkeypatch.setenv("REPRO_WORKERS", "nope")
    assert default_workers() == max(1, os.cpu_count() or 1)


def test_aes_key_recovery_sweep_worker_invariant():
    """Acceptance criterion: the seeded AES key-recovery sweep merges
    to identical results for worker counts 1 and N."""
    from repro.core.attacks.aes_key_recovery import AESKeyRecoveryAttack
    from repro.crypto.aes import encrypt_block

    key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
    ciphertexts = [encrypt_block(key, b"sixteen byte msg"),
                   encrypt_block(key, b"another message!")]
    attack = AESKeyRecoveryAttack(key)
    serial = attack.run(ciphertexts, workers=1)
    parallel = attack.run(ciphertexts, workers=2)

    assert parallel.nibble_sets == serial.nibble_sets
    assert parallel.recovered == serial.recovered
    assert [a.candidates for a in parallel.attributions] == \
        [a.candidates for a in serial.attributions]
    # And the attack itself worked: every pinned nibble is correct.
    assert serial.all_correct and serial.bytes_recovered > 0
