"""On-disk sweep checkpointing: integrity, resume, mismatch."""

import json

import pytest

from repro.harness import (
    JournalMismatch,
    SweepJournal,
    derive_seed,
)


def record_trials(path, label="sweep", master_seed=7, count=4,
                  indices=(0, 1, 2)):
    journal = SweepJournal(path)
    journal.open(label, master_seed, count)
    for index in indices:
        journal.record(index, 0, derive_seed(master_seed, index, label),
                       {"index": index, "value": index * 10})
    journal.close()
    return path


def test_roundtrip(tmp_path):
    path = record_trials(tmp_path / "sweep.journal")
    journal = SweepJournal(path)
    completed = journal.open("sweep", 7, 4)
    journal.close()
    assert sorted(completed) == [0, 1, 2]
    attempt, result = completed[1]
    assert attempt == 0
    assert result == {"index": 1, "value": 10}


def test_mismatched_sweep_is_rejected(tmp_path):
    path = record_trials(tmp_path / "sweep.journal")
    for label, master_seed, count in (("other", 7, 4),
                                      ("sweep", 8, 4),
                                      ("sweep", 7, 5)):
        journal = SweepJournal(path)
        with pytest.raises(JournalMismatch):
            journal.open(label, master_seed, count)


def test_torn_tail_discards_suffix(tmp_path):
    path = record_trials(tmp_path / "sweep.journal",
                         indices=(0, 1, 2))
    with open(path, "a") as fh:
        fh.write('{"kind": "trial", "index"')  # torn write
    journal = SweepJournal(path)
    completed = journal.open("sweep", 7, 4)
    # Append after a torn tail must still work: the journal reopens
    # in append mode and new records land beyond the junk...
    journal.record(3, 1, derive_seed(7, 3, "sweep", 1), "late")
    journal.close()
    assert sorted(completed) == [0, 1, 2]

    # ...and the *next* load stops at the torn line, so the late
    # record (after the junk) is discarded too — ordered-append
    # semantics, documented in the module docstring.
    journal = SweepJournal(path)
    completed = journal.open("sweep", 7, 4)
    journal.close()
    assert sorted(completed) == [0, 1, 2]


def test_corrupted_payload_is_discarded(tmp_path):
    path = record_trials(tmp_path / "sweep.journal", indices=(0, 1))
    lines = path.read_text().splitlines()
    record = json.loads(lines[1])  # first trial line
    record["sha256"] = "0" * 64
    lines[1] = json.dumps(record)
    path.write_text("\n".join(lines) + "\n")
    journal = SweepJournal(path)
    completed = journal.open("sweep", 7, 4)
    journal.close()
    # Bad digest stops the scan; trial 1 (after it) is gone too.
    assert completed == {}
    assert journal.discarded == 1


def test_wrong_seed_is_discarded(tmp_path):
    path = tmp_path / "sweep.journal"
    journal = SweepJournal(path)
    journal.open("sweep", 7, 4)
    journal.record(0, 0, 12345, "tainted")  # not derive_seed(7, 0, ...)
    journal.close()
    journal = SweepJournal(path)
    assert journal.open("sweep", 7, 4) == {}
    journal.close()
    assert journal.discarded == 1


def test_out_of_range_index_is_discarded(tmp_path):
    path = tmp_path / "sweep.journal"
    journal = SweepJournal(path)
    journal.open("sweep", 7, 2)
    journal.record(5, 0, derive_seed(7, 5, "sweep"), "beyond")
    journal.close()
    journal = SweepJournal(path)
    completed = journal.open("sweep", 7, 2)
    journal.close()
    assert completed == {}


def test_record_requires_open(tmp_path):
    journal = SweepJournal(tmp_path / "x.journal")
    with pytest.raises(Exception):
        journal.record(0, 0, 1, "nope")


def test_context_manager(tmp_path):
    path = tmp_path / "cm.journal"
    with SweepJournal(path) as journal:
        journal.open("s", 1, 1)
        journal.record(0, 0, derive_seed(1, 0, "s"), 42)
    with SweepJournal(path) as journal:
        assert journal.open("s", 1, 1) == {0: (0, 42)}
