"""The fault-tolerant sweep runner: retries, watchdog, degradation."""

import json
import time

import pytest

from repro.harness import (
    SKIPPED,
    FaultPolicy,
    SweepFailure,
    derive_seed,
    run_resilient_sweep,
    run_sweep,
)
from repro.harness.resilience import collect_sweep_reports
from repro.observability import HARNESS_TID, EventTracer, MetricsRegistry

FAST = FaultPolicy(backoff_base=0.0)


def square(params, seed):
    return params * params


def seed_echo(params, seed):
    return (params, seed)


class FlakyOnFirstSeed:
    """Fails any attempt that runs with the attempt-0 seed of the
    given indices; seed lineage makes retries distinguishable."""

    def __init__(self, indices, master_seed=0, label=""):
        self.bad_seeds = {derive_seed(master_seed, i, label)
                          for i in indices}

    def __call__(self, params, seed):
        if seed in self.bad_seeds:
            raise RuntimeError("flaky first attempt")
        return (params, seed)


def always_fail(params, seed):
    raise RuntimeError("never works")


# --- inline reference path -------------------------------------------------


def test_inline_matches_run_sweep():
    params = list(range(8))
    plain = run_sweep(seed_echo, params, master_seed=3, label="x")
    resilient = run_resilient_sweep(seed_echo, params, master_seed=3,
                                    label="x", policy=FAST,
                                    workers=1)
    assert resilient.results() == plain.results()
    assert resilient.report is not None
    assert resilient.report.retries_total == 0
    assert all(t.resolution == "ok" for t in resilient.report.trials)


def test_retry_uses_fresh_seed_lineage():
    params = list(range(4))
    sweep = run_resilient_sweep(
        FlakyOnFirstSeed([1, 3]), params, policy=FAST, workers=1)
    results = sweep.results()
    for index, (p, seed) in enumerate(results):
        expected_attempt = 1 if index in (1, 3) else 0
        assert p == index
        assert seed == derive_seed(0, index, "", expected_attempt)
    report = sweep.report
    assert report.retries_total == 2
    assert report.outcome_counts()["exception"] == 2
    assert [len(t.attempts) for t in report.trials] == [1, 2, 1, 2]


# --- exhaustion modes ------------------------------------------------------


def test_exhausted_raise():
    with pytest.raises(SweepFailure) as excinfo:
        run_resilient_sweep(always_fail, [1], workers=1,
                            policy=FaultPolicy(max_attempts=2,
                                               backoff_base=0.0))
    assert excinfo.value.index == 0
    assert len(excinfo.value.attempts) == 2
    assert "exception" in str(excinfo.value)


def test_exhausted_skip_keeps_slot_alignment():
    policy = FaultPolicy(max_attempts=2, backoff_base=0.0,
                         on_exhausted="skip")
    sweep = run_resilient_sweep(
        FlakyEverySeed([1]), [10, 11, 12], policy=policy, workers=1)
    assert sweep.outcomes[1] is SKIPPED
    assert sweep.results() == [(10, derive_seed(0, 0, "")),
                               (12, derive_seed(0, 2, ""))]
    assert sweep.report.resolution_counts()["skipped"] == 1


def test_exhausted_default_substitutes():
    policy = FaultPolicy(max_attempts=1, backoff_base=0.0,
                         on_exhausted="default", default="sentinel")
    sweep = run_resilient_sweep(
        FlakyEverySeed([0]), [10, 11], policy=policy, workers=1)
    assert sweep.results() == ["sentinel", (11, derive_seed(0, 1, ""))]
    assert sweep.report.trials[0].resolution == "defaulted"


class FlakyEverySeed:
    """Fails *every* attempt of the given indices (any seed in their
    lineage), succeeds elsewhere."""

    def __init__(self, indices, master_seed=0, label="",
                 max_attempts=8):
        self.bad_seeds = {
            derive_seed(master_seed, i, label, attempt)
            for i in indices for attempt in range(max_attempts)}

    def __call__(self, params, seed):
        if seed in self.bad_seeds:
            raise RuntimeError("flaky trial")
        return (params, seed)


# --- verify hook -----------------------------------------------------------


def reject_odd(value):
    return value % 2 == 0


def parity_of_attempt(params, seed):
    # odd on attempt 0 of index 0, even on its retry
    return 1 if seed == derive_seed(0, 0, "") else 2


def test_verify_hook_rejects_and_retries():
    policy = FaultPolicy(backoff_base=0.0, verify=reject_odd)
    sweep = run_resilient_sweep(parity_of_attempt, [0], policy=policy,
                                workers=1)
    assert sweep.results() == [2]
    report = sweep.report
    assert report.outcome_counts()["rejected"] == 1
    assert report.trials[0].attempts[0].outcome == "rejected"
    assert report.trials[0].attempts[1].outcome == "ok"


# --- watchdog (supervised path) -------------------------------------------


def sleep_on_first_seed(params, seed):
    if seed == derive_seed(0, 0, "slow"):
        time.sleep(30.0)
    return params


def test_watchdog_kills_hung_attempt():
    policy = FaultPolicy(timeout=1.0, max_attempts=3,
                         backoff_base=0.0)
    start = time.monotonic()
    sweep = run_resilient_sweep(sleep_on_first_seed, [7, 8],
                                label="slow", policy=policy)
    elapsed = time.monotonic() - start
    assert sweep.results() == [7, 8]
    assert elapsed < 20.0
    assert sweep.report.outcome_counts()["timeout"] == 1


# --- worker-count invariance ----------------------------------------------


def test_worker_count_invariance():
    params = list(range(10))
    solo = run_resilient_sweep(FlakyOnFirstSeed([2, 5]), params,
                               policy=FAST, workers=1)
    multi = run_resilient_sweep(FlakyOnFirstSeed([2, 5]), params,
                                policy=FAST, workers=4)
    assert multi.results() == solo.results()


# --- policy mechanics ------------------------------------------------------


def test_backoff_schedule():
    policy = FaultPolicy(backoff_base=0.1, backoff_factor=2.0,
                         backoff_cap=0.5)
    assert policy.backoff(0) == 0.0
    assert policy.backoff(1) == pytest.approx(0.1)
    assert policy.backoff(2) == pytest.approx(0.2)
    assert policy.backoff(5) == pytest.approx(0.5)  # capped


@pytest.mark.parametrize("kwargs", [
    {"max_attempts": 0},
    {"on_exhausted": "explode"},
    {"timeout": 0.0},
    {"timeout": -1.0},
])
def test_policy_validation(kwargs):
    with pytest.raises(ValueError):
        FaultPolicy(**kwargs)


# --- accounting sinks ------------------------------------------------------


def test_report_records_into_metrics_json():
    metrics = MetricsRegistry()
    run_resilient_sweep(FlakyOnFirstSeed([1]), [0, 1, 2],
                        policy=FAST, metrics=metrics, workers=1)
    dump = json.loads(json.dumps(metrics.dump()))
    assert dump["harness.sweep.trials"] == 3
    assert dump["harness.sweep.attempts"] == 4
    assert dump["harness.sweep.retries"] == 1
    assert dump["harness.sweep.failures.exception"] == 1
    assert dump["harness.sweep.resolutions.ok"] == 3


def test_report_emits_trace_slices():
    tracer = EventTracer(capacity=64)
    run_resilient_sweep(square, [1, 2], label="t", policy=FAST,
                        tracer=tracer, workers=1)
    slices = [e for e in tracer.events() if e.tid == HARNESS_TID]
    assert len(slices) == 2
    assert {e.name for e in slices} == {"t[0]#0", "t[1]#0"}
    assert all(e.args["outcome"] == "ok" for e in slices)


def test_collector_sees_reports():
    with collect_sweep_reports() as reports:
        run_resilient_sweep(square, [1], policy=FAST, label="a",
                            workers=1)
        run_resilient_sweep(square, [2], policy=FAST, label="b",
                            workers=1)
    assert [r.label for r in reports] == ["a", "b"]


def test_report_to_dict_is_json_ready():
    sweep = run_resilient_sweep(FlakyOnFirstSeed([0]), [5],
                                policy=FAST, workers=1)
    payload = json.loads(json.dumps(sweep.report.to_dict()))
    assert payload["attempts_total"] == 2
    assert payload["trials"][0]["attempts"][0]["outcome"] == "exception"
