"""Chaos acceptance: the resilience layer under injected faults.

The contract being proven (ISSUE acceptance criteria):

1. a sweep whose workers crash, hang past the watchdog timeout, raise
   and corrupt results still completes via retries, and its merged
   results are **bit-identical** to a fault-free run;
2. an interrupted journalled sweep, resumed, reruns **zero** completed
   trials;
3. the failure/attempt accounting shows up in exported metrics JSON.

Trials here are *seed-pure* (results depend only on params), exactly
like the simulation trials (a machine is fully seeded from its
parameters), so retries with fresh seed lineage reproduce the same
values.
"""

import json
import pickle

import pytest

from repro.harness import (
    ChaosError,
    ChaosPlan,
    FaultPolicy,
    derive_seed,
    run_resilient_sweep,
    run_sweep,
)
from repro.observability import MetricsRegistry


def bit_identical(results_a, results_b):
    """Element-wise bit-identity: every merged result serialises to
    exactly the same bytes.  (Whole-list ``pickle.dumps`` is *not*
    used: it memoises shared key-string objects, so it encodes object
    identity across elements, not content.)"""
    return len(results_a) == len(results_b) and all(
        pickle.dumps(a) == pickle.dumps(b)
        for a, b in zip(results_a, results_b))

#: Enough attempts to outlast every plan below; no backoff delays.
PATIENT = FaultPolicy(timeout=2.0, max_attempts=5, backoff_base=0.0)


def pure_trial(params, seed):
    """Seed-pure: the result is a function of params alone."""
    return {"params": params, "value": params * params,
            "blob": bytes(range(params % 7, params % 7 + 16))}


# --- plan mechanics --------------------------------------------------------


def test_plan_rejects_unknown_kind():
    with pytest.raises(ValueError):
        ChaosPlan(faults={(0, 0): "meteor"})


def test_seeded_plan_is_deterministic():
    one = ChaosPlan.seeded(42, 20, rate=0.7)
    two = ChaosPlan.seeded(42, 20, rate=0.7)
    assert one.faults == two.faults
    assert one.faults  # at rate 0.7 over 20 trials, some faults exist
    assert ChaosPlan.seeded(43, 20, rate=0.7).faults != one.faults


def test_mangle_flips_only_targeted_attempt():
    plan = ChaosPlan(faults={(3, 1): "corrupt"})
    payload = b"\x01\x02\x03"
    assert plan.mangle(3, 1, payload) != payload
    assert plan.mangle(3, 0, payload) == payload
    assert plan.mangle(0, 1, payload) == payload


def test_chaos_exception_is_catchable():
    plan = ChaosPlan(faults={(0, 0): "exception"})
    with pytest.raises(ChaosError):
        plan.before(0, 0)


# --- the acceptance property ----------------------------------------------


def test_chaos_run_is_bit_identical_to_fault_free():
    """Crashes + hangs past the timeout + exceptions + corrupted
    results: the sweep completes via retries and merges bit-identical
    to a clean run."""
    params = list(range(8))
    plan = ChaosPlan(faults={
        (0, 0): "crash",
        (1, 0): "hang",
        (2, 0): "exception",
        (3, 0): "corrupt",
        (4, 0): "crash", (4, 1): "corrupt",   # two-deep ladder
        (5, 0): "exception", (5, 1): "hang",
    }, hang_seconds=30.0)

    clean = run_sweep(pure_trial, params, master_seed=11,
                      label="acceptance")
    chaotic = run_resilient_sweep(pure_trial, params, master_seed=11,
                                  label="acceptance", policy=PATIENT,
                                  chaos=plan, workers=4)

    assert chaotic.results() == clean.results()
    assert bit_identical(chaotic.results(), clean.results())

    report = chaotic.report
    counts = report.outcome_counts()
    assert counts["crash"] == 2
    assert counts["timeout"] == 2      # hangs die by watchdog
    assert counts["exception"] == 2
    assert counts["corrupt"] == 2
    assert report.retries_total == 8
    assert all(t.resolution == "ok" for t in report.trials)


def test_chaos_worker_count_invariance():
    params = list(range(6))
    plan = ChaosPlan.seeded(5, len(params), rate=0.6,
                            kinds=("exception", "corrupt"),
                            max_faults_per_trial=2)
    runs = [run_resilient_sweep(pure_trial, params, master_seed=5,
                                label="wc", policy=PATIENT,
                                chaos=plan, workers=workers)
            for workers in (1, 3)]
    assert bit_identical(runs[0].results(), runs[1].results())
    # The *failure schedule* is also identical: same plan, same keys.
    assert [len(t.attempts) for t in runs[0].report.trials] == \
        [len(t.attempts) for t in runs[1].report.trials]


# --- journalled resume -----------------------------------------------------


def fail_if_called(params, seed):
    raise AssertionError("journalled trial was rerun")


def test_resumed_sweep_reruns_zero_completed_trials(tmp_path):
    journal_path = tmp_path / "resume.journal"
    params = list(range(5))

    # First run is interrupted: trial 3 never completes (its ladder is
    # exhausted and skipped), everything else lands in the journal.
    exhaust_3 = ChaosPlan(faults={
        (3, a): "exception" for a in range(PATIENT.max_attempts)})
    skip = FaultPolicy(timeout=2.0, max_attempts=PATIENT.max_attempts,
                       backoff_base=0.0, on_exhausted="skip")
    first = run_resilient_sweep(pure_trial, params, master_seed=9,
                                label="resume", policy=skip,
                                chaos=exhaust_3, journal=journal_path,
                                workers=2)
    assert first.report.resolution_counts()["skipped"] == 1

    # Resume against the journal with a trial fn that *proves* reruns:
    # only the missing trial may execute.
    calls = []

    def only_missing(params, seed):
        calls.append(params)
        return pure_trial(params, seed)

    resumed = run_resilient_sweep(only_missing, params, master_seed=9,
                                  label="resume",
                                  policy=FaultPolicy(backoff_base=0.0),
                                  journal=journal_path, workers=1)
    assert calls == [3]
    assert bit_identical(
        resumed.results(),
        run_sweep(pure_trial, params, master_seed=9,
                  label="resume").results())
    resolutions = resumed.report.resolution_counts()
    assert resolutions["journal"] == 4
    assert resolutions["ok"] == 1

    # A third run reruns nothing at all.
    final = run_resilient_sweep(fail_if_called, params, master_seed=9,
                                label="resume",
                                policy=FaultPolicy(backoff_base=0.0),
                                journal=journal_path, workers=1)
    assert final.report.resolution_counts()["journal"] == 5
    assert bit_identical(final.results(), resumed.results())


# --- metrics export --------------------------------------------------------


def test_chaos_accounting_reaches_metrics_json():
    metrics = MetricsRegistry()
    plan = ChaosPlan(faults={(0, 0): "exception", (1, 0): "corrupt"})
    run_resilient_sweep(pure_trial, [4, 5, 6], master_seed=2,
                        label="chaotic", policy=PATIENT, chaos=plan,
                        workers=2, metrics=metrics)
    dump = json.loads(json.dumps(metrics.dump()))
    assert dump["harness.sweep.chaotic.trials"] == 3
    assert dump["harness.sweep.chaotic.failures.exception"] == 1
    assert dump["harness.sweep.chaotic.failures.corrupt"] == 1
    assert dump["harness.sweep.chaotic.retries"] == 2
    assert dump["harness.sweep.chaotic.resolutions.ok"] == 3
    assert "harness.sweep.chaotic.wall_seconds" in dump


def test_seed_lineage_under_chaos_is_fresh():
    """Retried attempts run with the derived attempt-k seed (so
    seed-*dependent* trials legitimately differ after retries — the
    documented fresh-lineage contract)."""
    plan = ChaosPlan(faults={(0, 0): "exception"})
    sweep = run_resilient_sweep(lambda p, s: s, [0], master_seed=4,
                                label="lineage", policy=PATIENT,
                                chaos=plan, workers=1)
    assert sweep.results() == [derive_seed(4, 0, "lineage", attempt=1)]
