import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernel.frames import FrameAllocator
from repro.mem.physical import PhysicalMemory
from repro.vm.pagetable import (
    PTE_PRESENT,
    PTE_USER,
    PTE_WRITABLE,
    PageTableError,
    PageTables,
    encode_entry,
    entry_flags,
    entry_frame,
    entry_present,
)


@pytest.fixture
def tables():
    phys = PhysicalMemory(1024)
    frames = FrameAllocator(1024)
    return PageTables(phys, frames.allocate), phys, frames


def test_entry_codec():
    entry = encode_entry(0x123, PTE_PRESENT | PTE_WRITABLE)
    assert entry_frame(entry) == 0x123
    assert entry_flags(entry) == PTE_PRESENT | PTE_WRITABLE
    assert entry_present(entry)
    assert not entry_present(encode_entry(0x123, 0))


def test_encode_rejects_negative_frame():
    with pytest.raises(ValueError):
        encode_entry(-1, 0)


def test_map_and_translate(tables):
    pt, phys, frames = tables
    frame = frames.allocate()
    pt.map(0x40000000, frame)
    assert pt.translate(0x40000123) == (frame << 12) | 0x123


def test_translate_unmapped_raises(tables):
    pt, _phys, _frames = tables
    with pytest.raises(PageTableError):
        pt.translate(0xDEAD000)


def test_software_walk_visits_four_levels(tables):
    pt, _phys, frames = tables
    frame = frames.allocate()
    pt.map(0x1000, frame)
    walk = pt.software_walk(0x1000)
    assert walk.complete
    assert [s.level for s in walk.steps] == [0, 1, 2, 3]
    assert walk.present
    assert walk.frame == frame
    assert len(walk.entry_paddrs()) == 4


def test_software_walk_stops_at_missing_upper_level(tables):
    pt, _phys, _frames = tables
    walk = pt.software_walk(0x123456789000)
    assert not walk.complete
    assert len(walk.steps) == 1
    with pytest.raises(PageTableError):
        walk.pte


def test_set_present_toggle(tables):
    pt, _phys, frames = tables
    frame = frames.allocate()
    pt.map(0x2000, frame)
    assert pt.is_present(0x2000)
    pt.set_present(0x2000, False)
    assert not pt.is_present(0x2000)
    with pytest.raises(PageTableError):
        pt.translate(0x2000)
    pt.set_present(0x2000, True)
    assert pt.translate(0x2000) == frame << 12


def test_clear_present_keeps_frame(tables):
    pt, _phys, frames = tables
    frame = frames.allocate()
    pt.map(0x3000, frame)
    pt.set_present(0x3000, False)
    walk = pt.software_walk(0x3000)
    assert walk.pte.frame == frame  # minor fault: translation intact


def test_update_flags(tables):
    pt, _phys, frames = tables
    frame = frames.allocate()
    pt.map(0x4000, frame, PTE_PRESENT)
    pt.update_flags(0x4000, set_flags=PTE_USER)
    walk = pt.software_walk(0x4000)
    assert walk.pte.entry & PTE_USER
    pt.update_flags(0x4000, clear_flags=PTE_USER)
    walk = pt.software_walk(0x4000)
    assert not walk.pte.entry & PTE_USER


def test_unmap(tables):
    pt, _phys, frames = tables
    frame = frames.allocate()
    pt.map(0x5000, frame)
    pt.unmap(0x5000)
    walk = pt.software_walk(0x5000)
    assert not walk.present
    assert walk.pte.entry == 0


def test_distinct_pages_distinct_leaf_entries(tables):
    pt, _phys, frames = tables
    pt.map(0x1000, frames.allocate())
    pt.map(0x2000, frames.allocate())
    assert pt.leaf_entry_paddr(0x1000) != pt.leaf_entry_paddr(0x2000)


def test_entry_paddr_bounds():
    with pytest.raises(PageTableError):
        PageTables.entry_paddr(1, 512)


def test_tables_live_in_physical_memory(tables):
    """Page tables are real data: their entries are readable words."""
    pt, phys, frames = tables
    frame = frames.allocate()
    pt.map(0x7000, frame)
    leaf_paddr = pt.leaf_entry_paddr(0x7000)
    raw = phys.read(leaf_paddr, 8)
    assert entry_frame(raw) == frame
    assert entry_present(raw)


@given(st.lists(st.integers(min_value=0, max_value=(1 << 36) - 1),
                min_size=1, max_size=20, unique=True))
@settings(max_examples=25, deadline=None)
def test_many_mappings_consistent(vpns):
    """Property: map N pages, every translation resolves to its own
    frame and walks are complete."""
    phys = PhysicalMemory(1 << 14)
    frames = FrameAllocator(1 << 14)
    pt = PageTables(phys, frames.allocate)
    mapping = {}
    for vpn in vpns:
        frame = frames.allocate()
        pt.map(vpn << 12, frame)
        mapping[vpn] = frame
    for vpn, frame in mapping.items():
        assert pt.translate(vpn << 12) == frame << 12
