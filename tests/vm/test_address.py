import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.vm import address as vaddr


def test_constants():
    assert vaddr.PAGE_SIZE == 4096
    assert vaddr.ENTRIES_PER_TABLE == 512
    assert vaddr.NUM_LEVELS == 4
    assert vaddr.MAX_VADDR == 1 << 48


def test_split_known_value():
    va = (3 << 39) | (5 << 30) | (7 << 21) | (9 << 12) | 0x123
    assert vaddr.split(va) == (3, 5, 7, 9, 0x123)


def test_level_index_bounds():
    with pytest.raises(ValueError):
        vaddr.level_index(0, 4)
    with pytest.raises(ValueError):
        vaddr.level_index(0, -1)


def test_vpn_and_offset():
    assert vaddr.vpn(0x5123) == 5
    assert vaddr.page_offset(0x5123) == 0x123
    assert vaddr.page_base(0x5123) == 0x5000


def test_out_of_range_rejected():
    with pytest.raises(ValueError):
        vaddr.vpn(1 << 48)
    with pytest.raises(ValueError):
        vaddr.check_vaddr(-1)


def test_same_page():
    assert vaddr.same_page(0x1000, 0x1FFF)
    assert not vaddr.same_page(0x1FFF, 0x2000)


def test_prefix_monotone_with_level():
    va = 0x7FFF_1234_5678
    assert vaddr.prefix(va, 0) == va >> 39
    assert vaddr.prefix(va, 3) == va >> 12


@given(st.integers(min_value=0, max_value=(1 << 48) - 1))
@settings(max_examples=200, deadline=None)
def test_split_reassembles(va):
    i0, i1, i2, i3, offset = vaddr.split(va)
    rebuilt = ((i0 << 39) | (i1 << 30) | (i2 << 21) | (i3 << 12)
               | offset)
    assert rebuilt == va
    assert 0 <= offset < vaddr.PAGE_SIZE
    for index in (i0, i1, i2, i3):
        assert 0 <= index < vaddr.ENTRIES_PER_TABLE


@given(st.integers(min_value=0, max_value=(1 << 48) - 1),
       st.integers(min_value=0, max_value=3))
@settings(max_examples=100, deadline=None)
def test_prefix_consistent_with_level_index(va, level):
    assert vaddr.prefix(va, level) & 0x1FF == vaddr.level_index(va, level)
