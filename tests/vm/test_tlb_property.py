"""Property-based TLB validation against a reference model."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.vm.tlb import TLB, TLBConfig

_OPS = st.lists(
    st.tuples(
        st.sampled_from(["insert", "lookup", "invalidate",
                         "flush_pcid"]),
        st.integers(min_value=1, max_value=3),        # pcid
        st.integers(min_value=0, max_value=31),       # vpn
    ),
    max_size=300)


@given(_OPS)
@settings(max_examples=50, deadline=None)
def test_tlb_never_lies(ops):
    """Whatever the eviction pattern, a TLB hit must return the frame
    most recently inserted for that (pcid, vpn); misses are always
    allowed (capacity), stale hits never."""
    tlb = TLB(TLBConfig("T", entries=8, ways=2))
    reference = {}
    for op, pcid, vpn in ops:
        if op == "insert":
            frame = (pcid << 8) | vpn
            tlb.insert(pcid, vpn, frame=frame)
            reference[(pcid, vpn)] = frame
        elif op == "lookup":
            entry = tlb.lookup(pcid, vpn)
            if entry is not None:
                assert (pcid, vpn) in reference
                assert entry.frame == reference[(pcid, vpn)]
        elif op == "invalidate":
            tlb.invalidate(pcid, vpn)
            reference.pop((pcid, vpn), None)
        else:
            tlb.flush_pcid(pcid)
            reference = {k: v for k, v in reference.items()
                         if k[0] != pcid}


@given(_OPS)
@settings(max_examples=30, deadline=None)
def test_tlb_capacity_respected(ops):
    tlb = TLB(TLBConfig("T", entries=8, ways=2))
    for op, pcid, vpn in ops:
        if op == "insert":
            tlb.insert(pcid, vpn, frame=1)
        assert tlb.occupancy() <= 8
