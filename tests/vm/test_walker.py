import pytest

from repro.kernel.frames import FrameAllocator
from repro.mem.hierarchy import MemoryHierarchy
from repro.mem.physical import PhysicalMemory
from repro.vm.pagetable import PTE_ACCESSED, PTE_DIRTY, PageTables, entry_flags
from repro.vm.pwc import PageWalkCache
from repro.vm.walker import PageWalker


@pytest.fixture
def setup():
    phys = PhysicalMemory(4096)
    frames = FrameAllocator(4096)
    hierarchy = MemoryHierarchy()
    pwc = PageWalkCache()
    walker = PageWalker(phys, hierarchy, pwc)
    tables = PageTables(phys, frames.allocate)
    return phys, frames, hierarchy, pwc, walker, tables


def test_successful_walk(setup):
    _phys, frames, _h, _pwc, walker, tables = setup
    frame = frames.allocate()
    tables.map(0x10000, frame)
    result = walker.walk(1, tables.root_frame, 0x10000)
    assert not result.faulted
    assert result.frame == frame
    assert len(result.steps) == 4


def test_walk_latency_cold_vs_warm(setup):
    """A cold walk pays DRAM per level; a warm one hits the PWC and
    the caches — the Replayer's §4.1.2 tuning range."""
    _phys, frames, _h, _pwc, walker, tables = setup
    tables.map(0x10000, frames.allocate())
    cold = walker.walk(1, tables.root_frame, 0x10000)
    warm = walker.walk(1, tables.root_frame, 0x10000)
    assert cold.latency > 1000
    assert warm.latency < 30
    assert warm.pwc_hits == 3


def test_fault_on_clear_present(setup):
    _phys, frames, _h, _pwc, walker, tables = setup
    tables.map(0x10000, frames.allocate())
    tables.set_present(0x10000, False)
    result = walker.walk(1, tables.root_frame, 0x10000)
    assert result.faulted
    assert result.fault.level == 3
    assert result.frame is None
    assert walker.stats.faults == 1


def test_fault_on_missing_upper_level(setup):
    _phys, _frames, _h, _pwc, walker, tables = setup
    result = walker.walk(1, tables.root_frame, 0x7FFF00000000)
    assert result.faulted
    assert result.fault.level == 0
    assert len(result.steps) == 1


def test_fault_carries_metadata(setup):
    _phys, frames, _h, _pwc, walker, tables = setup
    tables.map(0x10000, frames.allocate())
    tables.set_present(0x10000, False)
    result = walker.walk(1, tables.root_frame, 0x10000,
                         is_write=True, pc=42, context_id=1)
    assert result.fault.is_write
    assert result.fault.pc == 42
    assert result.fault.context_id == 1
    assert result.fault.page_aligned_va == 0x10000
    assert result.fault.vpn == 0x10


def test_accessed_dirty_bits_set(setup):
    phys, frames, _h, _pwc, walker, tables = setup
    tables.map(0x10000, frames.allocate())
    walker.walk(1, tables.root_frame, 0x10000)
    leaf = tables.software_walk(0x10000).pte
    assert entry_flags(leaf.entry) & PTE_ACCESSED
    assert not entry_flags(leaf.entry) & PTE_DIRTY
    walker.walk(1, tables.root_frame, 0x10000, is_write=True)
    leaf = tables.software_walk(0x10000).pte
    assert entry_flags(leaf.entry) & PTE_DIRTY


def test_walk_fills_caches(setup):
    """PTE lines land in the data caches — the state the Replayer
    flushes between replays."""
    _phys, frames, hierarchy, _pwc, walker, tables = setup
    tables.map(0x10000, frames.allocate())
    walker.walk(1, tables.root_frame, 0x10000)
    leaf_paddr = tables.leaf_entry_paddr(0x10000)
    assert hierarchy.peek_level(leaf_paddr) == 0


def test_flushed_pte_lines_lengthen_walk(setup):
    _phys, frames, hierarchy, pwc, walker, tables = setup
    tables.map(0x10000, frames.allocate())
    walker.walk(1, tables.root_frame, 0x10000)
    # Flush leaf PTE line only: walk pays one DRAM trip.
    leaf_paddr = tables.leaf_entry_paddr(0x10000)
    hierarchy.flush_line(leaf_paddr)
    partial = walker.walk(1, tables.root_frame, 0x10000)
    assert 300 < partial.latency < 600


def test_leaf_race_hook_changes_outcome(setup):
    """§7.2: the OS flips the present bit just before the walker reads
    the leaf entry."""
    phys, frames, _h, _pwc, walker, tables = setup
    frame = frames.allocate()
    tables.map(0x10000, frame)
    tables.set_present(0x10000, False)

    def racer(pcid, va, entry):
        return entry | 1  # set PRESENT

    walker.leaf_race_hook = racer
    result = walker.walk(1, tables.root_frame, 0x10000)
    assert not result.faulted
    assert result.frame == frame
    # The racer's write is visible in memory afterwards.
    assert tables.is_present(0x10000)


def test_leaf_race_hook_none_keeps_fault(setup):
    _phys, frames, _h, _pwc, walker, tables = setup
    tables.map(0x10000, frames.allocate())
    tables.set_present(0x10000, False)
    walker.leaf_race_hook = lambda pcid, va, entry: None
    assert walker.walk(1, tables.root_frame, 0x10000).faulted


def test_stats_accumulate(setup):
    _phys, frames, _h, _pwc, walker, tables = setup
    tables.map(0x10000, frames.allocate())
    walker.walk(1, tables.root_frame, 0x10000)
    walker.walk(1, tables.root_frame, 0x10000)
    assert walker.stats.walks == 2
    assert walker.stats.total_latency > 0
