import pytest

from repro.vm.tlb import TLB, TLBConfig, TLBHierarchy


def small_tlb(entries=8, ways=2):
    return TLB(TLBConfig("T", entries=entries, ways=ways))


def test_geometry_validation():
    with pytest.raises(ValueError):
        TLBConfig("bad", entries=10, ways=3).num_sets


def test_miss_then_hit():
    tlb = small_tlb()
    assert tlb.lookup(1, 0x40) is None
    tlb.insert(1, 0x40, frame=7)
    entry = tlb.lookup(1, 0x40)
    assert entry is not None and entry.frame == 7
    assert tlb.stats.hits == 1 and tlb.stats.misses == 1


def test_pcid_isolation():
    tlb = small_tlb()
    tlb.insert(1, 0x40, frame=7)
    assert tlb.lookup(2, 0x40) is None


def test_lru_within_set():
    tlb = small_tlb(entries=4, ways=2)  # 2 sets
    # vpns 0 and 2 map to set 0.
    tlb.insert(1, 0, frame=10)
    tlb.insert(1, 2, frame=20)
    tlb.lookup(1, 0)            # refresh vpn 0
    tlb.insert(1, 4, frame=30)  # set 0 full: evicts vpn 2
    assert tlb.contains(1, 0)
    assert not tlb.contains(1, 2)
    assert tlb.stats.evictions == 1


def test_insert_updates_existing():
    tlb = small_tlb()
    tlb.insert(1, 0x40, frame=7)
    tlb.insert(1, 0x40, frame=9)
    assert tlb.lookup(1, 0x40).frame == 9
    assert tlb.occupancy() == 1


def test_invalidate():
    tlb = small_tlb()
    tlb.insert(1, 0x40, frame=7)
    assert tlb.invalidate(1, 0x40)
    assert not tlb.contains(1, 0x40)
    assert not tlb.invalidate(1, 0x40)


def test_flush_pcid():
    tlb = small_tlb()
    tlb.insert(1, 0x40, frame=7)
    tlb.insert(2, 0x41, frame=8)
    tlb.flush_pcid(1)
    assert not tlb.contains(1, 0x40)
    assert tlb.contains(2, 0x41)


def test_flush_all():
    tlb = small_tlb()
    tlb.insert(1, 0x40, frame=7)
    tlb.flush_all()
    assert tlb.occupancy() == 0


# --- two-level hierarchy -----------------------------------------------


def test_hierarchy_insert_fills_l1_and_l2():
    h = TLBHierarchy()
    h.insert(1, 0x10, frame=5)
    assert h.l1d.contains(1, 0x10)
    assert h.l2.contains(1, 0x10)
    assert not h.l1i.contains(1, 0x10)


def test_hierarchy_l2_hit_refills_l1():
    h = TLBHierarchy()
    h.insert(1, 0x10, frame=5)
    h.l1d.invalidate(1, 0x10)
    entry, latency = h.lookup(1, 0x10)
    assert entry.frame == 5
    assert latency == h.l1d.latency + h.l2.latency
    assert h.l1d.contains(1, 0x10)


def test_hierarchy_l1_hit_latency():
    h = TLBHierarchy()
    h.insert(1, 0x10, frame=5)
    _entry, latency = h.lookup(1, 0x10)
    assert latency == h.l1d.latency


def test_hierarchy_miss_latency():
    h = TLBHierarchy()
    entry, latency = h.lookup(1, 0x99)
    assert entry is None
    assert latency == h.l1d.latency + h.l2.latency


def test_hierarchy_instruction_side():
    h = TLBHierarchy()
    h.insert(1, 0x10, frame=5, is_instruction=True)
    assert h.l1i.contains(1, 0x10)
    assert not h.l1d.contains(1, 0x10)
    entry, _lat = h.lookup(1, 0x10, is_instruction=True)
    assert entry is not None


def test_hierarchy_invalidate_everywhere():
    h = TLBHierarchy()
    h.insert(1, 0x10, frame=5)
    h.insert(1, 0x10, frame=5, is_instruction=True)
    h.invalidate(1, 0x10)
    assert not h.l1d.contains(1, 0x10)
    assert not h.l1i.contains(1, 0x10)
    assert not h.l2.contains(1, 0x10)


def test_hierarchy_flush_pcid_and_all():
    h = TLBHierarchy()
    h.insert(1, 0x10, frame=5)
    h.insert(2, 0x20, frame=6)
    h.flush_pcid(1)
    assert not h.l2.contains(1, 0x10)
    assert h.l2.contains(2, 0x20)
    h.flush_all()
    assert h.l2.occupancy() == 0
