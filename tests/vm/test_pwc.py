from repro.vm import address as vaddr
from repro.vm.pwc import PageWalkCache, PWCConfig


def test_leaf_level_never_cached():
    pwc = PageWalkCache()
    pwc.insert(1, 0x1000, 3, 0xABC)
    assert pwc.lookup(1, 0x1000, 3) is None
    assert len(pwc) == 0


def test_upper_levels_cached():
    pwc = PageWalkCache()
    for level in (0, 1, 2):
        pwc.insert(1, 0x1000, level, 0x100 + level)
    for level in (0, 1, 2):
        assert pwc.lookup(1, 0x1000, level) == 0x100 + level


def test_pcid_tagging():
    pwc = PageWalkCache()
    pwc.insert(1, 0x1000, 0, 0xAA)
    assert pwc.lookup(2, 0x1000, 0) is None


def test_shared_prefix_hits():
    """Two addresses sharing the upper walk path share PWC entries."""
    pwc = PageWalkCache()
    va1 = 0x1000
    va2 = 0x1000 + vaddr.PAGE_SIZE  # same PGD/PUD/PMD path
    pwc.insert(1, va1, 0, 0xAA)
    assert vaddr.prefix(va1, 0) == vaddr.prefix(va2, 0)
    assert pwc.lookup(1, va2, 0) == 0xAA


def test_distinct_pmd_paths_do_not_alias():
    pwc = PageWalkCache()
    va1 = 0x1000
    va2 = 0x1000 + (1 << 21)  # different PMD entry
    pwc.insert(1, va1, 2, 0xAA)
    assert pwc.lookup(1, va2, 2) is None


def test_lru_capacity():
    pwc = PageWalkCache(PWCConfig(entries=2))
    pwc.insert(1, 0x0, 0, 1)
    pwc.insert(1, 1 << 39, 0, 2)
    pwc.lookup(1, 0x0, 0)              # refresh first
    pwc.insert(1, 2 << 39, 0, 3)       # evicts second
    assert pwc.lookup(1, 0x0, 0) == 1
    assert pwc.lookup(1, 1 << 39, 0) is None


def test_invalidate_va():
    pwc = PageWalkCache()
    for level in (0, 1, 2):
        pwc.insert(1, 0x1000, level, level)
    pwc.invalidate_va(1, 0x1000)
    for level in (0, 1, 2):
        assert pwc.lookup(1, 0x1000, level) is None


def test_flush_all():
    pwc = PageWalkCache()
    pwc.insert(1, 0x1000, 0, 5)
    pwc.flush_all()
    assert len(pwc) == 0


def test_stats():
    pwc = PageWalkCache()
    pwc.lookup(1, 0x1000, 0)
    pwc.insert(1, 0x1000, 0, 5)
    pwc.lookup(1, 0x1000, 0)
    assert pwc.stats.misses == 1
    assert pwc.stats.hits == 1
