import pytest

from repro.kernel.process import ProcessError
from repro.vm import address as vaddr


def test_alloc_page_aligned_and_disjoint(kernel):
    process = kernel.create_process("p")
    a = process.alloc(100, "a")
    b = process.alloc(100, "b")
    assert a % vaddr.PAGE_SIZE == 0
    assert b % vaddr.PAGE_SIZE == 0
    assert not vaddr.same_page(a, b)


def test_alloc_rounds_to_pages(kernel):
    process = kernel.create_process("p")
    base = process.alloc(vaddr.PAGE_SIZE + 1, "big")
    vma = process.vma_containing(base)
    assert vma.size == 2 * vaddr.PAGE_SIZE


def test_alloc_populates_mappings(kernel):
    process = kernel.create_process("p")
    base = process.alloc(4096, "data")
    assert process.page_tables.is_present(base)
    assert vaddr.vpn(base) in process.page_frames


def test_lazy_alloc_not_mapped(kernel):
    process = kernel.create_process("p")
    base = process.alloc(4096, "lazy", populate=False)
    walk = process.page_tables.software_walk(base)
    assert not walk.present


def test_ensure_mapped_demand_pages(kernel):
    process = kernel.create_process("p")
    base = process.alloc(4096, "lazy", populate=False)
    frame = process.ensure_mapped(base + 100)
    assert process.page_tables.is_present(base)
    assert process.page_frames[vaddr.vpn(base)] == frame


def test_ensure_mapped_outside_vma_raises(kernel):
    process = kernel.create_process("p")
    with pytest.raises(ProcessError):
        process.ensure_mapped(0x7FFF_0000_0000)


def test_vma_named(kernel):
    process = kernel.create_process("p")
    process.alloc(4096, "special")
    assert process.vma_named("special").name == "special"
    with pytest.raises(ProcessError):
        process.vma_named("missing")


def test_debug_read_write(kernel):
    process = kernel.create_process("p")
    base = process.alloc(4096, "data")
    process.write(base + 8, 777)
    assert process.read(base + 8) == 777


def test_write_words_read_words(kernel):
    process = kernel.create_process("p")
    base = process.alloc(4096, "data")
    process.write_words(base, [1, 2, 3])
    assert process.read_words(base, 3) == [1, 2, 3]
    process.write_words(base, [9, 8], width=4)
    assert process.read_words(base, 2, width=4) == [9, 8]


def test_translate_any_survives_present_clear(kernel):
    """The kernel can still find the frame of a non-present page —
    what lets the Replayer probe during the attack."""
    process = kernel.create_process("p")
    base = process.alloc(4096, "data")
    process.write(base, 42)
    kernel.set_present(process, base, False)
    with pytest.raises(Exception):
        process.translate(base)
    assert process.read(base) == 42  # translate_any path


def test_distinct_pcids(kernel):
    p1 = kernel.create_process("a")
    p2 = kernel.create_process("b")
    assert p1.pcid != p2.pcid
    assert p1.root_frame != p2.root_frame
