import pytest

from repro.kernel.frames import FrameAllocator, OutOfMemoryError


def test_allocation_skips_reserved():
    alloc = FrameAllocator(64, reserved=16)
    assert alloc.allocate() == 16


def test_unique_until_exhaustion():
    alloc = FrameAllocator(20, reserved=16)
    frames = [alloc.allocate() for _ in range(4)]
    assert len(set(frames)) == 4
    with pytest.raises(OutOfMemoryError):
        alloc.allocate()


def test_free_recycles():
    alloc = FrameAllocator(18, reserved=16)
    a = alloc.allocate()
    b = alloc.allocate()
    alloc.free(a)
    assert alloc.allocate() == a
    assert alloc.allocated_count == 2


def test_double_free_rejected():
    alloc = FrameAllocator(64)
    frame = alloc.allocate()
    alloc.free(frame)
    with pytest.raises(ValueError):
        alloc.free(frame)


def test_is_allocated():
    alloc = FrameAllocator(64)
    frame = alloc.allocate()
    assert alloc.is_allocated(frame)
    alloc.free(frame)
    assert not alloc.is_allocated(frame)


def test_reserved_must_fit():
    with pytest.raises(ValueError):
        FrameAllocator(8, reserved=8)
