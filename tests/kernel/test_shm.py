import pytest

from repro.isa.program import ProgramBuilder
from repro.kernel.shm import (
    CTRL_WORD,
    MONITOR_START,
    STATUS_WORD,
    SharedChannel,
)


def test_same_frame_mapped_into_two_processes(kernel):
    p1 = kernel.create_process("a")
    p2 = kernel.create_process("b")
    channel = SharedChannel(kernel, "chan")
    va1 = channel.map_into(p1)
    va2 = channel.map_into(p2)
    p1.write(va1 + 16, 4242)
    assert p2.read(va2 + 16) == 4242


def test_va_for_unmapped_process_raises(kernel):
    p1 = kernel.create_process("a")
    channel = SharedChannel(kernel)
    with pytest.raises(KeyError):
        channel.va_for(p1)


def test_kernel_side_read_write(kernel):
    channel = SharedChannel(kernel)
    channel.kernel_write(CTRL_WORD, MONITOR_START)
    assert channel.kernel_read(CTRL_WORD) == MONITOR_START


def test_offset_bounds(kernel):
    channel = SharedChannel(kernel)
    with pytest.raises(ValueError):
        channel.kernel_write(4096, 1)


def test_signal_monitor_and_status(kernel):
    channel = SharedChannel(kernel)
    channel.signal_monitor(MONITOR_START)
    assert channel.kernel_read(CTRL_WORD) == MONITOR_START
    channel.kernel_write(STATUS_WORD, 7)
    assert channel.monitor_status() == 7


def test_user_program_polls_kernel_signal(system):
    """A user program spins until the Replayer writes the start
    signal — the §5.2.2 signalling path, end to end."""
    machine, kernel = system
    process = kernel.create_process("monitor")
    channel = SharedChannel(kernel)
    base = channel.map_into(process)
    program = (ProgramBuilder()
               .li("r1", base)
               .li("r2", MONITOR_START)
               .label("wait")
               .load("r3", "r1", CTRL_WORD)
               .bne("r3", "r2", "wait")
               .li("r4", 1)
               .store("r1", "r4", STATUS_WORD)
               .halt().build())
    context = kernel.launch(process, program)
    machine.run(2000)
    assert not context.finished()          # still spinning
    channel.signal_monitor(MONITOR_START)
    machine.run(200_000)
    assert context.finished()
    assert channel.monitor_status() == 1
