
from repro.cpu.context import ContextState
from repro.cpu.traps import TrapAction
from repro.isa.program import ProgramBuilder
from repro.kernel.kernel import Kernel, KernelConfig
from repro.cpu.machine import Machine


def test_kernel_attaches_as_trap_handler(system):
    machine, kernel = system
    assert machine.core.trap_handler is kernel


def test_demand_paging_of_lazy_region(system):
    machine, kernel = system
    process = kernel.create_process("p")
    base = process.alloc(4096, "lazy", populate=False)
    program = (ProgramBuilder()
               .li("r1", base)
               .li("r2", 5)
               .store("r1", "r2", 0)
               .load("r3", "r1", 0)
               .halt().build())
    kernel.launch(process, program)
    machine.run(200_000)
    assert machine.contexts[0].int_regs["r3"] == 5
    assert kernel.stats.demand_pages == 1


def test_minor_fault_on_cleared_present(system):
    machine, kernel = system
    process = kernel.create_process("p")
    base = process.alloc(4096, "data")
    process.write(base, 31337)
    kernel.set_present(process, base, False)
    machine.hierarchy.flush_all()
    machine.pwc.flush_all()
    program = (ProgramBuilder()
               .li("r1", base).load("r2", "r1", 0).halt().build())
    kernel.launch(process, program)
    machine.run(200_000)
    assert machine.contexts[0].int_regs["r2"] == 31337
    assert kernel.stats.minor_faults == 1


def test_segfault_kills_process(system):
    machine, kernel = system
    process = kernel.create_process("p")
    program = (ProgramBuilder()
               .li("r1", 0x7000_0000)
               .load("r2", "r1", 0)
               .halt().build())
    kernel.launch(process, program)
    machine.run(200_000)
    assert process.terminated
    assert kernel.stats.segfaults == 1
    assert machine.contexts[0].state is ContextState.HALTED


def test_fault_hook_claims_before_default():
    machine = Machine()
    kernel = Kernel(machine)
    process = kernel.create_process("p")
    base = process.alloc(4096, "data")
    kernel.set_present(process, base, False)
    machine.hierarchy.flush_all()
    machine.pwc.flush_all()
    claimed = []

    def hook(context, fault):
        claimed.append(fault.vpn)
        kernel.set_present(process, fault.va, True)
        return TrapAction(cost=10)

    kernel.add_fault_hook(hook)
    program = (ProgramBuilder()
               .li("r1", base).load("r2", "r1", 0).halt().build())
    kernel.launch(process, program)
    machine.run(100_000)
    assert claimed  # the hook saw the fault
    assert kernel.stats.hook_claims == 1
    assert kernel.stats.minor_faults == 0  # default path skipped


def test_remove_fault_hook():
    machine = Machine()
    kernel = Kernel(machine)
    hook = lambda c, f: None
    kernel.add_fault_hook(hook)
    kernel.remove_fault_hook(hook)
    assert hook not in kernel._fault_hooks


def test_invlpg_keeps_tlb_coherent(system):
    """§2.1: after a PTE update the OS must invalidate the TLB entry,
    or the stale translation keeps working."""
    machine, kernel = system
    process = kernel.create_process("p")
    base = process.alloc(4096, "data")
    program = (ProgramBuilder()
               .li("r1", base).load("r2", "r1", 0).halt().build())
    kernel.launch(process, program)
    machine.run(100_000)
    from repro.vm import address as vaddr
    assert machine.tlbs.l1d.contains(process.pcid, vaddr.vpn(base))
    kernel.set_present(process, base, False)  # flush=True default
    assert not machine.tlbs.l1d.contains(process.pcid, vaddr.vpn(base))


def test_flush_tlbs_per_process(system):
    machine, kernel = system
    p1 = kernel.create_process("a")
    p2 = kernel.create_process("b")
    machine.tlbs.insert(p1.pcid, 5, frame=1)
    machine.tlbs.insert(p2.pcid, 5, frame=2)
    kernel.flush_tlbs(p1)
    assert not machine.tlbs.l2.contains(p1.pcid, 5)
    assert machine.tlbs.l2.contains(p2.pcid, 5)
    kernel.flush_tlbs()
    assert not machine.tlbs.l2.contains(p2.pcid, 5)


def test_cost_jitter_is_seeded():
    def total_cost(seed):
        machine = Machine()
        kernel = Kernel(machine, KernelConfig(cost_jitter=500,
                                              jitter_seed=seed))
        process = kernel.create_process("p")
        base = process.alloc(4096, "lazy", populate=False)
        program = (ProgramBuilder()
                   .li("r1", base).load("r2", "r1", 0).halt().build())
        kernel.launch(process, program)
        machine.run(300_000)
        return machine.cycle

    assert total_cost(1) == total_cost(1)


def test_interrupt_default_cost(system):
    machine, kernel = system
    process = kernel.create_process("p")
    program = (ProgramBuilder()
               .li("r1", 0).li("r2", 50)
               .label("l").addi("r1", "r1", 1).bne("r1", "r2", "l")
               .halt().build())
    context = kernel.launch(process, program)
    machine.run(5)
    context.pending_interrupt = "timer"
    machine.run(300_000)
    assert context.finished()
    assert machine.cycle >= kernel.config.interrupt_cost
