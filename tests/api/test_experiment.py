"""The repro.Experiment facade."""

import json

import pytest

import repro
from repro.experiment import _attack_trial


def doubler(params, seed):
    return params * 2


class StubAttack:
    """Picklable stand-in with the attack-object contract."""

    def __init__(self, gain=1):
        self.gain = gain

    def run(self, secret=0, offset=0):
        return secret * self.gain + offset


# --- declaration validation ------------------------------------------------


def test_needs_attack_or_trial():
    with pytest.raises(ValueError):
        repro.Experiment()


def test_rejects_attack_and_trial_together():
    with pytest.raises(ValueError):
        repro.Experiment(attack=StubAttack(), trial=doubler)


def test_rejects_victim_with_trial():
    with pytest.raises(ValueError):
        repro.Experiment(trial=doubler, victim={"x": 1})


def test_rejects_attack_without_run():
    with pytest.raises(TypeError):
        repro.Experiment(attack=object())


def test_rejects_non_dict_sweep_items_for_attacks():
    exp = repro.Experiment(attack=StubAttack(), sweep=[1, 2])
    with pytest.raises(TypeError):
        exp.run()


# --- runs ------------------------------------------------------------------


def test_single_attack_run():
    report = repro.Experiment(attack=StubAttack(gain=3),
                              victim={"secret": 5}).run()
    assert report.result == 15
    assert report.report.attempts_total == 1


def test_sweep_merges_victim_and_item_kwargs():
    report = repro.Experiment(
        attack=StubAttack(gain=10),
        victim={"offset": 1},
        sweep=[{"secret": s} for s in (1, 2, 3)],
        label="stub",
    ).run()
    assert report.results == [11, 21, 31]
    # item kwargs win over victim kwargs
    override = repro.Experiment(
        attack=StubAttack(), victim={"secret": 9},
        sweep=[{"secret": 1}],
    ).run()
    assert override.result == 1


def test_trial_sweep_passes_params_verbatim():
    report = repro.Experiment(trial=doubler, sweep=[3, 4]).run()
    assert report.results == [6, 8]


def test_single_trial_gets_none_params():
    report = repro.Experiment(
        trial=lambda params, seed: (params, seed)).run()
    params, seed = report.result
    assert params is None
    assert seed == repro.derive_seed(0, 0, "")


def test_result_property_guards_sweeps():
    report = repro.Experiment(trial=doubler, sweep=[1, 2]).run()
    with pytest.raises(ValueError):
        report.result


def test_experiment_is_reusable():
    exp = repro.Experiment(trial=doubler, sweep=[5])
    assert exp.run().results == exp.run().results == [10]


# --- resilience and accounting wiring --------------------------------------


def test_facade_policy_and_metrics():
    flaky = {"calls": 0}

    def sometimes(params, seed):
        flaky["calls"] += 1
        if flaky["calls"] == 1:
            raise RuntimeError("first call fails")
        return params

    report = repro.Experiment(
        trial=sometimes, sweep=[7],
        policy=repro.FaultPolicy(backoff_base=0.0),
        label="flaky",
    ).run()
    assert report.results == [7]
    dump = json.loads(json.dumps(report.metrics.dump()))
    assert dump["harness.sweep.flaky.retries"] == 1
    assert dump["harness.sweep.flaky.failures.exception"] == 1


def test_facade_journal_resume(tmp_path):
    journal = tmp_path / "exp.journal"
    first = repro.Experiment(trial=doubler, sweep=[1, 2, 3],
                             label="j", journal=journal).run()
    assert first.results == [2, 4, 6]

    def explode(params, seed):
        raise AssertionError("must come from the journal")

    resumed = repro.Experiment(trial=explode, sweep=[1, 2, 3],
                               label="j", journal=journal).run()
    assert resumed.results == first.results
    assert resumed.report.resolution_counts()["journal"] == 3


def test_facade_chaos():
    plan = repro.ChaosPlan(faults={(0, 0): "exception"})
    report = repro.Experiment(
        trial=doubler, sweep=[4],
        policy=repro.FaultPolicy(backoff_base=0.0),
        chaos=plan, label="c",
    ).run()
    assert report.results == [8]
    assert report.report.outcome_counts()["exception"] == 1


def test_report_to_dict():
    payload = json.loads(json.dumps(
        repro.Experiment(trial=doubler, sweep=[1], label="d")
        .run().to_dict()))
    assert payload["label"] == "d"
    assert payload["trials"] == 1
    assert payload["sweep"]["resolutions"]["ok"] == 1


def test_attack_trial_adapter():
    assert _attack_trial((StubAttack(gain=2), {"secret": 4}), 0) == 8


# --- environment construction ---------------------------------------------


def test_environment_builds_replayer():
    from repro.core.replayer import Replayer
    exp = repro.Experiment(
        trial=doubler,
        machine=repro.MachineConfig(num_frames=1 << 10))
    rep = exp.environment()
    assert isinstance(rep, Replayer)
    assert rep.machine.config.num_frames == 1 << 10


def test_environment_warm_start_rewinds():
    from repro.snapshot import clear_cache
    clear_cache()
    try:
        exp = repro.Experiment(
            trial=doubler,
            machine=repro.MachineConfig(num_frames=1 << 10))
        first = exp.environment(warm=True)
        baseline = first.machine.cycle
        first.machine.run(100)
        second = exp.environment(warm=True)
        assert second.machine is first.machine
        assert second.machine.cycle == baseline
    finally:
        clear_cache()
