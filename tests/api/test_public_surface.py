"""The public API surface: promoted names, snapshot, shims.

``api_surface.json`` is the reviewed record of what this repo exports;
CI regenerates the live surface and fails on drift (see
``repro.tools.api_surface``).  These tests assert the same property
inside the tier-1 suite, plus facade signatures and the deprecation
shims for moved classes.
"""

import inspect
import json
import warnings
from pathlib import Path

import pytest

import repro
from repro.tools.api_surface import (
    SNAPSHOT_PATH,
    diff_surface,
    export_surface,
    main,
)

SNAPSHOT = Path(__file__).parent / "api_surface.json"


def test_all_names_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_all_is_sorted_and_unique():
    names = [n for n in repro.__all__ if n != "__version__"]
    assert names == sorted(set(names))


def test_promoted_entry_points():
    # The ISSUE's promotion list: users stop deep-importing modules.
    for name in ("Experiment", "Machine", "MachineConfig",
                 "CoreConfig", "PortContentionAttack",
                 "AESKeyRecoveryAttack", "run_sweep",
                 "run_resilient_sweep", "FaultPolicy", "ChaosPlan",
                 "SweepJournal", "SweepReport", "MetricsRegistry",
                 "EventTracer", "MachineSnapshot", "warm_start",
                 "to_dict", "from_dict"):
        assert name in repro.__all__, name


def test_surface_matches_snapshot():
    assert SNAPSHOT_PATH == SNAPSHOT
    expected = json.loads(SNAPSHOT.read_text())
    drift = diff_surface(expected, export_surface())
    assert not drift, "\n".join(
        ["public API drifted from tests/api/api_surface.json; run",
         "`python -m repro.tools.api_surface --update` and review:"]
        + drift)


def test_surface_check_cli(tmp_path):
    snapshot = tmp_path / "surface.json"
    assert main(["--update", "--snapshot", str(snapshot)]) == 0
    assert main(["--check", "--snapshot", str(snapshot)]) == 0
    mangled = json.loads(snapshot.read_text())
    del mangled["repro"]["Experiment"]
    mangled["repro"]["Imaginary"] = {"kind": "class"}
    snapshot.write_text(json.dumps(mangled))
    assert main(["--check", "--snapshot", str(snapshot)]) == 1
    assert main(["--check",
                 "--snapshot", str(tmp_path / "missing.json")]) == 1


# --- facade signatures -----------------------------------------------------


def test_experiment_signature():
    params = inspect.signature(repro.Experiment).parameters
    for name in ("attack", "trial", "victim", "sweep", "machine",
                 "workers", "master_seed", "label", "policy", "chaos",
                 "journal", "metrics", "tracer"):
        assert name in params, name


def test_run_resilient_sweep_signature():
    params = inspect.signature(repro.run_resilient_sweep).parameters
    for name in ("master_seed", "workers", "label", "policy", "chaos",
                 "journal", "metrics", "tracer"):
        assert name in params, name
        assert params[name].kind is inspect.Parameter.KEYWORD_ONLY


def test_derive_seed_signature_is_attempt_aware():
    params = inspect.signature(repro.derive_seed).parameters
    assert list(params) == ["master_seed", "index", "label", "attempt"]
    assert params["attempt"].default == 0


# --- deprecation shims -----------------------------------------------------


@pytest.mark.parametrize("importer", [
    lambda: __import__("repro.cpu.machine",
                       fromlist=["MachineConfig"]).MachineConfig,
    lambda: __import__("repro.cpu",
                       fromlist=["MachineConfig"]).MachineConfig,
])
def test_machine_config_shims_warn_and_alias(importer):
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        cls = importer()
    assert cls is repro.MachineConfig
    assert any(issubclass(w.category, DeprecationWarning)
               and "repro.config" in str(w.message) for w in caught)


def test_shimmed_module_still_raises_for_unknown_attrs():
    import repro.cpu.machine as machine_mod
    with pytest.raises(AttributeError):
        machine_mod.DoesNotExist
    import repro.cpu as cpu_mod
    with pytest.raises(AttributeError):
        cpu_mod.DoesNotExist
