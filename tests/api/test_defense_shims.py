"""Deprecation shims for the ``repro.defenses`` ->
``repro.evaluation.defenses`` consolidation.

Mirrors the ``repro.config`` migration contract: every legacy path
still imports, warns with :class:`DeprecationWarning`, and hands back
the *same* objects as the canonical package — while the canonical
path imports silently.
"""

import importlib
import sys
import warnings

import pytest

SHIMS = ["repro.defenses", "repro.defenses.dejavu",
         "repro.defenses.fences", "repro.defenses.pf_oblivious",
         "repro.defenses.tsgx"]

#: One representative name per legacy module.
PROBES = {
    "repro.defenses": "DEFENSES",
    "repro.defenses.dejavu": "evaluate_dejavu",
    "repro.defenses.fences": "evaluate_fence_on_flush",
    "repro.defenses.pf_oblivious": "evaluate_pf_obliviousness",
    "repro.defenses.tsgx": "wrap_with_tsgx",
}


def _fresh_import(name):
    for cached in list(sys.modules):
        if cached == name or cached.startswith(name + "."):
            del sys.modules[cached]
    return importlib.import_module(name)


@pytest.mark.parametrize("module_name", SHIMS)
def test_shim_warns_and_aliases(module_name):
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        legacy = _fresh_import(module_name)
    assert any(issubclass(w.category, DeprecationWarning)
               and "repro.evaluation.defenses" in str(w.message)
               for w in caught), module_name
    canonical = importlib.import_module(
        module_name.replace("repro.defenses",
                            "repro.evaluation.defenses", 1))
    probe = PROBES[module_name]
    assert getattr(legacy, probe) is getattr(canonical, probe)


@pytest.mark.parametrize("module_name", SHIMS)
def test_shim_raises_for_unknown_attrs(module_name):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        legacy = _fresh_import(module_name)
    with pytest.raises(AttributeError):
        legacy.DoesNotExist


def test_canonical_package_imports_without_warning():
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        _fresh_import("repro.evaluation.defenses")
    assert not [w for w in caught
                if issubclass(w.category, DeprecationWarning)]


def test_legacy_all_is_covered_by_canonical():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        legacy = _fresh_import("repro.defenses")
    canonical = importlib.import_module("repro.evaluation.defenses")
    for name in legacy.__all__:
        assert name in canonical.__all__, name
        assert getattr(legacy, name) is getattr(canonical, name)
