"""Deprecation shims for the ``repro.defenses`` ->
``repro.evaluation.defenses`` consolidation.

Mirrors the ``repro.config`` migration contract: every legacy path
still imports, warns with :class:`DeprecationWarning`, and hands back
the *same* objects as the canonical package — while the canonical
path imports silently.
"""

import importlib
import sys
import warnings

import pytest

SHIMS = ["repro.defenses", "repro.defenses.dejavu",
         "repro.defenses.delay_on_squash", "repro.defenses.fences",
         "repro.defenses.jamais_vu", "repro.defenses.leash",
         "repro.defenses.mechanisms", "repro.defenses.pf_oblivious",
         "repro.defenses.simf", "repro.defenses.tsgx"]

#: One representative name per legacy module.
PROBES = {
    "repro.defenses": "DEFENSES",
    "repro.defenses.dejavu": "evaluate_dejavu",
    "repro.defenses.delay_on_squash": "DelayOnSquashMechanism",
    "repro.defenses.fences": "evaluate_fence_on_flush",
    "repro.defenses.jamais_vu": "JamaisVuMechanism",
    "repro.defenses.leash": "LeashMechanism",
    "repro.defenses.mechanisms": "MECHANISMS",
    "repro.defenses.pf_oblivious": "evaluate_pf_obliviousness",
    "repro.defenses.simf": "SIMFFlushMechanism",
    "repro.defenses.tsgx": "wrap_with_tsgx",
}


def _fresh_import(name):
    """Import *name* with a cold module cache, then put the
    previously-cached module objects back: re-executing the canonical
    package would otherwise re-create the mechanism classes (and the
    MECHANISMS registry) mid-session, breaking ``isinstance`` checks
    in every test that runs after this module."""
    saved = {}
    for cached in list(sys.modules):
        if cached == name or cached.startswith(name + "."):
            saved[cached] = sys.modules.pop(cached)
    try:
        return importlib.import_module(name)
    finally:
        for cached in list(sys.modules):
            if cached == name or cached.startswith(name + "."):
                del sys.modules[cached]
        sys.modules.update(saved)
        parent_name, _, leaf = name.rpartition(".")
        if parent_name in sys.modules and name in sys.modules:
            setattr(sys.modules[parent_name], leaf, sys.modules[name])


@pytest.mark.parametrize("module_name", SHIMS)
def test_shim_warns_and_aliases(module_name):
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        legacy = _fresh_import(module_name)
    assert any(issubclass(w.category, DeprecationWarning)
               and "repro.evaluation.defenses" in str(w.message)
               for w in caught), module_name
    canonical = importlib.import_module(
        module_name.replace("repro.defenses",
                            "repro.evaluation.defenses", 1))
    probe = PROBES[module_name]
    assert getattr(legacy, probe) is getattr(canonical, probe)


@pytest.mark.parametrize("module_name", SHIMS)
def test_shim_raises_for_unknown_attrs(module_name):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        legacy = _fresh_import(module_name)
    with pytest.raises(AttributeError):
        legacy.DoesNotExist


def test_canonical_package_imports_without_warning():
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        _fresh_import("repro.evaluation.defenses")
    assert not [w for w in caught
                if issubclass(w.category, DeprecationWarning)]


def test_legacy_all_is_covered_by_canonical():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        legacy = _fresh_import("repro.defenses")
    canonical = importlib.import_module("repro.evaluation.defenses")
    for name in legacy.__all__:
        assert name in canonical.__all__, name
        assert getattr(legacy, name) is getattr(canonical, name)
