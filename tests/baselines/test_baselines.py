"""The Table-1 baseline attacks: each shows its characteristic
granularity/resolution/noise profile."""


from repro.baselines.controlled_channel import ControlledChannelAttack
from repro.baselines.prime_probe import AsyncPrimeProbeAttack
from repro.baselines.sgx_step import SGXStepAttack
from repro.core.attacks.loop_secret import LoopSecretAttack

SECRETS = [3, 11, 7, 2, 0, 14, 5, 9]


def test_controlled_channel_page_granularity_no_noise():
    attack = ControlledChannelAttack()
    for secret in (0, 1):
        result = attack.run(secret)
        assert result.correct
        assert result.fault_vpns     # faults observed


def test_controlled_channel_blind_within_a_page():
    """The coarse-grain limitation: two lines on one page are
    indistinguishable — the gap MicroScope closes."""
    attack = ControlledChannelAttack()
    for secret in (0, 1):
        result = attack.run(secret, same_page=True)
        assert result.guessed is None


def test_sgx_step_noiseless_sim_is_accurate():
    report = SGXStepAttack().run(SECRETS, runs=1)
    assert report.combined_accuracy == 1.0


def test_sgx_step_degrades_with_noise_single_run():
    noisy = SGXStepAttack(probe_noise=0.10).run(SECRETS, runs=1)
    assert noisy.combined_accuracy < 0.8


def test_sgx_step_multiple_runs_denoise():
    """Table 1: "they still require multiple runs"."""
    single = SGXStepAttack(probe_noise=0.10).run(SECRETS, runs=1)
    multi = SGXStepAttack(probe_noise=0.10).run(SECRETS, runs=7)
    assert multi.combined_accuracy > single.combined_accuracy


def test_microscope_beats_stepping_under_same_noise():
    """The headline comparison: same victim, same noisy probe, one
    logical run each — MicroScope denoises by replaying."""
    noise = 0.10
    stepping = SGXStepAttack(probe_noise=noise).run(SECRETS, runs=1)
    microscope = LoopSecretAttack(probe_noise=noise,
                                  replays_per_iteration=5).run(SECRETS)
    assert microscope.accuracy == 1.0
    assert microscope.accuracy > stepping.combined_accuracy


def test_async_prime_probe_set_but_not_sequence():
    report = AsyncPrimeProbeAttack().run(SECRETS)
    assert report.set_recall >= 0.8         # fine spatial granularity
    assert report.sequence_accuracy <= 0.5  # low temporal resolution
