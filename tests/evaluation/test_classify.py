"""Cell-classification edge cases: the defeated / degraded /
unaffected rules the results doc stands on."""

import pytest

from repro.evaluation import CellMetrics, classify_cell
from repro.evaluation.classify import CLASSIFICATIONS, EPSILON, _clean


def _baseline(accuracy=1.0, chance=0.5):
    return CellMetrics(accuracy=accuracy, chance=chance, trials=4)


def test_zero_leak_is_defeated():
    cell = CellMetrics(accuracy=0.5, chance=0.5, trials=4)
    assert classify_cell(cell, _baseline()) == "defeated"


def test_below_chance_is_defeated():
    cell = CellMetrics(accuracy=0.25, chance=0.5, trials=4)
    assert classify_cell(cell, _baseline()) == "defeated"


def test_margin_exactly_epsilon_is_defeated():
    cell = CellMetrics(accuracy=0.5 + EPSILON, chance=0.5)
    assert classify_cell(cell, _baseline()) == "defeated"


def test_no_estimate_is_defeated():
    cell = CellMetrics(accuracy=None, chance=0.5)
    assert classify_cell(cell, _baseline()) == "defeated"


def test_defense_raised_is_defeated():
    # an attack that crashes under a defense carries the exception in
    # `error`; even a nominally perfect accuracy cannot rescue it
    cell = CellMetrics(accuracy=1.0, chance=0.5,
                       error="RuntimeError: victim terminated")
    assert classify_cell(cell, _baseline()) == "defeated"


def test_partial_leak_is_degraded():
    cell = CellMetrics(accuracy=0.75, chance=0.5, trials=4)
    assert classify_cell(cell, _baseline(accuracy=1.0)) == "degraded"


def test_detection_is_degraded_even_at_full_accuracy():
    cell = CellMetrics(accuracy=1.0, chance=0.5, detected=True)
    assert classify_cell(cell, _baseline()) == "degraded"


def test_drop_within_epsilon_is_unaffected():
    cell = CellMetrics(accuracy=1.0 - EPSILON, chance=0.5)
    assert classify_cell(cell, _baseline(accuracy=1.0)) == "unaffected"


def test_full_accuracy_without_baseline_is_unaffected():
    cell = CellMetrics(accuracy=1.0, chance=0.5)
    assert classify_cell(cell, None) == "unaffected"


def test_baseline_without_estimate_cannot_degrade():
    cell = CellMetrics(accuracy=0.8, chance=0.5)
    assert classify_cell(cell, _baseline(accuracy=None)) == "unaffected"


def test_custom_epsilon():
    cell = CellMetrics(accuracy=0.7, chance=0.5)
    assert classify_cell(cell, _baseline(), epsilon=0.3) == "defeated"
    assert classify_cell(cell, _baseline(), epsilon=0.05) == "degraded"


def test_all_verdicts_are_registered():
    cases = [
        classify_cell(CellMetrics(accuracy=0.5, chance=0.5)),
        classify_cell(CellMetrics(accuracy=1.0, detected=True)),
        classify_cell(CellMetrics(accuracy=1.0)),
    ]
    assert set(cases) == set(CLASSIFICATIONS)


def test_leak_margin():
    assert CellMetrics(accuracy=0.9, chance=0.5).leak_margin \
        == pytest.approx(0.4)
    assert CellMetrics(accuracy=None).leak_margin is None


def test_to_dict_round_trip_and_determinism():
    cell = CellMetrics(accuracy=1 / 3, chance=1 / 16, trials=3,
                       replays=12, detected=True, notes=("a", "b"),
                       detail={"z": 1.23456789, "a": {"k": (1, 2)}})
    payload = cell.to_dict()
    assert payload == cell.to_dict()
    assert list(payload) == sorted(payload)
    assert payload["accuracy"] == round(1 / 3, 6)
    # detail keys come out sorted and floats rounded
    assert list(payload["detail"]) == ["a", "z"]
    assert payload["detail"]["z"] == round(1.23456789, 6)

    rebuilt = CellMetrics.from_dict(payload)
    assert rebuilt.to_dict() == payload
    assert rebuilt.notes == ("a", "b")


def test_clean_stringifies_exotic_values():
    cleaned = _clean({"obj": object, 3: "int-key"})
    assert set(cleaned) == {"obj", "3"}
    assert isinstance(cleaned["obj"], str)
