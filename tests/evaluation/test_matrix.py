"""The matrix runner: baselines, seeds, determinism across worker
counts, journal resume, and defenses that crash the attack."""

import pytest

from repro.evaluation import (
    AttackSpec,
    CellMetrics,
    EvaluationMatrix,
    MatrixRunner,
)
from repro.evaluation.attacks import ATTACKS
from repro.evaluation.matrix import DEFAULT_LABEL, DEFAULT_MASTER_SEED
from repro.harness import derive_seed


@pytest.fixture(scope="module")
def small_matrix():
    runner = MatrixRunner(attacks=("cf-cache",),
                          defenses=("none", "fences"))
    return runner.run()


def test_small_matrix_classifications(small_matrix):
    baseline = small_matrix.cell("cf-cache", "none")
    assert baseline.classification == "unaffected"
    assert baseline.metrics.accuracy == 1.0
    assert baseline.metrics.error is None
    fenced = small_matrix.cell("cf-cache", "fences")
    assert fenced.classification == "defeated"


def test_cell_seeds_follow_the_sweep_lineage(small_matrix):
    # params are attacks-outer, defenses-inner: index 0 = none, 1 = fences
    for index, defense in enumerate(("none", "fences")):
        cell = small_matrix.cell("cf-cache", defense)
        assert cell.seed == derive_seed(DEFAULT_MASTER_SEED, index,
                                        DEFAULT_LABEL)


def test_to_dict_round_trip(small_matrix):
    payload = small_matrix.to_dict()
    assert payload == small_matrix.to_dict()
    rebuilt = EvaluationMatrix.from_dict(payload)
    assert rebuilt.to_dict() == payload
    assert rebuilt.attacks == small_matrix.attacks
    assert rebuilt.cell("cf-cache", "fences").classification \
        == "defeated"


def test_rendering_mentions_every_cell(small_matrix):
    summary = small_matrix.summary_markdown()
    assert "| cf-cache |" in summary
    assert "leaks (1.00)" in summary and "defeated" in summary
    detail = small_matrix.detail_markdown()
    assert detail.count("| cf-cache |") == 2


def test_worker_counts_do_not_change_the_matrix(small_matrix):
    parallel = MatrixRunner(attacks=("cf-cache",),
                            defenses=("none", "fences"),
                            workers=2).run()
    assert parallel.to_dict() == small_matrix.to_dict()


def test_journal_resume_reruns_no_cells(tmp_path, small_matrix,
                                        monkeypatch):
    journal = tmp_path / "matrix.journal"
    first = MatrixRunner(attacks=("cf-cache",),
                         defenses=("none", "fences"),
                         journal=str(journal)).run()
    assert first.to_dict() == small_matrix.to_dict()

    # poison the registry: if the resumed run re-executed any cell it
    # would record an error instead of the journalled metrics
    def explode(defense, overrides):
        raise AssertionError("cell was re-run despite the journal")

    spec = ATTACKS["cf-cache"]
    monkeypatch.setitem(
        ATTACKS, "cf-cache",
        AttackSpec(spec.name, spec.summary, spec.paper_ref,
                   spec.chance, explode))
    resumed = MatrixRunner(attacks=("cf-cache",),
                           defenses=("none", "fences"),
                           journal=str(journal)).run()
    assert resumed.to_dict() == first.to_dict()


def test_attack_exception_becomes_defeated_cell(monkeypatch):
    def broken(defense, overrides):
        raise RuntimeError("defense terminated the victim")

    monkeypatch.setitem(
        ATTACKS, "broken",
        AttackSpec("broken", "always raises", "test", 0.5, broken))
    matrix = MatrixRunner(attacks=("broken",),
                          defenses=("none",)).run()
    cell = matrix.cell("broken", "none")
    assert cell.classification == "defeated"
    assert cell.metrics.accuracy is None
    assert "RuntimeError: defense terminated the victim" \
        == cell.metrics.error


def test_partial_result_classifies_degraded(monkeypatch):
    def leaky(defense, overrides):
        if defense.name == "none":
            return CellMetrics(accuracy=1.0, chance=0.5, trials=4)
        return CellMetrics(accuracy=0.75, chance=0.5, trials=4)

    monkeypatch.setitem(
        ATTACKS, "leaky",
        AttackSpec("leaky", "half the leak under defense", "test",
                   0.5, leaky))
    matrix = MatrixRunner(attacks=("leaky",),
                          defenses=("none", "fences")).run()
    assert matrix.cell("leaky", "none").classification == "unaffected"
    assert matrix.cell("leaky", "fences").classification == "degraded"


def test_unknown_axis_names_are_rejected():
    with pytest.raises(KeyError):
        MatrixRunner(attacks=("no-such-attack",)).run()
    with pytest.raises(KeyError):
        MatrixRunner(defenses=("no-such-defense",)).run()


def test_cheap_attack_rows_all_leak_undefended():
    """Every inexpensive registered attack leaks perfectly against the
    undefended column (port-contention, the costly row, is exercised
    by the results generator instead)."""
    matrix = MatrixRunner(
        attacks=("secret-id", "interrupt-replay", "mispredict",
                 "controlled-channel"),
        defenses=("none",)).run()
    for attack in matrix.attacks:
        cell = matrix.cell(attack, "none")
        assert cell.classification == "unaffected", attack
        assert cell.metrics.accuracy == 1.0, attack
        assert cell.metrics.error is None, attack


def test_defense_notes_propagate_into_cells():
    matrix = MatrixRunner(attacks=("cf-cache",),
                          defenses=("dejavu",)).run()
    notes = matrix.cell("cf-cache", "dejavu").metrics.notes
    assert any("starvation" in note for note in notes)
