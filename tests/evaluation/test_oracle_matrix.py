"""The oracle option across the experiment facade and the matrix.

Covers the ISSUE's API-symmetry contract — ``Experiment`` and
``MatrixRunner`` accept the same execution kwargs with the same
defaults — plus the end-to-end oracle path: leakage summaries in cell
detail, ``oracle.*`` metrics, unchanged statistical payloads, and the
explicit errors for the unsupported combinations.
"""

import dataclasses

import pytest

import repro
from repro.evaluation.matrix import MatrixRunner, _cell_trial
from repro.experiment import Experiment

#: The kwargs the ISSUE requires to exist on both facades, identically.
SHARED_KWARGS = ("store", "backend", "service", "oracle",
                 "workers", "policy", "chaos", "journal",
                 "master_seed", "label", "metrics", "tracer")


@pytest.mark.parametrize("name", SHARED_KWARGS)
def test_experiment_and_matrix_runner_kwargs_stay_in_sync(name):
    exp_fields = {f.name: f for f in
                  dataclasses.fields(Experiment)}
    mat_fields = {f.name: f for f in
                  dataclasses.fields(MatrixRunner)}
    assert name in exp_fields, f"Experiment lost {name}="
    assert name in mat_fields, f"MatrixRunner lost {name}="
    if name in ("master_seed", "label"):
        return  # present on both, defaults intentionally differ
    exp, mat = exp_fields[name], mat_fields[name]
    assert exp.default == mat.default, \
        f"{name}= defaults diverged: {exp.default!r} vs {mat.default!r}"


def test_experiment_service_raises_toward_matrix_runner():
    experiment = Experiment(trial=_cell_trial, service="/tmp/state")
    with pytest.raises(NotImplementedError, match="MatrixRunner"):
        experiment.run()


def test_matrix_runner_rejects_oracle_with_service():
    runner = MatrixRunner(attacks=("cf-cache",), defenses=("none",),
                          service="/tmp/state", oracle=True)
    with pytest.raises(NotImplementedError, match="oracle"):
        runner.run()


def test_oracle_kwarg_rejects_junk():
    with pytest.raises(TypeError):
        MatrixRunner(attacks=("cf-cache",), defenses=("none",),
                     oracle="on").run()


@pytest.fixture(scope="module")
def matrices():
    """One cf-cache/none cell, oracle off and on (module-scoped: the
    cell runs a full attack environment)."""
    off = MatrixRunner(attacks=("cf-cache",), defenses=("none",))
    on = MatrixRunner(attacks=("cf-cache",), defenses=("none",),
                      oracle=True, tracer=repro.EventTracer())
    return off.run(), on.run(), on


def test_matrix_cell_carries_oracle_summary(matrices):
    _, on_matrix, _ = matrices
    summary = on_matrix.cell("cf-cache", "none").metrics.detail["oracle"]
    assert summary["verdict"] == "leaks"
    assert summary["events"] == sum(summary["counts"].values())


def test_oracle_leaves_statistical_payload_unchanged(matrices):
    off_matrix, on_matrix, _ = matrices
    off_cell = off_matrix.cell("cf-cache", "none").to_dict()
    on_cell = on_matrix.cell("cf-cache", "none").to_dict()
    del on_cell["metrics"]["detail"]["oracle"]
    assert on_cell == off_cell


def test_oracle_metrics_and_tracer_sinks(matrices):
    _, _, runner = matrices
    dump = runner.last_run_report.metrics.dump()
    assert dump["oracle.cell.cf-cache.none.events"] > 0
    instants = [e for e in runner.tracer.events()
                if e.cat == "oracle"]
    assert instants and instants[0].args["verdict"] == "leaks"


def test_experiment_oracle_reports_per_trial_summaries():
    report = Experiment(
        trial=_cell_trial,
        sweep=[("cf-cache", "none", {})], oracle=True).run()
    assert report.oracle is not None and len(report.oracle) == 1
    assert report.oracle[0]["verdict"] == "leaks"
    # The boxed payload is unwrapped: results carry the plain trial
    # return value, bit-identical to an oracle-off sweep's.
    assert report.result["accuracy"] is not None
    assert "__oracle__" not in report.result
    assert report.metrics.dump()["oracle.leaking_trials"] == 1


def test_experiment_oracle_off_report_has_no_oracle_field():
    report = Experiment(trial=_cell_trial,
                        sweep=[("cf-cache", "none", {})]).run()
    assert report.oracle is None
    assert "oracle.trials" not in report.metrics.dump()
