import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aes import (
    AESError,
    decrypt_block,
    decrypt_block_traced,
    encrypt_block,
    expand_decrypt_key,
    expand_key,
    first_round_accesses,
    lines_touched,
    rounds_for_key,
)

# FIPS-197 Appendix C vectors.
PLAINTEXT = bytes.fromhex("00112233445566778899aabbccddeeff")
KEY128 = bytes(range(16))
KEY192 = bytes(range(24))
KEY256 = bytes(range(32))
CT128 = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")
CT192 = bytes.fromhex("dda97ca4864cdfe06eaf70a0ec0d7191")
CT256 = bytes.fromhex("8ea2b7ca516745bfeafc49904b496089")


@pytest.mark.parametrize("key,expected", [
    (KEY128, CT128), (KEY192, CT192), (KEY256, CT256)])
def test_fips197_encrypt(key, expected):
    assert encrypt_block(key, PLAINTEXT) == expected


@pytest.mark.parametrize("key,ct", [
    (KEY128, CT128), (KEY192, CT192), (KEY256, CT256)])
def test_fips197_decrypt(key, ct):
    assert decrypt_block(key, ct) == PLAINTEXT


def test_fips197_appendix_a_key_expansion():
    key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
    words = expand_key(key)
    assert words[4] == 0xA0FAFE17
    assert words[43] == 0xB6630CA6


def test_rounds_for_key():
    assert rounds_for_key(KEY128) == 10
    assert rounds_for_key(KEY192) == 12
    assert rounds_for_key(KEY256) == 14
    with pytest.raises(AESError):
        rounds_for_key(b"short")


def test_bad_block_sizes():
    with pytest.raises(AESError):
        encrypt_block(KEY128, b"short")
    with pytest.raises(AESError):
        decrypt_block(KEY128, b"x" * 17)


def test_decrypt_key_schedule_shape():
    rk = expand_decrypt_key(KEY128)
    assert len(rk) == 44
    enc = expand_key(KEY128)
    # First decryption round key = last encryption round key.
    assert rk[0:4] == enc[40:44]
    # Last decryption round key = first encryption round key.
    assert rk[40:44] == enc[0:4]


def test_trace_counts():
    _plain, accesses = decrypt_block_traced(KEY128, CT128)
    # 9 middle rounds x 4 statements x 4 table lookups.
    assert len(accesses) == 9 * 4 * 4
    assert {a.table for a in accesses} == {0, 1, 2, 3}
    assert {a.round for a in accesses} == set(range(1, 10))
    assert all(0 <= a.index < 256 for a in accesses)


def test_trace_disabled_returns_plaintext_only():
    plain, accesses = decrypt_block_traced(KEY128, CT128, trace=False)
    assert plain == PLAINTEXT
    assert accesses == []


def test_first_round_accesses_depend_only_on_ct_and_last_key():
    accesses = first_round_accesses(KEY128, CT128)
    assert len(accesses) == 16
    rk = expand_decrypt_key(KEY128)
    state = [int.from_bytes(CT128[4 * i:4 * i + 4], "big") ^ rk[i]
             for i in range(4)]
    t0_td0 = next(a for a in accesses
                  if a.statement == 0 and a.table == 0)
    assert t0_td0.index == state[0] >> 24


def test_lines_touched_sorted_unique():
    accesses = first_round_accesses(KEY128, CT128)
    lines = lines_touched(accesses, table=0)
    assert lines == sorted(set(lines))
    assert all(0 <= line < 16 for line in lines)


def test_trace_line_property():
    _plain, accesses = decrypt_block_traced(KEY128, CT128)
    for access in accesses[:32]:
        assert access.line == access.index // 16


@given(st.binary(min_size=16, max_size=16),
       st.binary(min_size=16, max_size=16))
@settings(max_examples=40, deadline=None)
def test_roundtrip_random_128(key, block):
    assert decrypt_block(key, encrypt_block(key, block)) == block


@given(st.binary(min_size=32, max_size=32),
       st.binary(min_size=16, max_size=16))
@settings(max_examples=15, deadline=None)
def test_roundtrip_random_256(key, block):
    assert decrypt_block(key, encrypt_block(key, block)) == block


@given(st.binary(min_size=16, max_size=16))
@settings(max_examples=15, deadline=None)
def test_encryption_is_permutation_like(key):
    """Different plaintexts encrypt to different ciphertexts."""
    a = encrypt_block(key, bytes(16))
    b = encrypt_block(key, bytes([1] + [0] * 15))
    assert a != b
