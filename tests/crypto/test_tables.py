import pytest

from repro.crypto.aes_tables import (
    ENTRIES_PER_LINE,
    LINES_PER_TABLE,
    entries_on_line,
    inv_sbox,
    line_of_entry,
    sbox,
    td_tables,
    te_tables,
)
from repro.crypto.gf import gmul


def test_sbox_known_values():
    s = sbox()
    assert s[0x00] == 0x63
    assert s[0x01] == 0x7C
    assert s[0x53] == 0xED
    assert s[0xFF] == 0x16


def test_sbox_is_permutation():
    assert sorted(sbox()) == list(range(256))


def test_inv_sbox_inverts():
    s, si = sbox(), inv_sbox()
    for x in range(256):
        assert si[s[x]] == x


def test_te0_structure():
    te0 = te_tables()[0]
    s = sbox()
    for x in (0, 1, 0x53, 0xFF):
        word = te0[x]
        assert (word >> 24) & 0xFF == gmul(2, s[x])
        assert (word >> 16) & 0xFF == s[x]
        assert (word >> 8) & 0xFF == s[x]
        assert word & 0xFF == gmul(3, s[x])


def test_td0_structure():
    td0 = td_tables()[0]
    si = inv_sbox()
    for x in (0, 1, 0x53, 0xFF):
        word = td0[x]
        assert (word >> 24) & 0xFF == gmul(14, si[x])
        assert (word >> 16) & 0xFF == gmul(9, si[x])
        assert (word >> 8) & 0xFF == gmul(13, si[x])
        assert word & 0xFF == gmul(11, si[x])


def test_rotation_relationship():
    tables = td_tables()
    for i in range(3):
        for x in (0, 7, 200):
            w = tables[i][x]
            rotated = ((w >> 8) | (w << 24)) & 0xFFFFFFFF
            assert tables[i + 1][x] == rotated


def test_geometry_matches_figure11():
    """16 cache lines per table, 16 entries per line — the x-axis of
    Figure 11."""
    assert LINES_PER_TABLE == 16
    assert ENTRIES_PER_LINE == 16


def test_line_of_entry():
    assert line_of_entry(0) == 0
    assert line_of_entry(15) == 0
    assert line_of_entry(16) == 1
    assert line_of_entry(255) == 15
    with pytest.raises(ValueError):
        line_of_entry(256)


def test_entries_on_line():
    assert list(entries_on_line(0)) == list(range(16))
    assert list(entries_on_line(15)) == list(range(240, 256))
    with pytest.raises(ValueError):
        entries_on_line(16)


def test_tables_have_256_words():
    for table in te_tables() + td_tables():
        assert len(table) == 256
        assert all(0 <= w <= 0xFFFFFFFF for w in table)
