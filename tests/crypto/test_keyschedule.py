import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aes import AESError, expand_key
from repro.crypto.keyschedule import invert_aes128_schedule, round_key_words


def _round_key_bytes(key, round_no):
    words = expand_key(key)
    return b"".join(w.to_bytes(4, "big")
                    for w in words[4 * round_no:4 * round_no + 4])


def test_inversion_of_known_key():
    key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
    assert invert_aes128_schedule(_round_key_bytes(key, 10)) == key


def test_round_key_words():
    words = expand_key(bytes(16))
    assert round_key_words(words, 0) == words[0:4]
    assert round_key_words(words, 10) == words[40:44]
    with pytest.raises(AESError):
        round_key_words(words, 11)


def test_invert_rejects_bad_length():
    with pytest.raises(AESError):
        invert_aes128_schedule(b"short")


@given(st.binary(min_size=16, max_size=16))
@settings(max_examples=40, deadline=None)
def test_inversion_roundtrip(key):
    assert invert_aes128_schedule(_round_key_bytes(key, 10)) == key
