from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.gf import ginv, gmul, gpow, xtime

_elem = st.integers(min_value=0, max_value=255)


def test_known_products():
    # Classic AES examples.
    assert gmul(0x57, 0x83) == 0xC1
    assert gmul(0x57, 0x13) == 0xFE
    assert gmul(2, 0x80) == 0x1B


def test_xtime_matches_gmul_by_two():
    for a in range(256):
        assert xtime(a) == gmul(2, a)


def test_identity_and_zero():
    for a in range(256):
        assert gmul(a, 1) == a
        assert gmul(a, 0) == 0


def test_inverse_table():
    assert ginv(0) == 0
    for a in range(1, 256):
        assert gmul(a, ginv(a)) == 1


def test_gpow():
    assert gpow(3, 0) == 1
    assert gpow(3, 1) == 3
    assert gpow(3, 255) == 1   # group order divides 255


@given(_elem, _elem)
@settings(max_examples=100, deadline=None)
def test_commutativity(a, b):
    assert gmul(a, b) == gmul(b, a)


@given(_elem, _elem, _elem)
@settings(max_examples=100, deadline=None)
def test_associativity(a, b, c):
    assert gmul(gmul(a, b), c) == gmul(a, gmul(b, c))


@given(_elem, _elem, _elem)
@settings(max_examples=100, deadline=None)
def test_distributivity(a, b, c):
    assert gmul(a, b ^ c) == gmul(a, b) ^ gmul(a, c)
