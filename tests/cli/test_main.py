"""The ``python -m repro`` command-line front end.

Exit-code contract: no subcommand or an unknown subcommand prints the
usage summary on stderr and exits 2 (the argparse convention scripts
and CI steps rely on); ``--help`` exits 0.
"""

import os
import subprocess
import sys
import threading
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]


def run_cli(*argv, timeout=60):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        capture_output=True, text=True, env=env, timeout=timeout)


def test_no_subcommand_prints_usage_and_exits_2():
    proc = run_cli()
    assert proc.returncode == 2
    assert "usage: python -m repro" in proc.stderr
    assert proc.stdout == ""


def test_unknown_subcommand_prints_usage_and_exits_2():
    proc = run_cli("frobnicate")
    assert proc.returncode == 2
    assert "usage: python -m repro" in proc.stderr
    assert "invalid choice: 'frobnicate'" in proc.stderr


def test_help_exits_0_and_lists_commands():
    proc = run_cli("--help")
    assert proc.returncode == 0
    for command in ("matrix", "serve", "submit", "status", "watch",
                    "jobs"):
        assert command in proc.stdout


def test_bad_flag_exits_2():
    proc = run_cli("matrix", "--no-such-flag")
    assert proc.returncode == 2


def test_main_is_callable_with_argv():
    """main(argv) raises SystemExit(2) on bad input instead of
    killing the interpreter some other way."""
    from repro.__main__ import main
    with pytest.raises(SystemExit) as excinfo:
        main([])
    assert excinfo.value.code == 2


def test_serve_submit_status_round_trip(tmp_path):
    """The service subcommands end to end through the real CLI."""
    import json

    from repro.service import ServiceClient, serve

    state = tmp_path / "state"
    ready = threading.Event()

    def boot():
        serve(state, on_ready=lambda s: ready.set())

    thread = threading.Thread(target=boot, daemon=True)
    thread.start()
    assert ready.wait(15)
    try:
        submit = run_cli(
            "submit", "--state-dir", str(state),
            "--attacks", "cf-cache", "--defenses", "none", "fences",
            "--wait", timeout=120)
        assert submit.returncode == 0, submit.stderr
        lines = [json.loads(line)
                 for line in submit.stdout.splitlines()]
        assert lines[-1]["state"] == "done"
        jid = lines[0]["job"]

        status = run_cli("status", "--state-dir", str(state), jid)
        assert status.returncode == 0
        assert json.loads(status.stdout)["state"] == "done"

        jobs = run_cli("jobs", "--state-dir", str(state))
        assert any(json.loads(line)["job"] == jid
                   for line in jobs.stdout.splitlines())

        watch = run_cli("watch", "--state-dir", str(state), jid)
        events = [json.loads(line)
                  for line in watch.stdout.splitlines()]
        assert events[-1]["state"] == "done"
    finally:
        ServiceClient(state_dir=state).shutdown()
        thread.join(timeout=15)
