"""repro.config: canonical namespace + to_dict/from_dict round-trips."""

import json

import pytest

import repro.config as config


def roundtrip(cfg):
    """Through JSON text, not just dicts — the journal/report path."""
    return config.from_dict(json.loads(json.dumps(config.to_dict(cfg))))


def test_machine_config_default_roundtrip():
    cfg = config.MachineConfig()
    assert roundtrip(cfg) == cfg


def test_nested_customisation_roundtrip():
    cfg = config.MachineConfig(
        core=config.CoreConfig(
            num_contexts=4,
            non_pipelined=frozenset({"div", "sqrt"}),
            latencies={"mul": 5, "div": 21},
        ),
        hierarchy=config.HierarchyConfig(
            levels=(config.CacheConfig("L1D", size_bytes=16 * 1024,
                                       ways=4, latency=3),),
            dram_latency=250,
        ),
        tlbs=config.TLBHierarchyConfig(
            l2=config.TLBConfig("L2-TLB", entries=512, ways=8,
                                latency=9)),
        pwc=config.PWCConfig(entries=16),
        num_frames=1 << 12,
    )
    back = roundtrip(cfg)
    assert back == cfg
    # Collection types survive exactly (dataclass == would also pass
    # for list vs tuple mismatches inside levels' parent equality).
    assert isinstance(back.core.ports, tuple)
    assert isinstance(back.core.non_pipelined, frozenset)
    assert isinstance(back.hierarchy.levels, tuple)


def test_lazy_configs_roundtrip():
    for name in ("KernelConfig", "EnclaveConfig", "MicroScopeConfig"):
        cls = getattr(config, name)
        assert roundtrip(cls()) == cls()


def test_port_config_frozenset_roundtrip():
    port = config.PortConfig("P9", frozenset({"mul", "div"}))
    assert roundtrip(port) == port


def test_to_dict_rejects_non_config():
    with pytest.raises(TypeError):
        config.to_dict({"just": "a dict"})
    with pytest.raises(TypeError):
        config.to_dict(42)


def test_from_dict_rejects_untagged():
    with pytest.raises(ValueError):
        config.from_dict({"core": {}})


def test_from_dict_rejects_unknown_tag():
    with pytest.raises(ValueError):
        config.from_dict({"__config__": "WarpDriveConfig"})


def test_machine_builds_from_roundtripped_config():
    from repro.cpu.machine import Machine
    cfg = roundtrip(config.MachineConfig(num_frames=1 << 10))
    machine = Machine(cfg)
    assert machine.config.num_frames == 1 << 10


def test_canonical_namespace_exports():
    for name in config.__all__:
        assert getattr(config, name) is not None
