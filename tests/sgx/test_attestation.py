import pytest

from repro.isa.program import ProgramBuilder
from repro.sgx.attestation import (
    AttestationReport,
    MonotonicCounter,
    RunOnceGuard,
    measure_program,
)


def program_a():
    return ProgramBuilder("a").li("r1", 1).halt().build()


def program_b():
    return ProgramBuilder("b").li("r1", 2).halt().build()


def test_measurement_deterministic_and_distinct():
    assert measure_program(program_a()) == measure_program(program_a())
    assert measure_program(program_a()) != measure_program(program_b())


def test_report_verifies():
    report = AttestationReport.generate(program_a(), nonce=42)
    assert report.verify(program_a(), nonce=42)


def test_report_rejects_wrong_nonce():
    report = AttestationReport.generate(program_a(), nonce=42)
    assert not report.verify(program_a(), nonce=43)


def test_report_rejects_wrong_program():
    report = AttestationReport.generate(program_a(), nonce=42)
    assert not report.verify(program_b(), nonce=42)


def test_report_rejects_wrong_platform_key():
    report = AttestationReport.generate(program_a(), nonce=1)
    assert not report.verify(program_a(), nonce=1, platform_key="other")


def test_monotonic_counter():
    counter = MonotonicCounter()
    assert counter.value == 0
    assert counter.increment() == 1
    assert counter.increment() == 2


def test_run_once_guard_blocks_conventional_replay():
    """The §3 threat-model defense: whole-enclave replay is blocked —
    which is exactly why MicroScope's *microarchitectural* replay
    matters."""
    guard = RunOnceGuard()
    guard.begin_run("tax-return-2019")
    with pytest.raises(PermissionError):
        guard.begin_run("tax-return-2019")
    guard.begin_run("tax-return-2020")  # different input is fine
    assert guard.runs_of("tax-return-2019") == 1
    assert guard.runs_of("never-run") == 0
