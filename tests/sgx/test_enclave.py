import pytest

from repro.isa.program import ProgramBuilder
from repro.sgx.enclave import (
    EnclaveConfig,
    EnclaveProtectionError,
    SGXPlatform,
)


@pytest.fixture
def platform(system):
    machine, kernel = system
    return machine, kernel, SGXPlatform(kernel)


def simple_program():
    return ProgramBuilder("enclave-code").li("r1", 7).halt().build()


def test_enclave_owns_private_region(platform):
    _machine, kernel, sgx = platform
    process = kernel.create_process("host")
    enclave = sgx.create_enclave(process)
    assert enclave.owns(enclave.private_base)
    assert enclave.owns(enclave.private_base + enclave.private_size - 1)
    assert not enclave.owns(enclave.private_base + enclave.private_size)
    assert process.enclave is enclave


def test_supervisor_access_denied(platform):
    _machine, kernel, sgx = platform
    process = kernel.create_process("host")
    enclave = sgx.create_enclave(process)
    with pytest.raises(EnclaveProtectionError):
        sgx.supervisor_read(process, enclave.private_base)
    with pytest.raises(EnclaveProtectionError):
        sgx.supervisor_write(process, enclave.private_base, 1)


def test_supervisor_access_allowed_outside_enclave(platform):
    _machine, kernel, sgx = platform
    process = kernel.create_process("host")
    sgx.create_enclave(process)
    public = process.alloc(4096, "public")
    sgx.supervisor_write(process, public, 9)
    assert sgx.supervisor_read(process, public) == 9


def test_enclave_code_can_touch_private_memory(platform):
    machine, kernel, sgx = platform
    process = kernel.create_process("host")
    enclave = sgx.create_enclave(process)
    program = (ProgramBuilder("in-enclave")
               .li("r1", enclave.private_base)
               .li("r2", 1234)
               .store("r1", "r2", 0)
               .load("r3", "r1", 0)
               .halt().build())
    enclave.enter(machine.contexts[0], program)
    machine.run(100_000)
    assert machine.contexts[0].int_regs["r3"] == 1234


def test_measurement_binds_program(platform):
    machine, kernel, sgx = platform
    process = kernel.create_process("host")
    enclave = sgx.create_enclave(process)
    program = simple_program()
    enclave.load_code(program)
    enclave.enter(machine.contexts[0], program)   # matches
    other = ProgramBuilder("evil").li("r1", 8).halt().build()
    with pytest.raises(EnclaveProtectionError):
        enclave.enter(machine.contexts[0], other)


def test_predictor_flushed_on_entry(platform):
    machine, kernel, sgx = platform
    process = kernel.create_process("host")
    enclave = sgx.create_enclave(process)
    machine.core.predictor.prime(3, taken=True)
    enclave.enter(machine.contexts[0], simple_program())
    from repro.cpu.branch import WEAK_NOT_TAKEN
    assert machine.core.predictor.peek(3) == WEAK_NOT_TAKEN


def test_predictor_flush_can_be_disabled(platform):
    machine, kernel, sgx = platform
    process = kernel.create_process("host")
    enclave = sgx.create_enclave(
        process, EnclaveConfig(flush_predictor_on_boundary=False))
    machine.core.predictor.prime(3, taken=True)
    enclave.enter(machine.contexts[0], simple_program())
    from repro.cpu.branch import STRONG_TAKEN
    assert machine.core.predictor.peek(3) == STRONG_TAKEN


def test_aex_reports_page_aligned_address_only(platform):
    machine, kernel, sgx = platform
    process = kernel.create_process("host")
    enclave = sgx.create_enclave(process)
    data = process.alloc(4096, "data")
    process.write(data + 0x128, 5)
    kernel.set_present(process, data, False)
    machine.hierarchy.flush_all()
    machine.pwc.flush_all()
    program = (ProgramBuilder("leaky")
               .li("r1", data)
               .load("r2", "r1", 0x128)
               .halt().build())
    enclave.enter(machine.contexts[0], program)
    machine.run(200_000)
    assert enclave.aex_count == 1
    record = enclave.aex_log[0]
    assert record.page_aligned_va == data        # offset masked
    assert record.page_aligned_va % 4096 == 0
