"""Shared fixtures for the MicroScope reproduction test suite."""

import pytest

from repro.core.replayer import AttackEnvironment, Replayer
from repro.cpu.machine import Machine
from repro.kernel.kernel import Kernel


@pytest.fixture
def machine() -> Machine:
    """A fresh machine with default configuration."""
    return Machine()


@pytest.fixture
def kernel(machine) -> Kernel:
    """A kernel attached to the fresh machine."""
    return Kernel(machine)


@pytest.fixture
def system(machine, kernel):
    """(machine, kernel) pair."""
    return machine, kernel


@pytest.fixture
def replayer() -> Replayer:
    """A fully wired attack environment."""
    return Replayer(AttackEnvironment.build())


def run_program(machine, kernel, program, context_id=0,
                max_cycles=200_000, process=None):
    """Helper: create a process (unless given), launch and run the
    program to completion; returns the context."""
    if process is None:
        process = kernel.create_process("test")
    context = kernel.launch(process, program, context_id)
    machine.run_context_to_completion(context_id, max_cycles)
    assert context.finished(), "program did not finish in budget"
    return context
