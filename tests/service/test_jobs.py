"""Job specs: content-addressed identity and resolution."""

import pytest

from repro.evaluation import attack_names, defense_names
from repro.service import JobSpec, job_id


def test_job_id_is_content_addressed():
    a = JobSpec(attacks=("cf-cache",), defenses=("none", "fences"))
    b = JobSpec(attacks=("cf-cache",), defenses=("none", "fences"))
    assert job_id(a) == job_id(b)
    assert len(job_id(a)) == 16


def test_job_id_ignores_worker_count():
    base = JobSpec(attacks=("cf-cache",), defenses=("none",))
    sharded = JobSpec(attacks=("cf-cache",), defenses=("none",),
                      workers=4)
    assert job_id(base) == job_id(sharded)


def test_job_id_wildcards_equal_explicit_axes():
    assert job_id(JobSpec()) == job_id(
        JobSpec(attacks=attack_names(), defenses=defense_names()))


def test_job_id_differs_on_seed_and_overrides():
    base = JobSpec(attacks=("cf-cache",), defenses=("none",))
    assert job_id(base) != job_id(
        JobSpec(attacks=("cf-cache",), defenses=("none",),
                master_seed=1))
    assert job_id(base) != job_id(
        JobSpec(attacks=("cf-cache",), defenses=("none",),
                overrides={"cf-cache": {"x": 1}}))


def test_resolved_fills_defaults():
    from repro.evaluation import DEFAULT_LABEL, DEFAULT_MASTER_SEED
    spec = JobSpec(attacks=("cf-cache",), defenses=("none",)).resolved()
    assert spec.master_seed == DEFAULT_MASTER_SEED
    assert spec.label == DEFAULT_LABEL


def test_resolved_validates_names():
    with pytest.raises(KeyError, match="unknown attack"):
        JobSpec(attacks=("warp-attack",)).resolved()


def test_cells_are_attacks_outer_defenses_inner():
    spec = JobSpec(attacks=("cf-cache", "mispredict"),
                   defenses=("none", "fences"))
    assert [(a, d) for a, d, _ in spec.cells()] == [
        ("cf-cache", "none"), ("cf-cache", "fences"),
        ("mispredict", "none"), ("mispredict", "fences")]
    assert spec.trial_count == 4


def test_to_from_dict_roundtrip():
    spec = JobSpec(attacks=("cf-cache",), defenses=("none",),
                   overrides={"cf-cache": {"k": 1}}, master_seed=5,
                   label="x", backend="inline", workers=3)
    clone = JobSpec.from_dict(spec.to_dict())
    assert clone == spec
    assert job_id(clone) == job_id(spec)


def test_workers_must_be_positive():
    with pytest.raises(ValueError, match="workers"):
        JobSpec(workers=0)
