"""The newline-JSON wire format."""

import io

import pytest

from repro.service.protocol import (
    ProtocolError,
    decode,
    encode,
    recv_line,
)


def test_encode_decode_roundtrip():
    message = {"op": "submit", "spec": {"attacks": ["cf-cache"]}}
    assert decode(encode(message)) == message


def test_encode_is_one_sorted_line():
    line = encode({"b": 1, "a": 2})
    assert line.endswith(b"\n")
    assert line.count(b"\n") == 1
    assert line.index(b'"a"') < line.index(b'"b"')


def test_decode_rejects_garbage():
    with pytest.raises(ProtocolError, match="undecodable"):
        decode(b"{not json}\n")


def test_decode_rejects_non_object():
    with pytest.raises(ProtocolError, match="object"):
        decode(b"[1, 2, 3]\n")


def test_recv_line_roundtrip_and_eof():
    fh = io.BytesIO(encode({"ok": True}) + encode({"n": 2}))
    assert recv_line(fh) == {"ok": True}
    assert recv_line(fh) == {"n": 2}
    assert recv_line(fh) is None


def test_recv_line_torn_tail():
    fh = io.BytesIO(b'{"ok": true}')  # no newline: cut mid-line
    with pytest.raises(ProtocolError, match="mid-line"):
        recv_line(fh)
