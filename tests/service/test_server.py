"""The job server end to end: submit, status, watch, result,
recovery — against a real asyncio server on a real socket."""

import json
import threading

import pytest

from repro.evaluation import EvaluationMatrix, MatrixRunner
from repro.service import (
    JobSpec,
    ServiceClient,
    ServiceError,
    job_id,
    serve,
)

#: The cheap matrix every test submits (two cells, ~0.4 s).
ATTACKS = ("cf-cache",)
DEFENSES = ("none", "fences")


@pytest.fixture
def service(tmp_path):
    """A live server on an ephemeral port; yields (client, state)."""
    state = tmp_path / "state"
    ready = threading.Event()
    holder = {}

    def boot():
        serve(state, on_ready=lambda s: (holder.update(server=s),
                                         ready.set()))

    thread = threading.Thread(target=boot, daemon=True)
    thread.start()
    assert ready.wait(15), "server never came up"
    client = ServiceClient(state_dir=state)
    yield client, state
    try:
        client.shutdown()
    except ServiceError:
        pass
    thread.join(timeout=15)


def _submit_and_wait(client):
    spec = JobSpec(attacks=ATTACKS, defenses=DEFENSES)
    submitted = client.submit(spec)
    status = client.wait(submitted["job"], timeout=120)
    assert status["state"] == "done", status
    return spec, submitted["job"], status


def test_ping(service):
    client, _ = service
    reply = client.ping()
    assert reply["pong"] is True
    assert reply["pid"] > 0


def test_submit_runs_job_to_done(service):
    client, state = service
    spec, jid, status = _submit_and_wait(client)
    assert jid == job_id(spec)
    assert status["done"] == status["total"] == 2
    assert status["cache"]["stores"] == 2
    assert status["metrics"]  # registry dump travels on status
    job_dir = state / "jobs" / jid
    for artifact in ("spec.json", "journal.jsonl", "ledger.jsonl",
                     "result.json", "metrics.json"):
        assert (job_dir / artifact).exists(), artifact


def test_result_matches_local_matrix_run(service):
    client, _ = service
    _spec, jid, _ = _submit_and_wait(client)
    remote = EvaluationMatrix.from_dict(client.result(jid))
    local = MatrixRunner(attacks=ATTACKS, defenses=DEFENSES).run()
    assert remote.to_dict() == local.to_dict()


def test_matrix_runner_routes_through_service(service):
    client, state = service
    runner = MatrixRunner(attacks=ATTACKS, defenses=DEFENSES,
                          service=state)
    matrix = runner.run()
    assert runner.last_run_report is None
    local = MatrixRunner(attacks=ATTACKS, defenses=DEFENSES).run()
    assert matrix.to_dict() == local.to_dict()
    # The runner's submission landed as a service job.
    assert any(job["state"] == "done" for job in client.jobs())


def test_resubmit_is_idempotent_and_serves_from_store(service):
    client, _ = service
    spec, jid, _ = _submit_and_wait(client)
    again = client.submit(spec)
    assert again["job"] == jid
    assert again["state"] == "done"  # nothing re-enqueued


def test_watch_streams_until_terminal_state(service):
    client, _ = service
    spec = JobSpec(attacks=ATTACKS, defenses=DEFENSES)
    submitted = client.submit(spec)
    events = list(client.watch(submitted["job"]))
    assert events[0]["event"] == "snapshot"
    assert events[-1]["event"] == "state"
    assert events[-1]["state"] == "done"


def test_status_unknown_job(service):
    client, _ = service
    with pytest.raises(ServiceError, match="unknown job"):
        client.status("deadbeef")


def test_result_before_done_is_refused(service):
    client, _ = service
    with pytest.raises(ServiceError, match="unknown job"):
        client.result("deadbeef")


def test_unknown_op_is_an_error_not_a_crash(service):
    client, _ = service
    with pytest.raises(ServiceError, match="unknown op"):
        client._request({"op": "frobnicate"})
    assert client.ping()["pong"] is True  # server survived


def test_submit_rejects_unknown_attack(service):
    client, _ = service
    with pytest.raises(ServiceError, match="unknown attack"):
        client.submit(JobSpec(attacks=("warp-attack",)))
    assert client.ping()["pong"] is True


def test_recovery_completes_job_from_prior_state(tmp_path):
    """A spec.json without result.json is re-enqueued at boot and
    resumes from its journal — the recovery path the kill/restart CI
    smoke (benchmarks/ci_service_smoke.py) exercises with SIGKILL."""
    state = tmp_path / "state"
    spec = JobSpec(attacks=ATTACKS, defenses=DEFENSES).resolved()
    jid = job_id(spec)
    job_dir = state / "jobs" / jid
    job_dir.mkdir(parents=True)
    (job_dir / "spec.json").write_text(
        json.dumps(spec.to_dict(), sort_keys=True))

    ready = threading.Event()

    def boot():
        serve(state, on_ready=lambda s: ready.set())

    thread = threading.Thread(target=boot, daemon=True)
    thread.start()
    assert ready.wait(15)
    client = ServiceClient(state_dir=state)
    try:
        status = client.wait(jid, timeout=120)
        assert status["state"] == "done"
        remote = EvaluationMatrix.from_dict(client.result(jid))
        local = MatrixRunner(attacks=ATTACKS,
                             defenses=DEFENSES).run()
        assert remote.to_dict() == local.to_dict()
    finally:
        client.shutdown()
        thread.join(timeout=15)


def test_client_requires_an_address_or_state_dir():
    with pytest.raises(ValueError, match="state_dir"):
        ServiceClient()


def test_client_reports_missing_endpoint(tmp_path):
    client = ServiceClient(state_dir=tmp_path)
    with pytest.raises(ServiceError, match="no running service"):
        client.ping()
