"""The append-only cell claim ledger."""

import json

from repro.service import CellLedger


def test_claim_wins_unclaimed_cells(tmp_path):
    ledger = CellLedger(tmp_path / "ledger.jsonl")
    assert ledger.claim("w1", [0, 1, 2]) == [0, 1, 2]
    assert ledger.claimed() == {0: "w1", 1: "w1", 2: "w1"}


def test_first_claim_in_file_order_wins(tmp_path):
    path = tmp_path / "ledger.jsonl"
    first = CellLedger(path)
    second = CellLedger(path)
    assert first.claim("w1", [0, 1]) == [0, 1]
    # w2's later lines lose the already-claimed cells, win the rest.
    assert second.claim("w2", [1, 2]) == [2]
    assert second.claimed() == {0: "w1", 1: "w1", 2: "w2"}


def test_unclaimed_filters_live_claims(tmp_path):
    ledger = CellLedger(tmp_path / "ledger.jsonl")
    ledger.claim("w1", [1, 3])
    assert ledger.unclaimed([0, 1, 2, 3, 4]) == [0, 2, 4]


def test_epoch_voids_prior_claims(tmp_path):
    path = tmp_path / "ledger.jsonl"
    dead = CellLedger(path)
    dead.claim("dead-server", [0, 1, 2, 3])
    survivor = CellLedger(path)
    survivor.epoch("new-server")
    assert survivor.claimed() == {}
    assert survivor.claim("new-server", [0, 1]) == [0, 1]


def test_lease_expiry_frees_cells(tmp_path):
    path = tmp_path / "ledger.jsonl"
    stuck = CellLedger(path, lease=0.0)  # expires immediately
    stuck.claim("stuck", [0])
    healthy = CellLedger(path, lease=300.0)
    assert healthy.unclaimed([0]) == [0]
    assert healthy.claim("healthy", [0]) == [0]


def test_corrupt_lines_are_skipped(tmp_path):
    path = tmp_path / "ledger.jsonl"
    ledger = CellLedger(path)
    ledger.claim("w1", [0])
    with open(path, "ab") as fh:
        fh.write(b'{"kind": "claim", "index": 1, "wor"\n')  # corrupt
    # The corrupt line is ignored; the whole file stays usable.
    assert ledger.claimed() == {0: "w1"}
    assert ledger.claim("w2", [1]) == [1]


def test_torn_tail_loses_only_itself(tmp_path):
    """A crash mid-append leaves an unterminated line; the next
    append merges with it and both are discarded as corrupt.  The
    affected cell is merely unclaimed again — never wrongly owned."""
    path = tmp_path / "ledger.jsonl"
    ledger = CellLedger(path)
    with open(path, "ab") as fh:
        fh.write(b'{"kind": "claim", "index": 0, "wor')  # torn tail
    first = ledger.claim("w2", [0])   # merges into the torn line
    assert first == []                # lost — but not wrongly won
    assert ledger.claim("w2", [0]) == [0]  # clean retry succeeds


def test_claims_are_single_lines(tmp_path):
    path = tmp_path / "ledger.jsonl"
    CellLedger(path).claim("w", [0, 1])
    for line in path.read_text().splitlines():
        record = json.loads(line)
        assert record["kind"] == "claim"


def test_missing_file_is_empty(tmp_path):
    ledger = CellLedger(tmp_path / "nope.jsonl")
    assert ledger.claimed() == {}
    assert ledger.unclaimed([0, 1]) == [0, 1]
