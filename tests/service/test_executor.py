"""The sharded cell executor: claim/execute/journal loops."""

import json
import threading

from repro.harness import FaultPolicy, SweepJournal, run_resilient_sweep
from repro.memo import TrialStore
from repro.service import CellLedger
from repro.service.executor import CellExecutor

FAST = FaultPolicy(backoff_base=0.0, on_exhausted="default",
                   default=None)


def seed_echo(params, seed):
    return (params, seed)


def always_fail(params, seed):
    raise RuntimeError("never works")


def _make_header(path, label, master_seed, count):
    """The server's job: create the journal header before any
    executor opens the file."""
    journal = SweepJournal(path, atomic=True)
    journal.open(label, master_seed, count)
    journal.close()


def _executor(tmp_path, worker, params, **kwargs):
    journal_path = tmp_path / "journal.jsonl"
    defaults = dict(
        trial_fn=seed_echo, params=params,
        journal_path=journal_path,
        ledger=CellLedger(tmp_path / "ledger.jsonl"),
        worker=worker, master_seed=9, label="exec",
        backend="inline", policy=FAST, poll_interval=0.005)
    defaults.update(kwargs)
    return CellExecutor(**defaults)


def _journal_indices(path):
    return [json.loads(line)["index"]
            for line in path.read_text().splitlines()
            if json.loads(line).get("kind") == "trial"]


def test_single_executor_matches_resilient_sweep(tmp_path):
    params = list(range(5))
    _make_header(tmp_path / "journal.jsonl", "exec", 9, len(params))
    results, report = _executor(tmp_path, "w0", params).run()
    reference = run_resilient_sweep(
        seed_echo, params, master_seed=9, label="exec",
        policy=FAST, workers=1, backend="inline")
    assert results == reference.results()
    assert report.resolution_counts()["ok"] == 5


def test_two_executors_shard_without_overlap(tmp_path):
    params = list(range(8))
    _make_header(tmp_path / "journal.jsonl", "exec", 9, len(params))
    ledger = CellLedger(tmp_path / "ledger.jsonl")
    first = _executor(tmp_path, "w0", params, ledger=ledger,
                      claim_batch=2)
    second = _executor(tmp_path, "w1", params, ledger=ledger,
                       claim_batch=2)
    outputs = {}

    def run(name, executor):
        outputs[name] = executor.run()

    threads = [threading.Thread(target=run, args=("a", first)),
               threading.Thread(target=run, args=("b", second))]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    # Both workers see the complete, identical result set...
    reference = run_resilient_sweep(
        seed_echo, params, master_seed=9, label="exec",
        policy=FAST, workers=1, backend="inline")
    assert outputs["a"][0] == reference.results()
    assert outputs["b"][0] == reference.results()
    # ...and every cell was executed exactly once, by exactly one.
    indices = _journal_indices(tmp_path / "journal.jsonl")
    assert sorted(indices) == params
    ok_counts = [out[1].resolution_counts()["ok"]
                 for out in outputs.values()]
    assert sum(ok_counts) == len(params)


def test_second_run_replays_journal_with_zero_reruns(tmp_path):
    params = list(range(4))
    _make_header(tmp_path / "journal.jsonl", "exec", 9, len(params))
    first_results, _ = _executor(tmp_path, "w0", params).run()
    results, report = _executor(tmp_path, "w1", params).run()
    assert results == first_results
    counts = report.resolution_counts()
    assert counts["journal"] == 4
    assert counts["ok"] == 0
    assert sorted(_journal_indices(tmp_path / "journal.jsonl")) \
        == params


def test_store_hits_resolve_cached_and_journal(tmp_path):
    params = list(range(3))
    store = TrialStore(tmp_path / "store")
    # Warm the store through the ordinary sweep path.
    run_resilient_sweep(seed_echo, params, master_seed=9,
                        label="exec", policy=FAST, workers=1,
                        store=store, backend="inline")
    _make_header(tmp_path / "journal.jsonl", "exec", 9, len(params))
    results, report = _executor(tmp_path, "w0", params,
                                store=store).run()
    counts = report.resolution_counts()
    assert counts["cached"] == 3
    assert counts["ok"] == 0
    # Cached hits are journalled: completion truth stays the journal.
    assert sorted(_journal_indices(tmp_path / "journal.jsonl")) \
        == params
    reference = run_resilient_sweep(
        seed_echo, params, master_seed=9, label="exec",
        policy=FAST, workers=1, backend="inline")
    assert results == reference.results()


def test_exhausted_cells_are_journalled_as_defaults(tmp_path):
    """A cell that exhausts its attempts must still land in the
    journal (as its fallback payload) or other workers would wait on
    it forever."""
    params = list(range(2))
    _make_header(tmp_path / "journal.jsonl", "exec", 9, len(params))
    results, report = _executor(tmp_path, "w0", params,
                                trial_fn=always_fail).run()
    assert results == [None, None]
    assert report.resolution_counts()["defaulted"] == 2
    assert sorted(_journal_indices(tmp_path / "journal.jsonl")) \
        == params
    # And a second worker resolves them straight from the journal.
    results2, report2 = _executor(tmp_path, "w1", params,
                                  trial_fn=always_fail).run()
    assert results2 == [None, None]
    assert report2.resolution_counts()["journal"] == 2
