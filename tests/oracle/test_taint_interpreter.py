"""Propagation rules of the architectural taint interpreter.

Hand-built programs pin each rule of
:class:`repro.isa.taint.TaintedInterpreter` — the sequential
counterpart of the OOO-core oracle — one rule per test, so a
propagation regression names the exact rule it broke.
"""

from repro.isa.program import ProgramBuilder
from repro.isa.taint import TaintedInterpreter

SECRET_VA = 0x1000
PUBLIC_VA = 0x2000


def _run(build, *, regions=(), registers=(), memory=None):
    """Build a program, seed taint, run to completion."""
    builder = ProgramBuilder("taint-test")
    build(builder)
    builder.halt()
    interp = TaintedInterpreter(builder.build(), memory=memory or {})
    for va, size in regions:
        interp.taint_region(va, size)
    for reg in registers:
        interp.taint_register(reg)
    interp.run()
    return interp


def test_untouched_program_stays_clean():
    def build(b):
        b.li("r1", PUBLIC_VA)
        b.load("r2", "r1", 0)
        b.add("r3", "r2", "r2")
        b.store("r1", "r3", 8)

    interp = _run(build, memory={PUBLIC_VA: 7})
    assert not interp.reg_taint
    assert not interp.mem_taint
    assert not interp.control


def test_load_from_secret_region_taints_register():
    def build(b):
        b.li("r1", SECRET_VA)
        b.load("r2", "r1", 0)

    interp = _run(build, regions=[(SECRET_VA, 8)],
                  memory={SECRET_VA: 42})
    assert interp.tainted_reg("r2")
    assert not interp.tainted_reg("r1")


def test_arithmetic_propagates_register_taint():
    def build(b):
        b.li("r1", SECRET_VA)
        b.load("r2", "r1", 0)
        b.add("r3", "r2", "r1")    # tainted rs1
        b.xor("r4", "r1", "r3")    # tainted rs2
        b.addi("r5", "r4", 3)      # tainted immediate-op source
        b.add("r6", "r1", "r1")    # both sources clean

    interp = _run(build, regions=[(SECRET_VA, 8)],
                  memory={SECRET_VA: 42})
    assert interp.tainted_reg("r3")
    assert interp.tainted_reg("r4")
    assert interp.tainted_reg("r5")
    assert not interp.tainted_reg("r6")


def test_store_taints_and_clean_store_clears_memory():
    def build(b):
        b.li("r1", SECRET_VA)
        b.li("r7", PUBLIC_VA)
        b.load("r2", "r1", 0)
        b.store("r7", "r2", 0)     # tainted value -> public word
        b.store("r7", "r1", 8)     # clean value -> public word
        b.load("r3", "r7", 0)      # reads the tainted word back

    interp = _run(build, regions=[(SECRET_VA, 8)],
                  memory={SECRET_VA: 42})
    assert interp.tainted_mem(PUBLIC_VA)
    assert not interp.tainted_mem(PUBLIC_VA + 8)
    assert interp.tainted_reg("r3")


def test_clean_overwrite_clears_register_taint():
    def build(b):
        b.li("r1", SECRET_VA)
        b.load("r2", "r1", 0)
        b.add("r2", "r1", "r1")    # clean overwrite of r2

    interp = _run(build, regions=[(SECRET_VA, 8)],
                  memory={SECRET_VA: 42})
    assert not interp.tainted_reg("r2")


def test_branch_on_taint_sets_sticky_control():
    def build(b):
        b.li("r1", SECRET_VA)
        b.load("r2", "r1", 0)
        b.li("r3", 0)
        b.bne("r2", "r3", "skip")
        b.label("skip")
        b.li("r4", 5)              # written under control taint

    interp = _run(build, regions=[(SECRET_VA, 8)],
                  memory={SECRET_VA: 1})
    assert interp.control
    assert interp.tainted_reg("r4")


def test_branch_on_clean_data_leaves_control_clear():
    def build(b):
        b.li("r2", 1)
        b.li("r3", 0)
        b.bne("r2", "r3", "skip")
        b.label("skip")
        b.li("r4", 5)

    interp = _run(build)
    assert not interp.control
    assert not interp.tainted_reg("r4")


def test_register_seeding_without_regions():
    def build(b):
        b.add("r3", "r2", "r2")

    interp = _run(build, registers=("r2",))
    assert interp.tainted_reg("r3")
