"""Oracle soundness: no taint source means zero leakage events.

The load-bearing control experiments for the information-flow
property: the paper's own attacks run under an *active* oracle whose
secret seeding is disabled (``OracleConfig(seed_secrets=False)``), so
all the instrumentation is live but no taint source exists.  Any
event raised here is an oracle false positive by construction.  The
positive leg then re-enables seeding and requires the same attacks to
raise events of the documented kinds.
"""

import pytest

from repro.oracle import (
    EVENT_KINDS,
    REASONS,
    OracleConfig,
    TaintOracle,
    activate,
)


def _run_cf_cache(secret=1):
    from repro.core.attacks.control_flow import ControlFlowCacheAttack
    return ControlFlowCacheAttack().run(secret=secret)


def _run_aes_fig11():
    from repro.core.attacks.aes_cache import AESCacheAttack
    from repro.crypto.aes import encrypt_block
    key = bytes(range(16))
    ciphertext = encrypt_block(key, b"attack at dawn!!")
    return AESCacheAttack(key, ciphertext).run_figure11()


def _run_fig10_panel():
    from repro.core.attacks.port_contention import PortContentionAttack
    attack = PortContentionAttack(measurements=60)
    return attack.run(secret=1, threshold=attack.calibrate())


@pytest.mark.parametrize("runner", [
    _run_cf_cache, _run_aes_fig11, _run_fig10_panel,
], ids=["cf-cache", "aes-fig11", "fig10-port"])
def test_secret_free_control_raises_zero_events(runner):
    oracle = TaintOracle(OracleConfig(seed_secrets=False))
    with activate(oracle):
        runner()
    assert oracle.summary.total == 0, oracle.summary.to_dict()
    assert oracle.summary.verdict == "clean"


def test_cf_cache_leaks_with_secrets_seeded():
    oracle = TaintOracle()
    with activate(oracle):
        result = _run_cf_cache()
    assert result.correct           # oracle must not perturb the attack
    summary = oracle.summary.to_dict()
    assert summary["verdict"] == "leaks"
    assert summary["events"] > 0
    assert set(summary["counts"]) <= set(EVENT_KINDS)
    # The control-flow attack's signature observables all fire.
    for kind in ("cache-touch", "port-issue", "squash-replay"):
        assert summary["counts"].get(kind, 0) > 0, kind
    for event in summary["samples"]:
        assert set(event["reasons"]) <= set(REASONS)
        assert event["reasons"], "every event explains its taint"


def test_aes_fig11_leaks_with_secrets_seeded():
    oracle = TaintOracle()
    with activate(oracle):
        fig11 = _run_aes_fig11()
    assert fig11.noise_free         # oracle must not perturb the attack
    summary = oracle.summary.to_dict()
    assert summary["verdict"] == "leaks"
    assert summary["counts"].get("cache-touch", 0) > 0
