"""Oracle-off bit-identity: an idle (or unseeded) oracle is invisible.

The hub is wired into every machine permanently (a ``None``-check per
hook when no oracle is active), and an *active* oracle only reads
core state — so executions must be bit-identical across all three
modes: no activation, activation with no secrets, and no hub use at
all.  Hypothesis drives random programs through a fresh machine per
mode and compares the full snapshot digest plus the metrics dump.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu.machine import Machine
from repro.isa import instructions as ins
from repro.isa.program import ProgramBuilder
from repro.oracle import TaintOracle, activate
from repro.snapshot import MachineSnapshot, state_digest

DATA_BASE = 0x0010_0000
_DATA_REGS = [f"r{i}" for i in range(2, 10)]
_OFFSETS = [0, 8, 16, 64]


@st.composite
def _random_program(draw):
    """Init + bounded loop with branches, loads and stores — enough
    shape to exercise every oracle hook point."""
    builder = ProgramBuilder("oracle-identity")
    builder.li("r1", DATA_BASE)
    for reg in _DATA_REGS:
        builder.li(reg, draw(st.integers(0, 1 << 20)))
    builder.li("r0", draw(st.integers(min_value=1, max_value=4)))
    builder.label("loop")
    for _ in range(draw(st.integers(min_value=2, max_value=8))):
        kind = draw(st.sampled_from(
            ["alu", "mul", "div", "load", "store"]))
        rd = draw(st.sampled_from(_DATA_REGS))
        rs1 = draw(st.sampled_from(_DATA_REGS))
        rs2 = draw(st.sampled_from(_DATA_REGS))
        offset = draw(st.sampled_from(_OFFSETS))
        if kind == "alu":
            ctor = draw(st.sampled_from([ins.add, ins.sub, ins.xor]))
            builder.emit(ctor(rd, rs1, rs2))
        elif kind == "mul":
            builder.emit(ins.mul(rd, rs1, rs2))
        elif kind == "div":
            builder.emit(ins.div(rd, rs1, rs2))
        elif kind == "load":
            builder.emit(ins.load(rd, "r1", offset))
        else:
            builder.emit(ins.store("r1", rs1, offset))
    if draw(st.booleans()):
        builder.beq(draw(st.sampled_from(_DATA_REGS)),
                    draw(st.sampled_from(_DATA_REGS)), "skip")
        builder.emit(ins.store("r1", "r2", 128))
        builder.label("skip")
    builder.subi("r0", "r0", 1)
    builder.li("r13", 0)
    builder.bne("r0", "r13", "loop")
    builder.halt()
    return builder.build()


def _fingerprint(program, oracle):
    """Digest + metrics of one fresh-machine run (under *oracle*)."""
    scope = activate(oracle) if oracle is not None else None
    if scope is not None:
        scope.__enter__()
    try:
        machine = Machine()
        machine.contexts[0].load_program(program)
        machine.run(3_000_000)
    finally:
        if scope is not None:
            scope.__exit__(None, None, None)
    assert machine.contexts[0].finished()
    return (state_digest(MachineSnapshot.take(machine)),
            machine.metrics.dump())


@given(_random_program())
@settings(max_examples=12, deadline=None)
def test_unseeded_oracle_is_bit_invisible(program):
    oracle = TaintOracle()
    baseline = _fingerprint(program, None)
    observed = _fingerprint(program, oracle)
    assert observed == baseline
    # ... and with no registered secret it never fires.
    assert oracle.summary.total == 0
