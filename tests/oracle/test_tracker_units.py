"""Unit behavior of the oracle plumbing: config coercion, the bounded
event summary, activation scoping, machine attachment idempotence and
the ``FaultPolicy.verify`` cross-check."""

import pytest

from repro.cpu.machine import Machine
from repro.oracle import (
    EVENT_KINDS,
    LeakageEvent,
    LeakageSummary,
    OracleConfig,
    TaintOracle,
    activate,
    attach_machine,
    current,
    oracle_consistency_verify,
)
from repro.oracle.tracker import _coerce_config


# --- config coercion -------------------------------------------------------


@pytest.mark.parametrize("value", [None, False])
def test_coerce_off(value):
    assert _coerce_config(value) is None


def test_coerce_defaults_and_passthrough():
    assert _coerce_config(True) == OracleConfig()
    config = OracleConfig(seed_secrets=False, max_samples=4)
    assert _coerce_config(config) is config
    assert _coerce_config(config.to_dict()) == config


def test_coerce_rejects_junk():
    with pytest.raises(TypeError):
        _coerce_config("yes please")


def test_config_round_trips():
    config = OracleConfig(seed_secrets=False, max_samples=7)
    assert OracleConfig.from_dict(config.to_dict()) == config


# --- summary ---------------------------------------------------------------


def _event(kind="cache-touch", cycle=1):
    return LeakageEvent(kind=kind, cycle=cycle, context_id=0, index=3,
                        op="load", reasons=("data",),
                        detail={"set": 5})


def test_summary_counts_and_verdict():
    summary = LeakageSummary(max_samples=2)
    assert summary.verdict == "clean"
    for kind in ("cache-touch", "cache-touch", "port-issue"):
        summary.record(_event(kind))
    assert summary.verdict == "leaks"
    assert summary.total == 3
    payload = summary.to_dict()
    assert payload["events"] == 3
    assert payload["counts"] == {"cache-touch": 2, "port-issue": 1}
    # Counts stay exact past the sample cap; samples stop at it.
    assert len(payload["samples"]) == 2


def test_event_kinds_are_canonical():
    assert len(set(EVENT_KINDS)) == len(EVENT_KINDS)
    assert _event().to_dict()["kind"] in EVENT_KINDS


# --- activation scoping ----------------------------------------------------


def test_activate_nests_and_restores():
    assert current() is None
    outer, inner = TaintOracle(), TaintOracle()
    with activate(outer):
        assert current() is outer
        with activate(inner):
            assert current() is inner
        assert current() is outer
    assert current() is None


def test_secret_seeding_respects_config():
    oracle = TaintOracle(OracleConfig(seed_secrets=False))
    oracle.add_secret_region(None, 0x1000, 8)
    assert not oracle.regions
    seeded = TaintOracle()
    seeded.add_secret_region(None, 0x1000, 8)
    assert seeded.regions == [(-1, 0x1000, 0x1008)]


# --- machine attachment ----------------------------------------------------


def test_attach_machine_is_idempotent():
    machine = Machine()
    hooks_before = (len(machine.core.decode_hooks),
                    len(machine.core.issue_hooks),
                    len(machine.core.retire_hooks),
                    len(machine.hierarchy.access_observers))
    attach_machine(machine)
    attach_machine(machine)
    assert len(machine.core.decode_hooks) == hooks_before[0] + 1
    assert len(machine.core.issue_hooks) == hooks_before[1] + 1
    assert len(machine.core.retire_hooks) == hooks_before[2] + 1
    assert len(machine.hierarchy.access_observers) == \
        hooks_before[3] + 1
    assert machine.core.oracle is machine.core._oracle_hub


# --- FaultPolicy.verify hook -----------------------------------------------


def _cell(verdict, accuracy, chance=0.5, error=None):
    return {"accuracy": accuracy, "chance": chance, "error": error,
            "detail": {"oracle": {"verdict": verdict, "events": 0}}}


def test_verify_rejects_clean_oracle_with_statistical_leak():
    assert not oracle_consistency_verify(_cell("clean", 1.0))


def test_verify_accepts_consistent_cells():
    assert oracle_consistency_verify(_cell("clean", 0.52))
    assert oracle_consistency_verify(_cell("leaks", 1.0))
    assert oracle_consistency_verify(_cell("leaks", 0.5))


def test_verify_ignores_foreign_payloads():
    assert oracle_consistency_verify(None)
    assert oracle_consistency_verify(41)
    assert oracle_consistency_verify({"accuracy": 1.0})
    assert oracle_consistency_verify(_cell("clean", None))
