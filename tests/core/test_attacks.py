"""End-to-end attack correctness at small (fast) scales.

The benchmarks regenerate the paper's figures at full scale; these
tests pin the *behavioural* claims: correct secrets extracted, clear
separation between cases, defenses behaving as §8 describes.
"""

import pytest

from repro.core.attacks.aes_cache import AESCacheAttack
from repro.core.attacks.control_flow import ControlFlowCacheAttack
from repro.core.attacks.loop_secret import LoopSecretAttack
from repro.core.attacks.mispredict_replay import (
    MispredictReplayAttack,
    infer_secret_by_priming,
)
from repro.core.attacks.port_contention import PortContentionAttack
from repro.core.attacks.rdrand import RdrandBiasAttack
from repro.core.attacks.single_secret import SUBNORMAL, SubnormalDetectionAttack
from repro.core.attacks.tsx_replay import TSXReplayAttack
from repro.crypto.aes import encrypt_block

KEY = bytes(range(16))
CIPHERTEXT = encrypt_block(KEY, bytes.fromhex(
    "00112233445566778899aabbccddeeff"))


@pytest.fixture(scope="module")
def port_attack():
    return PortContentionAttack(measurements=800)


@pytest.fixture(scope="module")
def port_threshold(port_attack):
    return port_attack.calibrate(samples=400)


def test_port_contention_separates_mul_and_div(port_attack,
                                               port_threshold):
    mul = port_attack.run(secret=0, threshold=port_threshold)
    div = port_attack.run(secret=1, threshold=port_threshold)
    assert mul.correct and div.correct
    assert div.above_threshold > mul.above_threshold
    assert div.above_threshold >= 3
    assert mul.above_threshold <= 1
    assert div.replays > 0


def test_port_contention_single_logical_run(port_attack,
                                            port_threshold):
    """The victim's counter commits exactly once: one architectural
    execution despite all the replays."""
    result = port_attack.run(secret=1, threshold=port_threshold)
    assert result.replays >= 3


def test_aes_figure11_noise_free():
    attack = AESCacheAttack(KEY, CIPHERTEXT)
    fig11 = attack.run_figure11()
    assert len(fig11.replay_latencies) == 3
    assert fig11.noise_free
    # Replays 1 and 2 agree exactly (the denoised panel of Fig. 11).
    assert fig11.replay_latencies[1] == fig11.replay_latencies[2]
    # Non-accessed lines miss to DRAM; accessed ones hit L1.
    primed = fig11.replay_latencies[1]
    for line, latency in enumerate(primed):
        if line in fig11.truth_lines:
            assert latency <= fig11.hit_threshold
        else:
            assert latency > 300


def test_aes_full_extraction_single_run():
    attack = AESCacheAttack(KEY, CIPHERTEXT)
    result = attack.run_full_extraction()
    assert result.plaintext_ok          # the victim still decrypts
    assert result.exact_union           # every touched line extracted
    assert result.union_recall() == 1.0
    assert result.union_precision() == 1.0


def test_loop_secret_exact_on_distinct_values():
    attack = LoopSecretAttack()
    secrets = [3, 11, 7, 2, 0, 14, 5, 9]
    result = attack.run(secrets)
    assert result.exact
    assert result.replays >= len(secrets)


def test_loop_secret_handles_repeats():
    result = LoopSecretAttack().run([5, 5, 5, 1, 2, 3])
    assert result.accuracy >= 0.8


def test_control_flow_cache_attack():
    attack = ControlFlowCacheAttack()
    for secret in (0, 1):
        result = attack.run(secret)
        assert result.correct
        assert result.replays == attack.replays


def test_subnormal_detection():
    attack = SubnormalDetectionAttack(measurements=800)
    threshold = attack.calibrate(samples=400)
    normal = attack.run(1.0, threshold=threshold)
    subnormal = attack.run(SUBNORMAL, threshold=threshold)
    assert normal.correct and subnormal.correct
    assert subnormal.peak_excursion > normal.peak_excursion + 50


def test_rdrand_bias_unfenced():
    result = RdrandBiasAttack(trials=8, fenced=False).run()
    assert result.bias == 1.0
    assert result.blind_releases == 0


def test_rdrand_bias_blocked_by_fence():
    result = RdrandBiasAttack(trials=8, fenced=True,
                              max_replays_per_trial=15).run()
    assert result.blind_releases == 8   # never observed the parity
    assert result.bias < 1.0


def test_tsx_replay_biases_despite_fence():
    result = TSXReplayAttack(trials=8, fenced=True).run()
    assert result.bias == 1.0
    assert result.total_aborts >= 1


def test_mispredict_replay_bounded():
    attack = MispredictReplayAttack()
    wrong = attack.run(secret=1, primed_taken=False)
    assert wrong.mispredicted
    assert wrong.both_paths_observed
    right = attack.run(secret=1, primed_taken=True)
    assert not right.mispredicted
    assert not right.both_paths_observed


def test_mispredict_inference():
    for secret in (0, 1):
        outcome = infer_secret_by_priming(secret)
        assert outcome["correct"]


def test_secret_id_extraction():
    """§4.2.1's alternative channel: the cache line of secrets[id]."""
    from repro.core.attacks.single_secret import SecretIdExtractionAttack
    attack = SecretIdExtractionAttack()
    for secret_id in (5, 100, 250):
        result = attack.run(secret_id)
        assert result.correct
        assert result.replays == attack.replays


def test_adaptive_recipe_switches_walk():
    """§5.2.1: 'switch from a long page walk to a short one' when the
    attack is unsuccessful."""
    from repro.core.attacks.adaptive import AdaptiveWalkAttack
    secrets = [3, 11, 7, 2, 0, 14, 5, 9]
    result = AdaptiveWalkAttack().run(secrets)
    assert result.adapted
    assert max(result.widths_before) > max(result.widths_after[:10])
    assert result.accuracy == 1.0


def test_interrupt_replay_engine():
    """§7.1 generalisation: interrupts alone replay in-flight transmit
    instructions (zero-stepping as a replay engine)."""
    from repro.core.attacks.interrupt_replay import InterruptReplayAttack
    result = InterruptReplayAttack(replays=6).run(secret=1)
    assert result.victim_finished
    assert result.interrupts_delivered >= 4
    assert result.transmit_executions > 2   # replayed beyond arch count
