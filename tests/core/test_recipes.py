import pytest

from repro.core.recipes import (
    AttackRecipe,
    ReplayAction,
    ReplayDecision,
    ReplayEvent,
    WalkLocation,
    WalkTuning,
    replay_n_times,
)


class FakeProcess:
    pid = 1


def make_recipe(**kwargs):
    return AttackRecipe(name="r", process=FakeProcess(),
                        replay_handle_va=0x1000, **kwargs)


def event_for(recipe, replay_no, is_pivot=False):
    return ReplayEvent(recipe=recipe, context=None, fault=None,
                       replay_no=replay_no, is_pivot_fault=is_pivot)


def test_walk_tuning_rejects_pwc_leaf():
    with pytest.raises(ValueError):
        WalkTuning(leaf=WalkLocation.PWC)


def test_pivot_same_page_rejected():
    with pytest.raises(ValueError):
        make_recipe(pivot_va=0x1010)


def test_pivot_different_page_accepted():
    recipe = make_recipe(pivot_va=0x2000)
    assert recipe.pivot_va == 0x2000


def test_default_decision_replays_until_max():
    recipe = make_recipe(max_replays=3)
    assert recipe.decide(event_for(recipe, 1)).action \
        is ReplayAction.REPLAY
    assert recipe.decide(event_for(recipe, 3)).action \
        is ReplayAction.RELEASE


def test_default_pivot_decision_swaps():
    recipe = make_recipe(pivot_va=0x2000)
    decision = recipe.decide(event_for(recipe, 0, is_pivot=True))
    assert decision.action is ReplayAction.PIVOT


def test_custom_attack_function_wins():
    calls = []

    def fn(event):
        calls.append(event.replay_no)
        return ReplayDecision(ReplayAction.RELEASE, extra_cost=7)

    recipe = make_recipe(attack_function=fn)
    decision = recipe.decide(event_for(recipe, 1))
    assert decision.action is ReplayAction.RELEASE
    assert decision.extra_cost == 7
    assert calls == [1]


def test_custom_pivot_function():
    recipe = make_recipe(
        pivot_va=0x2000,
        pivot_function=lambda e: ReplayDecision(ReplayAction.HALT))
    decision = recipe.decide(event_for(recipe, 0, is_pivot=True))
    assert decision.action is ReplayAction.HALT


def test_replay_n_times_helper():
    fn = replay_n_times(2)
    recipe = make_recipe(attack_function=fn)
    assert recipe.decide(event_for(recipe, 1)).action \
        is ReplayAction.REPLAY
    assert recipe.decide(event_for(recipe, 2)).action \
        is ReplayAction.RELEASE
