
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.analysis import (
    ConfidenceTracker,
    IndexObservation,
    LineObservation,
    assemble_round_key,
    classify_hits,
    count_above,
    derive_threshold,
    majority_lines,
    percentile,
    recover_high_nibbles,
    recover_round_key,
    round1_byte_index,
    summarize,
)
from repro.crypto.aes import encrypt_block, expand_decrypt_key, first_round_accesses
from repro.crypto.keyschedule import invert_aes128_schedule


def test_percentile_basics():
    samples = list(range(1, 101))
    assert percentile(samples, 50) == 50
    assert percentile(samples, 100) == 100
    assert percentile(samples, 0) == 1
    with pytest.raises(ValueError):
        percentile([], 50)
    with pytest.raises(ValueError):
        percentile([1], 200)


def test_derive_threshold_above_bulk():
    calibration = [100] * 995 + [101] * 5
    threshold = derive_threshold(calibration, margin=2)
    assert threshold >= 102
    assert count_above(calibration, threshold) == 0


def test_summarize():
    summary = summarize([10, 10, 50], threshold=20)
    assert summary.above == 1
    assert summary.samples == 3
    assert summary.rate == pytest.approx(1 / 3)


def test_confidence_tracker_decides_h1():
    tracker = ConfidenceTracker(rate_h0=0.01, rate_h1=0.2,
                                confidence=0.99)
    while not tracker.decided:
        tracker.observe(True)
    assert tracker.verdict is True


def test_confidence_tracker_decides_h0():
    tracker = ConfidenceTracker(rate_h0=0.01, rate_h1=0.2,
                                confidence=0.99)
    tracker.observe_many([False] * 500)
    assert tracker.verdict is False


def test_confidence_tracker_validation():
    with pytest.raises(ValueError):
        ConfidenceTracker(rate_h0=0.5, rate_h1=0.2)
    with pytest.raises(ValueError):
        ConfidenceTracker(confidence=0.4)


def test_classify_hits():
    assert classify_hits([4, 300, 5, 299], hit_threshold=20) == [0, 2]


def test_majority_lines():
    assert majority_lines([[1, 2], [1, 3], [1, 2]]) == [1, 2]
    assert majority_lines([[1], [2]], quorum=1) == [1, 2]
    assert majority_lines([]) == []


def test_round1_byte_index_mapping():
    # Statement 0 table 0 reads byte 24..31 of s0 -> ct byte 0.
    assert round1_byte_index(0, 0) == 0
    # Statement 0 table 1 reads s3's byte 1 -> ct byte 13.
    assert round1_byte_index(0, 1) == 13
    # All 16 (statement, table) pairs cover all 16 bytes.
    covered = {round1_byte_index(s, t)
               for s in range(4) for t in range(4)}
    assert covered == set(range(16))
    with pytest.raises(ValueError):
        round1_byte_index(4, 0)


def _truth_observations(key, ciphertext, with_index=False):
    observations = []
    for access in first_round_accesses(key, ciphertext):
        if with_index:
            observations.append(IndexObservation(
                ciphertext, access.statement, access.table,
                access.index))
        else:
            observations.append(LineObservation(
                ciphertext, access.statement, access.table,
                access.line))
    return observations


def test_recover_high_nibbles_from_truth():
    key = bytes(range(16))
    ciphertext = encrypt_block(key, bytes(16))
    nibbles = recover_high_nibbles(
        _truth_observations(key, ciphertext))
    rk = expand_decrypt_key(key)
    true_bytes = b"".join(w.to_bytes(4, "big") for w in rk[0:4])
    for index, nibble in nibbles.items():
        assert nibble == true_bytes[index] >> 4


def test_recover_high_nibbles_rejects_conflicts():
    obs = [LineObservation(bytes(16), 0, 0, 3),
           LineObservation(bytes(16), 0, 0, 4)]
    with pytest.raises(ValueError):
        recover_high_nibbles(obs)


def test_recover_round_key_and_master_key():
    """Full pipeline at entry granularity: observations -> round key
    -> schedule inversion -> master key."""
    key = bytes(range(16))
    ciphertext = encrypt_block(key, b"attack at dawn!!")
    key_bytes = recover_round_key(
        _truth_observations(key, ciphertext, with_index=True))
    round_key = assemble_round_key(key_bytes)
    assert invert_aes128_schedule(round_key) == key


def test_assemble_round_key_missing_bytes():
    with pytest.raises(ValueError):
        assemble_round_key({0: 1})


@given(st.binary(min_size=16, max_size=16),
       st.binary(min_size=16, max_size=16))
@settings(max_examples=20, deadline=None)
def test_full_recovery_property(key, plaintext):
    """For any key and block, noise-free entry-granularity round-1
    observations recover the master key exactly."""
    ciphertext = encrypt_block(key, plaintext)
    key_bytes = recover_round_key(
        _truth_observations(key, ciphertext, with_index=True))
    assert invert_aes128_schedule(
        assemble_round_key(key_bytes)) == key
