from repro.core.replayer import AttackEnvironment
from repro.isa.program import ProgramBuilder


def test_environment_wiring():
    env = AttackEnvironment.build()
    assert env.kernel.machine is env.machine
    assert env.machine.core.trap_handler is env.kernel
    assert env.module.kernel is env.kernel
    assert env.sgx.kernel is env.kernel


def test_replayer_creates_enclave_victim(replayer):
    process = replayer.create_victim_process("v")
    assert process.enclave is not None
    assert process.enclave.process is process


def test_replayer_plain_victim(replayer):
    process = replayer.create_victim_process("v", enclave=False)
    assert process.enclave is None


def test_launch_victim_enters_enclave(replayer):
    process = replayer.create_victim_process("v")
    program = ProgramBuilder().li("r1", 1).halt().build()
    replayer.launch_victim(process, program)
    assert process.enclave.entered
    assert replayer.machine.contexts[0].program is program


def test_launch_monitor_on_sibling(replayer):
    process = replayer.create_monitor_process()
    program = ProgramBuilder().li("r1", 1).halt().build()
    replayer.launch_monitor(process, program)
    assert replayer.machine.contexts[1].program is program


def test_shared_channel_between_processes(replayer):
    p1 = replayer.create_monitor_process("a")
    p2 = replayer.create_monitor_process("b")
    channel = replayer.shared_channel(p1, p2)
    p1.write(channel.va_for(p1) + 32, 5)
    assert p2.read(channel.va_for(p2) + 32) == 5


def test_run_until_victim_done(replayer):
    process = replayer.create_victim_process("v", enclave=False)
    program = (ProgramBuilder()
               .li("r1", 0).li("r2", 10)
               .label("l").addi("r1", "r1", 1).bne("r1", "r2", "l")
               .halt().build())
    replayer.launch_victim(process, program)
    replayer.run_until_victim_done()
    assert replayer.machine.contexts[0].int_regs["r1"] == 10


def test_run_until_released(replayer):
    from repro.core.recipes import replay_n_times
    process = replayer.create_victim_process("v", enclave=False)
    data = process.alloc(4096, "d")
    program = (ProgramBuilder()
               .li("r1", data).load("r2", "r1", 0).halt().build())
    recipe = replayer.module.provide_replay_handle(
        process, data, attack_function=replay_n_times(2))
    replayer.launch_victim(process, program)
    replayer.arm(recipe)
    replayer.run_until_released(recipe)
    assert recipe.released
