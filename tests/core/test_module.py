"""The MicroScope kernel module: Table-2 API and the fault trampoline."""

import pytest

from repro.core.recipes import (
    ReplayAction,
    ReplayDecision,
    WalkLocation,
    WalkTuning,
    replay_n_times,
)
from repro.isa.program import ProgramBuilder


@pytest.fixture
def armed_setup(replayer):
    process = replayer.create_victim_process(enclave=False)
    data = process.alloc(4096, "target")
    process.write(data, 555)
    return replayer, process, data


def loader_program(va):
    return (ProgramBuilder()
            .li("r1", va)
            .load("r2", "r1", 0)
            .halt().build())


def test_initiate_page_fault(armed_setup):
    rep, process, data = armed_setup
    rep.module.initiate_page_fault(process, data)
    assert not process.page_tables.is_present(data)
    # Translation-path lines flushed.
    walk = process.page_tables.software_walk(data)
    for paddr in walk.entry_paddrs():
        assert rep.machine.hierarchy.peek_level(paddr) == -1


def test_initiate_page_walk_lengths(armed_setup):
    """Table 2: a walk of length N performs N memory accesses."""
    rep, process, data = armed_setup
    latencies = {}
    for length in (1, 2, 3, 4):
        rep.module.initiate_page_walk(process, data, length)
        walk = rep.machine.walker.walk(process.pcid, process.root_frame,
                                       data)
        latencies[length] = walk.latency
        assert not walk.faulted
    assert latencies[1] < latencies[2] < latencies[3] < latencies[4]
    with pytest.raises(ValueError):
        rep.module.initiate_page_walk(process, data, 0)


def test_walk_tuning_latencies_ordered(armed_setup):
    rep, process, data = armed_setup
    results = {}
    for leaf in (WalkLocation.L1, WalkLocation.L2, WalkLocation.L3,
                 WalkLocation.DRAM):
        tuning = WalkTuning(upper=WalkLocation.PWC, leaf=leaf)
        rep.module.apply_walk_tuning(process, data, tuning)
        walk = rep.machine.walker.walk(process.pcid, process.root_frame,
                                       data)
        results[leaf] = walk.latency
    assert results[WalkLocation.L1] < results[WalkLocation.L2] \
        < results[WalkLocation.L3] < results[WalkLocation.DRAM]
    # The paper's §4.1.2 claim: a few cycles to over a thousand.
    assert results[WalkLocation.L1] < 30


def test_walk_tuning_dram_everything_exceeds_1000(armed_setup):
    rep, process, data = armed_setup
    tuning = WalkTuning(upper=WalkLocation.DRAM, leaf=WalkLocation.DRAM)
    rep.module.apply_walk_tuning(process, data, tuning)
    walk = rep.machine.walker.walk(process.pcid, process.root_frame,
                                   data)
    assert walk.latency > 1000


def test_expected_walk_latency_close_to_actual(armed_setup):
    rep, process, data = armed_setup
    tuning = WalkTuning(upper=WalkLocation.PWC, leaf=WalkLocation.DRAM)
    rep.module.apply_walk_tuning(process, data, tuning)
    walk = rep.machine.walker.walk(process.pcid, process.root_frame,
                                   data)
    expected = rep.module.expected_walk_latency(tuning)
    assert abs(walk.latency - expected) <= 8


def test_arm_replay_release_cycle(armed_setup):
    rep, process, data = armed_setup
    recipe = rep.module.provide_replay_handle(
        process, data, attack_function=replay_n_times(4))
    rep.launch_victim(process, loader_program(data))
    rep.arm(recipe)
    rep.run_until_victim_done()
    assert recipe.replays == 4
    assert recipe.released
    assert rep.machine.contexts[0].int_regs["r2"] == 555


def test_trampoline_claims_only_armed_pages(armed_setup):
    rep, process, data = armed_setup
    other = process.alloc(4096, "other", populate=False)
    recipe = rep.module.provide_replay_handle(
        process, data, attack_function=replay_n_times(1))
    rep.arm(recipe)
    # A fault on a different page goes down the regular kernel path.
    rep.launch_victim(process, loader_program(other))
    rep.run_until_victim_done()
    assert rep.kernel.stats.demand_pages == 1
    assert recipe.replays == 0


def test_prime_and_probe_lines(armed_setup):
    rep, process, data = armed_setup
    addrs = [data + i * 64 for i in range(4)]
    rep.machine.hierarchy.flush_all()
    first = rep.module.probe_lines(process, addrs)
    assert all(lat > 300 for lat in first)       # cold
    second = rep.module.probe_lines(process, addrs)
    assert all(lat <= 4 for lat in second)       # now hot
    rep.module.prime_lines(process, addrs)
    third = rep.module.probe_lines(process, addrs)
    assert all(lat > 300 for lat in third)       # primed away


def test_peek_lines_ground_truth(armed_setup):
    rep, process, data = armed_setup
    rep.machine.hierarchy.flush_all()
    assert rep.module.peek_lines(process, [data]) == [-1]
    rep.module.probe_lines(process, [data])
    assert rep.module.peek_lines(process, [data]) == [0]


def test_provide_pivot_validation(armed_setup):
    rep, process, data = armed_setup
    recipe = rep.module.provide_replay_handle(process, data)
    with pytest.raises(ValueError):
        rep.module.provide_pivot(recipe, data + 8)
    pivot = process.alloc(4096, "pivot")
    rep.module.provide_pivot(recipe, pivot)
    assert recipe.pivot_va == pivot


def test_provide_monitor_addr(armed_setup):
    rep, process, data = armed_setup
    recipe = rep.module.provide_replay_handle(process, data)
    rep.module.provide_monitor_addr(recipe, data + 64)
    assert data + 64 in recipe.monitor_addrs


def test_disarm_restores_progress(armed_setup):
    rep, process, data = armed_setup
    recipe = rep.module.provide_replay_handle(
        process, data, max_replays=10**9)
    rep.arm(recipe)
    rep.module.disarm(recipe)
    rep.launch_victim(process, loader_program(data))
    rep.run_until_victim_done()
    assert recipe.replays == 0
    assert rep.machine.contexts[0].int_regs["r2"] == 555


def test_pivot_decision_without_pivot_raises(armed_setup):
    rep, process, data = armed_setup

    def bad_fn(event):
        return ReplayDecision(ReplayAction.PIVOT)

    recipe = rep.module.provide_replay_handle(
        process, data, attack_function=bad_fn)
    rep.launch_victim(process, loader_program(data))
    rep.arm(recipe)
    with pytest.raises(ValueError):
        rep.run_until_victim_done(max_cycles=100_000)


def test_halt_decision_stops_victim(armed_setup):
    rep, process, data = armed_setup

    def halt_fn(event):
        return ReplayDecision(ReplayAction.HALT)

    recipe = rep.module.provide_replay_handle(
        process, data, attack_function=halt_fn)
    rep.launch_victim(process, loader_program(data))
    rep.arm(recipe)
    rep.run_until_victim_done()
    from repro.cpu.context import ContextState
    assert rep.machine.contexts[0].state is ContextState.HALTED
    assert rep.machine.contexts[0].int_regs["r2"] == 0


def test_stats_accumulate(armed_setup):
    rep, process, data = armed_setup
    recipe = rep.module.provide_replay_handle(
        process, data, attack_function=replay_n_times(3))
    rep.launch_victim(process, loader_program(data))
    rep.arm(recipe)
    rep.run_until_victim_done()
    assert rep.module.stats.handle_faults == 3
    assert rep.module.stats.releases == 1
