"""Multi-recipe and cross-process behaviour of the MicroScope module."""


from repro.core.recipes import replay_n_times
from repro.isa.program import ProgramBuilder


def loader(va):
    return (ProgramBuilder()
            .li("r1", va).load("r2", "r1", 0).halt().build())


def test_two_recipes_on_different_processes(replayer):
    rep = replayer
    p1 = rep.create_victim_process("a", enclave=False)
    p2 = rep.create_monitor_process("b")
    d1 = p1.alloc(4096, "d1")
    d2 = p2.alloc(4096, "d2")
    p1.write(d1, 11)
    p2.write(d2, 22)
    r1 = rep.module.provide_replay_handle(
        p1, d1, attack_function=replay_n_times(2))
    r2 = rep.module.provide_replay_handle(
        p2, d2, attack_function=replay_n_times(3))
    rep.launch_victim(p1, loader(d1), context_id=0)
    rep.launch_monitor(p2, loader(d2), context_id=1)
    rep.arm(r1)
    rep.arm(r2)
    rep.machine.run(1_000_000,
                    until=lambda m: all(c.finished()
                                        for c in m.contexts))
    assert r1.replays == 2 and r2.replays == 3
    assert rep.machine.contexts[0].int_regs["r2"] == 11
    assert rep.machine.contexts[1].int_regs["r2"] == 22


def test_same_page_faults_do_not_cross_processes(replayer):
    """The trampoline keys on (pid, vpn): another process touching the
    same *virtual* page is untouched."""
    rep = replayer
    victim = rep.create_victim_process("victim", enclave=False)
    bystander = rep.create_monitor_process("bystander")
    dv = victim.alloc(4096, "d")         # same VA range layout
    db = bystander.alloc(4096, "d")
    assert dv == db                       # identical virtual addresses
    bystander.write(db, 7)
    recipe = rep.module.provide_replay_handle(
        victim, dv, attack_function=replay_n_times(1))
    rep.launch_monitor(bystander, loader(db), context_id=1)
    rep.arm(recipe)
    rep.machine.run(200_000,
                    until=lambda m: m.contexts[1].finished())
    assert rep.machine.contexts[1].int_regs["r2"] == 7
    assert recipe.replays == 0            # bystander never trampolined


def test_monitor_addrs_primed_between_replays(replayer):
    rep = replayer
    process = rep.create_victim_process("v", enclave=False)
    data = process.alloc(4096, "handle")
    watched = process.alloc(4096, "watched")
    levels_seen = []

    def attack_fn(event):
        levels_seen.append(rep.module.peek_lines(process, [watched])[0])
        from repro.core.recipes import ReplayAction, ReplayDecision
        action = (ReplayAction.RELEASE if event.replay_no >= 3
                  else ReplayAction.REPLAY)
        return ReplayDecision(action)

    recipe = rep.module.provide_replay_handle(
        process, data, attack_function=attack_fn,
        prime_monitor_addrs=True)
    rep.module.provide_monitor_addr(recipe, watched)
    # Warm the watched line, then let the attack re-prime it.
    rep.machine.hierarchy.access(process.translate_any(watched))
    program = (ProgramBuilder()
               .li("r1", data).load("r2", "r1", 0).halt().build())
    rep.launch_victim(process, program)
    rep.arm(recipe)
    rep.run_until_victim_done()
    # First fault: line still warm from our touch; afterwards the
    # REPLAY path primed it to DRAM (-1) before each resume.
    assert levels_seen[0] == 0
    assert all(level == -1 for level in levels_seen[1:])


def test_rearming_after_release(replayer):
    """A recipe can be re-armed for a second campaign."""
    rep = replayer
    process = rep.create_victim_process("v", enclave=False)
    data = process.alloc(4096, "d")
    recipe = rep.module.provide_replay_handle(
        process, data, attack_function=replay_n_times(2))
    rep.launch_victim(process, loader(data))
    rep.arm(recipe)
    rep.run_until_victim_done()
    assert recipe.replays == 2
    # Reset the campaign counters, then run again.
    recipe.released = False
    recipe.replays = 0
    rep.launch_victim(process, loader(data))
    rep.arm(recipe)
    rep.run_until_victim_done()
    assert recipe.replays == 2
    assert recipe.released


def test_store_as_replay_handle(replayer):
    """§4.1.1 allows any memory access as a handle — including stores."""
    rep = replayer
    process = rep.create_victim_process("v", enclave=False)
    data = process.alloc(4096, "store-page")
    other = process.alloc(4096, "other")
    other_paddr = process.translate_any(other)
    program = (ProgramBuilder()
               .li("r1", data)
               .li("r2", other)
               .li("r3", 42)
               .store("r1", "r3", 0)      # the handle (a store)
               .load("r4", "r2", 0)       # transmit: independent load
               .halt().build())
    recipe = rep.module.provide_replay_handle(
        process, data, attack_function=replay_n_times(3))
    rep.launch_victim(process, program)
    rep.module.prime_lines(process, [other])
    rep.arm(recipe)
    rep.run_until_victim_done()
    assert recipe.replays == 3
    assert process.read(data) == 42       # store committed exactly once
    # The transmit load's speculative fill survived the squashes.
    assert rep.machine.hierarchy.peek_level(other_paddr) >= 0


def test_walk_stats_reflect_replays(replayer):
    rep = replayer
    process = rep.create_victim_process("v", enclave=False)
    data = process.alloc(4096, "d")
    recipe = rep.module.provide_replay_handle(
        process, data, attack_function=replay_n_times(5))
    rep.launch_victim(process, loader(data))
    rep.arm(recipe)
    rep.run_until_victim_done()
    walker = rep.machine.walker.stats
    assert walker.faults == 5
    assert walker.walks >= 6   # 5 faulting walks + the final good one
