from repro.core.handles import count_memory_instructions, find_replay_handles
from repro.isa.program import ProgramBuilder


def sample_program():
    """handle-candidate load, dependent load, then a sensitive div."""
    return (ProgramBuilder()
            .li("r1", 0x1000)
            .li("r2", 0x2000)
            .load("r3", "r1", 0)        # idx 2: independent load
            .load("r4", "r2", 0)        # idx 3: feeds the division
            .fli("f1", 2.0)
            .fload("f2", "r2", 8)       # idx 5: also feeds nothing
            .mul("r5", "r4", "r4")      # idx 6: depends on idx 3
            .div("r6", "r5", "r4")      # idx 7: the sensitive op
            .halt().build())


def test_independent_load_is_candidate():
    program = sample_program()
    candidates = find_replay_handles(program, sensitive_index=7)
    indices = {c.index for c in candidates}
    assert 2 in indices            # independent load
    assert 5 in indices            # float load, also independent


def test_dependent_load_excluded():
    program = sample_program()
    candidates = find_replay_handles(program, sensitive_index=7)
    indices = {c.index for c in candidates}
    assert 3 not in indices        # sensitive op depends on it


def test_distance_reported():
    program = sample_program()
    candidates = find_replay_handles(program, sensitive_index=7)
    by_index = {c.index: c for c in candidates}
    assert by_index[2].distance == 5


def test_window_limits_search():
    program = sample_program()
    candidates = find_replay_handles(program, sensitive_index=7,
                                     window=2)
    assert all(c.distance <= 2 for c in candidates)


def test_same_page_excluded_with_address_map():
    program = sample_program()
    address_of = {2: 0x5000, 5: 0x5008, 7: 0x5010}
    candidates = find_replay_handles(program, sensitive_index=7,
                                     address_of=address_of)
    # Both loads share the sensitive instruction's page: excluded.
    assert all(c.index not in (2, 5) for c in candidates)


def test_different_page_kept_with_address_map():
    program = sample_program()
    address_of = {2: 0x5000, 7: 0x9000}
    candidates = find_replay_handles(program, sensitive_index=7,
                                     address_of=address_of)
    assert any(c.index == 2 for c in candidates)


def test_count_memory_instructions():
    assert count_memory_instructions(sample_program()) == 3


def test_stores_are_candidates():
    program = (ProgramBuilder()
               .li("r1", 0x1000)
               .li("r2", 5)
               .store("r1", "r2", 0)
               .fli("f1", 2.0)
               .fdiv("f2", "f1", "f1")
               .halt().build())
    candidates = find_replay_handles(program, sensitive_index=4)
    assert any(c.instruction.is_store for c in candidates)


def test_bad_sensitive_index():
    import pytest
    with pytest.raises(ValueError):
        find_replay_handles(sample_program(), sensitive_index=99)


def test_str_of_candidate():
    program = sample_program()
    candidate = find_replay_handles(program, 7)[0]
    assert "distance" in str(candidate)


def test_handles_in_real_aes_victim(kernel):
    """The §4.4 handle choice is discoverable automatically: the rk
    loads qualify as handles for the Td lookups that follow them."""
    from repro.victims.aes_round import setup_aes_victim
    process = kernel.create_process("aes")
    victim = setup_aes_victim(process, bytes(range(16)), bytes(16))
    program = victim.program
    # Sensitive instruction: the t1 statement's Td0 load (the pivot).
    sensitive = program.find_one("pivot td0-s1")
    candidates = find_replay_handles(program, sensitive)
    handle_index = program.find_one("replay-handle rk-s0")
    assert any(c.index == handle_index for c in candidates)


def test_handles_in_modexp_victim(kernel):
    from repro.victims.rsa import setup_modexp_victim
    process = kernel.create_process("rsa")
    victim = setup_modexp_victim(process, 7, 13, 101)
    program = victim.program
    sensitive = next(i for i, ins in enumerate(program.instructions)
                     if ins.comment.endswith("mult-operand"))
    candidates = find_replay_handles(program, sensitive)
    handle_index = program.find_one("replay-handle")
    assert any(c.index == handle_index for c in candidates)
