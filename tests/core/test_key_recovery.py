"""Attack-driven AES key recovery: attribution and nibble recovery
computed purely from the stepper's probe logs."""

import pytest

from repro.core.attacks.aes_key_recovery import (
    AESKeyRecoveryAttack,
    nibble_candidates,
)
from repro.crypto.aes import encrypt_block, expand_decrypt_key

KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
PLAINTEXTS = [b"sixteen byte msg", b"another message!",
              b"third ciphertext"]
CIPHERTEXTS = [encrypt_block(KEY, p) for p in PLAINTEXTS]


@pytest.fixture(scope="module")
def recovery_result():
    return AESKeyRecoveryAttack(KEY).run(CIPHERTEXTS)


def test_attribution_contains_truth(recovery_result):
    """Every (statement, table) candidate set contains the true line."""
    for attribution in recovery_result.attributions:
        assert attribution.accuracy_against(KEY) == 1.0


def test_attribution_covers_all_slots(recovery_result):
    for attribution in recovery_result.attributions:
        assert set(attribution.candidates) == {
            (s, t) for s in range(4) for t in range(4)}


def test_candidate_sets_small(recovery_result):
    """Windows are tight: candidate sets stay small (not the whole
    16-line table)."""
    for attribution in recovery_result.attributions:
        for lines in attribution.candidates.values():
            assert 1 <= len(lines) <= 4


def test_nibble_candidates_contain_truth(recovery_result):
    rk = expand_decrypt_key(KEY)
    truth = b"".join(w.to_bytes(4, "big") for w in rk[0:4])
    attribution = recovery_result.attributions[0]
    for byte_index, nibbles in nibble_candidates(attribution).items():
        assert truth[byte_index] >> 4 in nibbles


def test_full_high_nibble_recovery(recovery_result):
    """Three blocks suffice to pin all 16 high nibbles — 64 bits of
    the last encryption round key, from the attack alone."""
    assert recovery_result.bytes_recovered == 16
    assert recovery_result.all_correct
    assert recovery_result.bits_recovered == 64


def test_single_block_already_narrows(recovery_result):
    """Even one block leaves few candidates per nibble."""
    single = nibble_candidates(recovery_result.attributions[0])
    assert all(1 <= len(s) <= 4 for s in single.values())
    assert sum(len(s) == 1 for s in single.values()) >= 4
