"""RSA-style exponent extraction: victim correctness + attack."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.attacks.rsa import ModExpExtractionAttack
from repro.victims.rsa import setup_modexp_victim
from tests.conftest import run_program


@pytest.mark.parametrize("base,exp,mod", [
    (7, 13, 101),
    (0x12345, 0xBEEF, 0xFFFFFFFB),
    (2, 1, 17),
    (3, 0b1000000, 1000003),
])
def test_modexp_victim_computes_pow(system, base, exp, mod):
    machine, kernel = system
    process = kernel.create_process("v")
    victim = setup_modexp_victim(process, base, exp, mod)
    run_program(machine, kernel, victim.program, process=process,
                max_cycles=2_000_000)
    assert victim.read_result(process) == pow(base, exp, mod)


def test_modexp_victim_validation(kernel):
    process = kernel.create_process("v")
    with pytest.raises(ValueError):
        setup_modexp_victim(process, 5, 3, 1)           # bad modulus
    with pytest.raises(ValueError):
        setup_modexp_victim(process, 0, 3, 101)         # bad base
    with pytest.raises(ValueError):
        setup_modexp_victim(process, 5, 0, 101)         # bad exponent


@pytest.mark.parametrize("exponent", [0b1, 0b10, 0b1011011, 0xBEEF,
                                      0b11111111, 0b10000000])
def test_exponent_extraction_exact(exponent):
    result = ModExpExtractionAttack().run(exponent)
    assert result.exact, (result.extracted_bits, result.windows)
    assert result.result_correct


def test_extraction_is_single_logical_run():
    result = ModExpExtractionAttack().run(0b101101)
    # Replays happened, yet the architectural modexp ran once and
    # produced the right answer.
    assert result.replays >= 3 * 6
    assert result.result_correct


@given(st.integers(min_value=1, max_value=(1 << 12) - 1))
@settings(max_examples=10, deadline=None)
def test_extraction_property(exponent):
    """Any 12-bit exponent is recovered exactly."""
    result = ModExpExtractionAttack().run(exponent)
    assert result.exact
