"""WindowMemo: hits splice recorded outcomes back bit-exactly, every
poisoning mode degrades to a recompute, never a wrong result."""

import dataclasses
import hashlib

import pytest

from repro.cpu.machine import Machine
from repro.isa import instructions as ins
from repro.isa.program import ProgramBuilder
from repro.memo import WindowMemo
from repro.observability import EventTracer, MetricsRegistry
from repro.reporting import machine_report
from repro.snapshot import MachineSnapshot
from repro.snapshot.machine import SNAPSHOT_VERSION

DATA_BASE = 0x0010_0000


def _program():
    builder = ProgramBuilder("memo-window")
    builder.li("r1", DATA_BASE)
    builder.li("r2", 7)
    builder.li("r3", 11)
    builder.li("r0", 6)
    builder.label("loop")
    builder.emit(ins.mul("r4", "r2", "r3"))
    builder.emit(ins.store("r1", "r4", 0))
    builder.emit(ins.load("r5", "r1", 0))
    builder.emit(ins.add("r2", "r2", "r5"))
    builder.subi("r0", "r0", 1)
    builder.li("r13", 0)
    builder.bne("r0", "r13", "loop")
    builder.halt()
    return builder.build()


def _machine():
    machine = Machine()
    machine.contexts[0].load_program(_program())
    machine.run(40)
    return machine


def _state_of(machine):
    context = machine.contexts[0]
    return (machine.cycle,
            dict(context.int_regs),
            [machine.phys.read(addr)
             for addr in range(DATA_BASE, DATA_BASE + 64, 8)],
            dataclasses.asdict(machine_report(machine)),
            machine.metrics.dump())


def _window(machine, calls):
    def run_fn():
        calls.append(1)
        machine.run(600)
        return {"cycle": machine.cycle,
                "r2": machine.contexts[0].int_regs["r2"]}
    return run_fn


def test_hit_is_bit_identical_and_skips_execution():
    machine = _machine()
    base = MachineSnapshot.take(machine)
    metrics = MetricsRegistry()
    memo = WindowMemo(metrics=metrics)
    calls = []

    cold = memo.run(machine, {"n": 3}, _window(machine, calls))
    cold_state = _state_of(machine)

    base.restore(machine)
    warm = memo.run(machine, {"n": 3}, _window(machine, calls))

    assert calls == [1], "hit must not re-execute the window"
    assert warm == cold and warm is not cold
    assert _state_of(machine) == cold_state
    assert memo.counts()["hits"] == 1
    assert memo.counts()["misses"] == 1
    assert metrics.counter("memo.window.hits").value == 1
    assert metrics.counter("memo.window.bytes").value > 0


def test_extra_key_and_state_changes_both_miss():
    machine = _machine()
    base = MachineSnapshot.take(machine)
    memo = WindowMemo()
    calls = []
    memo.run(machine, {"n": 3}, _window(machine, calls))

    base.restore(machine)
    memo.run(machine, {"n": 4}, _window(machine, calls))
    assert len(calls) == 2, "different recipe key must run cold"

    base.restore(machine)
    machine.run(1)
    memo.run(machine, {"n": 3}, _window(machine, calls))
    assert len(calls) == 3, "different start state must run cold"
    assert memo.counts() == dict(memo.counts(), hits=0, misses=3)


@pytest.mark.parametrize("tamper", ["payload", "pickle", "version"])
def test_poisoned_entry_recomputes_correctly(tamper):
    machine = _machine()
    base = MachineSnapshot.take(machine)
    memo = WindowMemo()
    calls = []
    cold = memo.run(machine, {"n": 3}, _window(machine, calls))
    cold_state = _state_of(machine)

    (key,) = memo._entries
    entry = memo._entries[key]
    if tamper == "payload":          # integrity digest mismatch
        entry.payload = b"\x00garbage"
    elif tamper == "pickle":         # digest ok, undecodable result
        entry.payload = b"\x00garbage"
        entry.sha256 = hashlib.sha256(entry.payload).hexdigest()
    else:                            # stale final-snapshot version
        entry.final.version = SNAPSHOT_VERSION + 1

    base.restore(machine)
    warm = memo.run(machine, {"n": 3}, _window(machine, calls))
    assert calls == [1, 1], "poisoned entry must recompute"
    assert warm == cold
    assert _state_of(machine) == cold_state
    assert memo.counts()["corrupt"] == 1
    assert memo.counts()["hits"] == 0


def test_verify_hook_rejection_recomputes():
    machine = _machine()
    base = MachineSnapshot.take(machine)
    verdicts = iter([False, True])
    memo = WindowMemo(verify=lambda result: next(verdicts))
    calls = []
    cold = memo.run(machine, {"n": 3}, _window(machine, calls))

    base.restore(machine)
    warm = memo.run(machine, {"n": 3}, _window(machine, calls))
    assert calls == [1, 1] and warm == cold
    assert memo.counts()["rejected"] == 1

    base.restore(machine)
    memo.run(machine, {"n": 3}, _window(machine, calls))
    assert len(calls) == 2, "re-recorded entry serves hits again"
    assert memo.counts()["hits"] == 1


def test_lru_eviction_is_bounded_and_counted():
    machine = _machine()
    base = MachineSnapshot.take(machine)
    memo = WindowMemo(max_entries=2)
    calls = []
    for n in (1, 2, 3):
        base.restore(machine)
        memo.run(machine, {"n": n}, _window(machine, calls))
    assert len(memo) == 2
    assert memo.counts()["evictions"] == 1
    assert memo.counts()["bytes"] > 0

    base.restore(machine)          # oldest key (n=1) was evicted
    memo.run(machine, {"n": 1}, _window(machine, calls))
    assert len(calls) == 4


def test_tracer_slices_on_hit_and_miss():
    from repro.observability.tracer import MEMO_TID
    machine = _machine()
    base = MachineSnapshot.take(machine)
    tracer = EventTracer(capacity=64)
    memo = WindowMemo(tracer=tracer)
    calls = []
    memo.run(machine, {"n": 3}, _window(machine, calls))
    base.restore(machine)
    memo.run(machine, {"n": 3}, _window(machine, calls))
    memo_events = [event for event in tracer.events()
                   if event.cat == "memo"]
    names = [event.name for event in memo_events]
    assert "memo.window.miss" in names
    assert "memo.window.hit" in names
    assert all(event.tid == MEMO_TID for event in memo_events)


def test_rejects_nonpositive_capacity():
    with pytest.raises(ValueError):
        WindowMemo(max_entries=0)
