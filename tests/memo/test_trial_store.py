"""TrialStore: persistence, every poisoning mode, concurrent writers."""

import base64
import hashlib
import json
import multiprocessing
import pickle

from repro.memo import TrialStore, resolve_store, trial_key
from repro.memo.store import CACHE_DIR_ENV, STORE_VERSION
from repro.observability import MetricsRegistry
from repro.snapshot.machine import SNAPSHOT_VERSION


def _trial(params, seed):
    return {"params": params, "seed": seed}


KEY = trial_key(_trial, {"secret": 1}, 7)


def test_round_trip_and_miss(tmp_path):
    store = TrialStore(tmp_path, metrics=MetricsRegistry())
    hit, result = store.get(KEY)
    assert (hit, result) == (False, None)

    store.put(KEY, 7, {"verdict": True, "samples": [1, 2, 3]})
    assert len(store) == 1
    hit, result = store.get(KEY)
    assert hit and result == {"verdict": True, "samples": [1, 2, 3]}

    # A second store instance over the same root sees the record:
    # persistence across processes is just persistence across handles.
    hit, result = TrialStore(tmp_path).get(KEY)
    assert hit and result["verdict"] is True

    counts = store.counts()
    assert counts["hits"] == 1 and counts["misses"] == 1
    assert counts["stores"] == 1 and counts["bytes"] > 0
    assert store.metrics.counter("memo.store.hits").value == 1


def _rewrite(store, key, mutate):
    path = store.path_for(key)
    record = json.loads(path.read_text())
    mutate(record)
    path.write_text(json.dumps(record) + "\n")


def test_corrupted_records_are_misses_not_crashes(tmp_path):
    store = TrialStore(tmp_path)
    store.put(KEY, 7, "result")

    store.path_for(KEY).write_text("{not json at all")
    assert store.get(KEY) == (False, None)

    store.put(KEY, 7, "result")
    _rewrite(store, KEY, lambda r: r.update(sha256="0" * 64))
    assert store.get(KEY) == (False, None)

    store.put(KEY, 7, "result")
    _rewrite(store, KEY, lambda r: r.update(
        result=base64.b64encode(b"not a pickle").decode(),
        sha256=hashlib.sha256(b"not a pickle").hexdigest()))
    assert store.get(KEY) == (False, None)

    store.put(KEY, 7, "result")
    _rewrite(store, KEY, lambda r: r.update(key="f" * 64))
    assert store.get(KEY) == (False, None)

    assert store.counts()["corrupt"] == 4
    # Degradation is recoverable: a fresh put serves hits again.
    store.put(KEY, 7, "result")
    assert store.get(KEY) == (True, "result")


def test_stale_epochs_are_misses(tmp_path):
    store = TrialStore(tmp_path)
    store.put(KEY, 7, "old-world")
    _rewrite(store, KEY, lambda r: r.update(
        snapshot_version=SNAPSHOT_VERSION + 1))
    assert store.get(KEY) == (False, None)

    store.put(KEY, 7, "old-world")
    _rewrite(store, KEY, lambda r: r.update(version=STORE_VERSION + 1))
    assert store.get(KEY) == (False, None)
    assert store.counts()["stale"] == 2


def test_verify_hook_rejects_poisoned_result(tmp_path):
    store = TrialStore(tmp_path)
    store.put(KEY, 7, {"verdict": "implausible"})
    hit, result = store.get(
        KEY, verify=lambda r: r.get("verdict") is True)
    assert (hit, result) == (False, None)
    assert store.counts()["rejected"] == 1


def test_record_is_journal_shaped(tmp_path):
    store = TrialStore(tmp_path)
    store.put(KEY, 7, [1, 2])
    record = json.loads(store.path_for(KEY).read_text())
    assert record["kind"] == "trial"
    assert record["key"] == KEY and record["seed"] == 7
    assert record["version"] == STORE_VERSION
    assert record["snapshot_version"] == SNAPSHOT_VERSION
    payload = base64.b64decode(record["result"])
    assert hashlib.sha256(payload).hexdigest() == record["sha256"]
    assert pickle.loads(payload) == [1, 2]


def _writer(root, key, value, barrier):
    store = TrialStore(root)
    barrier.wait(timeout=30)
    for _ in range(25):
        store.put(key, 7, value)


def test_concurrent_writers_never_corrupt(tmp_path):
    """Many processes hammering the same key (deterministic trials
    write identical results) must leave a readable record."""
    ctx = multiprocessing.get_context("spawn")
    barrier = ctx.Barrier(4)
    value = {"verdict": True, "samples": list(range(50))}
    procs = [ctx.Process(target=_writer,
                         args=(str(tmp_path), KEY, value, barrier))
             for _ in range(4)]
    for proc in procs:
        proc.start()
    for proc in procs:
        proc.join(timeout=60)
        assert proc.exitcode == 0
    store = TrialStore(tmp_path)
    assert store.get(KEY) == (True, value)
    assert len(store) == 1
    leftovers = list(tmp_path.glob("*/*.tmp"))
    assert leftovers == [], f"stray temp files: {leftovers}"


def test_resolve_store_flag_and_env_precedence(tmp_path, monkeypatch):
    monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
    assert resolve_store(None) is None
    assert resolve_store(tmp_path / "a", enabled=False) is None

    explicit = resolve_store(tmp_path / "a")
    assert explicit is not None and explicit.root == tmp_path / "a"

    monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "b"))
    from_env = resolve_store(None)
    assert from_env is not None and from_env.root == tmp_path / "b"
    # An explicit directory wins over the environment.
    assert resolve_store(tmp_path / "a").root == tmp_path / "a"
    assert resolve_store(tmp_path / "a", enabled=False) is None
