"""Canonical cache keys: determinism, sensitivity, refusal."""

import functools

import pytest

import repro.config
from repro.config import from_dict, to_dict
from repro.core.recipes import WalkTuning, replay_n_times
from repro.memo import (
    MemoConfig,
    Unmemoizable,
    canonical,
    canonical_json,
    digest_of,
    fingerprint_callable,
    trial_key,
)


def _trial(params, seed):
    return (params, seed)


def _other_trial(params, seed):
    return (seed, params)


class _Stateful:
    def __init__(self):
        self.count = 0

    def step(self, event):
        self.count += 1
        return self.count


# --- canonical -----------------------------------------------------------

def test_canonical_is_dict_order_independent():
    a = {"x": 1, "y": (2, 3), "z": {"k": [4.5]}}
    b = {"z": {"k": [4.5]}, "y": (2, 3), "x": 1}
    assert canonical_json(a) == canonical_json(b)


def test_canonical_distinguishes_container_kinds():
    assert canonical_json((1, 2)) != canonical_json([1, 2])
    assert canonical_json({1, 2}) != canonical_json([1, 2])


def test_canonical_set_order_independent():
    assert canonical_json({3, 1, 2}) == canonical_json({2, 3, 1})


def test_canonical_bytes_and_float():
    assert canonical(b"\x00\xff") == {"__bytes__": "00ff"}
    assert canonical(0.1) == {"__float__": repr(0.1)}


def test_canonical_enum_and_config_dataclass():
    tuning = WalkTuning()
    assert canonical(tuning) == canonical(WalkTuning())
    assert canonical_json(tuning) != canonical_json(
        {"upper": "pwc", "leaf": "dram"})


def test_canonical_rejects_opaque_objects():
    with pytest.raises(Unmemoizable):
        canonical(object())


def test_digest_of_stability_and_sensitivity():
    value = {"attack": "port-contention", "samples": 400}
    assert digest_of(value) == digest_of(dict(value))
    assert digest_of(value) != digest_of(
        {"attack": "port-contention", "samples": 401})


# --- callables -----------------------------------------------------------

def test_closure_state_is_part_of_the_fingerprint():
    three, five = replay_n_times(3), replay_n_times(5)
    assert fingerprint_callable(three) == fingerprint_callable(
        replay_n_times(3))
    assert fingerprint_callable(three) != fingerprint_callable(five)


def test_bound_methods_are_unmemoizable():
    with pytest.raises(Unmemoizable):
        fingerprint_callable(_Stateful().step)


def test_partial_fingerprints_through_to_the_target():
    p = functools.partial(_trial, seed=3)
    assert fingerprint_callable(p) == fingerprint_callable(
        functools.partial(_trial, seed=3))
    assert fingerprint_callable(p) != fingerprint_callable(
        functools.partial(_trial, seed=4))


def test_distinct_functions_fingerprint_differently():
    assert fingerprint_callable(_trial) != fingerprint_callable(
        _other_trial)


# --- trial keys ----------------------------------------------------------

def test_trial_key_covers_fn_params_and_seed():
    base = trial_key(_trial, {"secret": 1}, 42)
    assert base == trial_key(_trial, {"secret": 1}, 42)
    assert base != trial_key(_trial, {"secret": 0}, 42)
    assert base != trial_key(_trial, {"secret": 1}, 43)
    assert base != trial_key(_other_trial, {"secret": 1}, 42)


def test_matrix_cell_params_are_keyable():
    from repro.evaluation.matrix import _cell_trial
    key = trial_key(_cell_trial,
                    ("port-contention", "none", {"measurements": 400}),
                    2019)
    assert len(key) == 64


# --- MemoConfig registration ---------------------------------------------

def test_memo_config_round_trips_through_repro_config():
    cfg = MemoConfig(enabled=False, cache_dir="/tmp/x",
                     window_entries=8)
    assert from_dict(to_dict(cfg)) == cfg
    assert repro.config.MemoConfig is MemoConfig
