"""Replayer.run_window on the real attack platform: memoized replay
windows are indistinguishable from cold ones, unkeyable recipes run
cold with an accounting bump."""

import dataclasses

import pytest

from repro.core.recipes import WalkLocation, WalkTuning, replay_n_times
from repro.core.replayer import AttackEnvironment, Replayer
from repro.memo import WindowMemo
from repro.reporting import machine_report
from repro.victims.control_flow import setup_control_flow_victim


def _armed_replayer(memo, attack_function, secret=1):
    rep = Replayer(AttackEnvironment.build(), memo=memo)
    proc = rep.create_victim_process("victim")
    victim = setup_control_flow_victim(proc, secret=secret)
    recipe = rep.module.provide_replay_handle(
        proc, victim.handle_va + 0x20, name="memo-replay",
        attack_function=attack_function,
        walk_tuning=WalkTuning(upper=WalkLocation.PWC,
                               leaf=WalkLocation.DRAM))
    rep.launch_victim(proc, victim.program)
    rep.arm(recipe)
    return rep, recipe


def _observe(rep, recipe, cycles):
    return (cycles,
            recipe.replays,
            list(recipe.probe_log),
            dataclasses.asdict(
                machine_report(rep.machine, rep.kernel, rep.module)),
            rep.machine.metrics.dump())


def test_memoized_replay_window_matches_cold_run():
    # Cold reference: an independent platform with no memo at all.
    cold_rep, cold_recipe = _armed_replayer(None, replay_n_times(6))
    cold = _observe(cold_rep, cold_recipe,
                    cold_rep.run_window(cold_recipe))
    assert cold_recipe.replays == 6, "workload must actually replay"

    memo = WindowMemo()
    rep, recipe = _armed_replayer(memo, replay_n_times(6))
    rep.checkpoint()
    first = _observe(rep, recipe, rep.run_window(recipe))
    assert first == cold, "memo attachment must not perturb a miss"

    rep.rewind()
    second = _observe(rep, recipe, rep.run_window(recipe))
    assert second == cold, "a hit must splice the identical outcome"
    assert memo.counts()["hits"] == 1
    assert memo.counts()["misses"] == 1


def test_unkeyable_recipe_runs_cold_with_accounting():
    class _Stepper:
        def __init__(self):
            self.budget = 6

        def step(self, event):
            # Same decisions as replay_n_times(6), but carried in
            # object state the fingerprint cannot see.
            from repro.core.recipes import ReplayAction, ReplayDecision
            self.budget -= 1
            return ReplayDecision(ReplayAction.REPLAY if self.budget > 0
                                  else ReplayAction.RELEASE)

    memo = WindowMemo()
    rep, recipe = _armed_replayer(memo, _Stepper().step)
    rep.run_window(recipe)
    assert recipe.released, "unkeyable window must still run to release"
    assert memo.counts()["uncacheable"] == 1
    assert memo.counts()["misses"] == 0 and len(memo) == 0


@pytest.mark.parametrize("secret", [0, 1])
def test_distinct_victim_secrets_never_share_entries(secret):
    """The digest sees through to victim data: runs that differ only
    in the secret must not collide in the memo."""
    memo = WindowMemo()
    rep, recipe = _armed_replayer(memo, replay_n_times(4),
                                  secret=secret)
    rep.checkpoint()
    rep.run_window(recipe)
    other_rep, other_recipe = _armed_replayer(
        memo, replay_n_times(4), secret=1 - secret)
    other_rep.run_window(other_recipe)
    assert memo.counts()["misses"] == 2
    assert memo.counts()["hits"] == 0
