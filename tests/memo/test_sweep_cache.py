"""Content-addressed trial cache wired into the resilient sweep,
Experiment facade and evaluation matrix."""

import hashlib

from repro.experiment import Experiment
from repro.harness import derive_seed, run_resilient_sweep
from repro.harness.resilience import FaultPolicy
from repro.memo import TrialStore, trial_key

MASTER = 11
LABEL = "memo-sweep"


def _pure(params, seed):
    digest = hashlib.sha256(f"{params}:{seed}".encode()).hexdigest()
    return {"params": params, "seed": seed, "digest": digest}


def _flaky(params, seed):
    # Trial 2's first attempt fails; the retry (attempt-1 seed lineage)
    # succeeds — the shape of a transient worker fault.
    if params == 2 and seed == derive_seed(MASTER, 2, LABEL):
        raise RuntimeError("transient fault")
    return {"params": params, "seed": seed}


def _looks_sound(result):
    return isinstance(result, dict) and "digest" in result


class _Unkeyable:
    """Callable instance: correct as a trial fn, but its state is
    invisible to the fingerprint, so it must never be cached."""

    def __call__(self, params, seed):
        return params * 2


def _sweep(store=None, trial_fn=_pure, n=5, policy=None, journal=None):
    return run_resilient_sweep(
        trial_fn, list(range(n)), master_seed=MASTER, label=LABEL,
        workers=1, store=store, policy=policy, journal=journal)


def test_warm_sweep_is_cached_and_bit_identical(tmp_path):
    reference = _sweep()

    store = TrialStore(tmp_path)
    cold = _sweep(store=store)
    assert cold.results() == reference.results()
    assert cold.report.resolution_counts()["ok"] == 5
    assert cold.report.cache["misses"] == 5
    assert cold.report.cache["stores"] == 5
    assert len(store) == 5

    warm = _sweep(store=store)
    assert warm.report.resolution_counts()["cached"] == 5
    assert warm.results() == cold.results()
    assert repr(warm.results()) == repr(cold.results())
    # cache deltas are per-sweep, not cumulative over the store.
    assert warm.report.cache["hits"] == 5
    assert warm.report.cache["misses"] == 0
    assert warm.report.cache["stores"] == 0


def test_store_accepts_a_path_and_report_serializes(tmp_path):
    cold = _sweep(store=tmp_path / "cache")
    assert (tmp_path / "cache").is_dir()
    payload = cold.report.to_dict()
    assert payload["cache"]["stores"] == 5
    assert payload["resolutions"]["cached"] == 0


def test_retried_trials_are_not_persisted(tmp_path):
    """A retry ran with attempt-k seed lineage; caching it under the
    attempt-0 key would replay the wrong seed, so it is not stored."""
    store = TrialStore(tmp_path)
    policy = FaultPolicy(max_attempts=2, backoff_base=0.0)
    cold = _sweep(store=store, trial_fn=_flaky, policy=policy)
    assert cold.report.resolution_counts()["ok"] == 5
    assert cold.report.trials[2].retries == 1
    assert len(store) == 4, "the retried trial must not be cached"

    warm = _sweep(store=store, trial_fn=_flaky, policy=policy)
    counts = warm.report.resolution_counts()
    assert counts["cached"] == 4 and counts["ok"] == 1
    assert warm.results() == cold.results()


def test_verify_vets_cached_results(tmp_path):
    store = TrialStore(tmp_path)
    reference = _sweep(n=3)
    seed = derive_seed(MASTER, 1, LABEL)
    store.put(trial_key(_pure, 1, seed), seed, {"poisoned": True})

    policy = FaultPolicy(verify=_looks_sound)
    swept = _sweep(store=store, n=3, policy=policy)
    assert swept.results() == reference.results()
    assert swept.report.resolution_counts()["cached"] == 0
    assert swept.report.cache["rejected"] == 1

    # The recompute overwrote the poison; now everything is cacheable.
    warm = _sweep(store=store, n=3, policy=policy)
    assert warm.report.resolution_counts()["cached"] == 3
    assert warm.results() == reference.results()


def test_unkeyable_trial_fn_runs_uncached(tmp_path):
    store = TrialStore(tmp_path)
    swept = _sweep(store=store, trial_fn=_Unkeyable(), n=3)
    assert swept.results() == [0, 2, 4]
    assert swept.report.resolution_counts()["ok"] == 3
    assert swept.report.cache["uncacheable"] == 3
    assert len(store) == 0


def test_journal_resolution_wins_over_store(tmp_path):
    store = TrialStore(tmp_path / "cache")
    journal = tmp_path / "sweep.journal"
    _sweep(store=store, journal=journal)

    resumed = _sweep(store=store, journal=journal)
    counts = resumed.report.resolution_counts()
    assert counts["journal"] == 5 and counts["cached"] == 0
    assert resumed.report.cache["hits"] == 0


def test_experiment_facade_surfaces_cache(tmp_path):
    experiment = Experiment(trial=_pure, sweep=[0, 1, 2],
                            master_seed=MASTER, label=LABEL,
                            store=tmp_path / "cache")
    cold = experiment.run()
    assert cold.cached_trials == 0
    assert cold.cache["stores"] == 3

    warm = experiment.run()          # run() must not mutate the spec
    assert warm.cached_trials == 3
    assert warm.cache["hits"] == 3
    assert warm.results == cold.results
    counter = warm.metrics.counter(
        f"harness.sweep.{LABEL}.cache.hits")
    assert counter.value == 3
    counter = warm.metrics.counter(
        f"harness.sweep.{LABEL}.resolutions.cached")
    assert counter.value == 3


def test_no_store_reports_no_cache(tmp_path):
    swept = _sweep()
    assert swept.report.cache is None
    report = Experiment(trial=_pure, sweep=[0]).run()
    assert report.cache == {} and report.cached_trials == 0
