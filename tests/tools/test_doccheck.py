"""The executable-docs runner: extraction, skip markers, failures."""

from pathlib import Path

from repro.tools import doccheck

SAMPLE = """\
# Title

Some prose.

```python
x = 1 + 1
assert x == 2
```

```bash
echo not python
```

<!-- doccheck: skip -->
```python
this is not even python
```

```python
raise RuntimeError("broken example")
```
"""


def test_extract_blocks_finds_python_fences_only():
    blocks = doccheck.extract_blocks(SAMPLE, "sample.md")
    assert len(blocks) == 3
    assert blocks[0].source == "x = 1 + 1\nassert x == 2\n"
    assert blocks[0].lineno == 6
    assert not blocks[0].skipped
    assert blocks[1].skipped
    assert not blocks[2].skipped
    assert blocks[2].location == "sample.md:20"


def test_skip_marker_only_covers_the_next_block():
    text = ("<!-- doccheck: skip -->\n```python\na\n```\n\n"
            "```python\nb = 1\n```\n")
    first, second = doccheck.extract_blocks(text, "x.md")
    assert first.skipped and not second.skipped


def test_run_block_success_and_failure(tmp_path):
    ok, skip, bad = doccheck.extract_blocks(SAMPLE, "sample.md")
    assert doccheck.run_block(ok, str(tmp_path)) is None
    error = doccheck.run_block(bad, str(tmp_path))
    assert error is not None
    assert "RuntimeError: broken example" in error
    assert "sample.md:20" in error


def test_run_block_restores_cwd(tmp_path):
    import os
    before = os.getcwd()
    block = doccheck.CodeBlock(path="x.md", lineno=1,
                               source="open('scratch.txt', 'w')"
                                      ".write('hi')\n")
    assert doccheck.run_block(block, str(tmp_path)) is None
    assert os.getcwd() == before
    # the example wrote into the sandbox dir, not the repo
    assert (tmp_path / "scratch.txt").exists()


def test_check_paths_reports_failures(tmp_path):
    doc = tmp_path / "doc.md"
    doc.write_text(SAMPLE)
    failures = doccheck.check_paths([doc])
    assert len(failures) == 1
    assert "broken example" in failures[0]


def test_check_paths_passes_clean_file(tmp_path):
    doc = tmp_path / "doc.md"
    doc.write_text("```python\nvalue = 40 + 2\n```\n")
    assert doccheck.check_paths([doc]) == []


def test_default_docs_contain_runnable_blocks():
    """README and docs/API.md (what CI executes) must keep at least
    one runnable Python block each — extraction only, no execution."""
    root = doccheck._ROOT
    for name in doccheck.DEFAULT_DOCS:
        blocks = doccheck.extract_file(Path(root / name))
        runnable = [b for b in blocks if not b.skipped]
        assert runnable, f"{name} has no runnable python blocks"
