"""The nightly differential-sweep tool."""

import json

from repro.harness import derive_seed
from repro.tools.diffsweep import (
    LABEL,
    generate_program,
    main,
    run_case,
    run_sweep,
)


def test_generate_program_is_seed_deterministic():
    a = generate_program(1234)
    b = generate_program(1234)
    assert [str(i) for i in a.instructions] \
        == [str(i) for i in b.instructions]
    c = generate_program(1235)
    assert [str(i) for i in a.instructions] \
        != [str(i) for i in c.instructions]


def test_run_case_matches_on_sampled_seeds():
    for case in range(3):
        seed = derive_seed(2019, case, LABEL)
        payload = run_case({"case": case}, seed)
        assert payload["match"], payload["mismatches"]
        assert payload["seed"] == seed
        assert payload["retired"] > 0


def test_run_sweep_writes_artifacts_and_resumes(tmp_path):
    out = tmp_path / "nightly"
    summary = run_sweep(4, out_dir=out, workers=1)
    assert summary["matched"] == summary["cases"] == 4
    assert summary["failures"] == []
    assert (out / "diffsweep.json").exists()
    journal = (out / "journal.jsonl").read_text().splitlines()
    trials = [json.loads(line) for line in journal
              if json.loads(line).get("kind") == "trial"]
    assert sorted(t["index"] for t in trials) == [0, 1, 2, 3]
    # Second run resumes everything from the journal: zero reruns.
    again = run_sweep(4, out_dir=out, workers=1)
    assert again["report"]["resolutions"]["journal"] == 4
    assert again["report"]["resolutions"]["ok"] == 0
    assert again["matched"] == 4


def test_main_single_case_exit_zero(capsys):
    assert main(["--case", "0"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["match"] is True


def test_main_sweep_exit_zero(tmp_path, capsys):
    assert main(["--cases", "2",
                 "--out-dir", str(tmp_path / "d")]) == 0
    assert "2/2 cases matched" in capsys.readouterr().out
