"""The oracle/statistics cross-check tool and its CLI spellings."""

import json

from repro.tools.oraclecheck import main, run_check


def test_run_check_single_cell_is_consistent():
    payload = run_check(("cf-cache",), ("none",))
    assert payload["ok"]
    assert payload["inconsistent"] == []
    assert payload["control_event_cells"] == []
    (cell,) = payload["cells"]
    assert cell["cell"] == "cf-cache/none"
    assert cell["verdict"] == "leaks"
    assert cell["oracle_events"] > 0
    assert cell["control_events"] == 0
    assert cell["consistent"]


def test_cli_table_and_json(capsys):
    assert main(["--attacks", "cf-cache", "--defenses", "none"]) == 0
    table = capsys.readouterr().out
    assert "cf-cache/none" in table
    assert "inconsistent cells: 0" in table
    assert main(["--attacks", "cf-cache", "--defenses", "none",
                 "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"]


def test_cli_caches_cells_across_legs(tmp_path):
    cache = tmp_path / "store"
    assert main(["--attacks", "cf-cache", "--defenses", "none",
                 "--cache-dir", str(cache)]) == 0
    # Second invocation replays all four trials (2 legs x 2 runs)
    # from the content-addressed store.
    assert main(["--attacks", "cf-cache", "--defenses", "none",
                 "--cache-dir", str(cache)]) == 0


def test_diffsweep_oracle_leg_is_clean():
    from repro.tools.diffsweep import run_sweep
    summary = run_sweep(3, oracle=True)
    assert summary["oracle"] is True
    assert summary["matched"] == summary["cases"] == 3
