"""The results generator: deterministic artifacts, claim handling,
and the README block machinery."""

import pytest

from repro.tools import results


@pytest.fixture(scope="module")
def restricted_matrix():
    return results.run_matrix(attacks=("cf-cache",),
                              defenses=("none", "fences"))


def test_restricted_matrix_is_deterministic_across_workers(
        restricted_matrix):
    again = results.run_matrix(attacks=("cf-cache",),
                               defenses=("none", "fences"),
                               workers=2)
    assert again.to_dict() == restricted_matrix.to_dict()


def test_fig10_claim_skips_when_cell_absent(restricted_matrix):
    claim = results.check_fig10_separation(restricted_matrix)
    assert claim["passed"] is None
    assert "not in this matrix" in claim["detail"]["reason"]


def test_replay_count_claim_is_exact():
    claim = results.check_replay_counts()
    assert claim["passed"] is True
    observed = claim["detail"]["requested_vs_observed"]
    assert observed == {str(n): n for n in results.REPLAY_COUNTS}


def test_payload_is_stable_and_versioned(restricted_matrix):
    claims = [results.check_fig10_separation(restricted_matrix)]
    payload = results.build_payload(restricted_matrix, claims)
    assert payload == results.build_payload(restricted_matrix, claims)
    assert payload["version"] == results.RESULTS_VERSION
    assert payload["matrix"]["master_seed"] == 2019


def test_render_results_md_is_deterministic(restricted_matrix):
    claims = [results.check_fig10_separation(restricted_matrix)]
    doc = results.render_results_md(restricted_matrix, claims)
    assert doc == results.render_results_md(restricted_matrix, claims)
    assert "| cf-cache |" in doc
    assert "skipped" in doc  # the fig10 claim above has passed=None


def test_readme_block_round_trip(restricted_matrix):
    block = results.readme_block(restricted_matrix)
    readme = ("# title\n\nintro\n\n"
              f"{results.README_BEGIN}\nstale\n{results.README_END}"
              "\n\nfooter\n")
    updated = results.apply_readme_block(readme, block)
    assert "stale" not in updated
    assert updated.startswith("# title")
    assert updated.endswith("footer\n")
    assert results.extract_readme_block(updated) == block
    # applying the same block twice is a no-op
    assert results.apply_readme_block(updated, block) == updated


def test_readme_block_requires_markers():
    with pytest.raises(ValueError):
        results.apply_readme_block("no markers here", "block")


def test_committed_artifacts_match_a_restricted_recheck():
    """The committed results.json embeds the same cells a fresh run
    of the cheap rows produces — a fast slice of CI's full
    `--check`."""
    import json
    committed = json.loads(results.RESULTS_JSON_PATH.read_text())
    fresh = results.run_matrix(attacks=("cf-cache",)).to_dict()
    for key, cell in fresh["cells"].items():
        committed_cell = committed["matrix"]["cells"][key]
        assert committed_cell["metrics"] == cell["metrics"], key
        assert committed_cell["classification"] \
            == cell["classification"], key
