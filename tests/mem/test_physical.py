import pytest

from repro.mem.physical import FRAME_SIZE, PhysicalMemory, PhysicalMemoryError


def test_read_unwritten_is_zero():
    mem = PhysicalMemory(16)
    assert mem.read(0) == 0
    assert mem.read(128, 4) == 0


def test_write_read_roundtrip():
    mem = PhysicalMemory(16)
    mem.write(64, 0xDEADBEEF)
    assert mem.read(64) == 0xDEADBEEF
    mem.write(100, 7, width=4)
    assert mem.read(100, 4) == 7


def test_float_values_supported():
    mem = PhysicalMemory(16)
    mem.write(8, 2.5)
    assert mem.read(8) == 2.5


def test_misaligned_rejected():
    mem = PhysicalMemory(16)
    with pytest.raises(PhysicalMemoryError):
        mem.read(3)
    with pytest.raises(PhysicalMemoryError):
        mem.write(6, 1, width=4)


def test_bad_width_rejected():
    mem = PhysicalMemory(16)
    with pytest.raises(PhysicalMemoryError):
        mem.read(0, 2)


def test_out_of_range_rejected():
    mem = PhysicalMemory(2)
    with pytest.raises(PhysicalMemoryError):
        mem.read(2 * FRAME_SIZE)
    with pytest.raises(PhysicalMemoryError):
        mem.write(-8, 0)


def test_frame_base():
    mem = PhysicalMemory(4)
    assert mem.frame_base(0) == 0
    assert mem.frame_base(3) == 3 * FRAME_SIZE
    with pytest.raises(PhysicalMemoryError):
        mem.frame_base(4)


def test_zero_frame_clears_contents():
    mem = PhysicalMemory(4)
    mem.write(FRAME_SIZE + 16, 99)
    mem.write(FRAME_SIZE + 20, 5, width=4)
    mem.zero_frame(1)
    assert mem.read(FRAME_SIZE + 16) == 0
    assert mem.read(FRAME_SIZE + 20, 4) == 0


def test_zero_frame_leaves_neighbours():
    mem = PhysicalMemory(4)
    mem.write(0, 1)
    mem.write(2 * FRAME_SIZE, 2)
    mem.zero_frame(1)
    assert mem.read(0) == 1
    assert mem.read(2 * FRAME_SIZE) == 2


def test_words_in_use():
    mem = PhysicalMemory(4)
    assert mem.words_in_use() == 0
    mem.write(0, 1)
    mem.write(8, 2)
    assert mem.words_in_use() == 2


def test_invalid_construction():
    with pytest.raises(ValueError):
        PhysicalMemory(0)
