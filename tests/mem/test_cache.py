import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.cache import Cache, CacheConfig, line_of


def small_cache(ways=2, sets=4, policy="lru"):
    return Cache(CacheConfig("T", size_bytes=ways * sets * 64, ways=ways,
                             latency=4, policy=policy))


def test_line_of():
    assert line_of(0) == 0
    assert line_of(63) == 0
    assert line_of(64) == 64
    assert line_of(0x12345) == 0x12340


def test_geometry_validation():
    with pytest.raises(ValueError):
        Cache(CacheConfig("bad", size_bytes=100, ways=3, latency=1))


def test_miss_then_hit():
    cache = small_cache()
    assert not cache.lookup(0x1000)
    cache.insert(0x1000)
    assert cache.lookup(0x1000)
    assert cache.stats.hits == 1
    assert cache.stats.misses == 1


def test_same_line_shares_entry():
    cache = small_cache()
    cache.insert(0x1000)
    assert cache.lookup(0x1038)  # same 64B line


def test_eviction_on_conflict():
    cache = small_cache(ways=2, sets=1)
    cache.insert(0x0)
    cache.insert(0x40)
    evicted = cache.insert(0x80)
    assert evicted == 0x0
    assert not cache.contains(0x0)
    assert cache.contains(0x40) and cache.contains(0x80)


def test_lru_order_respected():
    cache = small_cache(ways=2, sets=1)
    cache.insert(0x0)
    cache.insert(0x40)
    cache.lookup(0x0)          # refresh
    evicted = cache.insert(0x80)
    assert evicted == 0x40


def test_invalidate():
    cache = small_cache()
    cache.insert(0x1000)
    assert cache.invalidate(0x1000)
    assert not cache.contains(0x1000)
    assert not cache.invalidate(0x1000)
    assert cache.stats.invalidations == 1


def test_flush_all():
    cache = small_cache()
    for i in range(8):
        cache.insert(i * 64)
    cache.flush_all()
    assert len(cache) == 0


def test_dirty_tracking_via_observer():
    events = []
    cache = small_cache(ways=1, sets=1)
    cache.add_evict_observer(lambda line, dirty: events.append((line,
                                                                dirty)))
    cache.insert(0x0, dirty=False)
    cache.lookup(0x0, is_write=True)   # mark dirty
    cache.insert(0x40)                 # evicts dirty line 0
    assert events == [(0x0, True)]


def test_observer_fires_on_invalidate():
    events = []
    cache = small_cache()
    cache.add_evict_observer(lambda line, dirty: events.append(line))
    cache.insert(0x1000)
    cache.invalidate(0x1000)
    assert events == [line_of(0x1000)]


def test_insert_existing_refreshes_not_evicts():
    cache = small_cache(ways=2, sets=1)
    cache.insert(0x0)
    cache.insert(0x40)
    assert cache.insert(0x0) is None   # refresh
    evicted = cache.insert(0x80)
    assert evicted == 0x40


def test_lines_mapping_to_same_set():
    cache = small_cache(ways=4, sets=8)
    target = 0x1040
    eviction_set = cache.lines_mapping_to(target, 4)
    assert len(eviction_set) == 4
    for line in eviction_set:
        assert cache.set_index(line) == cache.set_index(target)
        assert line != line_of(target)


def test_lines_mapping_to_skips_target_above_stride_base():
    """Regression: a target at or above ``stride_base`` used to appear
    in its own eviction set (the stride walk lands exactly on it)."""
    cache = small_cache(ways=4, sets=8)
    stride_base = 0x4000
    span = 8 * 64                      # sets << line_shift
    target = stride_base + 2 * span + 0x40   # on the stride walk, set 1
    eviction_set = cache.lines_mapping_to(target, 4,
                                          stride_base=stride_base)
    assert len(eviction_set) == 4
    assert line_of(target) not in eviction_set
    assert len(set(eviction_set)) == 4
    for line in eviction_set:
        assert cache.set_index(line) == cache.set_index(target)


def test_resident_lines_sorted():
    cache = small_cache()
    cache.insert(0x2000)
    cache.insert(0x1000)
    assert cache.resident_lines() == [0x1000, 0x2000]


@given(st.lists(st.tuples(st.sampled_from(["insert", "invalidate"]),
                          st.integers(min_value=0, max_value=63)),
                max_size=300))
@settings(max_examples=40, deadline=None)
def test_capacity_invariant(ops):
    """The cache never holds more lines than its capacity, and its
    line index stays consistent with the tag array."""
    cache = small_cache(ways=2, sets=4)
    capacity = 2 * 4
    for op, line_no in ops:
        addr = line_no * 64
        if op == "insert":
            cache.insert(addr)
        else:
            cache.invalidate(addr)
        assert len(cache) <= capacity
    for line in cache.resident_lines():
        assert cache.contains(line)
