import pytest

from repro.mem.cache import CacheConfig
from repro.mem.hierarchy import DRAM_LEVEL, HierarchyConfig, MemoryHierarchy


def tiny_hierarchy():
    return MemoryHierarchy(HierarchyConfig(
        levels=(
            CacheConfig("L1D", size_bytes=2 * 64 * 2, ways=2, latency=4),
            CacheConfig("L2", size_bytes=4 * 64 * 4, ways=4, latency=12),
        ),
        dram_latency=200,
    ))


def test_default_config_builds():
    hierarchy = MemoryHierarchy()
    assert [c.name for c in hierarchy.levels] == ["L1D", "L2", "L3"]


def test_cold_miss_costs_full_path():
    h = tiny_hierarchy()
    assert h.access(0x1000) == 4 + 12 + 200
    assert h.dram_accesses == 1


def test_hit_after_fill():
    h = tiny_hierarchy()
    h.access(0x1000)
    assert h.access(0x1000) == 4
    assert h.peek_level(0x1000) == 0


def test_l2_hit_refills_l1():
    h = tiny_hierarchy()
    h.access(0x1000)
    h.level_named("L1D").invalidate(0x1000)
    assert h.peek_level(0x1000) == 1
    assert h.access(0x1000) == 4 + 12
    assert h.peek_level(0x1000) == 0


def test_flush_line_removes_everywhere():
    h = tiny_hierarchy()
    h.access(0x1000)
    h.flush_line(0x1000)
    assert h.peek_level(0x1000) == DRAM_LEVEL


def test_flush_range():
    h = tiny_hierarchy()
    for offset in range(0, 256, 64):
        h.access(0x2000 + offset)
    h.flush_range(0x2000, 256)
    for offset in range(0, 256, 64):
        assert h.peek_level(0x2000 + offset) == DRAM_LEVEL


def test_flush_range_unaligned_start_covers_first_line():
    """A start address inside a line must still flush that line."""
    h = tiny_hierarchy()
    h.access(0x2000)
    h.access(0x2040)
    h.flush_range(0x2008, 0x40)     # spans the tail of line 0x2000
    assert h.peek_level(0x2000) == DRAM_LEVEL
    assert h.peek_level(0x2040) == DRAM_LEVEL


def test_flush_range_unaligned_size_covers_last_line():
    """A range ending mid-line must flush the line it ends inside."""
    h = tiny_hierarchy()
    for offset in range(0, 0x100, 64):
        h.access(0x2000 + offset)
    h.flush_range(0x2000, 0x81)     # one byte into the third line
    for offset in (0x0, 0x40, 0x80):
        assert h.peek_level(0x2000 + offset) == DRAM_LEVEL
    assert h.peek_level(0x20c0) == 0   # untouched fourth line


def test_flush_range_zero_size_is_noop():
    h = tiny_hierarchy()
    h.access(0x2000)
    h.flush_range(0x2000, 0)
    assert h.peek_level(0x2000) == 0


def test_hit_latency_table():
    h = tiny_hierarchy()
    assert h.hit_latency(0) == 4
    assert h.hit_latency(1) == 16
    assert h.hit_latency(DRAM_LEVEL) == 4 + 12 + 200


def test_eviction_victim_moves_down():
    h = tiny_hierarchy()
    # L1 set has 2 ways; touch 3 conflicting lines.
    l1 = h.l1
    lines = l1.lines_mapping_to(0x0, 3)
    for line in lines:
        h.access(line)
    # The first line was evicted from L1 but should live in L2.
    assert h.peek_level(lines[0]) == 1


def test_prime_set_with_evicts_target():
    h = tiny_hierarchy()
    target = 0x3000
    h.access(target)
    h.prime_set_with(target, level=0)
    assert not h.l1.contains(target)


def test_touch_sums_latency():
    h = tiny_hierarchy()
    total = h.touch([0x100, 0x100])
    assert total == (4 + 12 + 200) + 4


def test_reset_stats():
    h = tiny_hierarchy()
    h.access(0x100)
    h.reset_stats()
    assert h.dram_accesses == 0
    assert h.l1.stats.misses == 0


def test_reset_stats_keeps_resident_lines():
    """Counter resets must not disturb cache contents: the next access
    to a resident line is still a pure L1 hit."""
    h = tiny_hierarchy()
    h.access(0x100)
    h.access(0x2000)
    h.reset_stats()
    assert h.l1.contains(0x100)
    assert h.l1.contains(0x2000)
    assert h.access(0x100) == h.hit_latency(0)
    assert h.l1.stats.hits == 1
    assert h.l1.stats.misses == 0
    assert h.dram_accesses == 0


def test_level_named_unknown():
    h = tiny_hierarchy()
    with pytest.raises(KeyError):
        h.level_named("L9")


def test_writes_mark_l1_dirty_and_writeback_path():
    h = tiny_hierarchy()
    h.access(0x4000, is_write=True)
    # Evict it via conflicting fills; the dirty line should land in L2.
    for line in h.l1.lines_mapping_to(0x4000, 2):
        h.access(line)
    assert h.peek_level(0x4000) == 1
