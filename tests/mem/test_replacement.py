import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.replacement import (
    LRUPolicy,
    RandomPolicy,
    TreePLRUPolicy,
    make_policy,
)


def test_factory():
    assert isinstance(make_policy("lru", 4), LRUPolicy)
    assert isinstance(make_policy("plru", 4), TreePLRUPolicy)
    assert isinstance(make_policy("random", 4), RandomPolicy)
    with pytest.raises(ValueError):
        make_policy("mru", 4)


def test_lru_prefers_free_ways():
    policy = LRUPolicy(4)
    state = policy.new_state()
    policy.on_fill(state, 0)
    assert policy.choose_victim(state, [True, False, False, False]) == 1


def test_lru_evicts_least_recent():
    policy = LRUPolicy(4)
    state = policy.new_state()
    for way in range(4):
        policy.on_fill(state, way)
    policy.on_access(state, 0)  # refresh way 0
    victim = policy.choose_victim(state, [True] * 4)
    assert victim == 1


def test_lru_invalidate_removes_from_order():
    policy = LRUPolicy(4)
    state = policy.new_state()
    for way in range(4):
        policy.on_fill(state, way)
    policy.on_invalidate(state, 0)
    assert 0 not in state


def test_plru_requires_power_of_two():
    with pytest.raises(ValueError):
        TreePLRUPolicy(6)


def test_plru_never_evicts_most_recent():
    policy = TreePLRUPolicy(8)
    state = policy.new_state()
    for way in range(8):
        policy.on_fill(state, way)
    for way in range(8):
        policy.on_access(state, way)
        victim = policy.choose_victim(state, [True] * 8)
        assert victim != way


def test_random_policy_deterministic_with_seed():
    a = RandomPolicy(4, seed=1)
    b = RandomPolicy(4, seed=1)
    occupied = [True] * 4
    seq_a = [a.choose_victim(None, occupied) for _ in range(20)]
    seq_b = [b.choose_victim(None, occupied) for _ in range(20)]
    assert seq_a == seq_b


def test_random_policy_prefers_free_way():
    policy = RandomPolicy(4, seed=0)
    assert policy.choose_victim(None, [True, True, False, True]) == 2


@given(st.lists(st.integers(min_value=0, max_value=7), min_size=1,
                max_size=200))
@settings(max_examples=50, deadline=None)
def test_lru_matches_reference_model(accesses):
    """LRU policy agrees with an ordered-list reference."""
    policy = LRUPolicy(8)
    state = policy.new_state()
    reference = []  # most recent last
    for way in accesses:
        policy.on_access(state, way)
        if way in reference:
            reference.remove(way)
        reference.append(way)
    occupied = [way in reference for way in range(8)]
    if len(reference) == 8:
        assert policy.choose_victim(state, occupied) == reference[0]


@given(st.lists(st.integers(min_value=0, max_value=7), min_size=8,
                max_size=100))
@settings(max_examples=50, deadline=None)
def test_plru_victim_always_valid(accesses):
    policy = TreePLRUPolicy(8)
    state = policy.new_state()
    for way in accesses:
        policy.on_access(state, way)
    victim = policy.choose_victim(state, [True] * 8)
    assert 0 <= victim < 8
