"""Functional correctness of every victim program: they must compute
the right thing when run unmolested."""

import pytest

from repro.crypto.aes import encrypt_block
from repro.victims import (
    PIVOT,
    REPLAY_HANDLE,
    TRANSMIT,
    setup_aes_victim,
    setup_control_flow_victim,
    setup_loop_secret_victim,
    setup_port_contention_monitor,
    setup_single_secret_victim,
)
from repro.victims.integrity import setup_rdrand_victim, setup_tsx_victim
from tests.conftest import run_program


def test_control_flow_victim_tags(kernel):
    process = kernel.create_process("v")
    victim = setup_control_flow_victim(process, secret=1)
    assert victim.program.find(REPLAY_HANDLE)
    assert victim.handle_index == victim.program.find_one(REPLAY_HANDLE)
    transmits = [i for i, ins in
                 enumerate(victim.program.instructions)
                 if ins.comment.startswith(TRANSMIT)]
    assert len(transmits) == 4  # 2 muls + 2 divs


@pytest.mark.parametrize("secret", [0, 1])
def test_control_flow_victim_runs(system, secret):
    machine, kernel = system
    process = kernel.create_process("v")
    victim = setup_control_flow_victim(process, secret)
    context = run_program(machine, kernel, victim.program,
                          process=process)
    # The counter was incremented exactly once.
    assert process.read(victim.handle_va + 0x20) == 1


def test_control_flow_victim_rejects_bad_secret(kernel):
    process = kernel.create_process("v")
    with pytest.raises(ValueError):
        setup_control_flow_victim(process, secret=2)


def test_monitor_measures_plausible_latencies(system):
    machine, kernel = system
    process = kernel.create_process("m")
    monitor = setup_port_contention_monitor(process, measurements=50,
                                            divs_per_sample=4)
    run_program(machine, kernel, monitor.program, process=process,
                max_cycles=500_000)
    samples = monitor.read_samples(process)
    assert len(samples) == 50
    # Four non-pipelined 24-cycle divides: at least ~96 cycles.
    assert all(s >= 4 * 24 for s in samples)
    assert all(s < 400 for s in samples)


def test_monitor_rejects_bad_params(kernel):
    process = kernel.create_process("m")
    with pytest.raises(ValueError):
        setup_port_contention_monitor(process, measurements=0)


def test_single_secret_victim_computes_division(system):
    machine, kernel = system
    process = kernel.create_process("v")
    secrets = [float(i) for i in range(16)]
    victim = setup_single_secret_victim(process, secrets, secret_id=6,
                                        key=2.0)
    run_program(machine, kernel, victim.program, process=process)
    assert process.read(victim.result_va) == 3.0
    assert process.read(victim.count_va) == 1


def test_single_secret_bad_id(kernel):
    process = kernel.create_process("v")
    with pytest.raises(ValueError):
        setup_single_secret_victim(process, [1.0], secret_id=5, key=1.0)


def test_loop_secret_victim_touches_right_lines(system):
    machine, kernel = system
    process = kernel.create_process("v")
    secrets = [3, 1, 4, 1, 5]
    victim = setup_loop_secret_victim(process, secrets)
    run_program(machine, kernel, victim.program, process=process,
                max_cycles=500_000)
    # Ground truth: the victim read table[secret*stride] per iteration.
    for secret in set(secrets):
        paddr = process.translate_any(victim.table_line_va(secret))
        assert machine.hierarchy.peek_level(paddr) >= 0


def test_loop_secret_rejects_out_of_range(kernel):
    process = kernel.create_process("v")
    with pytest.raises(ValueError):
        setup_loop_secret_victim(process, [99], table_lines=16)
    with pytest.raises(ValueError):
        setup_loop_secret_victim(process, [])


@pytest.mark.parametrize("key_len", [16, 24, 32])
def test_aes_victim_decrypts_correctly(system, key_len):
    machine, kernel = system
    process = kernel.create_process("v")
    key = bytes(range(key_len))
    plaintext = bytes.fromhex("00112233445566778899aabbccddeeff")
    ciphertext = encrypt_block(key, plaintext)
    victim = setup_aes_victim(process, key, ciphertext)
    run_program(machine, kernel, victim.program, process=process,
                max_cycles=2_000_000)
    assert victim.read_plaintext(process) == plaintext


def test_aes_victim_layout_separates_pages(kernel):
    from repro.vm import address as vaddr
    process = kernel.create_process("v")
    key = bytes(16)
    victim = setup_aes_victim(process, key, bytes(16))
    pages = {vaddr.vpn(victim.rk_va)}
    for va in victim.td_vas:
        pages.add(vaddr.vpn(va))
    assert len(pages) == 5  # rk + 4 Td tables, all distinct pages


def test_aes_victim_tags(kernel):
    process = kernel.create_process("v")
    victim = setup_aes_victim(process, bytes(16), bytes(16))
    assert victim.program.find_one(f"{REPLAY_HANDLE} rk-s0") >= 0
    assert victim.program.find_one(f"{PIVOT} td0-s1") >= 0


def test_rdrand_victim_commits_a_value(system):
    machine, kernel = system
    process = kernel.create_process("v")
    victim = setup_rdrand_victim(process)
    run_program(machine, kernel, victim.program, process=process)
    assert victim.read_output(process) != 0


def test_tsx_victim_commits_without_interference(system):
    machine, kernel = system
    process = kernel.create_process("v")
    victim = setup_tsx_victim(process)
    run_program(machine, kernel, victim.program, process=process,
                max_cycles=500_000)
    assert victim.read_output(process) != 0
    assert victim.read_retries(process) == 0
