"""Table-based AES, mirroring the OpenSSL 0.9.8 implementation that
Section 4.4 attacks.

Supports AES-128/192/256 encryption and decryption.  The decryption
path additionally offers an *instrumented* mode that records every
Td-table access (round, statement, table, entry index, cache line) —
the ground truth the MicroScope experiments validate their extracted
traces against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.crypto.aes_tables import (
    inv_sbox,
    line_of_entry,
    sbox,
    td_tables,
    te_tables,
)
from repro.crypto.gf import gmul

_RCON = (0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36)

#: Rounds per key size in bytes.
_ROUNDS = {16: 10, 24: 12, 32: 14}


class AESError(Exception):
    """Raised on malformed keys or blocks."""


def _check_block(block: bytes):
    if len(block) != 16:
        raise AESError(f"AES blocks are 16 bytes, got {len(block)}")


def _bytes_to_words(data: bytes) -> List[int]:
    return [int.from_bytes(data[i:i + 4], "big")
            for i in range(0, len(data), 4)]


def _words_to_bytes(words: Sequence[int]) -> bytes:
    return b"".join(w.to_bytes(4, "big") for w in words)


def _sub_word(word: int) -> int:
    s = sbox()
    return (s[(word >> 24) & 0xFF] << 24 | s[(word >> 16) & 0xFF] << 16
            | s[(word >> 8) & 0xFF] << 8 | s[word & 0xFF])


def _rot_word(word: int) -> int:
    return ((word << 8) | (word >> 24)) & 0xFFFFFFFF


def expand_key(key: bytes) -> List[int]:
    """FIPS-197 key expansion; returns ``4 * (rounds + 1)`` words."""
    if len(key) not in _ROUNDS:
        raise AESError(f"AES keys are 16/24/32 bytes, got {len(key)}")
    nk = len(key) // 4
    rounds = _ROUNDS[len(key)]
    words = _bytes_to_words(key)
    for i in range(nk, 4 * (rounds + 1)):
        temp = words[i - 1]
        if i % nk == 0:
            temp = _sub_word(_rot_word(temp)) ^ (_RCON[i // nk - 1] << 24)
        elif nk > 6 and i % nk == 4:
            temp = _sub_word(temp)
        words.append(words[i - nk] ^ temp)
    return words


def _inv_mix_word(word: int) -> int:
    a = [(word >> 24) & 0xFF, (word >> 16) & 0xFF,
         (word >> 8) & 0xFF, word & 0xFF]
    b0 = gmul(14, a[0]) ^ gmul(11, a[1]) ^ gmul(13, a[2]) ^ gmul(9, a[3])
    b1 = gmul(9, a[0]) ^ gmul(14, a[1]) ^ gmul(11, a[2]) ^ gmul(13, a[3])
    b2 = gmul(13, a[0]) ^ gmul(9, a[1]) ^ gmul(14, a[2]) ^ gmul(11, a[3])
    b3 = gmul(11, a[0]) ^ gmul(13, a[1]) ^ gmul(9, a[2]) ^ gmul(14, a[3])
    return (b0 << 24) | (b1 << 16) | (b2 << 8) | b3


def expand_decrypt_key(key: bytes) -> List[int]:
    """OpenSSL ``AES_set_decrypt_key``: reversed round order with
    InvMixColumns folded into the middle round keys."""
    rk = expand_key(key)
    rounds = len(rk) // 4 - 1
    inverted: List[int] = []
    for i in range(rounds + 1):
        inverted.extend(rk[4 * (rounds - i):4 * (rounds - i) + 4])
    for i in range(4, 4 * rounds):
        inverted[i] = _inv_mix_word(inverted[i])
    return inverted


def rounds_for_key(key: bytes) -> int:
    try:
        return _ROUNDS[len(key)]
    except KeyError:
        raise AESError(f"AES keys are 16/24/32 bytes, got {len(key)}")


# --- encryption -------------------------------------------------------------

def encrypt_block(key: bytes, plaintext: bytes) -> bytes:
    """Encrypt one 16-byte block (Te-table implementation)."""
    _check_block(plaintext)
    rk = expand_key(key)
    rounds = len(rk) // 4 - 1
    te0, te1, te2, te3 = te_tables()
    s = [w ^ rk[i] for i, w in enumerate(_bytes_to_words(plaintext))]
    s0, s1, s2, s3 = s
    for r in range(1, rounds):
        k = 4 * r
        t0 = (te0[s0 >> 24] ^ te1[(s1 >> 16) & 0xFF]
              ^ te2[(s2 >> 8) & 0xFF] ^ te3[s3 & 0xFF] ^ rk[k])
        t1 = (te0[s1 >> 24] ^ te1[(s2 >> 16) & 0xFF]
              ^ te2[(s3 >> 8) & 0xFF] ^ te3[s0 & 0xFF] ^ rk[k + 1])
        t2 = (te0[s2 >> 24] ^ te1[(s3 >> 16) & 0xFF]
              ^ te2[(s0 >> 8) & 0xFF] ^ te3[s1 & 0xFF] ^ rk[k + 2])
        t3 = (te0[s3 >> 24] ^ te1[(s0 >> 16) & 0xFF]
              ^ te2[(s1 >> 8) & 0xFF] ^ te3[s2 & 0xFF] ^ rk[k + 3])
        s0, s1, s2, s3 = t0, t1, t2, t3
    s = sbox()
    k = 4 * rounds
    out = []
    state = (s0, s1, s2, s3)
    for i in range(4):
        a, b, c, d = (state[i], state[(i + 1) % 4], state[(i + 2) % 4],
                      state[(i + 3) % 4])
        word = (s[a >> 24] << 24 | s[(b >> 16) & 0xFF] << 16
                | s[(c >> 8) & 0xFF] << 8 | s[d & 0xFF]) ^ rk[k + i]
        out.append(word)
    return _words_to_bytes(out)


# --- decryption -------------------------------------------------------------

@dataclass(frozen=True)
class TableAccess:
    """One Td-table lookup performed during decryption."""

    round: int       # 1-based middle-round number
    statement: int   # which t-word assignment (0..3): the figure's t0..t3
    table: int       # 0..3 for Td0..Td3
    index: int       # entry index 0..255

    @property
    def line(self) -> int:
        """Cache line (0..15) the entry lives on."""
        return line_of_entry(self.index)


def decrypt_block(key: bytes, ciphertext: bytes) -> bytes:
    """Decrypt one 16-byte block."""
    plaintext, _trace = decrypt_block_traced(key, ciphertext, trace=False)
    return plaintext


def decrypt_block_traced(key: bytes, ciphertext: bytes, trace: bool = True
                         ) -> Tuple[bytes, List[TableAccess]]:
    """Decrypt and optionally record every Td table access.

    The loop body below is a line-for-line analogue of the OpenSSL
    0.9.8 code in Figure 8a of the paper.
    """
    _check_block(ciphertext)
    rk = expand_decrypt_key(key)
    rounds = len(rk) // 4 - 1
    td0, td1, td2, td3 = td_tables()
    accesses: List[TableAccess] = []

    def look(table_id: int, table, index: int, round_no: int,
             statement: int) -> int:
        if trace:
            accesses.append(TableAccess(round_no, statement, table_id,
                                        index))
        return table[index]

    s = [w ^ rk[i] for i, w in enumerate(_bytes_to_words(ciphertext))]
    s0, s1, s2, s3 = s
    for r in range(1, rounds):
        k = 4 * r
        t0 = (look(0, td0, s0 >> 24, r, 0)
              ^ look(1, td1, (s3 >> 16) & 0xFF, r, 0)
              ^ look(2, td2, (s2 >> 8) & 0xFF, r, 0)
              ^ look(3, td3, s1 & 0xFF, r, 0) ^ rk[k])
        t1 = (look(0, td0, s1 >> 24, r, 1)
              ^ look(1, td1, (s0 >> 16) & 0xFF, r, 1)
              ^ look(2, td2, (s3 >> 8) & 0xFF, r, 1)
              ^ look(3, td3, s2 & 0xFF, r, 1) ^ rk[k + 1])
        t2 = (look(0, td0, s2 >> 24, r, 2)
              ^ look(1, td1, (s1 >> 16) & 0xFF, r, 2)
              ^ look(2, td2, (s0 >> 8) & 0xFF, r, 2)
              ^ look(3, td3, s3 & 0xFF, r, 2) ^ rk[k + 2])
        t3 = (look(0, td0, s3 >> 24, r, 3)
              ^ look(1, td1, (s2 >> 16) & 0xFF, r, 3)
              ^ look(2, td2, (s1 >> 8) & 0xFF, r, 3)
              ^ look(3, td3, s0 & 0xFF, r, 3) ^ rk[k + 3])
        s0, s1, s2, s3 = t0, t1, t2, t3
    si = inv_sbox()
    k = 4 * rounds
    state = (s0, s1, s2, s3)
    out = []
    for i in range(4):
        a = state[i]
        b = state[(i - 1) % 4]
        c = state[(i - 2) % 4]
        d = state[(i - 3) % 4]
        word = (si[a >> 24] << 24 | si[(b >> 16) & 0xFF] << 16
                | si[(c >> 8) & 0xFF] << 8 | si[d & 0xFF]) ^ rk[k + i]
        out.append(word)
    return _words_to_bytes(out), accesses


def first_round_accesses(key: bytes, ciphertext: bytes
                         ) -> List[TableAccess]:
    """Ground-truth accesses of middle round 1 only."""
    _plain, accesses = decrypt_block_traced(key, ciphertext)
    return [a for a in accesses if a.round == 1]


def lines_touched(accesses: Sequence[TableAccess], table: int
                  ) -> List[int]:
    """Sorted distinct cache lines of *table* touched by *accesses*."""
    return sorted({a.line for a in accesses if a.table == table})
