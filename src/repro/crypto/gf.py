"""GF(2^8) arithmetic for AES (Rijndael field, polynomial 0x11B)."""

from __future__ import annotations

AES_POLY = 0x11B


def xtime(a: int) -> int:
    """Multiply by x (i.e. 2) in GF(2^8)."""
    a <<= 1
    if a & 0x100:
        a ^= AES_POLY
    return a & 0xFF


def gmul(a: int, b: int) -> int:
    """Multiply two field elements."""
    result = 0
    a &= 0xFF
    b &= 0xFF
    while b:
        if b & 1:
            result ^= a
        a = xtime(a)
        b >>= 1
    return result


def gpow(a: int, exponent: int) -> int:
    """Exponentiation by squaring in GF(2^8)."""
    result = 1
    base = a & 0xFF
    while exponent:
        if exponent & 1:
            result = gmul(result, base)
        base = gmul(base, base)
        exponent >>= 1
    return result


def ginv(a: int) -> int:
    """Multiplicative inverse (0 maps to 0, as AES defines)."""
    if a == 0:
        return 0
    # The multiplicative group has order 255, so a^254 = a^-1.
    return gpow(a, 254)
