"""Key-schedule analysis helpers.

For AES-128, any single round key determines the master key: the
schedule is invertible.  The AES attack extracts information about the
*first decryption round key* (which equals the last encryption round
key), and this module walks that information back to the master key —
the final step of a full key-recovery pipeline.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.crypto.aes import _RCON, _bytes_to_words, _rot_word, _sub_word, _words_to_bytes
from repro.crypto.aes import AESError


def invert_aes128_schedule(last_round_key: bytes) -> bytes:
    """Recover the AES-128 master key from round key 10.

    The expansion recurrence ``w[i] = w[i-4] ^ f(w[i-1])`` is run
    backwards: ``w[i-4] = w[i] ^ f(w[i-1])``.
    """
    if len(last_round_key) != 16:
        raise AESError("round keys are 16 bytes")
    words: List[int] = [0] * 44
    words[40:44] = _bytes_to_words(last_round_key)
    for i in range(39, -1, -1):
        temp = words[i + 3]
        if (i + 4) % 4 == 0:
            temp = _sub_word(_rot_word(temp)) ^ (_RCON[(i + 4) // 4 - 1]
                                                 << 24)
        words[i] = words[i + 4] ^ temp
    return _words_to_bytes(words[0:4])


def round_key_words(expanded: Sequence[int], round_no: int) -> List[int]:
    """The four words of round *round_no* from an expanded schedule."""
    if not 0 <= 4 * round_no + 4 <= len(expanded):
        raise AESError(f"round {round_no} outside schedule")
    return list(expanded[4 * round_no:4 * round_no + 4])
