"""Crypto substrate: OpenSSL-style table-based AES."""

from repro.crypto.aes import (
    AESError,
    TableAccess,
    decrypt_block,
    decrypt_block_traced,
    encrypt_block,
    expand_decrypt_key,
    expand_key,
    first_round_accesses,
    lines_touched,
    rounds_for_key,
)
from repro.crypto.aes_tables import (
    ENTRIES_PER_LINE,
    ENTRY_BYTES,
    LINES_PER_TABLE,
    TABLE_ENTRIES,
    entries_on_line,
    inv_sbox,
    line_of_entry,
    sbox,
    td_tables,
    te_tables,
)
from repro.crypto.gf import ginv, gmul, gpow, xtime
from repro.crypto.keyschedule import invert_aes128_schedule, round_key_words

__all__ = [
    "AESError",
    "TableAccess",
    "decrypt_block",
    "decrypt_block_traced",
    "encrypt_block",
    "expand_decrypt_key",
    "expand_key",
    "first_round_accesses",
    "lines_touched",
    "rounds_for_key",
    "ENTRIES_PER_LINE",
    "ENTRY_BYTES",
    "LINES_PER_TABLE",
    "TABLE_ENTRIES",
    "entries_on_line",
    "inv_sbox",
    "line_of_entry",
    "sbox",
    "td_tables",
    "te_tables",
    "ginv",
    "gmul",
    "gpow",
    "xtime",
    "invert_aes128_schedule",
    "round_key_words",
]
