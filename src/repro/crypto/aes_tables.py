"""AES lookup tables in the OpenSSL 0.9.8 layout.

OpenSSL's table-based AES uses four 256-entry tables of 32-bit words
per direction (Te0-Te3 for encryption, Td0-Td3 for decryption) plus a
byte table for the final round.  Each table is 1 KiB; with 64-byte
cache lines that is **16 lines per table and 16 entries per line** —
the geometry of Figure 11's x-axis.

Everything here is derived from first principles (field inverse +
affine transform), not hardcoded, and validated by the FIPS-197 test
vectors in the test suite.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Tuple

from repro.crypto.gf import ginv, gmul

#: Entries per table.
TABLE_ENTRIES = 256
#: Bytes per entry (32-bit words, as in OpenSSL).
ENTRY_BYTES = 4
#: Entries that share one 64-byte cache line.
ENTRIES_PER_LINE = 64 // ENTRY_BYTES
#: Cache lines per table (the 16 probe points of Fig. 11).
LINES_PER_TABLE = TABLE_ENTRIES // ENTRIES_PER_LINE


def _affine(x: int) -> int:
    """The AES S-box affine transformation."""
    result = 0x63
    for shift in (0, 1, 2, 3, 4):
        rotated = ((x << shift) | (x >> (8 - shift))) & 0xFF
        result ^= rotated
    return result & 0xFF


@lru_cache(maxsize=None)
def sbox() -> Tuple[int, ...]:
    """The AES S-box: affine(inverse(x))."""
    return tuple(_affine(ginv(x)) for x in range(256))


@lru_cache(maxsize=None)
def inv_sbox() -> Tuple[int, ...]:
    """The inverse S-box."""
    table = [0] * 256
    for x, y in enumerate(sbox()):
        table[y] = x
    return tuple(table)


def _pack(b0: int, b1: int, b2: int, b3: int) -> int:
    return (b0 << 24) | (b1 << 16) | (b2 << 8) | b3


@lru_cache(maxsize=None)
def te_tables() -> Tuple[Tuple[int, ...], ...]:
    """Encryption tables Te0..Te3 (each a rotation of the previous)."""
    s = sbox()
    te0 = tuple(_pack(gmul(2, s[x]), s[x], s[x], gmul(3, s[x]))
                for x in range(256))
    return _rotations(te0)


@lru_cache(maxsize=None)
def td_tables() -> Tuple[Tuple[int, ...], ...]:
    """Decryption tables Td0..Td3."""
    si = inv_sbox()
    td0 = tuple(_pack(gmul(14, si[x]), gmul(9, si[x]), gmul(13, si[x]),
                      gmul(11, si[x])) for x in range(256))
    return _rotations(td0)


def _rotations(t0: Tuple[int, ...]) -> Tuple[Tuple[int, ...], ...]:
    """Te1..Te3 / Td1..Td3 are byte rotations of Te0 / Td0."""
    def rot(word: int) -> int:
        return ((word >> 8) | (word << 24)) & 0xFFFFFFFF

    t1 = tuple(rot(w) for w in t0)
    t2 = tuple(rot(w) for w in t1)
    t3 = tuple(rot(w) for w in t2)
    return (t0, t1, t2, t3)


def line_of_entry(index: int) -> int:
    """Cache-line index (0..15) of table entry *index* (0..255)."""
    if not 0 <= index < TABLE_ENTRIES:
        raise ValueError(f"table index out of range: {index}")
    return index // ENTRIES_PER_LINE


def entries_on_line(line: int) -> range:
    """Table indices sharing cache line *line*."""
    if not 0 <= line < LINES_PER_TABLE:
        raise ValueError(f"line index out of range: {line}")
    return range(line * ENTRIES_PER_LINE, (line + 1) * ENTRIES_PER_LINE)
