"""A single set-associative cache level (tag store only).

Caches model presence, recency and dirtiness of 64-byte lines; data
itself always lives in :class:`~repro.mem.physical.PhysicalMemory`.
Observers can subscribe to line evictions/invalidations — the TSX model
uses this to abort transactions whose write set loses a line, exactly
the abort trigger MicroScope's Section 7.1 exploits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.mem.replacement import ReplacementPolicy, make_policy
from repro.observability.stats import CacheStats

__all__ = ["Cache", "CacheConfig", "CacheStats", "LINE_SIZE",
           "LINE_SHIFT", "line_of"]

LINE_SIZE = 64
LINE_SHIFT = 6


def line_of(paddr: int) -> int:
    """Line address (paddr with the offset bits cleared)."""
    return paddr & ~(LINE_SIZE - 1)


@dataclass
class CacheConfig:
    """Geometry and timing of one cache level."""

    name: str
    size_bytes: int
    ways: int
    latency: int
    line_size: int = LINE_SIZE
    policy: str = "lru"
    policy_seed: int = 0

    @property
    def num_sets(self) -> int:
        sets = self.size_bytes // (self.ways * self.line_size)
        if sets <= 0 or self.size_bytes % (self.ways * self.line_size):
            raise ValueError(
                f"{self.name}: size {self.size_bytes} not divisible into "
                f"{self.ways}-way sets of {self.line_size}B lines")
        return sets


class Cache:
    """One level of the cache hierarchy."""

    __slots__ = ("config", "name", "latency", "_num_sets", "_ways",
                 "_line_shift", "_policy", "_tags", "_dirty", "_meta",
                 "_where", "_occupied", "stats", "_evict_observers")

    def __init__(self, config: CacheConfig):
        config.num_sets  # validate geometry eagerly
        self.config = config
        self.name = config.name
        self.latency = config.latency
        self._num_sets = config.num_sets
        self._ways = config.ways
        self._line_shift = config.line_size.bit_length() - 1
        self._policy: ReplacementPolicy = make_policy(
            config.policy, config.ways, config.policy_seed)
        # Per set: list of line tags (full line address) per way, or None.
        self._tags: List[List[Optional[int]]] = [
            [None] * self._ways for _ in range(self._num_sets)]
        self._dirty: List[List[bool]] = [
            [False] * self._ways for _ in range(self._num_sets)]
        self._meta = [self._policy.new_state() for _ in range(self._num_sets)]
        # line address -> (set index, way) for O(1) lookups that never
        # recompute the set index.
        self._where: Dict[int, Tuple[int, int]] = {}
        # Scratch occupancy buffer reused by every insert() so the hot
        # fill path allocates nothing.
        self._occupied: List[bool] = [False] * self._ways
        self.stats = CacheStats()
        self._evict_observers: List[Callable[[int, bool], None]] = []

    # --- geometry helpers ---------------------------------------------

    def set_index(self, paddr: int) -> int:
        return (paddr >> self._line_shift) % self._num_sets

    def lines_mapping_to(self, paddr: int, count: int,
                         stride_base: int = 1 << 30) -> List[int]:
        """Return *count* distinct line addresses that map to the same
        set as *paddr* (an eviction set), starting far away from it.

        The target line itself is never part of the set: when *paddr*
        lands at or above *stride_base* the naive arithmetic sequence
        walks straight through it, which would silently self-evict the
        probe target (or alias two attacker allocations).
        """
        target_line = line_of(paddr)
        target_set = self.set_index(paddr)
        span = self._num_sets << self._line_shift
        addr = stride_base + (target_set << self._line_shift)
        lines: List[int] = []
        while len(lines) < count:
            if addr != target_line:
                lines.append(addr)
            addr += span
        return lines

    # --- observers ------------------------------------------------------

    def add_evict_observer(self, callback: Callable[[int, bool], None]):
        """Register ``callback(line_addr, was_dirty)`` fired whenever a
        line leaves this cache (eviction or invalidation)."""
        self._evict_observers.append(callback)

    def _notify_evict(self, line_addr: int, dirty: bool):
        for callback in self._evict_observers:
            callback(line_addr, dirty)

    # --- main operations --------------------------------------------------

    def lookup(self, paddr: int, is_write: bool = False) -> bool:
        """Probe for *paddr*; update recency (and dirtiness on write)."""
        line_addr = paddr & ~(LINE_SIZE - 1)
        place = self._where.get(line_addr)
        if place is None:
            self.stats.misses += 1
            return False
        set_idx, way = place
        self._policy.on_access(self._meta[set_idx], way)
        if is_write:
            self._dirty[set_idx][way] = True
        self.stats.hits += 1
        return True

    def contains(self, paddr: int) -> bool:
        """Non-intrusive presence check (no recency update, no stats)."""
        return line_of(paddr) in self._where

    def locate(self, paddr: int) -> Optional[Tuple[int, int]]:
        """``(set index, way)`` of *paddr*'s line, or ``None`` when not
        resident.  Non-intrusive (no recency update, no stats) — this
        is the observable the leakage oracle attributes set/way-touch
        events to."""
        return self._where.get(line_of(paddr))

    def insert(self, paddr: int, dirty: bool = False) -> Optional[int]:
        """Fill the line of *paddr*; return the evicted line address (and
        record its dirtiness via the observer) or ``None``."""
        line_addr = paddr & ~(LINE_SIZE - 1)
        existing = self._where.get(line_addr)
        if existing is not None:
            set_idx, way = existing
            self._policy.on_access(self._meta[set_idx], way)
            if dirty:
                self._dirty[set_idx][way] = True
            return None
        set_idx = (paddr >> self._line_shift) % self._num_sets
        tags = self._tags[set_idx]
        occupied = self._occupied
        for way in range(self._ways):
            occupied[way] = tags[way] is not None
        way = self._policy.choose_victim(self._meta[set_idx], occupied)
        evicted = tags[way]
        if evicted is not None:
            was_dirty = self._dirty[set_idx][way]
            del self._where[evicted]
            self.stats.evictions += 1
            self._notify_evict(evicted, was_dirty)
        tags[way] = line_addr
        self._dirty[set_idx][way] = dirty
        self._where[line_addr] = (set_idx, way)
        self._policy.on_fill(self._meta[set_idx], way)
        return evicted

    def invalidate(self, paddr: int) -> bool:
        """Drop the line of *paddr* (clflush).  Returns ``True`` if it
        was present."""
        line_addr = line_of(paddr)
        place = self._where.pop(line_addr, None)
        if place is None:
            return False
        set_idx, way = place
        was_dirty = self._dirty[set_idx][way]
        self._tags[set_idx][way] = None
        self._dirty[set_idx][way] = False
        if hasattr(self._policy, "on_invalidate"):
            self._policy.on_invalidate(self._meta[set_idx], way)
        self.stats.invalidations += 1
        self._notify_evict(line_addr, was_dirty)
        return True

    def flush_all(self):
        """Drop every line."""
        for line_addr in list(self._where):
            self.invalidate(line_addr)

    def resident_lines(self) -> List[int]:
        """All line addresses currently cached (sorted, for tests)."""
        return sorted(self._where)

    def __len__(self) -> int:
        return len(self._where)

    # --- snapshot support -------------------------------------------------

    def capture(self) -> tuple:
        """Clone all mutable tag-store state (see :mod:`repro.snapshot`)."""
        return (
            [list(ways) for ways in self._tags],
            [list(ways) for ways in self._dirty],
            [self._policy.clone_state(meta) for meta in self._meta],
            dict(self._where),
            self._policy.capture_rng(),
            self.stats.capture(),
        )

    def restore(self, state: tuple):
        """Restore state captured by :meth:`capture`.  The snapshot is
        cloned again, so one capture supports many restores.  Observer
        registrations are identity, not state, and are left alone."""
        tags, dirty, meta, where, rng, stats = state
        self._tags = [list(ways) for ways in tags]
        self._dirty = [list(ways) for ways in dirty]
        self._meta = [self._policy.clone_state(m) for m in meta]
        self._where = dict(where)
        self._policy.restore_rng(rng)
        self.stats.restore(stats)
