"""Cache replacement policies.

Each policy manages the metadata of a single cache set.  The cache
stores one policy *state* object per set and calls back into the policy
on every access, fill and invalidation.  Three classic policies are
provided:

* :class:`LRUPolicy` — true least-recently-used (the default; Intel's
  L1 is close enough to LRU for Prime+Probe purposes),
* :class:`TreePLRUPolicy` — binary-tree pseudo-LRU as used by many real
  L2/L3 designs,
* :class:`RandomPolicy` — seeded random victim selection.
"""

from __future__ import annotations

import random
from typing import List, Optional


class ReplacementPolicy:
    """Interface for per-set replacement policies.

    Policies are instantiated once per cache but called on every
    access of every set, so the concrete classes keep ``__slots__``
    (no per-instance dict) and their hot loops hoist attribute and
    bound-method lookups into locals.
    """

    __slots__ = ("ways",)

    def __init__(self, ways: int):
        if ways <= 0:
            raise ValueError("ways must be positive")
        self.ways = ways

    def new_state(self):
        """Return fresh metadata for one cache set."""
        raise NotImplementedError

    def on_access(self, state, way: int):
        """Record a hit on *way*."""
        raise NotImplementedError

    def on_fill(self, state, way: int):
        """Record a fill into *way*."""
        self.on_access(state, way)

    def choose_victim(self, state, occupied: List[bool]) -> int:
        """Pick the way to evict.  *occupied* flags valid ways; the
        policy must return a free way when one exists."""
        raise NotImplementedError

    def clone_state(self, state):
        """Deep-copy one set's metadata for snapshotting.  Both built-in
        state shapes (recency/tree-bit lists, or ``None``) are lists or
        immutable, so a shallow list copy suffices."""
        return list(state) if isinstance(state, list) else state

    def capture_rng(self) -> Optional[tuple]:
        """Internal RNG state, for policies that have one."""
        return None

    def restore_rng(self, state: Optional[tuple]):
        if state is not None:
            raise ValueError(f"{type(self).__name__} has no RNG state")


class LRUPolicy(ReplacementPolicy):
    """True LRU: state is a recency list, most recent last."""

    __slots__ = ()

    def new_state(self):
        return []

    def on_access(self, state: list, way: int):
        try:
            state.remove(way)
        except ValueError:
            pass
        state.append(way)

    def choose_victim(self, state: list, occupied: List[bool]) -> int:
        for way, used in enumerate(occupied):
            if not used:
                return way
        return state[0] if state else 0

    def on_invalidate(self, state: list, way: int):
        try:
            state.remove(way)
        except ValueError:
            pass


class TreePLRUPolicy(ReplacementPolicy):
    """Binary-tree pseudo-LRU.  Requires a power-of-two way count."""

    __slots__ = ()

    def __init__(self, ways: int):
        super().__init__(ways)
        if ways & (ways - 1):
            raise ValueError("tree-PLRU requires power-of-two ways")

    def new_state(self):
        return [0] * max(self.ways - 1, 1)

    def on_access(self, state: list, way: int):
        # Walk from the root, flipping each node to point *away* from
        # the accessed way.
        node, low, high = 0, 0, self.ways
        while high - low > 1:
            mid = (low + high) // 2
            if way < mid:
                state[node] = 1  # next victim search goes right
                node = 2 * node + 1
                high = mid
            else:
                state[node] = 0  # next victim search goes left
                node = 2 * node + 2
                low = mid

    def choose_victim(self, state: list, occupied: List[bool]) -> int:
        for way, used in enumerate(occupied):
            if not used:
                return way
        node, low, high = 0, 0, self.ways
        while high - low > 1:
            mid = (low + high) // 2
            if state[node] == 0:
                node = 2 * node + 1
                high = mid
            else:
                node = 2 * node + 2
                low = mid
        return low

    def on_invalidate(self, state: list, way: int):
        # Point the tree towards the freed way so it is refilled first.
        node, low, high = 0, 0, self.ways
        while high - low > 1:
            mid = (low + high) // 2
            if way < mid:
                state[node] = 0
                node = 2 * node + 1
                high = mid
            else:
                state[node] = 1
                node = 2 * node + 2
                low = mid


class RandomPolicy(ReplacementPolicy):
    """Seeded random replacement (deterministic across runs)."""

    __slots__ = ("_rng",)

    def __init__(self, ways: int, seed: int = 0):
        super().__init__(ways)
        self._rng = random.Random(seed)

    def new_state(self):
        return None

    def on_access(self, state, way: int):
        pass

    def choose_victim(self, state, occupied: List[bool]) -> int:
        for way, used in enumerate(occupied):
            if not used:
                return way
        return self._rng.randrange(self.ways)

    def on_invalidate(self, state, way: int):
        pass

    def capture_rng(self) -> Optional[tuple]:
        return self._rng.getstate()

    def restore_rng(self, state: Optional[tuple]):
        if state is None:
            raise ValueError("RandomPolicy snapshot is missing RNG state")
        self._rng.setstate(state)


def make_policy(name: str, ways: int, seed: int = 0) -> ReplacementPolicy:
    """Factory: ``"lru"``, ``"plru"`` or ``"random"``."""
    if name == "lru":
        return LRUPolicy(ways)
    if name == "plru":
        return TreePLRUPolicy(ways)
    if name == "random":
        return RandomPolicy(ways, seed)
    raise ValueError(f"unknown replacement policy: {name!r}")
