"""Memory substrate: physical memory, caches and the hierarchy."""

from repro.mem.physical import FRAME_SHIFT, FRAME_SIZE, PhysicalMemory
from repro.mem.cache import Cache, CacheConfig, CacheStats, LINE_SIZE, line_of
from repro.mem.hierarchy import DRAM_LEVEL, HierarchyConfig, MemoryHierarchy
from repro.mem.replacement import (
    LRUPolicy,
    RandomPolicy,
    ReplacementPolicy,
    TreePLRUPolicy,
    make_policy,
)

__all__ = [
    "FRAME_SHIFT",
    "FRAME_SIZE",
    "PhysicalMemory",
    "Cache",
    "CacheConfig",
    "CacheStats",
    "LINE_SIZE",
    "line_of",
    "DRAM_LEVEL",
    "HierarchyConfig",
    "MemoryHierarchy",
    "ReplacementPolicy",
    "LRUPolicy",
    "TreePLRUPolicy",
    "RandomPolicy",
    "make_policy",
]
