"""Multi-level cache hierarchy.

The hierarchy strings individual :class:`~repro.mem.cache.Cache` levels
together and provides the operations the rest of the system needs:

* ``access`` — a demand access that searches levels top-down, fills the
  line into every level above the hit, and returns the total latency.
  This is used by the core's load/store path, by the hardware page
  walker (so page-table-entry caching controls walk latency — the
  Replayer's §4.1.2 tuning knob), and by the Replayer's Probe step.
* ``flush_line`` / ``flush_lines`` — clflush semantics across all
  levels; the Replayer uses this on PTE lines and on victim data.
* ``prime_set_with`` — classic eviction-set priming for attacks that
  cannot use flush.
* ``peek_level`` — non-intrusive ground-truth inspection for tests and
  experiment reporting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

from repro.mem.cache import Cache, CacheConfig, line_of
from repro.observability.stats import HierarchyStats


@dataclass
class HierarchyConfig:
    """Geometry of the whole hierarchy plus DRAM timing.

    Defaults approximate the paper's Xeon E5-1630 v3 at a scale that
    keeps simulation fast: L1D 32 KiB/8-way, L2 256 KiB/8-way, and a
    2 MiB/16-way slice of L3.
    """

    levels: Sequence[CacheConfig] = field(default_factory=lambda: (
        CacheConfig("L1D", size_bytes=32 * 1024, ways=8, latency=4),
        CacheConfig("L2", size_bytes=256 * 1024, ways=8, latency=14),
        CacheConfig("L3", size_bytes=2 * 1024 * 1024, ways=16, latency=48),
    ))
    dram_latency: int = 300

    def build(self) -> "MemoryHierarchy":
        return MemoryHierarchy(self)


#: Level index returned by :meth:`MemoryHierarchy.peek_level` for DRAM.
DRAM_LEVEL = -1


class MemoryHierarchy:
    """A stack of caches backed by DRAM."""

    def __init__(self, config: Optional[HierarchyConfig] = None):
        self.config = config or HierarchyConfig()
        self.levels: List[Cache] = [Cache(c) for c in self.config.levels]
        if not self.levels:
            raise ValueError("hierarchy needs at least one cache level")
        self.dram_latency = self.config.dram_latency
        self.stats = HierarchyStats()
        #: Demand-access observers: ``callback(paddr, is_write,
        #: hit_level, latency)`` fired after every :meth:`access`.
        #: ``hit_level`` is the level index, or ``len(levels)`` for
        #: DRAM.  The leakage oracle subscribes here to attribute the
        #: latency class of secret-dependent accesses; identity wiring,
        #: not machine state (capture/restore leaves it alone).
        self.access_observers: List = []

    @property
    def l1(self) -> Cache:
        return self.levels[0]

    @property
    def dram_accesses(self) -> int:
        """Legacy accessor; the count now lives in ``stats``."""
        return self.stats.dram_accesses

    def level_named(self, name: str) -> Cache:
        for cache in self.levels:
            if cache.name == name:
                return cache
        raise KeyError(f"no cache level named {name!r}")

    # --- demand path -----------------------------------------------------

    def access(self, paddr: int, is_write: bool = False) -> int:
        """Perform a demand access; return total latency in cycles."""
        latency = 0
        hit_level = None
        for i, cache in enumerate(self.levels):
            latency += cache.latency
            if cache.lookup(paddr, is_write=is_write and i == 0):
                hit_level = i
                break
        if hit_level is None:
            latency += self.dram_latency
            self.stats.dram_accesses += 1
            hit_level = len(self.levels)
        # Fill the line into every level above the hit.
        for i in range(min(hit_level, len(self.levels)) - 1, -1, -1):
            self._fill(i, paddr, dirty=is_write and i == 0)
        if self.access_observers:
            for observer in self.access_observers:
                observer(paddr, is_write, hit_level, latency)
        return latency

    def _fill(self, level: int, paddr: int, dirty: bool = False):
        evicted = self.levels[level].insert(paddr, dirty=dirty)
        if evicted is not None and level + 1 < len(self.levels):
            # Victim lines move down one level (non-inclusive victim
            # handling keeps recently-used lines findable by Probe).
            self.levels[level + 1].insert(evicted)

    # --- attacker / kernel operations -------------------------------------

    def flush_line(self, paddr: int):
        """clflush: drop the line of *paddr* from every level."""
        for cache in self.levels:
            cache.invalidate(paddr)

    def flush_lines(self, paddrs: Iterable[int]):
        for paddr in paddrs:
            self.flush_line(paddr)

    def flush_range(self, start: int, size: int):
        """Flush every line overlapping ``[start, start + size)``."""
        first = line_of(start)
        last = line_of(start + size - 1)
        for addr in range(first, last + 64, 64):
            self.flush_line(addr)

    def flush_all(self):
        for cache in self.levels:
            cache.flush_all()

    def prime_set_with(self, paddr: int, level: int = 0,
                       extra_lines: int = 0) -> List[int]:
        """Evict *paddr*'s set at *level* by touching an eviction set.

        Returns the attacker line addresses used, so a later Probe can
        re-measure them.  ``extra_lines`` adds safety margin beyond the
        associativity.
        """
        cache = self.levels[level]
        count = cache.config.ways + extra_lines
        eviction_set = cache.lines_mapping_to(paddr, count)
        for line in eviction_set:
            self.access(line)
        return eviction_set

    def touch(self, paddrs: Iterable[int]) -> int:
        """Access each address once; return total latency."""
        return sum(self.access(p) for p in paddrs)

    # --- inspection ------------------------------------------------------

    def peek_level(self, paddr: int) -> int:
        """Ground truth: index of the closest level containing *paddr*,
        or :data:`DRAM_LEVEL` (-1) when the line is only in DRAM.
        Does not disturb any cache state."""
        for i, cache in enumerate(self.levels):
            if cache.contains(paddr):
                return i
        return DRAM_LEVEL

    def hit_latency(self, level: int) -> int:
        """Latency of a hit at *level* (cumulative from the core)."""
        if level == DRAM_LEVEL:
            return sum(c.latency for c in self.levels) + self.dram_latency
        return sum(c.latency for c in self.levels[:level + 1])

    def reset_stats(self):
        for cache in self.levels:
            cache.stats.reset()
        self.stats.reset()

    # --- snapshot support -------------------------------------------------

    def capture(self) -> tuple:
        """Clone every level's tag state plus DRAM counters."""
        return ([cache.capture() for cache in self.levels],
                self.stats.capture())

    def restore(self, state: tuple):
        levels, stats = state
        if len(levels) != len(self.levels):
            raise ValueError("snapshot level count mismatch")
        for cache, level_state in zip(self.levels, levels):
            cache.restore(level_state)
        self.stats.restore(stats)
