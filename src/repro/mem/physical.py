"""Simulated physical memory.

Physical memory is a flat byte-addressed space divided into 4 KiB
frames.  Storage is sparse: only written words consume host memory.
Values are stored at word granularity (4- or 8-byte, always aligned),
which is sufficient for the micro-ISA's load/store widths and for page
table entries.

The cache hierarchy (:mod:`repro.mem.hierarchy`) models *presence and
latency* only; data always lives here, so reads are coherent by
construction.  This mirrors the common simulator split between a timing
model and a functional store.
"""

from __future__ import annotations

from typing import Dict

FRAME_SIZE = 4096
FRAME_SHIFT = 12


class PhysicalMemoryError(Exception):
    """Raised on out-of-range or misaligned physical accesses."""


class PhysicalMemory:
    """Sparse word-granular physical memory of *num_frames* frames."""

    def __init__(self, num_frames: int = 1 << 16):
        if num_frames <= 0:
            raise ValueError("num_frames must be positive")
        self.num_frames = num_frames
        self.size = num_frames * FRAME_SIZE
        self._words: Dict[int, object] = {}

    def _check(self, paddr: int, width: int):
        if width not in (4, 8):
            raise PhysicalMemoryError(f"bad access width: {width}")
        if paddr % width:
            raise PhysicalMemoryError(
                f"misaligned physical access: {paddr:#x} width {width}")
        if not 0 <= paddr < self.size:
            raise PhysicalMemoryError(
                f"physical address out of range: {paddr:#x}")

    def read(self, paddr: int, width: int = 8):
        """Read the word at *paddr*.  Unwritten memory reads as zero."""
        self._check(paddr, width)
        return self._words.get(paddr, 0)

    def write(self, paddr: int, value, width: int = 8):
        """Write *value* (int or float) at *paddr*."""
        self._check(paddr, width)
        self._words[paddr] = value

    def frame_base(self, frame: int) -> int:
        """Physical address of the first byte of *frame*."""
        if not 0 <= frame < self.num_frames:
            raise PhysicalMemoryError(f"frame out of range: {frame}")
        return frame << FRAME_SHIFT

    def zero_frame(self, frame: int):
        """Clear every word of *frame* (used for fresh page tables)."""
        base = self.frame_base(frame)
        for paddr in range(base, base + FRAME_SIZE, 8):
            self._words.pop(paddr, None)
        for paddr in range(base, base + FRAME_SIZE, 4):
            self._words.pop(paddr, None)

    def words_in_use(self) -> int:
        """Number of words currently stored (for diagnostics)."""
        return len(self._words)
