"""Simulated physical memory.

Physical memory is a flat byte-addressed space divided into 4 KiB
frames.  Storage is sparse: only written words consume host memory.
Values are stored at word granularity (4- or 8-byte, always aligned),
which is sufficient for the micro-ISA's load/store widths and for page
table entries.

Words are grouped per frame so that a machine snapshot can share frame
dictionaries with the live memory copy-on-write: taking a snapshot
marks every live frame COW and aliases its dict; the first subsequent
write to a COW frame clones just that frame.  Holding a snapshot
therefore costs O(frames touched since capture), not O(total memory).

The cache hierarchy (:mod:`repro.mem.hierarchy`) models *presence and
latency* only; data always lives here, so reads are coherent by
construction.  This mirrors the common simulator split between a timing
model and a functional store.
"""

from __future__ import annotations

from typing import Dict, Set

FRAME_SIZE = 4096
FRAME_SHIFT = 12


class PhysicalMemoryError(Exception):
    """Raised on out-of-range or misaligned physical accesses."""


class PhysicalMemory:
    """Sparse word-granular physical memory of *num_frames* frames."""

    __slots__ = ("num_frames", "size", "_frames", "_cow")

    def __init__(self, num_frames: int = 1 << 16):
        if num_frames <= 0:
            raise ValueError("num_frames must be positive")
        self.num_frames = num_frames
        self.size = num_frames * FRAME_SIZE
        # frame number -> {paddr: word}.  Frames never written have no
        # entry and read as zero.
        self._frames: Dict[int, Dict[int, object]] = {}
        # Frames whose dict is aliased by at least one snapshot; the
        # next write clones the dict first (copy-on-write).
        self._cow: Set[int] = set()

    def _check(self, paddr: int, width: int):
        if width not in (4, 8):
            raise PhysicalMemoryError(f"bad access width: {width}")
        if paddr % width:
            raise PhysicalMemoryError(
                f"misaligned physical access: {paddr:#x} width {width}")
        if not 0 <= paddr < self.size:
            raise PhysicalMemoryError(
                f"physical address out of range: {paddr:#x}")

    def read(self, paddr: int, width: int = 8):
        """Read the word at *paddr*.  Unwritten memory reads as zero."""
        self._check(paddr, width)
        frame = self._frames.get(paddr >> FRAME_SHIFT)
        return frame.get(paddr, 0) if frame is not None else 0

    def write(self, paddr: int, value, width: int = 8):
        """Write *value* (int or float) at *paddr*."""
        self._check(paddr, width)
        frame_no = paddr >> FRAME_SHIFT
        frame = self._frames.get(frame_no)
        if frame is None:
            self._frames[frame_no] = {paddr: value}
            return
        if frame_no in self._cow:
            frame = dict(frame)
            self._frames[frame_no] = frame
            self._cow.discard(frame_no)
        frame[paddr] = value

    def frame_base(self, frame: int) -> int:
        """Physical address of the first byte of *frame*."""
        if not 0 <= frame < self.num_frames:
            raise PhysicalMemoryError(f"frame out of range: {frame}")
        return frame << FRAME_SHIFT

    def zero_frame(self, frame: int):
        """Clear every word of *frame* (used for fresh page tables)."""
        self.frame_base(frame)  # range check
        self._frames.pop(frame, None)
        self._cow.discard(frame)

    def words_in_use(self) -> int:
        """Number of words currently stored (for diagnostics)."""
        return sum(len(frame) for frame in self._frames.values())

    # --- snapshot support -------------------------------------------------

    def capture(self) -> Dict[int, Dict[int, object]]:
        """Alias every live frame into a snapshot and mark them all COW.

        The returned mapping shares frame dicts with the live memory;
        neither side ever mutates a shared dict (writers clone first),
        so capture is O(live frames) regardless of memory size.
        """
        self._cow.update(self._frames)
        return dict(self._frames)

    def restore(self, frames: Dict[int, Dict[int, object]]):
        """Install the frames captured by :meth:`capture`.  The frame
        dicts stay shared (and COW-marked) so the same snapshot can be
        restored any number of times."""
        self._frames = dict(frames)
        self._cow = set(frames)
