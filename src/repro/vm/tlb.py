"""Translation lookaside buffers.

Mirrors Figure 1 of the paper: each entry holds a valid bit, VPN, PPN,
flags and a PCID; lookups hit only when both the VPN and the PCID
match.  :class:`TLBHierarchy` wires the conventional Intel arrangement
of split L1 I/D TLBs backed by a unified L2 TLB, and supports the
maintenance operations the OS needs (INVLPG, full flush, PCID flush).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.observability.stats import TLBStats

__all__ = ["TLB", "TLBConfig", "TLBEntry", "TLBHierarchy",
           "TLBHierarchyConfig", "TLBStats"]


@dataclass
class TLBConfig:
    name: str
    entries: int
    ways: int
    latency: int = 1

    @property
    def num_sets(self) -> int:
        if self.entries % self.ways:
            raise ValueError(
                f"{self.name}: {self.entries} entries not divisible by "
                f"{self.ways} ways")
        return self.entries // self.ways


class TLBEntry:
    """One TLB translation.  Plain slotted class, not a dataclass:
    lookups churn through these on every memory access, and the walk
    loop in §4.1 workloads allocates them constantly."""

    __slots__ = ("vpn", "pcid", "frame", "flags")

    def __init__(self, vpn: int, pcid: int, frame: int, flags: int = 0):
        self.vpn = vpn
        self.pcid = pcid
        self.frame = frame
        self.flags = flags

    def __repr__(self) -> str:
        return (f"TLBEntry(vpn={self.vpn:#x}, pcid={self.pcid}, "
                f"frame={self.frame:#x}, flags={self.flags:#x})")


class TLB:
    """A set-associative TLB with LRU replacement and PCID tags."""

    def __init__(self, config: TLBConfig):
        config.num_sets  # validate eagerly
        self.config = config
        self.name = config.name
        self.latency = config.latency
        self._num_sets = config.num_sets
        self._ways = config.ways
        # Per set: recency-ordered list of entries (most recent last).
        self._sets: List[List[TLBEntry]] = [
            [] for _ in range(self._num_sets)]
        self.stats = TLBStats()

    def _set_for(self, vpn: int) -> List[TLBEntry]:
        return self._sets[vpn % self._num_sets]

    def lookup(self, pcid: int, vpn: int) -> Optional[TLBEntry]:
        """Return the matching entry (refreshing recency) or ``None``."""
        entries = self._set_for(vpn)
        for i, entry in enumerate(entries):
            if entry.vpn == vpn and entry.pcid == pcid:
                entries.append(entries.pop(i))
                self.stats.hits += 1
                return entry
        self.stats.misses += 1
        return None

    def contains(self, pcid: int, vpn: int) -> bool:
        """Presence check without recency update or stats."""
        return any(e.vpn == vpn and e.pcid == pcid
                   for e in self._set_for(vpn))

    def insert(self, pcid: int, vpn: int, frame: int, flags: int = 0):
        """Fill a translation, evicting LRU on conflict."""
        entries = self._set_for(vpn)
        for i, entry in enumerate(entries):
            if entry.vpn == vpn and entry.pcid == pcid:
                entries.pop(i)
                break
        else:
            if len(entries) >= self._ways:
                entries.pop(0)
                self.stats.evictions += 1
        entries.append(TLBEntry(vpn, pcid, frame, flags))

    def invalidate(self, pcid: int, vpn: int) -> bool:
        """INVLPG: drop one translation.  Returns ``True`` if present."""
        entries = self._set_for(vpn)
        for i, entry in enumerate(entries):
            if entry.vpn == vpn and entry.pcid == pcid:
                entries.pop(i)
                self.stats.invalidations += 1
                return True
        return False

    def flush_pcid(self, pcid: int):
        """Drop all translations belonging to *pcid*."""
        for entries in self._sets:
            entries[:] = [e for e in entries if e.pcid != pcid]

    def flush_all(self):
        for entries in self._sets:
            entries.clear()

    def occupancy(self) -> int:
        return sum(len(entries) for entries in self._sets)

    # --- snapshot support -------------------------------------------------

    def capture(self) -> tuple:
        """Clone all sets (entry objects copied — they are mutable)."""
        return (
            [[TLBEntry(e.vpn, e.pcid, e.frame, e.flags) for e in entries]
             for entries in self._sets],
            self.stats.capture(),
        )

    def restore(self, state: tuple):
        sets, stats = state
        self._sets = [
            [TLBEntry(e.vpn, e.pcid, e.frame, e.flags) for e in entries]
            for entries in sets]
        self.stats.restore(stats)


@dataclass
class TLBHierarchyConfig:
    """Split L1 + unified L2, sized after common Intel parts."""

    l1d: TLBConfig = field(default_factory=lambda: TLBConfig(
        "L1-DTLB", entries=64, ways=4, latency=1))
    l1i: TLBConfig = field(default_factory=lambda: TLBConfig(
        "L1-ITLB", entries=64, ways=4, latency=1))
    l2: TLBConfig = field(default_factory=lambda: TLBConfig(
        "L2-TLB", entries=1536, ways=12, latency=7))

    def build(self) -> "TLBHierarchy":
        return TLBHierarchy(self)


class TLBHierarchy:
    """Split L1 instruction/data TLBs backed by a unified L2 TLB."""

    def __init__(self, config: Optional[TLBHierarchyConfig] = None):
        self.config = config or TLBHierarchyConfig()
        self.l1d = TLB(self.config.l1d)
        self.l1i = TLB(self.config.l1i)
        self.l2 = TLB(self.config.l2)

    def _l1(self, is_instruction: bool) -> TLB:
        return self.l1i if is_instruction else self.l1d

    def lookup(self, pcid: int, vpn: int, is_instruction: bool = False
               ) -> Tuple[Optional[TLBEntry], int]:
        """Look up a translation; return ``(entry_or_None, latency)``.

        A hit in L2 is refilled into the appropriate L1, as hardware
        does."""
        l1 = self._l1(is_instruction)
        entry = l1.lookup(pcid, vpn)
        if entry is not None:
            return entry, l1.latency
        latency = l1.latency + self.l2.latency
        entry = self.l2.lookup(pcid, vpn)
        if entry is not None:
            l1.insert(pcid, vpn, entry.frame, entry.flags)
            return entry, latency
        return None, latency

    def insert(self, pcid: int, vpn: int, frame: int, flags: int = 0,
               is_instruction: bool = False):
        """Fill both the L1 (of the right kind) and the L2."""
        self._l1(is_instruction).insert(pcid, vpn, frame, flags)
        self.l2.insert(pcid, vpn, frame, flags)

    def invalidate(self, pcid: int, vpn: int):
        """INVLPG semantics: drop the translation everywhere."""
        self.l1d.invalidate(pcid, vpn)
        self.l1i.invalidate(pcid, vpn)
        self.l2.invalidate(pcid, vpn)

    def flush_pcid(self, pcid: int):
        for tlb in (self.l1d, self.l1i, self.l2):
            tlb.flush_pcid(pcid)

    def flush_all(self):
        for tlb in (self.l1d, self.l1i, self.l2):
            tlb.flush_all()

    # --- snapshot support -------------------------------------------------

    def capture(self) -> tuple:
        return (self.l1d.capture(), self.l1i.capture(), self.l2.capture())

    def restore(self, state: tuple):
        l1d, l1i, l2 = state
        self.l1d.restore(l1d)
        self.l1i.restore(l1i)
        self.l2.restore(l2)
