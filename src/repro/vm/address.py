"""Virtual address decomposition (x86-64 4-level paging layout).

A 48-bit virtual address splits into four 9-bit page-table indices and a
12-bit page offset, exactly as in Figure 2 of the paper:

    bits 47-39  PGD index  (level 0)
    bits 38-30  PUD index  (level 1)
    bits 29-21  PMD index  (level 2)
    bits 20-12  PTE index  (level 3)
    bits 11-0   page offset
"""

from __future__ import annotations

from typing import Tuple

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT
INDEX_BITS = 9
ENTRIES_PER_TABLE = 1 << INDEX_BITS
#: Number of page-table levels (PGD, PUD, PMD, PTE).
NUM_LEVELS = 4
#: Human-readable level names, index 0 = root.
LEVEL_NAMES = ("PGD", "PUD", "PMD", "PTE")
VADDR_BITS = PAGE_SHIFT + NUM_LEVELS * INDEX_BITS
MAX_VADDR = 1 << VADDR_BITS


def check_vaddr(va: int) -> int:
    """Validate that *va* is a canonical 48-bit virtual address."""
    if not 0 <= va < MAX_VADDR:
        raise ValueError(f"virtual address out of range: {va:#x}")
    return va


def vpn(va: int) -> int:
    """Virtual page number of *va*."""
    return check_vaddr(va) >> PAGE_SHIFT


def page_offset(va: int) -> int:
    """Offset of *va* within its page."""
    return va & (PAGE_SIZE - 1)


def page_base(va: int) -> int:
    """First address of the page containing *va*."""
    return check_vaddr(va) & ~(PAGE_SIZE - 1)


def level_index(va: int, level: int) -> int:
    """Page-table index of *va* at *level* (0 = PGD ... 3 = PTE)."""
    if not 0 <= level < NUM_LEVELS:
        raise ValueError(f"bad page-table level: {level}")
    shift = PAGE_SHIFT + (NUM_LEVELS - 1 - level) * INDEX_BITS
    return (check_vaddr(va) >> shift) & (ENTRIES_PER_TABLE - 1)


def split(va: int) -> Tuple[int, int, int, int, int]:
    """Return ``(pgd_idx, pud_idx, pmd_idx, pte_idx, offset)``."""
    check_vaddr(va)
    return (level_index(va, 0), level_index(va, 1), level_index(va, 2),
            level_index(va, 3), page_offset(va))


def prefix(va: int, level: int) -> int:
    """The address bits that select the walk path *down to* (and
    including) *level* — the tag used by the page-walk cache."""
    shift = PAGE_SHIFT + (NUM_LEVELS - 1 - level) * INDEX_BITS
    return check_vaddr(va) >> shift


def same_page(va1: int, va2: int) -> bool:
    """True when both addresses fall on the same 4 KiB page."""
    return vpn(va1) == vpn(va2)
