"""Hardware page-table walker (the MMU of Section 2.1).

On a TLB miss the walker starts from the address-space root (CR3) and
fetches one entry per level — PGD, PUD, PMD, PTE — through the *data
cache hierarchy*.  Upper levels may be satisfied by the page-walk
cache.  The accumulated latency of those memory accesses is the page
walk duration, which is the quantity the MicroScope Replayer tunes
"from a few cycles to over one thousand cycles" (§4.1.2) by deciding
which entries are resident where.

The walker also sets the architectural ACCESSED (and DIRTY) bits on the
leaf entry, which is what the Sneaky-Page-Monitoring baseline observes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.mem.hierarchy import MemoryHierarchy
from repro.mem.physical import PhysicalMemory
from repro.vm import address as addr
from repro.vm.faults import PageFault
from repro.vm.pagetable import (
    PTE_ACCESSED,
    PTE_DIRTY,
    PageTables,
    WalkStep,
    entry_frame,
    entry_present,
)
from repro.vm.pwc import PageWalkCache
from repro.observability.stats import WalkerStats

__all__ = ["PageWalker", "WalkResult", "WalkerStats"]


@dataclass(frozen=True)
class WalkResult:
    """Outcome of one hardware page walk."""

    va: int
    latency: int                    # cycles spent walking
    frame: Optional[int]            # translated frame, None on fault
    flags: int                      # leaf entry flags (0 on fault)
    fault: Optional[PageFault]
    steps: Tuple[WalkStep, ...]     # entries actually visited
    pwc_hits: int                   # upper levels satisfied by the PWC

    @property
    def faulted(self) -> bool:
        return self.fault is not None


class PageWalker:
    """Walks page tables through the memory hierarchy."""

    #: Fixed per-level processing overhead besides the memory access.
    LEVEL_OVERHEAD = 1

    def __init__(self, phys: PhysicalMemory, hierarchy: MemoryHierarchy,
                 pwc: Optional[PageWalkCache] = None):
        self.phys = phys
        self.hierarchy = hierarchy
        # Note: an empty PageWalkCache is falsy (len 0), so `or` would
        # silently replace a provided instance.
        self.pwc = pwc if pwc is not None else PageWalkCache()
        self.stats = WalkerStats()
        #: Optional latency histogram (a registry Histogram); bound by
        #: the machine so per-walk latency distributions land in the
        #: metrics dump.  Not part of walker snapshots — the registry
        #: captures its own instruments.
        self._latency_hist = None
        #: §7.2 race window: supervisor software on another core can
        #: rewrite the leaf PTE while the walk is in flight ("set/clear
        #: the present bit before the hardware page walker reaches
        #: it").  When set, the hook is called with (pcid, va, entry)
        #: just before the walker consumes the leaf entry and may
        #: return a replacement entry value (also written back to
        #: memory, as the OS's store would be).
        self.leaf_race_hook = None

    # --- snapshot support -------------------------------------------------

    def bind_latency_histogram(self, histogram):
        """Record each walk's latency into *histogram* (observability)."""
        self._latency_hist = histogram

    def capture(self) -> tuple:
        """Only the counters are mutable state; hooks are identity."""
        return self.stats.capture()

    def restore(self, state: tuple):
        self.stats.restore(state)

    def walk(self, pcid: int, root_frame: int, va: int,
             is_write: bool = False, is_instruction: bool = False,
             pc: Optional[int] = None,
             context_id: Optional[int] = None) -> WalkResult:
        """Translate *va* starting from *root_frame* (the CR3 value)."""
        addr.check_vaddr(va)
        self.stats.walks += 1
        latency = 0
        steps = []
        pwc_hits = 0
        table = root_frame
        fault: Optional[PageFault] = None
        frame: Optional[int] = None
        flags = 0
        for level in range(addr.NUM_LEVELS):
            latency += self.LEVEL_OVERHEAD
            cached = self.pwc.lookup(pcid, va, level)
            if cached is not None:
                latency += self.pwc.hit_latency
                entry = cached
                entry_paddr = PageTables.entry_paddr(
                    table, addr.level_index(va, level))
            else:
                entry_paddr = PageTables.entry_paddr(
                    table, addr.level_index(va, level))
                latency += self.hierarchy.access(entry_paddr)
                entry = self.phys.read(entry_paddr, 8)
                if entry_present(entry):
                    # Real PWCs cache only valid paging structures.
                    self.pwc.insert(pcid, va, level, entry)
            if cached is not None:
                pwc_hits += 1
            if (level == addr.NUM_LEVELS - 1
                    and self.leaf_race_hook is not None):
                raced = self.leaf_race_hook(pcid, va, entry)
                if raced is not None and raced != entry:
                    entry = raced
                    self.phys.write(entry_paddr, entry, 8)
            steps.append(WalkStep(level, entry_paddr, entry))
            if not entry_present(entry):
                fault = PageFault(va=va, pcid=pcid, level=level,
                                  is_write=is_write,
                                  is_instruction=is_instruction,
                                  pc=pc, context_id=context_id)
                break
            if level == addr.NUM_LEVELS - 1:
                frame = entry_frame(entry)
                flags = entry & ((1 << 12) - 1)
                self._set_accessed_dirty(entry_paddr, entry, is_write)
            else:
                table = entry_frame(entry)
        if fault is not None:
            self.stats.faults += 1
        self.stats.total_latency += latency
        if self._latency_hist is not None:
            self._latency_hist.observe(latency)
        return WalkResult(va=va, latency=latency, frame=frame, flags=flags,
                          fault=fault, steps=tuple(steps), pwc_hits=pwc_hits)

    def _set_accessed_dirty(self, entry_paddr: int, entry: int,
                            is_write: bool):
        new_entry = entry | PTE_ACCESSED
        if is_write:
            new_entry |= PTE_DIRTY
        if new_entry != entry:
            self.phys.write(entry_paddr, new_entry, 8)
