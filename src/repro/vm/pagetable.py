"""Four-level page tables living in simulated physical memory.

Page tables are *real data structures in the simulated machine*: each
table occupies one 4 KiB physical frame holding 512 eight-byte entries.
The hardware page walker (:mod:`repro.vm.walker`) reads these entries
through the cache hierarchy, which is precisely what lets MicroScope's
Replayer tune page-walk latency by flushing or pre-warming PTE cache
lines.

Entry format (a 64-bit integer)::

    bits 63-12  physical frame number of the next level / the page
    bit 6       DIRTY
    bit 5       ACCESSED
    bit 2       USER
    bit 1       WRITABLE
    bit 0       PRESENT
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.mem.physical import FRAME_SHIFT, PhysicalMemory
from repro.vm import address as addr

PTE_PRESENT = 1 << 0
PTE_WRITABLE = 1 << 1
PTE_USER = 1 << 2
PTE_ACCESSED = 1 << 5
PTE_DIRTY = 1 << 6
_FLAG_MASK = (1 << FRAME_SHIFT) - 1

ENTRY_SIZE = 8


class PageTableError(Exception):
    """Raised on malformed mappings or walks of unmapped addresses."""


def encode_entry(frame: int, flags: int) -> int:
    """Pack *frame* and *flags* into a raw 64-bit entry."""
    if frame < 0:
        raise ValueError(f"negative frame: {frame}")
    return (frame << FRAME_SHIFT) | (flags & _FLAG_MASK)


def entry_frame(entry: int) -> int:
    """Frame number stored in a raw entry."""
    return entry >> FRAME_SHIFT


def entry_flags(entry: int) -> int:
    """Flag bits of a raw entry."""
    return entry & _FLAG_MASK


def entry_present(entry: int) -> bool:
    """True when the PRESENT bit is set."""
    return bool(entry & PTE_PRESENT)


@dataclass(frozen=True)
class WalkStep:
    """One level visited by a (software or hardware) page walk."""

    level: int            # 0 = PGD ... 3 = PTE
    entry_paddr: int      # physical address of the entry word
    entry: int            # raw entry value

    @property
    def level_name(self) -> str:
        return addr.LEVEL_NAMES[self.level]

    @property
    def present(self) -> bool:
        return entry_present(self.entry)

    @property
    def frame(self) -> int:
        return entry_frame(self.entry)


@dataclass(frozen=True)
class SoftwareWalk:
    """Result of :meth:`PageTables.software_walk`."""

    va: int
    steps: Tuple[WalkStep, ...]

    @property
    def complete(self) -> bool:
        """All four levels were reachable (present upper levels)."""
        return len(self.steps) == addr.NUM_LEVELS

    @property
    def pte(self) -> WalkStep:
        if not self.complete:
            raise PageTableError(
                f"walk of {self.va:#x} stopped at level {len(self.steps)}")
        return self.steps[-1]

    @property
    def present(self) -> bool:
        return self.complete and self.pte.present

    @property
    def frame(self) -> Optional[int]:
        return self.pte.frame if self.present else None

    def entry_paddrs(self) -> List[int]:
        """Physical addresses of all visited entries (pgd_t..pte_t) —
        the lines the Replayer flushes in attack step 1 (Fig. 3)."""
        return [step.entry_paddr for step in self.steps]


class PageTables:
    """The page-table tree of one address space.

    *allocate_frame* is a callback into the kernel's frame allocator;
    new intermediate tables are allocated (and zeroed) on demand when
    mappings are created, as a real kernel does.
    """

    def __init__(self, phys: PhysicalMemory,
                 allocate_frame: Callable[[], int]):
        self.phys = phys
        self._allocate_frame = allocate_frame
        self.root_frame = self._new_table()

    def _new_table(self) -> int:
        frame = self._allocate_frame()
        self.phys.zero_frame(frame)
        return frame

    # --- entry address arithmetic ---------------------------------------

    @staticmethod
    def entry_paddr(table_frame: int, index: int) -> int:
        """Physical address of entry *index* in the table at *table_frame*."""
        if not 0 <= index < addr.ENTRIES_PER_TABLE:
            raise PageTableError(f"entry index out of range: {index}")
        return (table_frame << FRAME_SHIFT) + index * ENTRY_SIZE

    def _read_entry(self, table_frame: int, index: int) -> Tuple[int, int]:
        paddr = self.entry_paddr(table_frame, index)
        return paddr, self.phys.read(paddr, 8)

    def _write_entry(self, table_frame: int, index: int, entry: int):
        self.phys.write(self.entry_paddr(table_frame, index), entry, 8)

    # --- mapping management ----------------------------------------------

    def map(self, va: int, frame: int, flags: int = PTE_PRESENT
            | PTE_WRITABLE | PTE_USER):
        """Map the page of *va* to physical *frame* with *flags*."""
        addr.check_vaddr(va)
        table = self.root_frame
        for level in range(addr.NUM_LEVELS - 1):
            index = addr.level_index(va, level)
            _, entry = self._read_entry(table, index)
            if not entry_present(entry):
                child = self._new_table()
                entry = encode_entry(
                    child, PTE_PRESENT | PTE_WRITABLE | PTE_USER)
                self._write_entry(table, index, entry)
            table = entry_frame(entry)
        self._write_entry(table, addr.level_index(va, addr.NUM_LEVELS - 1),
                          encode_entry(frame, flags))

    def unmap(self, va: int):
        """Clear the leaf entry for *va* entirely."""
        walk = self.software_walk(va)
        if not walk.complete:
            raise PageTableError(f"{va:#x} has no leaf entry")
        self.phys.write(walk.pte.entry_paddr, 0, 8)

    # --- software walk (kernel / MicroScope module operation) -------------

    def software_walk(self, va: int) -> SoftwareWalk:
        """Walk the tables in software, bypassing caches and TLBs.

        This is the MicroScope module's "identify the page table
        entries required for a translation" operation (§5.2.2).
        """
        addr.check_vaddr(va)
        steps: List[WalkStep] = []
        table = self.root_frame
        for level in range(addr.NUM_LEVELS):
            index = addr.level_index(va, level)
            paddr, entry = self._read_entry(table, index)
            steps.append(WalkStep(level, paddr, entry))
            if level < addr.NUM_LEVELS - 1:
                if not entry_present(entry):
                    break
                table = entry_frame(entry)
        return SoftwareWalk(va, tuple(steps))

    # --- present-bit / flag manipulation (the attack's core knob) ---------

    def set_present(self, va: int, present: bool):
        """Set or clear the PRESENT bit of the leaf entry for *va*."""
        walk = self.software_walk(va)
        if not walk.complete:
            raise PageTableError(f"{va:#x} has no leaf entry to toggle")
        entry = walk.pte.entry
        if present:
            entry |= PTE_PRESENT
        else:
            entry &= ~PTE_PRESENT
        self.phys.write(walk.pte.entry_paddr, entry, 8)

    def is_present(self, va: int) -> bool:
        walk = self.software_walk(va)
        return walk.present

    def leaf_entry_paddr(self, va: int) -> int:
        """Physical address of the pte_t for *va*."""
        walk = self.software_walk(va)
        if not walk.complete:
            raise PageTableError(f"{va:#x} has no leaf entry")
        return walk.pte.entry_paddr

    def update_flags(self, va: int, set_flags: int = 0, clear_flags: int = 0):
        """Set/clear arbitrary flag bits on the leaf entry of *va*."""
        walk = self.software_walk(va)
        if not walk.complete:
            raise PageTableError(f"{va:#x} has no leaf entry")
        entry = (walk.pte.entry | set_flags) & ~clear_flags
        self.phys.write(walk.pte.entry_paddr, entry, 8)

    def translate(self, va: int) -> int:
        """Software translation of *va* to a physical address.

        Raises :class:`PageTableError` when the page is not present —
        callers that want fault semantics use the hardware walker.
        """
        walk = self.software_walk(va)
        if not walk.present:
            raise PageTableError(f"{va:#x} is not mapped present")
        return (walk.frame << FRAME_SHIFT) | addr.page_offset(va)
