"""Page fault descriptors.

A :class:`PageFault` is the architectural record produced when a walk
finds a non-present entry.  It is what the core hands to the kernel's
trap path when the faulting instruction reaches the head of the ROB.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.vm import address as addr


@dataclass(frozen=True)
class PageFault:
    """An architectural page fault (precise: raised at ROB head)."""

    va: int                      # faulting virtual address
    pcid: int                    # address-space id of the faulter
    level: int                   # page-table level whose entry failed
    is_write: bool = False
    is_instruction: bool = False
    pc: Optional[int] = None     # program counter of the faulting access
    context_id: Optional[int] = None  # hardware context that faulted

    @property
    def vpn(self) -> int:
        return addr.vpn(self.va)

    @property
    def page_aligned_va(self) -> int:
        """The address as SGX reports it to the OS on AEX: page-aligned,
        with the low 12 bits masked off (§2.3)."""
        return addr.page_base(self.va)

    @property
    def level_name(self) -> str:
        return addr.LEVEL_NAMES[self.level]

    def describe(self) -> str:
        kind = "ifetch" if self.is_instruction else (
            "write" if self.is_write else "read")
        return (f"page fault: va={self.va:#x} ({kind}) at {self.level_name}, "
                f"pcid={self.pcid}")


class TranslationError(Exception):
    """Raised for programming errors in the translation machinery —
    never for architectural faults, which travel as :class:`PageFault`
    records through the precise-exception path."""
