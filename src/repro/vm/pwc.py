"""Page Walk Cache (PWC).

Modern MMUs cache recently used entries of the three *upper* page-table
levels (PGD, PUD, PMD) so a page walk can skip memory accesses for the
levels that hit (Section 2.1).  The leaf PTE level is never cached here.

Entries are tagged by ``(pcid, level, address-prefix)`` where the prefix
is the virtual-address bits that select the walk path down to that
level.  Replacement is global LRU over a fixed number of entries.

MicroScope's Replayer flushes this structure as part of attack setup so
the replay handle's walk really visits memory (Fig. 3, step 1).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.vm import address as addr
from repro.observability.stats import PWCStats

__all__ = ["PageWalkCache", "PWCConfig", "PWCStats"]


@dataclass
class PWCConfig:
    entries: int = 32
    hit_latency: int = 1


class PageWalkCache:
    """LRU cache over upper-level page-table entries."""

    #: Levels eligible for PWC caching (everything but the leaf).
    CACHEABLE_LEVELS = tuple(range(addr.NUM_LEVELS - 1))

    def __init__(self, config: Optional[PWCConfig] = None):
        self.config = config or PWCConfig()
        self.hit_latency = self.config.hit_latency
        self._entries: "OrderedDict[Tuple[int, int, int], int]" = OrderedDict()
        self.stats = PWCStats()

    @staticmethod
    def _key(pcid: int, va: int, level: int) -> Tuple[int, int, int]:
        return (pcid, level, addr.prefix(va, level))

    def lookup(self, pcid: int, va: int, level: int) -> Optional[int]:
        """Return the cached raw entry for *va* at *level*, or ``None``."""
        if level not in self.CACHEABLE_LEVELS:
            return None
        key = self._key(pcid, va, level)
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return entry

    def insert(self, pcid: int, va: int, level: int, entry: int):
        """Cache the raw *entry* for *va* at *level* (upper levels only)."""
        if level not in self.CACHEABLE_LEVELS:
            return
        key = self._key(pcid, va, level)
        self._entries[key] = entry
        self._entries.move_to_end(key)
        while len(self._entries) > self.config.entries:
            self._entries.popitem(last=False)

    def invalidate_va(self, pcid: int, va: int):
        """Drop every cached upper-level entry on *va*'s walk path."""
        for level in self.CACHEABLE_LEVELS:
            self._entries.pop(self._key(pcid, va, level), None)

    def flush_all(self):
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    # --- snapshot support -------------------------------------------------

    def capture(self) -> tuple:
        return (OrderedDict(self._entries), self.stats.capture())

    def restore(self, state: tuple):
        entries, stats = state
        self._entries = OrderedDict(entries)
        self.stats.restore(stats)
