"""Command-line front end: ``python -m repro <command>``.

Two families of commands:

* **demos** — compact versions of the headline experiments
  (``port-contention``, ``aes``, ``key-recovery``, ``defenses``,
  ``matrix``, ``oracle``);
* **service** — the experiment job server and its client
  (``serve``, ``submit``, ``status``, ``watch``, ``jobs``); see
  ``docs/SERVICE.md``.

Run with no (or an unknown) command to get the usage summary on
stderr and exit status 2.
"""

from __future__ import annotations

import argparse
import json
import sys


def _demo_port(args):
    from repro.core.attacks.port_contention import PortContentionAttack
    attack = PortContentionAttack(measurements=args.samples)
    threshold = attack.calibrate()
    print(f"threshold: {threshold:.0f} cycles")
    for secret in (0, 1):
        result = attack.run(secret=secret, threshold=threshold)
        print(f"secret={secret}: {result.above_threshold}/"
              f"{len(result.samples)} above threshold, "
              f"{result.replays} replays, verdict="
              f"{'div' if result.verdict else 'mul'} "
              f"({'correct' if result.correct else 'WRONG'})")


def _demo_aes(args):
    from repro.core.attacks.aes_cache import AESCacheAttack
    from repro.crypto.aes import encrypt_block
    key = bytes(range(16))
    ciphertext = encrypt_block(key, b"attack at dawn!!")
    attack = AESCacheAttack(key, ciphertext)
    fig11 = attack.run_figure11()
    print("Figure 11 (Td1 line latencies per replay):")
    for replay, latencies in enumerate(fig11.replay_latencies):
        print(f"  replay {replay}: {latencies}")
    print(f"extracted {fig11.extracted_lines}, truth "
          f"{fig11.truth_lines}, noise-free: {fig11.noise_free}")
    result = attack.run_full_extraction()
    print(f"full extraction: recall {result.union_recall():.3f}, "
          f"precision {result.union_precision():.3f}, victim ok: "
          f"{result.plaintext_ok}")


def _demo_key(args):
    from repro.core.attacks.aes_key_recovery import AESKeyRecoveryAttack
    from repro.crypto.aes import encrypt_block
    key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
    plaintexts = [b"sixteen byte msg", b"another message!",
                  b"third ciphertext"]
    ciphertexts = [encrypt_block(key, p) for p in plaintexts]
    result = AESKeyRecoveryAttack(key).run(ciphertexts)
    print(f"high nibbles recovered: {result.bytes_recovered}/16 "
          f"({result.bits_recovered} key bits), all correct: "
          f"{result.all_correct}")


def _demo_defenses(args):
    from repro.evaluation.defenses.fences import evaluate_fence_on_flush
    from repro.evaluation.defenses.tsgx import evaluate_tsgx
    fence = evaluate_fence_on_flush(replays=8)
    print(f"fence-on-flush: leaked transmits "
          f"{fence.transmit_issues_undefended} -> "
          f"{fence.transmit_issues_defended}")
    tsgx = evaluate_tsgx()
    print(f"T-SGX: OS faults {tsgx.os_faults_seen}, replay windows "
          f"{tsgx.replay_windows_observed}/{tsgx.threshold}, victim "
          f"terminated: {tsgx.victim_terminated}")


def _demo_matrix(args):
    from repro.evaluation import MatrixRunner
    from repro.memo import resolve_store
    store = resolve_store(args.cache_dir, enabled=not args.no_cache)
    runner = MatrixRunner(
        attacks=tuple(args.attacks) if args.attacks else (),
        defenses=tuple(args.defenses) if args.defenses else (),
        overrides={"port-contention":
                   {"measurements": args.samples,
                    "calibrate_samples": max(200, args.samples // 2)}},
        workers=args.workers, store=store)
    matrix = runner.run()
    print(matrix.summary_markdown())
    print()
    print(matrix.detail_markdown())
    report = runner.last_run_report
    if store is not None and report is not None:
        cache = report.cache
        degraded = sum(cache.get(k, 0) for k in
                       ("corrupt", "stale", "rejected"))
        print()
        print(f"trial cache [{store.root}]: "
              f"{report.cached_trials} of {len(report.results)} cells "
              f"served from cache ({cache.get('hits', 0)} hits, "
              f"{cache.get('misses', 0)} misses, "
              f"{cache.get('stores', 0)} stored, "
              f"{degraded} degraded)")


def _demo_oracle(args):
    from repro.tools import oraclecheck
    argv = []
    if args.attacks:
        argv += ["--attacks", *args.attacks]
    if args.defenses:
        argv += ["--defenses", *args.defenses]
    argv += ["--samples", str(args.samples)]
    if args.workers is not None:
        argv += ["--workers", str(args.workers)]
    if args.cache_dir:
        argv += ["--cache-dir", args.cache_dir]
    if args.json:
        argv.append("--json")
    return oraclecheck.main(argv)


# --- service commands -----------------------------------------------------


def _client(args):
    from repro.service import ServiceClient
    if args.host is not None and args.port is not None:
        return ServiceClient(address=(args.host, args.port))
    return ServiceClient(state_dir=args.state_dir)


def _spec_from_args(args):
    from repro.service import JobSpec
    return JobSpec(
        attacks=tuple(args.attacks) if args.attacks else (),
        defenses=tuple(args.defenses) if args.defenses else (),
        overrides=json.loads(args.overrides) if args.overrides else {},
        master_seed=args.master_seed, label=args.label,
        backend=args.backend, workers=args.workers)


def _emit(payload) -> None:
    print(json.dumps(payload, sort_keys=True))


def _cmd_serve(args):
    from repro.service import serve

    def announce(server):
        print(f"repro service listening on "
              f"{server.host}:{server.port} "
              f"(state: {server.state_dir})", flush=True)

    serve(args.state_dir, host=args.host or "127.0.0.1",
          port=args.port or 0, cache_dir=args.cache_dir,
          on_ready=announce)


def _cmd_submit(args):
    client = _client(args)
    submitted = client.submit(_spec_from_args(args))
    _emit(submitted)
    if args.wait:
        status = client.wait(submitted["job"], timeout=args.timeout)
        _emit(status)
        if status["state"] != "done":
            return 1
    return 0


def _cmd_status(args):
    status = _client(args).status(args.job)
    status.pop("ok", None)
    _emit(status)
    return 0


def _cmd_watch(args):
    for event in _client(args).watch(args.job):
        _emit(event)
    return 0


def _cmd_jobs(args):
    for status in _client(args).jobs():
        _emit(status)
    return 0


def _add_endpoint_args(parser) -> None:
    parser.add_argument("--state-dir", default=None,
                        help="server state directory "
                             "(its endpoint.json locates the server)")
    parser.add_argument("--host", default=None)
    parser.add_argument("--port", type=int, default=None)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="MicroScope reproduction demos and the "
                    "experiment job service")
    sub = parser.add_subparsers(dest="demo", required=True)
    port = sub.add_parser("port-contention",
                          help="Figure 10 in miniature")
    port.add_argument("--samples", type=int, default=1500)
    port.set_defaults(fn=_demo_port)
    aes = sub.add_parser("aes", help="Figure 11 + full extraction")
    aes.set_defaults(fn=_demo_aes)
    key = sub.add_parser("key-recovery",
                         help="attack-driven round-key nibbles")
    key.set_defaults(fn=_demo_key)
    defenses = sub.add_parser("defenses", help="Section 8 in brief")
    defenses.set_defaults(fn=_demo_defenses)
    matrix = sub.add_parser(
        "matrix", help="attack x defense evaluation matrix")
    matrix.add_argument("--attacks", nargs="*", default=None,
                        help="rows to run (default: all)")
    matrix.add_argument("--defenses", nargs="*", default=None,
                        help="columns to run (default: all)")
    matrix.add_argument("--samples", type=int, default=600,
                        help="port-contention Monitor samples")
    matrix.add_argument("--workers", type=int, default=None)
    matrix.add_argument("--cache-dir", default=None,
                        help="content-addressed trial cache directory "
                             "(default: $REPRO_CACHE_DIR, else off)")
    matrix.add_argument("--no-cache", action="store_true",
                        help="disable the trial cache even if "
                             "--cache-dir/$REPRO_CACHE_DIR is set")
    matrix.set_defaults(fn=_demo_matrix)

    oracle = sub.add_parser(
        "oracle", help="taint-oracle vs statistical-verdict "
                       "cross-check (repro.tools.oraclecheck)")
    oracle.add_argument("--attacks", nargs="*", default=None)
    oracle.add_argument("--defenses", nargs="*", default=None)
    oracle.add_argument("--samples", type=int, default=600)
    oracle.add_argument("--workers", type=int, default=None)
    oracle.add_argument("--cache-dir", default=None)
    oracle.add_argument("--json", action="store_true")
    oracle.set_defaults(fn=_demo_oracle)

    serve = sub.add_parser(
        "serve", help="run the experiment job server")
    serve.add_argument("--state-dir", required=True,
                       help="directory for jobs, journals and the "
                            "shared trial store")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="0 picks an ephemeral port "
                            "(written to endpoint.json)")
    serve.add_argument("--cache-dir", default=None,
                       help="trial store directory "
                            "(default: <state-dir>/store)")
    serve.set_defaults(fn=_cmd_serve)

    submit = sub.add_parser(
        "submit", help="submit a matrix job to a running server")
    _add_endpoint_args(submit)
    submit.add_argument("--attacks", nargs="*", default=None)
    submit.add_argument("--defenses", nargs="*", default=None)
    submit.add_argument("--overrides", default=None,
                        help="per-attack overrides as JSON, e.g. "
                             '\'{"port-contention": '
                             '{"measurements": 400}}\'')
    submit.add_argument("--master-seed", type=int, default=None)
    submit.add_argument("--label", default=None)
    submit.add_argument("--backend", default="scalar")
    submit.add_argument("--workers", type=int, default=1)
    submit.add_argument("--wait", action="store_true",
                        help="block until the job finishes "
                             "(exit 1 if it fails)")
    submit.add_argument("--timeout", type=float, default=None)
    submit.set_defaults(fn=_cmd_submit)

    status = sub.add_parser(
        "status", help="one job's state, progress and metrics")
    _add_endpoint_args(status)
    status.add_argument("job")
    status.set_defaults(fn=_cmd_status)

    watch = sub.add_parser(
        "watch", help="stream a job's progress events")
    _add_endpoint_args(watch)
    watch.add_argument("job")
    watch.set_defaults(fn=_cmd_watch)

    jobs = sub.add_parser("jobs", help="list every job")
    _add_endpoint_args(jobs)
    jobs.set_defaults(fn=_cmd_jobs)

    args = parser.parse_args(argv)
    return args.fn(args) or 0


if __name__ == "__main__":
    sys.exit(main())
