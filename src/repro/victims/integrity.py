"""Victims for the Section 7 generalisations.

* :func:`setup_rdrand_victim` — the §7.2 integrity target: draws one
  hardware random number, branches on its parity (parity-dependent
  port usage leaks it), and commits it to memory.  A replay handle
  precedes the RDRAND.
* :func:`setup_tsx_victim` — the §7.1 alternative-replay-handle
  target: the same computation wrapped in a TSX transaction with a
  retry fallback, so transaction aborts (attacker-induced write-set
  evictions) replay the whole transaction body.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.program import Program, ProgramBuilder
from repro.kernel.process import Process
from repro.victims.common import REPLAY_HANDLE, TRANSMIT


@dataclass(frozen=True)
class RdrandVictim:
    program: Program
    handle_va: int
    output_va: int

    def read_output(self, process: Process) -> int:
        return process.read(self.output_va)


def setup_rdrand_victim(process: Process) -> RdrandVictim:
    handle_va = process.alloc(4096, "rr-handle")
    output_va = process.alloc(4096, "rr-output")
    program = build_rdrand_program(handle_va, output_va)
    return RdrandVictim(program, handle_va, output_va)


def build_rdrand_program(handle_va: int, output_va: int) -> Program:
    b = ProgramBuilder("rdrand-victim")
    b.li("r1", handle_va)
    b.li("r2", output_va)
    b.fli("f0", 9.5)
    b.fli("f1", 2.5)
    b.load("r3", "r1", 0, comment=REPLAY_HANDLE)
    b.rdrand("r10")
    b.andi("r11", "r10", 1)
    b.li("r12", 0)
    b.bne("r11", "r12", "odd")
    # Even parity: multiply-unit usage.
    b.mul("r13", "r10", "r10", comment=f"{TRANSMIT}-even0")
    b.mul("r13", "r13", "r13", comment=f"{TRANSMIT}-even1")
    b.jmp("out")
    b.label("odd")
    # Odd parity: divider usage.
    b.fdiv("f2", "f0", "f1", comment=f"{TRANSMIT}-odd0")
    b.fdiv("f3", "f0", "f1", comment=f"{TRANSMIT}-odd1")
    b.label("out")
    b.store("r2", "r10", 0)
    b.halt()
    return b.build()


@dataclass(frozen=True)
class TSXVictim:
    program: Program
    txn_buffer_va: int     # a write-set line the attacker can evict
    output_va: int
    retries_va: int

    def read_output(self, process: Process) -> int:
        return process.read(self.output_va)

    def read_retries(self, process: Process) -> int:
        return process.read(self.retries_va)


def setup_tsx_victim(process: Process, max_retries: int = 1_000_000
                     ) -> TSXVictim:
    txn_buffer_va = process.alloc(4096, "tsx-buffer")
    output_va = process.alloc(4096, "tsx-output")
    retries_va = process.alloc(4096, "tsx-retries")
    program = build_tsx_program(txn_buffer_va, output_va, retries_va,
                                max_retries)
    return TSXVictim(program, txn_buffer_va, output_va, retries_va)


def build_tsx_program(txn_buffer_va: int, output_va: int,
                      retries_va: int, max_retries: int) -> Program:
    """The transaction body draws a random value, leaks its parity via
    unit usage, and commits it; the fallback path counts retries and
    loops — the standard TSX retry idiom the §7.1 replays exploit."""
    b = ProgramBuilder("tsx-victim")
    b.li("r1", txn_buffer_va)
    b.li("r2", output_va)
    b.li("r4", retries_va)
    b.li("r6", max_retries)
    b.fli("f0", 9.5)
    b.fli("f1", 2.5)
    b.label("retry")
    b.tbegin("fallback")
    # Establish a write-set line early: its eviction aborts us.
    b.li("r5", 1)
    b.store("r1", "r5", 0)
    b.rdrand("r10")
    b.andi("r11", "r10", 1)
    b.li("r12", 0)
    b.bne("r11", "r12", "odd")
    b.mul("r13", "r10", "r10", comment=f"{TRANSMIT}-even0")
    b.mul("r13", "r13", "r13", comment=f"{TRANSMIT}-even1")
    b.jmp("commit")
    b.label("odd")
    b.fdiv("f2", "f0", "f1", comment=f"{TRANSMIT}-odd0")
    b.fdiv("f3", "f0", "f1", comment=f"{TRANSMIT}-odd1")
    b.label("commit")
    b.store("r2", "r10", 0)
    b.tend()
    b.jmp("done")
    b.label("fallback")
    # r15 carries the hardware abort count; keep our own tally too.
    b.load("r7", "r4", 0)
    b.addi("r7", "r7", 1)
    b.store("r4", "r7", 0)
    b.blt("r7", "r6", "retry")
    b.label("done")
    b.halt()
    return b.build()
