"""Shared conventions for victim programs.

Victim builders tag the attack-relevant instructions with well-known
comments so attack drivers can locate them without magic indices:

* :data:`REPLAY_HANDLE` — the memory access the Replayer faults on;
* :data:`TRANSMIT` — the instruction(s) that leak over a side channel
  (the paper's "transmit computation", after [32]);
* :data:`PIVOT` — the §4.2.2 instruction used to step between
  iterations.
"""

from __future__ import annotations

from dataclasses import dataclass

REPLAY_HANDLE = "replay-handle"
TRANSMIT = "transmit"
PIVOT = "pivot"


@dataclass(frozen=True)
class VictimBinary:
    """A built victim: the program plus the addresses an OS-level
    attacker legitimately knows (program layout, *not* secrets)."""

    program: object        # repro.isa.Program
    handle_va: int         # VA the replay handle accesses
    handle_index: int      # instruction index of the replay handle
