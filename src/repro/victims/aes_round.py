"""The AES decryption victim of Section 4.4.

This module compiles OpenSSL-0.9.8-style table-based AES decryption to
the micro-ISA.  The generated program is *functionally correct* — its
output is validated against :mod:`repro.crypto` — and structurally
faithful to Figure 8a:

* the four Td tables live on four distinct pages (1 KiB each: 16 cache
  lines of 16 entries);
* the ``rk`` round-key array lives on its own page, so any rk access
  can serve as a replay handle and any Td access as a pivot;
* each middle round is one loop iteration computing ``t0..t3`` from
  ``s0..s3`` with four Td lookups plus one rk load per statement, the
  rk load trailing the statement exactly as in the paper's Line 3.

Register map::

    r0  stack base (loop counter spills)  r10, r11  scratch
    r1  rk cursor                          r12..r15  t0..t3
    r2..r5  Td0..Td3 bases
    r6..r9  s0..s3
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.crypto.aes import expand_decrypt_key, rounds_for_key
from repro.crypto.aes_tables import inv_sbox, td_tables
from repro.isa.program import Program, ProgramBuilder
from repro.kernel.process import Process
from repro.oracle.runtime import note_secret_write
from repro.victims.common import PIVOT, REPLAY_HANDLE


@dataclass(frozen=True)
class AESVictim:
    """Built AES victim plus its (attacker-known) memory layout."""

    program: Program
    rk_va: int
    td_vas: Tuple[int, int, int, int]
    td4_va: int
    input_va: int
    output_va: int
    stack_va: int
    rounds: int

    def td_line_va(self, table: int, line: int) -> int:
        """VA of cache line *line* (0..15) of Td table *table*."""
        return self.td_vas[table] + 64 * line

    def read_plaintext(self, process: Process) -> bytes:
        words = [process.read(self.output_va + 4 * i, 4) for i in range(4)]
        return b"".join(int(w).to_bytes(4, "big") for w in words)

    def write_ciphertext(self, process: Process, ciphertext: bytes):
        """(Re)write the input block.  The program embeds only the
        buffer's address, so a snapshot of a launched victim can be
        retargeted at a new ciphertext by rewriting these four words."""
        for i in range(4):
            process.write(self.input_va + 4 * i,
                          int.from_bytes(ciphertext[4 * i:4 * i + 4],
                                         "big"),
                          width=4)
        note_secret_write(process, self.input_va, 16)


def setup_aes_victim(process: Process, key: bytes,
                     ciphertext: bytes) -> AESVictim:
    """Allocate all AES memory, write tables/keys/input, and build the
    decryption program."""
    rounds = rounds_for_key(key)
    rk = expand_decrypt_key(key)
    tds = td_tables()
    td_vas = []
    for t in range(4):
        va = process.alloc(1024, f"aes-Td{t}")
        process.write_words(va, tds[t], width=4)
        td_vas.append(va)
    td4_va = process.alloc(1024, "aes-Td4")
    process.write_words(td4_va, inv_sbox(), width=4)
    rk_va = process.alloc(4 * len(rk), "aes-rk")
    process.write_words(rk_va, rk, width=4)
    # The expanded key schedule is enclave-held secret material.
    note_secret_write(process, rk_va, 4 * len(rk))
    input_va = process.alloc(4096, "aes-input")
    output_va = process.alloc(4096, "aes-output")
    stack_va = process.alloc(4096, "aes-stack")
    program = build_aes_decrypt_program(
        rk_va, tuple(td_vas), td4_va, input_va, output_va, stack_va,
        rounds)
    victim = AESVictim(program, rk_va, tuple(td_vas), td4_va, input_va,
                       output_va, stack_va, rounds)
    victim.write_ciphertext(process, ciphertext)
    return victim


#: (source state register offsets) per statement: which s word feeds
#: byte positions 24, 16, 8, 0 — the Fig. 8a indexing pattern.
_STATEMENT_SOURCES = (
    (0, 3, 2, 1),   # t0 = Td0[s0>>24] ^ Td1[s3>>16] ^ Td2[s2>>8] ^ Td3[s1]
    (1, 0, 3, 2),   # t1
    (2, 1, 0, 3),   # t2
    (3, 2, 1, 0),   # t3
)
_SHIFTS = (24, 16, 8, 0)


def build_aes_decrypt_program(rk_va: int, td_vas: Tuple[int, ...],
                              td4_va: int, input_va: int, output_va: int,
                              stack_va: int, rounds: int) -> Program:
    b = ProgramBuilder("aes-decrypt")
    _emit_prologue(b, rk_va, td_vas, input_va, stack_va, rounds)
    _emit_round_loop(b)
    _emit_final_round(b, td4_va, output_va, rounds, rk_va)
    b.halt()
    return b.build()


def _emit_prologue(b: ProgramBuilder, rk_va: int, td_vas, input_va: int,
                   stack_va: int, rounds: int):
    b.li("r0", stack_va)
    b.li("r1", rk_va)
    for t in range(4):
        b.li(f"r{2 + t}", td_vas[t])
    # Loop trip count (middle rounds) spilled to the stack.
    b.li("r10", rounds - 1)
    b.store("r0", "r10", 0)
    # Initial AddRoundKey: s_i = ct_i ^ rk[i].
    b.li("r10", input_va)
    for i in range(4):
        b.load(f"r{6 + i}", "r10", 4 * i, width=4)
        b.load("r11", "r1", 4 * i, width=4)
        b.xor(f"r{6 + i}", f"r{6 + i}", "r11")


def _emit_round_loop(b: ProgramBuilder):
    b.label("round_loop")
    for stmt, sources in enumerate(_STATEMENT_SOURCES):
        acc = f"r{12 + stmt}"
        for table, (src, shift) in enumerate(zip(sources, _SHIFTS)):
            state_reg = f"r{6 + src}"
            tag = f"td{table}-s{stmt}"
            if stmt == 1 and table == 0:
                tag = f"{PIVOT} {tag}"  # Td0 in the t1 statement (§4.4)
            b.shri("r10", state_reg, shift)
            if shift != 24:
                b.andi("r10", "r10", 0xFF)
            b.shli("r10", "r10", 2)
            b.add("r10", "r10", f"r{2 + table}")
            if table == 0:
                b.load(acc, "r10", 0, width=4, comment=tag)
            else:
                b.load("r11", "r10", 0, width=4, comment=tag)
                b.xor(acc, acc, "r11")
        # rk[4 + stmt] relative to the cursor: trails the statement, as
        # in the paper's Line 3 — this is the replay handle.
        tag = f"rk-s{stmt}"
        if stmt == 0:
            tag = f"{REPLAY_HANDLE} {tag}"
        b.load("r11", "r1", 16 + 4 * stmt, width=4, comment=tag)
        b.xor(acc, acc, "r11")
    # s <- t ; advance the rk cursor by one round (rk += 4 words).
    for i in range(4):
        b.mov(f"r{6 + i}", f"r{12 + i}")
    b.addi("r1", "r1", 16)
    # Spilled loop counter.
    b.load("r10", "r0", 0)
    b.subi("r10", "r10", 1)
    b.store("r0", "r10", 0)
    b.li("r11", 0)
    b.bne("r10", "r11", "round_loop")


#: Final-round byte sources: out_i takes bytes from state words
#: (i, i-1, i-2, i-3) mod 4 at byte positions 24, 16, 8, 0.
_FINAL_SOURCES = tuple(
    tuple((i - k) % 4 for k in range(4)) for i in range(4))


def _emit_final_round(b: ProgramBuilder, td4_va: int, output_va: int,
                      rounds: int, rk_va: int):
    # After the loop, r1 = rk_va + 16*(rounds-1); the final-round keys
    # are at cursor offset 16.  Td bases are dead: reuse r2/r3.
    b.li("r2", td4_va)
    b.li("r3", output_va)
    for i, sources in enumerate(_FINAL_SOURCES):
        acc = f"r{12 + i}"
        for pos, src in enumerate(sources):
            shift = _SHIFTS[pos]
            b.shri("r10", f"r{6 + src}", shift)
            if shift != 24:
                b.andi("r10", "r10", 0xFF)
            b.shli("r10", "r10", 2)
            b.add("r10", "r10", "r2")
            b.load("r11", "r10", 0, width=4, comment=f"td4-w{i}-b{pos}")
            b.shli("r11", "r11", shift)
            if pos == 0:
                b.mov(acc, "r11")
            else:
                b.or_(acc, acc, "r11")
        b.load("r11", "r1", 16 + 4 * i, width=4, comment=f"rk-final-{i}")
        b.xor(acc, acc, "r11")
        b.store("r3", acc, 4 * i, width=4, comment=f"out-{i}")
