"""Monitor programs (Figure 7).

The port-contention monitor free-runs on the victim's SMT sibling,
timing short bursts of floating-point divisions.  When the victim's
speculatively replayed code holds the (non-pipelined, shared) divider,
a burst takes visibly longer — the contention signal of §4.3/6.1.

The measurement loop is a direct analogue of Figure 7a::

    for (j = 0; j < buff; j++) {
        t1 = read_timer();
        for (i = 0; i < cont; i++)
            unit_div_contention();     // one divsd
        t2 = read_timer();
        buffer[j] = t2 - t1;
    }

``fence`` before each ``rdtsc`` plays the role of the lfence real
attack code uses so the timer reads bracket the division burst.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.program import Program, ProgramBuilder
from repro.kernel.process import Process


@dataclass(frozen=True)
class PortContentionMonitor:
    """Built monitor plus its measurement buffer location."""

    program: Program
    buffer_va: int
    measurements: int

    def read_samples(self, process: Process) -> list:
        """Collect the recorded latencies after the run."""
        return process.read_words(self.buffer_va, self.measurements)


def setup_port_contention_monitor(process: Process,
                                  measurements: int = 10_000,
                                  divs_per_sample: int = 4
                                  ) -> PortContentionMonitor:
    """Allocate the sample buffer and build the Fig. 7 monitor."""
    if measurements <= 0 or divs_per_sample <= 0:
        raise ValueError("measurements and divs_per_sample must be > 0")
    buffer_va = process.alloc(8 * measurements, "monitor-buffer")
    program = build_port_contention_monitor(
        buffer_va, measurements, divs_per_sample)
    return PortContentionMonitor(program, buffer_va, measurements)


def build_port_contention_monitor(buffer_va: int, measurements: int,
                                  divs_per_sample: int) -> Program:
    b = ProgramBuilder("port-contention-monitor")
    b.li("r1", buffer_va)        # sample cursor
    b.li("r2", 0)                # j
    b.li("r3", measurements)
    b.li("r5", divs_per_sample)
    b.fli("f0", 41.25)           # division operands stay in registers:
    b.fli("f1", 1.75)            # no cache noise inside the timed burst
    b.label("outer")
    b.fence()
    b.rdtsc("r6")
    b.li("r4", 0)                # i
    b.label("inner")
    b.fdiv("f2", "f0", "f1", comment="contention-probe")
    b.addi("r4", "r4", 1)
    b.bne("r4", "r5", "inner")
    b.fence()
    b.rdtsc("r7")
    b.sub("r8", "r7", "r6")
    b.store("r1", "r8", 0)
    b.addi("r1", "r1", 8)
    b.addi("r2", "r2", 1)
    b.bne("r2", "r3", "outer")
    b.halt()
    return b.build()


def build_busy_alu_monitor(buffer_va: int, measurements: int,
                           ops_per_sample: int = 8) -> Program:
    """A control monitor that times *multiplications* instead of
    divisions — used by tests/ablations to show the signal is specific
    to the contended unit."""
    b = ProgramBuilder("mul-monitor")
    b.li("r1", buffer_va)
    b.li("r2", 0)
    b.li("r3", measurements)
    b.li("r5", ops_per_sample)
    b.li("r9", 12345)
    b.li("r10", 77)
    b.label("outer")
    b.fence()
    b.rdtsc("r6")
    b.li("r4", 0)
    b.label("inner")
    b.mul("r11", "r9", "r10")
    b.addi("r4", "r4", 1)
    b.bne("r4", "r5", "inner")
    b.fence()
    b.rdtsc("r7")
    b.sub("r8", "r7", "r6")
    b.store("r1", "r8", 0)
    b.addi("r1", "r1", 8)
    b.addi("r2", "r2", 1)
    b.bne("r2", "r3", "outer")
    b.halt()
    return b.build()
