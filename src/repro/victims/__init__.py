"""Victim and monitor programs (Figures 4-8 of the paper)."""

from repro.victims.common import PIVOT, REPLAY_HANDLE, TRANSMIT, VictimBinary
from repro.victims.control_flow import (
    ControlFlowVictim,
    build_control_flow_program,
    setup_control_flow_victim,
)
from repro.victims.loop_secret import (
    LoopSecretVictim,
    build_loop_secret_program,
    setup_loop_secret_victim,
)
from repro.victims.monitor import (
    PortContentionMonitor,
    build_busy_alu_monitor,
    build_port_contention_monitor,
    setup_port_contention_monitor,
)
from repro.victims.single_secret import (
    NUM_SECRETS,
    SingleSecretVictim,
    build_single_secret_program,
    setup_single_secret_victim,
)
from repro.victims.aes_round import (
    AESVictim,
    build_aes_decrypt_program,
    setup_aes_victim,
)
from repro.victims.integrity import (
    RdrandVictim,
    TSXVictim,
    setup_rdrand_victim,
    setup_tsx_victim,
)
from repro.victims.rsa import (
    MULT_BUFFER_LINES,
    ModExpVictim,
    build_modexp_program,
    setup_modexp_victim,
)

__all__ = [
    "PIVOT",
    "REPLAY_HANDLE",
    "TRANSMIT",
    "VictimBinary",
    "ControlFlowVictim",
    "build_control_flow_program",
    "setup_control_flow_victim",
    "LoopSecretVictim",
    "build_loop_secret_program",
    "setup_loop_secret_victim",
    "PortContentionMonitor",
    "build_busy_alu_monitor",
    "build_port_contention_monitor",
    "setup_port_contention_monitor",
    "NUM_SECRETS",
    "SingleSecretVictim",
    "build_single_secret_program",
    "setup_single_secret_victim",
    "AESVictim",
    "build_aes_decrypt_program",
    "setup_aes_victim",
    "RdrandVictim",
    "TSXVictim",
    "setup_rdrand_victim",
    "setup_tsx_victim",
    "MULT_BUFFER_LINES",
    "ModExpVictim",
    "build_modexp_program",
    "setup_modexp_victim",
]
