"""The Control-Flow-Secret victim of Figures 4c and 6.

One side of a secret-dependent branch performs two integer
multiplications (Fig. 6a), the other two floating-point divisions
(Fig. 6b).  **There is no loop** — each side executes its two
operations exactly once per architectural run, which is precisely why
conventional port-contention attacks cannot read it and MicroScope
can.

The replay handle is the counter update before the branch (the paper's
``addq $0x1,0x20(%rbp)``); the secret lives in enclave-private memory
on a separate, resident page.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.program import Program, ProgramBuilder
from repro.kernel.process import Process
from repro.oracle.runtime import note_secret_write
from repro.victims.common import REPLAY_HANDLE, TRANSMIT


@dataclass(frozen=True)
class ControlFlowVictim:
    """Built victim plus its memory layout."""

    program: Program
    handle_va: int       # page the Replayer faults (public counter)
    secret_va: int       # enclave-private secret location
    operand_va: int      # page holding the mul/div input operands

    @property
    def handle_index(self) -> int:
        return self.program.find_one(REPLAY_HANDLE)

    def write_secret(self, process: Process, secret: int):
        """(Re)write the branch secret.  The program embeds only
        ``secret_va``, so a snapshot of a launched victim can be
        retargeted at either branch side by rewriting this word."""
        if secret not in (0, 1):
            raise ValueError("secret must be 0 or 1")
        process.write(self.secret_va, secret)
        note_secret_write(process, self.secret_va)


def setup_control_flow_victim(process: Process, secret: int,
                              divisions: int = 2,
                              multiplications: int = 2
                              ) -> ControlFlowVictim:
    """Allocate the victim's memory and build its program.

    *secret* selects the branch direction (0 = multiply side, 1 =
    divide side).  The secret value is written into the process'
    enclave-private region when one exists, else into a private page.
    """
    if secret not in (0, 1):
        raise ValueError("secret must be 0 or 1")
    handle_va = process.alloc(4096, "cf-counter")
    operand_va = process.alloc(4096, "cf-operands")
    if process.enclave is not None:
        secret_va = process.enclave.private_base
    else:
        secret_va = process.alloc(4096, "cf-secret")
    process.write(secret_va, secret)
    note_secret_write(process, secret_va)
    process.write(handle_va + 0x20, 0)
    # Operands for both sides (doubles for the div side, ints for mul).
    process.write(operand_va, 7)            # mul operand a
    process.write(operand_va + 8, 9)        # mul operand b
    process.write(operand_va + 16, 2.5)     # div dividend
    process.write(operand_va + 24, 1.25)    # div divisor

    program = build_control_flow_program(
        handle_va, secret_va, operand_va,
        divisions=divisions, multiplications=multiplications)
    return ControlFlowVictim(program, handle_va, secret_va, operand_va)


def build_control_flow_program(handle_va: int, secret_va: int,
                               operand_va: int, divisions: int = 2,
                               multiplications: int = 2) -> Program:
    """Emit the Fig. 6 victim.  The counter update (load+add+store on
    the handle page) precedes the secret-dependent branch."""
    b = ProgramBuilder("control-flow-secret")
    b.li("r1", handle_va + 0x20)
    b.li("r2", secret_va)
    b.li("r3", operand_va)
    # addq $0x1, 0x20(%rbp): the replay handle (Fig. 6, line 1).
    b.load("r4", "r1", 0, comment=REPLAY_HANDLE)
    b.addi("r4", "r4", 1)
    b.store("r1", "r4", 0)
    # Load the secret and branch on it.
    b.load("r5", "r2", 0)
    b.li("r6", 0)
    b.bne("r5", "r6", "div_side")
    # __victim_mul (Fig. 6a).
    b.label("mul_side")
    b.load("r7", "r3", 0)
    b.load("r8", "r3", 8)
    for i in range(multiplications):
        b.mul("r9", "r7", "r8", comment=f"{TRANSMIT}-mul{i}")
    b.jmp("done")
    # __victim_div (Fig. 6b).
    b.label("div_side")
    b.fload("f0", "r3", 16)
    b.fload("f1", "r3", 24)
    for i in range(divisions):
        b.fdiv(f"f{2 + i % 14}", "f1", "f0",
               comment=f"{TRANSMIT}-div{i}")
    b.label("done")
    b.halt()
    return b.build()
