"""A square-and-multiply modular-exponentiation victim (RSA-style).

The classic side-channel target the paper's related work attacks
([1, 2, 20, 22, 64] all extract crypto exponents): left-to-right-free
LSB-first square-and-multiply::

    result = 1
    while exp != 0:
        if exp & 1:
            result = result * base % mod      # the leaky branch
        base = base * base % mod
        exp >>= 1

The generated program computes a *correct* modexp (validated against
Python's ``pow``) on the simulated core.  Two leakage channels are
faithful to real implementations:

* the divider (our ``div`` performs the reduction) is busier on 1-bit
  iterations — the port channel;
* the multiply path touches its per-iteration operand buffer — bignum
  code reads the multiplier's limbs from memory — giving a cache
  channel with an iteration-dependent line
  (``mult_buffer + (i % 8) * 64``).

Modulus/base fit in 32 bits so products never overflow 64-bit
registers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.program import Program, ProgramBuilder
from repro.kernel.process import Process
from repro.victims.common import PIVOT, REPLAY_HANDLE, TRANSMIT

#: Lines in the multiply operand buffer touched round-robin.
MULT_BUFFER_LINES = 8


@dataclass(frozen=True)
class ModExpVictim:
    program: Program
    handle_va: int
    pivot_va: int
    mult_buffer_va: int    # per-iteration multiply operand lines
    result_va: int
    base: int
    exponent: int
    modulus: int

    @property
    def bits(self) -> int:
        return max(self.exponent.bit_length(), 1)

    def expected_result(self) -> int:
        return pow(self.base, self.exponent, self.modulus)

    def read_result(self, process: Process) -> int:
        return process.read(self.result_va)

    def mult_line_va(self, iteration: int) -> int:
        return self.mult_buffer_va + (iteration % MULT_BUFFER_LINES) * 64


def setup_modexp_victim(process: Process, base: int, exponent: int,
                        modulus: int) -> ModExpVictim:
    if not 1 < modulus < (1 << 32):
        raise ValueError("modulus must fit in 32 bits and exceed 1")
    if not 0 < base < modulus:
        raise ValueError("base must be in (0, modulus)")
    if exponent <= 0:
        raise ValueError("exponent must be positive")
    handle_va = process.alloc(4096, "rsa-handle")
    pivot_va = process.alloc(4096, "rsa-pivot")
    mult_buffer_va = process.alloc(64 * MULT_BUFFER_LINES, "rsa-multbuf")
    result_va = process.alloc(4096, "rsa-result")
    for line in range(MULT_BUFFER_LINES):
        process.write(mult_buffer_va + line * 64, line + 1)
    program = build_modexp_program(handle_va, pivot_va, mult_buffer_va,
                                   result_va, base, exponent, modulus)
    return ModExpVictim(program, handle_va, pivot_va, mult_buffer_va,
                        result_va, base, exponent, modulus)


def build_modexp_program(handle_va: int, pivot_va: int,
                         mult_buffer_va: int, result_va: int,
                         base: int, exponent: int,
                         modulus: int) -> Program:
    """Register map: r1 handle, r2 pivot, r3 mult buffer, r4 base,
    r5 exp, r6 mod, r7 result, r8-r12 scratch, r13 iteration, r14
    result page."""
    b = ProgramBuilder("modexp")
    b.li("r1", handle_va)
    b.li("r2", pivot_va)
    b.li("r3", mult_buffer_va)
    b.li("r14", result_va)
    b.li("r4", base)
    b.li("r5", exponent)
    b.li("r6", modulus)
    b.li("r7", 1)
    b.li("r11", 0)
    b.li("r13", 0)
    b.label("loop")
    # Replay handle: a bookkeeping access on its own page.
    b.load("r8", "r1", 0, comment=REPLAY_HANDLE)
    b.andi("r9", "r5", 1)
    b.beq("r9", "r11", "skip_mult")
    # Multiply path: read this iteration's operand line (the cache
    # transmit), then result = result * base % mod.
    b.andi("r10", "r13", MULT_BUFFER_LINES - 1)
    b.shli("r10", "r10", 6)
    b.add("r10", "r10", "r3")
    b.load("r12", "r10", 0, comment=f"{TRANSMIT}-mult-operand")
    b.mul("r7", "r7", "r4", comment=f"{TRANSMIT}-mult")
    b.div("r10", "r7", "r6")
    b.mul("r10", "r10", "r6")
    b.sub("r7", "r7", "r10")
    b.label("skip_mult")
    # Square path (every iteration): base = base * base % mod.
    b.mul("r4", "r4", "r4")
    b.div("r10", "r4", "r6")
    b.mul("r10", "r10", "r6")
    b.sub("r4", "r4", "r10")
    b.shri("r5", "r5", 1)
    b.addi("r13", "r13", 1)
    # Pivot: a second public page, after the transmit (§4.2.2).
    b.load("r8", "r2", 0, comment=PIVOT)
    b.bne("r5", "r11", "loop")
    b.store("r14", "r7", 0)
    b.halt()
    return b.build()
