"""The Loop-Secret victim of Figure 4b.

Each loop iteration loads ``secret[i]`` and performs a transmit access
whose *address* depends on it — ``table[secret[i] * stride]``, the
classic secret-indexed lookup — between a replay handle and a pivot
that live on two *different* public pages.  The challenge the pivot
solves (§4.2.2): the handle maps to the same physical page every
iteration, so without the pivot the attacker could not tell iteration
*i*'s samples from iteration *i+1*'s.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.isa.program import Program, ProgramBuilder
from repro.kernel.process import Process
from repro.oracle.runtime import note_secret_write
from repro.victims.common import PIVOT, REPLAY_HANDLE, TRANSMIT


@dataclass(frozen=True)
class LoopSecretVictim:
    program: Program
    handle_va: int        # pub_addrA page (replay handle)
    pivot_va: int         # pub_addrB page (pivot), distinct page
    secrets_va: int       # secret value array (enclave-private)
    table_va: int         # lookup table indexed by the secret
    iterations: int
    stride: int

    @property
    def handle_index(self) -> int:
        return self.program.find_one(REPLAY_HANDLE)

    @property
    def pivot_index(self) -> int:
        return self.program.find_one(PIVOT)

    def table_line_va(self, line: int) -> int:
        return self.table_va + line * self.stride


def setup_loop_secret_victim(process: Process, secrets: List[int],
                             table_lines: int = 16,
                             stride: int = 64) -> LoopSecretVictim:
    """Allocate memory and build the Fig. 4b loop.

    ``secrets[i]`` must be in ``[0, table_lines)``; iteration *i*
    touches cache line ``secrets[i]`` of the table.
    """
    if not secrets:
        raise ValueError("need at least one secret")
    if any(not 0 <= s < table_lines for s in secrets):
        raise ValueError("secrets must index the table")
    handle_va = process.alloc(4096, "ls-handleA")
    pivot_va = process.alloc(4096, "ls-pivotB")
    secrets_va = process.alloc(8 * len(secrets), "ls-secrets")
    table_va = process.alloc(stride * table_lines, "ls-table")
    for i, secret in enumerate(secrets):
        process.write(secrets_va + i * 8, int(secret))
    note_secret_write(process, secrets_va, 8 * len(secrets))
    for line in range(table_lines):
        process.write(table_va + line * stride, line)
    program = build_loop_secret_program(
        handle_va, pivot_va, secrets_va, table_va, len(secrets), stride)
    return LoopSecretVictim(program, handle_va, pivot_va, secrets_va,
                            table_va, len(secrets), stride)


def build_loop_secret_program(handle_va: int, pivot_va: int,
                              secrets_va: int, table_va: int,
                              iterations: int, stride: int) -> Program:
    b = ProgramBuilder("loop-secret")
    b.li("r1", handle_va)
    b.li("r2", pivot_va)
    b.li("r3", secrets_va)
    b.li("r4", 0)               # i
    b.li("r5", iterations)
    b.li("r6", stride)
    b.li("r12", table_va)
    b.li("r13", 8)
    b.label("loop")
    # handle(pub_addrA)
    b.load("r7", "r1", 0, comment=REPLAY_HANDLE)
    # load secret[i]
    b.mul("r8", "r4", "r13")
    b.add("r8", "r8", "r3")
    b.load("r9", "r8", 0)
    # transmit(secret[i]): table[secret[i] * stride]
    b.mul("r10", "r9", "r6")
    b.add("r10", "r10", "r12")
    b.load("r11", "r10", 0, comment=TRANSMIT)
    # pivot(pub_addrB)
    b.load("r14", "r2", 0, comment=PIVOT)
    b.addi("r4", "r4", 1)
    b.bne("r4", "r5", "loop")
    b.halt()
    return b.build()
