"""The Single-Secret victim of Figures 4a and 5.

``getSecret(id, key)`` increments a public counter (the replay handle)
and returns ``secrets[id] / key``.  Two independent side channels hang
off the same code:

* the **division** is the transmit instruction — its latency reveals
  whether ``secrets[id] / key`` is a subnormal operation (§4.2.1);
* the **table load** ``secrets[id]`` leaves its cache line behind,
  revealing ``id``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.isa.program import Program, ProgramBuilder
from repro.kernel.process import Process
from repro.oracle.runtime import note_secret_write
from repro.victims.common import REPLAY_HANDLE, TRANSMIT

#: Number of float secrets in the table (Fig. 5a: 512).
NUM_SECRETS = 512


@dataclass(frozen=True)
class SingleSecretVictim:
    program: Program
    count_va: int       # the public counter page (replay handle)
    secrets_va: int     # the float table page(s)
    result_va: int      # where the result is stored

    @property
    def handle_index(self) -> int:
        return self.program.find_one(REPLAY_HANDLE)


def setup_single_secret_victim(process: Process, secrets: List[float],
                               secret_id: int, key: float
                               ) -> SingleSecretVictim:
    """Allocate and initialise the Fig. 5 victim.

    ``secrets`` is the (enclave-held) float table; the attacker's goal
    is to learn properties of ``secrets[secret_id] / key``.
    """
    if not 0 <= secret_id < len(secrets):
        raise ValueError("secret_id outside the secrets table")
    count_va = process.alloc(4096, "ss-count")
    secrets_va = process.alloc(8 * max(len(secrets), 1), "ss-secrets")
    result_va = process.alloc(4096, "ss-result")
    process.write(count_va, 0)
    process.write_words(secrets_va, [float(s) for s in secrets])
    # The whole table is enclave-held: which entry (and hence which
    # cache line) getSecret touches is the secret being protected.
    note_secret_write(process, secrets_va, 8 * max(len(secrets), 1))
    program = build_single_secret_program(
        count_va, secrets_va, result_va, secret_id, key)
    return SingleSecretVictim(program, count_va, secrets_va, result_va)


def build_single_secret_program(count_va: int, secrets_va: int,
                                result_va: int, secret_id: int,
                                key: float) -> Program:
    """The assembly of Fig. 5b, one call of ``getSecret``."""
    b = ProgramBuilder("single-secret")
    b.li("r1", count_va)
    b.li("r2", secrets_va)
    b.li("r3", result_va)
    b.fli("f1", key)
    # count++ : the replay handle (Fig. 5b line 6).
    b.load("r4", "r1", 0, comment=REPLAY_HANDLE)
    b.addi("r4", "r4", 1)
    b.store("r1", "r4", 0)
    # measurement access: secrets[id]  (Fig. 5b line 11).
    b.li("r5", secret_id * 8)
    b.add("r5", "r5", "r2")
    b.fload("f0", "r5", 0, comment=f"{TRANSMIT}-table-load")
    # divss: the transmit instruction (Fig. 5b line 12).
    b.fdiv("f2", "f0", "f1", comment=f"{TRANSMIT}-div")
    b.fstore("r3", "f2", 0)
    b.halt()
    return b.build()
