"""MicroScope: Enabling Microarchitectural Replay Attacks (ISCA 2019).

A full-system reproduction of Skarlatos et al.'s MicroScope on a
cycle-level simulator written from scratch:

* :mod:`repro.isa` -- the micro-ISA, programs and assembler;
* :mod:`repro.cpu` -- the out-of-order SMT core and machine;
* :mod:`repro.mem` -- physical memory and the cache hierarchy;
* :mod:`repro.vm` -- page tables, TLBs, PWC and the hardware walker;
* :mod:`repro.kernel` -- the simulated OS;
* :mod:`repro.sgx` -- enclaves, AEX, attestation;
* :mod:`repro.crypto` -- OpenSSL-style table AES;
* :mod:`repro.victims` -- the paper's victim/monitor programs;
* :mod:`repro.core` -- MicroScope itself: recipes, kernel module,
  Replayer, attacks and analysis;
* :mod:`repro.evaluation.defenses` -- the Section 8 countermeasures;
* :mod:`repro.baselines` -- the Table-1 comparison attacks;
* :mod:`repro.evaluation` -- the attack x defense matrix behind
  ``docs/RESULTS.md``;
* :mod:`repro.memo` -- the two-level deterministic compute cache
  (replay-window memoization + content-addressed trial store);
* :mod:`repro.batch` -- the lockstep machine fleet: N same-program
  lanes stepped for roughly the cost of one, bit-identical to scalar
  runs (``run_sweep(..., backend="batch")``);
* :mod:`repro.oracle` -- the taint-tracking leakage oracle: "does
  this defense work" as a checkable information-flow property
  (``Experiment(oracle=True)``, ``MatrixRunner(oracle=True)``,
  ``python -m repro oracle``; see ``docs/ORACLE.md``).

The public surface is promoted to this top level (and snapshotted by
``tests/api/api_surface.json``), so everyday use is one import::

    import repro

    result = repro.Experiment(
        attack=repro.PortContentionAttack(measurements=1500),
        victim={"secret": 1},
    ).run().result
    print(result.above_threshold, result.verdict)

Configuration lives in :mod:`repro.config`, sweep execution (plain
and fault-tolerant) in :mod:`repro.harness`, and the facade itself in
:mod:`repro.experiment`; the deeper module paths all remain public
for code that wants one abstraction level down.  Long-running
evaluation work can also be submitted to the job service
(``python -m repro serve``; :mod:`repro.service`) instead of
executing in-process — see ``docs/SERVICE.md``.
"""

from repro.batch import (
    FleetPlan,
    FleetTrial,
    LaneInit,
    LaneOutcome,
    MachineFleet,
    run_fleet,
)
from repro.config import (
    CacheConfig,
    CoreConfig,
    DefenseHookConfig,
    HierarchyConfig,
    MachineConfig,
    PWCConfig,
    TLBConfig,
    TLBHierarchyConfig,
    from_dict,
    to_dict,
)
from repro.core.attacks import (
    AESCacheAttack,
    AESKeyRecoveryAttack,
    ModExpExtractionAttack,
    PortContentionAttack,
    run_figure10,
)
from repro.core.module import MicroScopeConfig
from repro.core.replayer import AttackEnvironment, Replayer
from repro.cpu.machine import Machine
from repro.evaluation import (
    AttackSpec,
    CellMetrics,
    DefenseSpec,
    EvaluationMatrix,
    MatrixCell,
    MatrixRunner,
    classify_cell,
)
from repro.experiment import Experiment, ExperimentReport
from repro.harness import (
    ChaosPlan,
    FaultPolicy,
    SweepJournal,
    SweepReport,
    default_workers,
    derive_seed,
    merge_ordered,
    run_resilient_sweep,
    run_sweep,
)
from repro.kernel.kernel import KernelConfig
from repro.memo import (
    MemoConfig,
    TrialStore,
    Unmemoizable,
    WindowMemo,
    resolve_store,
    trial_key,
)
from repro.observability import EventTracer, MetricsRegistry
from repro.oracle import (
    LeakageEvent,
    LeakageSummary,
    OracleConfig,
    TaintOracle,
    oracle_consistency_verify,
)
from repro.service import JobSpec, ServiceClient, ServiceError
from repro.sgx.enclave import EnclaveConfig
from repro.snapshot import MachineSnapshot, state_digest, warm_start

__version__ = "1.7.0"

__all__ = [
    "AESCacheAttack",
    "AESKeyRecoveryAttack",
    "AttackEnvironment",
    "AttackSpec",
    "CacheConfig",
    "CellMetrics",
    "ChaosPlan",
    "CoreConfig",
    "DefenseHookConfig",
    "DefenseSpec",
    "EnclaveConfig",
    "EvaluationMatrix",
    "EventTracer",
    "Experiment",
    "ExperimentReport",
    "FaultPolicy",
    "FleetPlan",
    "FleetTrial",
    "HierarchyConfig",
    "JobSpec",
    "KernelConfig",
    "LaneInit",
    "LaneOutcome",
    "LeakageEvent",
    "LeakageSummary",
    "Machine",
    "MachineConfig",
    "MachineFleet",
    "MachineSnapshot",
    "MatrixCell",
    "MatrixRunner",
    "MemoConfig",
    "MetricsRegistry",
    "MicroScopeConfig",
    "ModExpExtractionAttack",
    "OracleConfig",
    "PWCConfig",
    "PortContentionAttack",
    "Replayer",
    "ServiceClient",
    "ServiceError",
    "SweepJournal",
    "SweepReport",
    "TLBConfig",
    "TLBHierarchyConfig",
    "TaintOracle",
    "TrialStore",
    "Unmemoizable",
    "WindowMemo",
    "classify_cell",
    "default_workers",
    "derive_seed",
    "from_dict",
    "merge_ordered",
    "oracle_consistency_verify",
    "resolve_store",
    "run_figure10",
    "run_fleet",
    "run_resilient_sweep",
    "run_sweep",
    "state_digest",
    "to_dict",
    "trial_key",
    "warm_start",
    "__version__",
]
