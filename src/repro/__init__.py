"""MicroScope: Enabling Microarchitectural Replay Attacks (ISCA 2019).

A full-system reproduction of Skarlatos et al.'s MicroScope on a
cycle-level simulator written from scratch:

* :mod:`repro.isa` -- the micro-ISA, programs and assembler;
* :mod:`repro.cpu` -- the out-of-order SMT core and machine;
* :mod:`repro.mem` -- physical memory and the cache hierarchy;
* :mod:`repro.vm` -- page tables, TLBs, PWC and the hardware walker;
* :mod:`repro.kernel` -- the simulated OS;
* :mod:`repro.sgx` -- enclaves, AEX, attestation;
* :mod:`repro.crypto` -- OpenSSL-style table AES;
* :mod:`repro.victims` -- the paper's victim/monitor programs;
* :mod:`repro.core` -- MicroScope itself: recipes, kernel module,
  Replayer, attacks and analysis;
* :mod:`repro.defenses` -- the Section 8 countermeasures;
* :mod:`repro.baselines` -- the Table-1 comparison attacks.

Quick start::

    from repro.core.attacks import PortContentionAttack
    result = PortContentionAttack(measurements=2000).run(secret=1)
    print(result.above_threshold, result.verdict)
"""

from repro.core.replayer import AttackEnvironment, Replayer

__version__ = "1.0.0"

__all__ = ["AttackEnvironment", "Replayer", "__version__"]
