"""Asynchronous Prime+Probe baseline ([9], [18]).

No synchronisation with the victim at all: the attacker periodically
probes and re-primes the monitored lines while the victim free-runs.
Table 1 classifies these as fine-grain but *low temporal resolution*
and high noise — "generally, they require hundreds of traces to get
modestly reliable results".

In our deterministic simulator the noise appears as smearing: a probe
period spans several victim iterations, so each probe returns the
union of several secret-dependent accesses with no ordering at all.
The attack recovers the *set* of secrets reasonably well but the
*sequence* poorly — exactly the resolution gap MicroScope closes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set

from repro.core.analysis import classify_hits
from repro.core.module import MicroScopeConfig
from repro.core.replayer import AttackEnvironment, Replayer
from repro.victims.loop_secret import setup_loop_secret_victim


@dataclass
class PrimeProbeReport:
    truth: List[int]
    probes: List[List[int]]
    recovered_set: Set[int]
    extracted: List[Optional[int]]

    @property
    def set_recall(self) -> float:
        truth_set = set(self.truth)
        if not truth_set:
            return 1.0
        return len(self.recovered_set & truth_set) / len(truth_set)

    @property
    def sequence_accuracy(self) -> float:
        if not self.truth:
            return 1.0
        good = sum(1 for g, t in zip(self.extracted, self.truth)
                   if g == t)
        return good / len(self.truth)


class AsyncPrimeProbeAttack:
    """Unsynchronised cache probing of the loop-secret victim."""

    def __init__(self, period: int = 1500, table_lines: int = 16,
                 probe_noise: float = 0.0):
        self.period = period
        self.table_lines = table_lines
        self.probe_noise = probe_noise

    def run(self, secrets: List[int]) -> PrimeProbeReport:
        rep = Replayer(AttackEnvironment.build(
            module_config=MicroScopeConfig(
                probe_noise=self.probe_noise)))
        victim_proc = rep.create_victim_process("pp-victim")
        victim = setup_loop_secret_victim(victim_proc, secrets,
                                          table_lines=self.table_lines)
        probe_addrs = [victim.table_line_va(line)
                       for line in range(self.table_lines)]
        module = rep.module
        threshold = rep.machine.hierarchy.hit_latency(1)
        probes: List[List[int]] = []

        rep.launch_victim(victim_proc, victim.program)
        module.prime_lines(victim_proc, probe_addrs)
        ctx = rep.machine.contexts[0]
        budget = 3_000_000
        while budget > 0 and not ctx.finished():
            rep.machine.step(self.period)
            budget -= self.period
            probes.append(classify_hits(
                module.probe_lines(victim_proc, probe_addrs), threshold))
            module.prime_lines(victim_proc, probe_addrs)

        recovered: Set[int] = set()
        for hits in probes:
            recovered.update(hits)
        # Sequence reconstruction is only possible when a probe window
        # happened to contain exactly one access.
        extracted: List[Optional[int]] = []
        for hits in probes:
            if len(hits) == 1:
                extracted.append(hits[0])
            else:
                extracted.extend([None] * len(hits))
        extracted = extracted[:len(secrets)]
        extracted += [None] * (len(secrets) - len(extracted))
        return PrimeProbeReport(truth=list(secrets), probes=probes,
                                recovered_set=recovered,
                                extracted=extracted)
