"""SGX-Step / CacheZoom-style baseline ([57], [40]).

High-resolution timer interrupts stop the victim every few accesses;
between interrupts the attacker Prime+Probes the cache.  Table 1
classifies these as fine-grain, medium/high resolution, *with noise*:
"although these techniques encounter relatively low noise, they still
require multiple runs of the application to denoise the exfiltrated
information."

Our simulator is deterministic, so the channel's noise shows up in its
purest form: interrupt intervals are not aligned with the victim's
iterations, so an interval may contain zero, one, or several secret
accesses — per-interval attribution is ambiguous in a single run, and
runs with different phases must be combined.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.analysis import classify_hits
from repro.core.module import MicroScopeConfig
from repro.core.replayer import AttackEnvironment, Replayer
from repro.cpu.traps import TrapAction
from repro.victims.loop_secret import setup_loop_secret_victim


@dataclass
class SteppingRunResult:
    #: Hit lines per interrupt interval, in order.
    interval_hits: List[List[int]]
    truth: List[int]
    #: Per-iteration guesses from this single run (None = ambiguous).
    extracted: List[Optional[int]]

    @property
    def single_run_accuracy(self) -> float:
        if not self.truth:
            return 1.0
        good = sum(1 for g, t in zip(self.extracted, self.truth)
                   if g == t)
        return good / len(self.truth)


@dataclass
class SteppingAttackReport:
    runs: List[SteppingRunResult]
    truth: List[int]
    combined: List[Optional[int]]

    @property
    def single_run_accuracy(self) -> float:
        return sum(r.single_run_accuracy
                   for r in self.runs) / max(len(self.runs), 1)

    @property
    def combined_accuracy(self) -> float:
        if not self.truth:
            return 1.0
        good = sum(1 for g, t in zip(self.combined, self.truth)
                   if g == t)
        return good / len(self.truth)


class SGXStepAttack:
    """Interrupt-driven Prime+Probe against the loop-secret victim."""

    def __init__(self, instructions_per_step: int = 9,
                 table_lines: int = 16, interrupt_cost: int = 1200,
                 probe_noise: float = 0.0):
        #: Victim instructions allowed to retire between interrupts —
        #: SGX-Step paces its APIC timer by enclave progress.
        self.instructions_per_step = instructions_per_step
        self.table_lines = table_lines
        self.interrupt_cost = interrupt_cost
        self.probe_noise = probe_noise

    def run_once(self, secrets: List[int], phase: int = 0,
                 seed_salt: int = 0) -> SteppingRunResult:
        rep = Replayer(AttackEnvironment.build(
            module_config=MicroScopeConfig(
                probe_noise=self.probe_noise,
                probe_noise_seed=991 + 7919 * seed_salt + phase)))
        victim_proc = rep.create_victim_process("step-victim")
        victim = setup_loop_secret_victim(victim_proc, secrets,
                                          table_lines=self.table_lines)
        probe_addrs = [victim.table_line_va(line)
                       for line in range(self.table_lines)]
        module = rep.module
        threshold = rep.machine.hierarchy.hit_latency(1)
        interval_hits: List[List[int]] = []

        def on_interrupt(context, reason):
            if reason != "sgx-step":
                return None
            hits = classify_hits(
                module.probe_lines(victim_proc, probe_addrs), threshold)
            interval_hits.append(hits)
            module.prime_lines(victim_proc, probe_addrs)
            return TrapAction(cost=self.interrupt_cost)

        rep.kernel.add_interrupt_hook(on_interrupt)
        rep.launch_victim(victim_proc, victim.program)
        module.prime_lines(victim_proc, probe_addrs)
        ctx = rep.machine.contexts[0]
        next_target = phase or self.instructions_per_step
        budget = 5_000_000
        while budget > 0 and not ctx.finished():
            # Single-cycle polling: the APIC one-shot timer fires with
            # instruction precision.
            rep.machine.step(1)
            budget -= 1
            if (ctx.stats.retired >= next_target
                    and ctx.pending_interrupt is None
                    and not ctx.finished()):
                ctx.pending_interrupt = "sgx-step"
                next_target = (ctx.stats.retired
                               + self.instructions_per_step)
        # Final probe catches the tail accesses.
        hits = classify_hits(
            module.probe_lines(victim_proc, probe_addrs), threshold)
        interval_hits.append(hits)
        extracted = self._attribute(interval_hits, len(secrets))
        return SteppingRunResult(interval_hits=interval_hits,
                                 truth=list(secrets),
                                 extracted=extracted)

    @staticmethod
    def _attribute(interval_hits: List[List[int]],
                   n: int) -> List[Optional[int]]:
        """Per-iteration attribution by successive differences.

        Deep out-of-order speculation re-touches every *unretired*
        iteration's line after each re-prime, so a line stays visible
        until its iteration retires and disappears afterwards.  The
        lines vanishing between consecutive probes are the secrets
        consumed in that step — unordered when more than one vanishes,
        which is this channel's noise.
        """
        raw_sets = [set(hits) for hits in interval_hits]
        all_lines = set().union(*raw_sets) if raw_sets else set()
        # Median-of-three smoothing per line: isolated flips are the
        # probe's measurement noise.
        sets: List[set] = [set() for _ in raw_sets]
        for line in all_lines:
            bits = [line in s for s in raw_sets]
            for k in range(len(bits)):
                window = bits[max(0, k - 1):k + 2]
                if sum(window) * 2 > len(window):
                    sets[k].add(line)
        sequence: List[Optional[int]] = []
        for k in range(len(sets) - 1):
            gone = sets[k] - sets[k + 1]
            if len(gone) == 1:
                sequence.append(gone.pop())
            else:
                sequence.extend([None] * len(gone))
        tail = sets[-1] if sets else set()
        if len(tail) == 1:
            sequence.append(next(iter(tail)))
        else:
            sequence.extend([None] * len(tail))
        sequence = sequence[:n]
        sequence += [None] * (n - len(sequence))
        return sequence

    def run(self, secrets: List[int], runs: int = 5
            ) -> SteppingAttackReport:
        """Multiple runs with different interrupt phases, majority
        combined — the paper's "multiple runs to denoise"."""
        # Same pacing each run (so per-iteration positions align) but
        # independent noise — each run is a fresh trace of the same
        # logical execution, which is exactly what "requires multiple
        # runs of the application" costs the baseline.
        results = [self.run_once(secrets, seed_salt=r)
                   for r in range(runs)]
        combined: List[Optional[int]] = []
        for i in range(len(secrets)):
            votes: Dict[int, int] = {}
            for result in results:
                guess = result.extracted[i]
                if guess is not None:
                    votes[guess] = votes.get(guess, 0) + 1
            if votes:
                best = max(votes.items(), key=lambda kv: kv[1])
                combined.append(best[0])
            else:
                combined.append(None)
        return SteppingAttackReport(runs=results, truth=list(secrets),
                                    combined=combined)
