"""Controlled-channel attack baseline (Xu et al. [60]).

The OS revokes page presence and logs the resulting fault sequence —
a *noiseless* channel, but spatially limited to 4 KiB pages (Table 1's
"coarse grain / no noise" row).  We demonstrate both properties:

* a secret that selects between two *pages* is recovered perfectly;
* a secret that selects between two *cache lines of the same page* is
  invisible — the limitation MicroScope lifts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.config import MachineConfig
from repro.core.replayer import AttackEnvironment, Replayer
from repro.cpu.traps import TrapAction
from repro.isa.program import Program, ProgramBuilder
from repro.kernel.process import Process
from repro.oracle.runtime import note_secret_write
from repro.vm import address as vaddr


def build_page_secret_victim(handle_va: int, secret_va: int,
                             pageB_va: int, pageC_va: int,
                             same_page: bool,
                             oblivious: bool = False) -> Program:
    """Branch on a secret; the taken path touches page C (or, in the
    ``same_page`` variant, merely a different *line* of page B).

    With ``oblivious=True`` the program is the PF-oblivious rewrite
    (Shinde et al. [51], §8): both paths touch page B then page C in
    the same order, so the fault sequence carries no signal.
    """
    b = ProgramBuilder("cc-victim-oblivious" if oblivious
                       else "cc-victim")
    b.li("r1", handle_va)
    b.li("r2", secret_va)
    b.li("r3", pageB_va)
    b.li("r4", pageB_va + 512 if same_page else pageC_va)
    b.load("r5", "r1", 0)
    b.load("r6", "r2", 0)
    b.li("r7", 0)
    b.bne("r6", "r7", "path_c")
    b.load("r8", "r3", 0)
    if oblivious and not same_page:
        b.load("r9", "r4", 0)   # redundant access: page C
    b.jmp("done")
    b.label("path_c")
    if oblivious and not same_page:
        b.load("r9", "r3", 0)   # redundant access first: page B
    b.load("r8", "r4", 0)
    b.label("done")
    b.halt()
    return b.build()


@dataclass
class ControlledChannelResult:
    secret: int
    fault_vpns: List[int]
    guessed: Optional[int]
    same_page_variant: bool

    @property
    def correct(self) -> bool:
        return self.guessed == self.secret


@dataclass
class ControlledChannelAttack:
    """Log the victim's page-fault sequence and infer the secret."""

    #: Machine-level defense knobs (``None`` = stock platform).
    machine: Optional[MachineConfig] = None
    #: Attack the PF-oblivious rewrite of the victim (§8, [51]): the
    #: fault sequence becomes input-invariant, which is exactly what
    #: this page-granular channel cannot see through.
    oblivious: bool = False
    #: Optional victim transform applied before launch (e.g.
    #: ``repro.evaluation.defenses.tsgx.wrap_with_tsgx``): a callable
    #: ``(program, process) -> program``.
    victim_wrapper: Optional[
        Callable[[Program, Process], Program]] = None

    def run(self, secret: int,
            same_page: bool = False) -> ControlledChannelResult:
        rep = Replayer(AttackEnvironment.build(
            machine_config=self.machine))
        victim_proc = rep.create_victim_process("cc-victim")
        handle_va = victim_proc.alloc(4096, "cc-handle")
        secret_va = victim_proc.alloc(4096, "cc-secret")
        pageB_va = victim_proc.alloc(4096, "cc-pageB")
        pageC_va = victim_proc.alloc(4096, "cc-pageC")
        victim_proc.write(secret_va, secret)
        note_secret_write(victim_proc, secret_va)
        program = build_page_secret_victim(
            handle_va, secret_va, pageB_va, pageC_va, same_page,
            oblivious=self.oblivious)
        if self.victim_wrapper is not None:
            program = self.victim_wrapper(program, victim_proc)

        fault_vpns: List[int] = []

        def log_hook(context, fault):
            if context.process is victim_proc:
                fault_vpns.append(fault.vpn)
                # Service the fault like a regular demand pager so the
                # victim proceeds (one observation per page).
                rep.kernel.set_present(victim_proc, fault.va, True)
                return TrapAction(cost=3000)
            return None

        rep.kernel.add_fault_hook(log_hook)
        # Revoke presence of the two observable pages.
        rep.kernel.set_present(victim_proc, pageB_va, False)
        rep.kernel.set_present(victim_proc, pageC_va, False)
        rep.machine.hierarchy.flush_all()
        rep.machine.pwc.flush_all()
        rep.launch_victim(victim_proc, program)
        rep.run_until_victim_done(context_id=0, max_cycles=1_000_000)

        vpnB = vaddr.vpn(pageB_va)
        vpnC = vaddr.vpn(pageC_va)
        guessed: Optional[int] = None
        if vpnC in fault_vpns:
            guessed = 1
        elif vpnB in fault_vpns:
            # Page granularity: in the same-page variant both secrets
            # fault on page B, so this observation carries no signal.
            guessed = None if same_page else 0
        return ControlledChannelResult(secret=secret,
                                       fault_vpns=fault_vpns,
                                       guessed=guessed,
                                       same_page_variant=same_page)
