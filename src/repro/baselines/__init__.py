"""Baseline side-channel attacks — the comparison rows of Table 1."""

from repro.baselines.controlled_channel import (
    ControlledChannelAttack,
    ControlledChannelResult,
    build_page_secret_victim,
)
from repro.baselines.prime_probe import AsyncPrimeProbeAttack, PrimeProbeReport
from repro.baselines.sgx_step import (
    SGXStepAttack,
    SteppingAttackReport,
    SteppingRunResult,
)

__all__ = [
    "ControlledChannelAttack",
    "ControlledChannelResult",
    "build_page_secret_victim",
    "AsyncPrimeProbeAttack",
    "PrimeProbeReport",
    "SGXStepAttack",
    "SteppingAttackReport",
    "SteppingRunResult",
]
