"""Newline-delimited JSON over a local socket.

Every service message — request, response, and streamed progress
event — is one JSON object on one line, UTF-8, ``\\n``-terminated.
Requests carry an ``"op"`` field; responses carry ``"ok"`` (plus the
payload) or ``"ok": false`` with an ``"error"`` string.  The framing
is deliberately the same as the journal and ledger files: everything
in the service is a line of JSON, greppable and replayable.

Both flavours live here: the asyncio pair used by the server
(:func:`send_message` / :func:`read_message`) and the blocking pair
used by the client (:func:`send_line` / :func:`recv_line`).
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional

#: Upper bound on one message line — a matrix payload is well under
#: this; anything bigger is a protocol violation, not data.
MAX_LINE_BYTES = 64 * 1024 * 1024


class ProtocolError(RuntimeError):
    """The peer sent something that is not one JSON object per line."""


def encode(message: Dict[str, Any]) -> bytes:
    """One message → one UTF-8 line (sorted keys: byte-stable)."""
    return (json.dumps(message, sort_keys=True) + "\n").encode("utf-8")


def decode(line: bytes) -> Dict[str, Any]:
    """One line → one message dict (raises :class:`ProtocolError`)."""
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable message line: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(
            f"message must be a JSON object, got {type(message).__name__}")
    return message


# --- asyncio side (server) ------------------------------------------------


async def send_message(writer: asyncio.StreamWriter,
                       message: Dict[str, Any]) -> None:
    """Write one message line and drain."""
    writer.write(encode(message))
    await writer.drain()


async def read_message(reader: asyncio.StreamReader
                       ) -> Optional[Dict[str, Any]]:
    """Read one message line; ``None`` on clean EOF."""
    try:
        line = await reader.readline()
    except (ConnectionError, asyncio.LimitOverrunError) as exc:
        raise ProtocolError(f"connection failed mid-line: {exc}") from exc
    if not line:
        return None
    if not line.endswith(b"\n"):
        raise ProtocolError("connection closed mid-line")
    return decode(line)


# --- blocking side (client) -----------------------------------------------


def send_line(sock, message: Dict[str, Any]) -> None:
    """Send one message line on a blocking socket."""
    sock.sendall(encode(message))


def recv_line(fh) -> Optional[Dict[str, Any]]:
    """Read one message line from ``sock.makefile('rb')``; ``None``
    on clean EOF."""
    line = fh.readline(MAX_LINE_BYTES)
    if not line:
        return None
    if not line.endswith(b"\n"):
        raise ProtocolError("connection closed mid-line")
    return decode(line)


__all__ = [
    "MAX_LINE_BYTES",
    "ProtocolError",
    "decode",
    "encode",
    "read_message",
    "recv_line",
    "send_line",
    "send_message",
]
