"""Job specifications and lifecycle records for the experiment service.

A *job* is one attack × defense matrix: a queue of
``(attack, defense, config, seed)`` cells executed through the same
trial function, seed lineage and classification code as a local
:class:`repro.evaluation.MatrixRunner` run — so a job's payload is
bit-identical to what the client would have computed itself.

Job identity is *content-addressed*: :func:`job_id` hashes the
canonical JSON of the spec, so resubmitting the same matrix maps to
the same job directory (journal, ledger, result) and therefore
resumes instead of recomputing — the service-level analogue of the
:class:`~repro.memo.store.TrialStore` discipline.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.memo.keys import canonical_json

#: Job lifecycle states, in the order they normally occur.
JOB_STATES = ("queued", "running", "done", "failed")


@dataclass(frozen=True)
class JobSpec:
    """What to run: one matrix job, declaratively.

    Empty ``attacks``/``defenses`` mean "every registered one" — the
    same convention as :class:`repro.evaluation.MatrixRunner`.
    ``workers`` is the number of sharded cell executors the server
    runs for this job; ``backend`` names the
    :class:`~repro.harness.backends.ExecutionBackend` each executor
    dispatches through.
    """

    attacks: Tuple[str, ...] = ()
    defenses: Tuple[str, ...] = ()
    overrides: Mapping[str, Mapping[str, Any]] = field(
        default_factory=dict)
    master_seed: Optional[int] = None
    label: Optional[str] = None
    backend: str = "scalar"
    workers: int = 1

    def __post_init__(self):
        object.__setattr__(self, "attacks", tuple(self.attacks))
        object.__setattr__(self, "defenses", tuple(self.defenses))
        object.__setattr__(
            self, "overrides",
            {str(a): dict(o) for a, o in dict(self.overrides).items()})
        if self.workers < 1:
            raise ValueError("workers must be >= 1")

    # --- resolution -------------------------------------------------------

    def resolved(self) -> "JobSpec":
        """The spec with defaults and registry wildcards filled in
        (and names validated) — the canonical form jobs are hashed
        and executed under."""
        from repro.evaluation.attacks import attack_names, get_attack
        from repro.evaluation.defenses import defense_names, get_defense
        from repro.evaluation.matrix import (
            DEFAULT_LABEL,
            DEFAULT_MASTER_SEED,
        )
        attacks = self.attacks or attack_names()
        defenses = self.defenses or defense_names()
        for name in attacks:
            get_attack(name)
        for name in defenses:
            get_defense(name)
        return JobSpec(
            attacks=attacks, defenses=defenses,
            overrides=self.overrides,
            master_seed=(DEFAULT_MASTER_SEED
                         if self.master_seed is None
                         else int(self.master_seed)),
            label=(DEFAULT_LABEL if self.label is None
                   else str(self.label)),
            backend=self.backend, workers=self.workers)

    def cells(self) -> List[Tuple[str, str, Dict[str, Any]]]:
        """The job's trial parameter list, in cell-seed order."""
        from repro.evaluation.matrix import matrix_params
        spec = self.resolved()
        return matrix_params(spec.attacks, spec.defenses,
                             spec.overrides)

    @property
    def trial_count(self) -> int:
        """How many cells the job executes."""
        return len(self.cells())

    # --- serialisation ----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form (stable key order via sorted dumps)."""
        return {
            "attacks": list(self.attacks),
            "backend": self.backend,
            "defenses": list(self.defenses),
            "label": self.label,
            "master_seed": self.master_seed,
            "overrides": {a: dict(o)
                          for a, o in self.overrides.items()},
            "workers": self.workers,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "JobSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        return cls(
            attacks=tuple(payload.get("attacks") or ()),
            defenses=tuple(payload.get("defenses") or ()),
            overrides=payload.get("overrides") or {},
            master_seed=payload.get("master_seed"),
            label=payload.get("label"),
            backend=payload.get("backend", "scalar"),
            workers=int(payload.get("workers", 1)))


def job_id(spec: JobSpec) -> str:
    """Content address of a job: SHA-256 over the canonical JSON of
    the *resolved* spec, truncated to 16 hex chars.  Identical
    matrices — however they were spelled (wildcards, dict order) —
    get identical ids, so resubmission resumes the same journal.

    ``workers`` is deliberately excluded: how many shards execute a
    matrix never changes its results, so it must not change its
    identity either.
    """
    resolved = spec.resolved()
    material = canonical_json({
        "attacks": list(resolved.attacks),
        "backend": resolved.backend,
        "defenses": list(resolved.defenses),
        "label": resolved.label,
        "master_seed": resolved.master_seed,
        "overrides": resolved.overrides,
    })
    return hashlib.sha256(material.encode("utf-8")).hexdigest()[:16]


@dataclass
class JobRecord:
    """Server-side lifecycle state of one job."""

    job: str
    spec: JobSpec
    state: str = "queued"
    done: int = 0
    total: int = 0
    error: str = ""
    #: MetricsRegistry dump recorded when the job finishes.
    metrics: Optional[Dict[str, Any]] = None
    #: TrialStore counter deltas for this job's run.
    cache: Optional[Dict[str, int]] = None
    #: Host seconds the run took (accounting only; never part of the
    #: result payload, which must stay bit-identical across runs).
    wall_seconds: float = 0.0

    def status(self) -> Dict[str, Any]:
        """The JSON status payload served to clients."""
        return {
            "job": self.job,
            "state": self.state,
            "done": self.done,
            "total": self.total,
            "error": self.error or None,
            "cache": self.cache,
            "metrics": self.metrics,
            "wall_seconds": round(self.wall_seconds, 6),
            "spec": self.spec.to_dict(),
        }


__all__ = ["JOB_STATES", "JobRecord", "JobSpec", "job_id"]
