"""The experiment job service: matrices as submittable jobs.

``python -m repro serve`` boots an asyncio server that accepts
(attack × defense × config × seed) matrix jobs over a local
line-JSON socket, shards each job's cells across worker threads via
an append-only claim ledger, journals every completed cell, and
serves byte-stable results — so a server killed mid-job and
restarted resumes with **zero recomputed cells** and a bit-identical
``result.json``.

The pieces:

* :mod:`repro.service.jobs` — :class:`JobSpec` (content-addressed:
  identical matrices get identical job ids) and job lifecycle records;
* :mod:`repro.service.ledger` — :class:`CellLedger`, the
  journal-as-coordination-log that shards cells across workers;
* :mod:`repro.service.executor` — :class:`CellExecutor`, one
  worker's claim/execute/journal loop, running cells through the
  pluggable :mod:`repro.harness.backends` layer and the shared
  :class:`~repro.memo.store.TrialStore`;
* :mod:`repro.service.server` — :class:`ExperimentServer` and
  :func:`serve`;
* :mod:`repro.service.client` — the blocking :class:`ServiceClient`
  (``submit`` / ``status`` / ``watch`` / ``result``), which
  :class:`repro.evaluation.MatrixRunner` uses when given
  ``service=``;
* :mod:`repro.service.protocol` — the newline-JSON wire format.

See ``docs/SERVICE.md`` for the protocol and the crash-recovery
story.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.executor import SERVICE_POLICY, CellExecutor
from repro.service.jobs import JOB_STATES, JobRecord, JobSpec, job_id
from repro.service.ledger import DEFAULT_LEASE, CellLedger
from repro.service.protocol import ProtocolError
from repro.service.server import (
    ENDPOINT_FILE,
    ExperimentServer,
    serve,
)

__all__ = [
    "DEFAULT_LEASE",
    "ENDPOINT_FILE",
    "JOB_STATES",
    "SERVICE_POLICY",
    "CellExecutor",
    "CellLedger",
    "ExperimentServer",
    "JobRecord",
    "JobSpec",
    "ProtocolError",
    "ServiceClient",
    "ServiceError",
    "job_id",
    "serve",
]
