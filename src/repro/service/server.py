"""``repro.service`` — the asyncio experiment job server.

``python -m repro serve --state-dir DIR`` turns the evaluation matrix
into a service: clients submit (attack × defense × config × seed)
jobs over a local socket, the server shards each job's cells across
worker threads, and every intermediate is a file in the job
directory::

    DIR/
      endpoint.json            # {"host": ..., "port": ..., "pid": ...}
      store/                   # shared content-addressed TrialStore
      jobs/<job id>/
        spec.json              # the resolved JobSpec
        journal.jsonl          # sweep journal — completion truth
        ledger.jsonl           # cell claim ledger — sharding truth
        result.json            # the EvaluationMatrix (byte-stable)
        metrics.json           # per-shard SweepReports + registry dump

Crash safety is structural, not transactional: kill the server at any
instant and restart it on the same state directory — boot recovery
re-enqueues every job with a spec but no result, the new executors
append an epoch to the ledger (voiding the dead process's claims) and
resume from the journal, so no journalled cell ever reruns and the
final ``result.json`` is byte-identical to an uninterrupted run
(enforced by the ``service-smoke`` CI job).
"""

from __future__ import annotations

import asyncio
import json
import os
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Set

from repro.evaluation.matrix import _cell_trial, build_matrix
from repro.harness.journal import SweepJournal
from repro.observability.registry import MetricsRegistry
from repro.service.executor import CellExecutor
from repro.service.jobs import JobRecord, JobSpec, job_id
from repro.service.ledger import DEFAULT_LEASE, CellLedger
from repro.service.protocol import (
    ProtocolError,
    read_message,
    send_message,
)

#: File announcing where a running server listens.
ENDPOINT_FILE = "endpoint.json"


def _atomic_write(path: Path, data: bytes) -> None:
    """Write via tempfile + rename so readers never see a torn file."""
    tmp = path.with_name(path.name + f".tmp.{os.getpid()}")
    tmp.write_bytes(data)
    os.replace(tmp, path)


class ExperimentServer:
    """The job server: queue, shards, and the line-JSON endpoint."""

    def __init__(self, state_dir, *, host: str = "127.0.0.1",
                 port: int = 0, cache_dir: Any = None,
                 lease: float = DEFAULT_LEASE) -> None:
        self.state_dir = Path(state_dir)
        self.host = host
        self.port = port
        self.lease = lease
        self.jobs: Dict[str, JobRecord] = {}
        self._cache_dir = Path(cache_dir) if cache_dir is not None \
            else self.state_dir / "store"
        self._store: Any = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._tasks: Set[asyncio.Task] = set()
        self._watchers: Dict[str, List[asyncio.Queue]] = {}
        self._stopping: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._worker_tag = f"srv-{os.getpid()}"

    # --- paths ------------------------------------------------------------

    def job_dir(self, job: str) -> Path:
        """The on-disk directory of one job."""
        return self.state_dir / "jobs" / job

    @property
    def endpoint_path(self) -> Path:
        """Where :data:`ENDPOINT_FILE` lives for this state dir."""
        return self.state_dir / ENDPOINT_FILE

    # --- lifecycle --------------------------------------------------------

    async def start(self) -> None:
        """Bind the socket, write the endpoint file, recover jobs."""
        from repro.memo.store import TrialStore
        self._loop = asyncio.get_running_loop()
        self._stopping = asyncio.Event()
        self.state_dir.mkdir(parents=True, exist_ok=True)
        self._store = TrialStore(self._cache_dir)
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port)
        self.host, self.port = \
            self._server.sockets[0].getsockname()[:2]
        _atomic_write(self.endpoint_path, json.dumps(
            {"host": self.host, "pid": os.getpid(),
             "port": self.port}, sort_keys=True).encode() + b"\n")
        self._recover()

    def _recover(self) -> None:
        """Re-enqueue every job a dead server left unfinished."""
        jobs_root = self.state_dir / "jobs"
        if not jobs_root.is_dir():
            return
        for spec_path in sorted(jobs_root.glob("*/spec.json")):
            jid = spec_path.parent.name
            try:
                spec = JobSpec.from_dict(
                    json.loads(spec_path.read_text()))
            except (OSError, ValueError, KeyError):
                continue
            record = JobRecord(job=jid, spec=spec,
                               total=spec.trial_count)
            self.jobs[jid] = record
            if (spec_path.parent / "result.json").exists():
                record.state = "done"
                record.done = record.total
            else:
                self._launch(record)

    async def run_forever(self) -> None:
        """Serve until :meth:`stop` (or the ``shutdown`` op)."""
        assert self._stopping is not None
        await self._stopping.wait()
        await self._shutdown()

    def stop(self) -> None:
        """Ask the server to wind down (idempotent, thread-unsafe)."""
        if self._stopping is not None:
            self._stopping.set()

    async def _shutdown(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in list(self._tasks):
            task.cancel()
        if self._tasks:
            await asyncio.gather(*self._tasks,
                                 return_exceptions=True)
        try:
            self.endpoint_path.unlink()
        except OSError:
            pass

    # --- job execution ----------------------------------------------------

    def _launch(self, record: JobRecord) -> None:
        assert self._loop is not None
        task = self._loop.create_task(self._run_job(record))
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    def _notify(self, job: str, event: Dict[str, Any]) -> None:
        for queue in self._watchers.get(job, []):
            queue.put_nowait(event)

    def _progress(self, record: JobRecord, done: int) -> None:
        """Thread-safe progress hook handed to executors."""
        def apply() -> None:
            if done > record.done:
                record.done = done
                self._notify(record.job, {
                    "event": "progress", "job": record.job,
                    "done": record.done, "total": record.total})
        assert self._loop is not None
        self._loop.call_soon_threadsafe(apply)

    async def _run_job(self, record: JobRecord) -> None:
        spec = record.spec.resolved()
        job_dir = self.job_dir(record.job)
        journal_path = job_dir / "journal.jsonl"
        params = spec.cells()
        record.total = len(params)
        record.state = "running"
        self._notify(record.job, {"event": "state",
                                  "job": record.job,
                                  "state": "running"})
        t0 = time.perf_counter()
        try:
            # The server (one task per job) creates the journal header
            # before any executor opens the file, so concurrent
            # shards never race to write it.
            header = SweepJournal(journal_path, atomic=True)
            header.open(spec.label, spec.master_seed, len(params))
            header.close()
            ledger = CellLedger(job_dir / "ledger.jsonl",
                                lease=self.lease)
            # Restart fence: claims of any dead predecessor are void.
            ledger.epoch(self._worker_tag)
            stopping = self._stopping
            executors = [
                CellExecutor(
                    trial_fn=_cell_trial, params=list(params),
                    journal_path=journal_path, ledger=ledger,
                    worker=f"{self._worker_tag}:{shard}",
                    master_seed=spec.master_seed, label=spec.label,
                    backend=spec.backend, workers=1,
                    store=self._store,
                    on_progress=lambda done, r=record:
                        self._progress(r, done),
                    should_stop=(stopping.is_set
                                 if stopping is not None else None))
                for shard in range(max(spec.workers, 1))]
            shard_results = await asyncio.gather(*[
                asyncio.to_thread(executor.run)
                for executor in executors])
            if self._stopping is not None \
                    and self._stopping.is_set():
                return  # shutdown mid-job: leave it resumable
            # The journal is the completion truth — assemble the
            # matrix from it, not from any single shard's view.
            completed = SweepJournal(journal_path).bind(
                spec.label, spec.master_seed, len(params)).peek()
            results = [completed[i][1] if i in completed else None
                       for i in range(len(params))]
            matrix = build_matrix(
                spec.attacks, spec.defenses, params, results,
                master_seed=spec.master_seed, label=spec.label)
            _atomic_write(job_dir / "result.json", (json.dumps(
                matrix.to_dict(), sort_keys=True, indent=2)
                + "\n").encode("utf-8"))
            record.wall_seconds = time.perf_counter() - t0
            self._account(record, [r for _, r in shard_results])
            _atomic_write(job_dir / "metrics.json", (json.dumps(
                {"cache": record.cache, "job": record.job,
                 "metrics": record.metrics,
                 "shards": [r.to_dict()
                            for _, r in shard_results],
                 "wall_seconds": record.wall_seconds},
                sort_keys=True, indent=2) + "\n").encode("utf-8"))
            record.done = record.total
            record.state = "done"
        except Exception as exc:  # noqa: BLE001 - job must not kill server
            record.state = "failed"
            record.error = f"{type(exc).__name__}: {exc}"
        finally:
            if record.state != "running":
                self._notify(record.job, {
                    "event": "state", "job": record.job,
                    "state": record.state,
                    "error": record.error or None})

    def _account(self, record: JobRecord, reports: List[Any]) -> None:
        """Fold the shard SweepReports into the job's metrics dump."""
        registry = MetricsRegistry()
        cache: Dict[str, int] = {}
        for report in reports:
            report.record_into(registry, prefix="service.job")
            for name, count in (report.cache or {}).items():
                cache[name] = cache.get(name, 0) + count
        record.metrics = registry.dump()
        record.cache = cache or None

    # --- the endpoint -----------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    message = await read_message(reader)
                except ProtocolError as exc:
                    await send_message(writer, {"ok": False,
                                                "error": str(exc)})
                    break
                if message is None:
                    break
                try:
                    done = await self._dispatch(message, writer)
                except Exception as exc:  # noqa: BLE001 - reply, don't die
                    await send_message(writer, {
                        "ok": False,
                        "error": f"{type(exc).__name__}: {exc}"})
                    done = False
                if done:
                    break
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _dispatch(self, message: Dict[str, Any],
                        writer: asyncio.StreamWriter) -> bool:
        """Handle one request; ``True`` closes the connection."""
        op = message.get("op")
        if op == "ping":
            await send_message(writer, {"ok": True, "pid": os.getpid(),
                                        "pong": True})
            return False
        if op == "submit":
            await send_message(writer, self._op_submit(message))
            return False
        if op == "status":
            await send_message(writer,
                               self._op_status(message.get("job")))
            return False
        if op == "result":
            await send_message(writer,
                               self._op_result(message.get("job")))
            return False
        if op == "jobs":
            await send_message(writer, {
                "ok": True,
                "jobs": [self.jobs[j].status()
                         for j in sorted(self.jobs)]})
            return False
        if op == "watch":
            await self._op_watch(message.get("job"), writer)
            return True
        if op == "shutdown":
            await send_message(writer, {"ok": True, "stopping": True})
            self.stop()
            return True
        raise ValueError(f"unknown op {op!r}")

    def _op_submit(self, message: Dict[str, Any]) -> Dict[str, Any]:
        spec = JobSpec.from_dict(message.get("spec") or {})
        jid = job_id(spec)
        record = self.jobs.get(jid)
        if record is None:
            resolved = spec.resolved()
            record = JobRecord(job=jid, spec=resolved,
                               total=resolved.trial_count)
            self.jobs[jid] = record
            job_dir = self.job_dir(jid)
            job_dir.mkdir(parents=True, exist_ok=True)
            _atomic_write(job_dir / "spec.json", (json.dumps(
                resolved.to_dict(), sort_keys=True, indent=2)
                + "\n").encode("utf-8"))
            self._launch(record)
        elif record.state == "failed":
            # Resubmission retries a failed job from its journal.
            record.state = "queued"
            record.error = ""
            self._launch(record)
        return {"ok": True, "job": jid, "state": record.state}

    def _op_status(self, job: Optional[str]) -> Dict[str, Any]:
        record = self.jobs.get(job or "")
        if record is None:
            return {"ok": False, "error": f"unknown job {job!r}"}
        payload = record.status()
        payload["ok"] = True
        return payload

    def _op_result(self, job: Optional[str]) -> Dict[str, Any]:
        record = self.jobs.get(job or "")
        if record is None:
            return {"ok": False, "error": f"unknown job {job!r}"}
        if record.state != "done":
            return {"ok": False,
                    "error": f"job {job} is {record.state}, "
                             f"not done"}
        result = json.loads(
            (self.job_dir(record.job) / "result.json").read_text())
        return {"ok": True, "job": record.job, "result": result}

    async def _op_watch(self, job: Optional[str],
                        writer: asyncio.StreamWriter) -> None:
        """Stream progress events until the job reaches a terminal
        state, then close."""
        record = self.jobs.get(job or "")
        if record is None:
            await send_message(writer, {"ok": False,
                                        "error": f"unknown job {job!r}"})
            return
        queue: asyncio.Queue = asyncio.Queue()
        self._watchers.setdefault(record.job, []).append(queue)
        try:
            await send_message(writer, {
                "event": "snapshot", "job": record.job, "ok": True,
                "state": record.state, "done": record.done,
                "total": record.total})
            while record.state not in ("done", "failed"):
                try:
                    event = await asyncio.wait_for(queue.get(),
                                                   timeout=0.5)
                except asyncio.TimeoutError:
                    continue
                await send_message(writer, event)
            await send_message(writer, {
                "event": "state", "job": record.job,
                "state": record.state,
                "error": record.error or None})
        finally:
            self._watchers.get(record.job, []).remove(queue)


async def _serve(state_dir, *, host: str, port: int, cache_dir: Any,
                 on_ready: Any = None) -> ExperimentServer:
    server = ExperimentServer(state_dir, host=host, port=port,
                              cache_dir=cache_dir)
    await server.start()
    if on_ready is not None:
        on_ready(server)
    await server.run_forever()
    return server


def serve(state_dir, *, host: str = "127.0.0.1", port: int = 0,
          cache_dir: Any = None, on_ready: Any = None) -> None:
    """Run a server until shutdown — the ``python -m repro serve``
    entry point.  *on_ready* (if given) is called with the bound
    :class:`ExperimentServer` once the endpoint file is written."""
    asyncio.run(_serve(state_dir, host=host, port=port,
                       cache_dir=cache_dir, on_ready=on_ready))


__all__ = ["ENDPOINT_FILE", "ExperimentServer", "serve"]
