"""Blocking client for the experiment service.

A :class:`ServiceClient` talks the line-JSON protocol to a running
:class:`~repro.service.server.ExperimentServer`.  Connect by explicit
``(host, port)`` address, or — the usual path — by pointing at the
server's state directory, whose ``endpoint.json`` the server writes
on boot::

    client = ServiceClient(state_dir="/tmp/repro-service")
    job = client.submit(JobSpec(attacks=("cf-cache",)))["job"]
    status = client.wait(job)
    matrix = EvaluationMatrix.from_dict(client.result(job))

One socket connection per request keeps the client trivially
re-entrant and restart-proof: if the server died and came back on a
new port, the next request re-reads ``endpoint.json`` and lands on
the live instance.
"""

from __future__ import annotations

import json
import socket
import time
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Tuple

from repro.service.jobs import JobSpec
from repro.service.protocol import recv_line, send_line
from repro.service.server import ENDPOINT_FILE


class ServiceError(RuntimeError):
    """The service refused a request (or cannot be reached)."""


class ServiceClient:
    """Blocking line-JSON client; see the module docstring."""

    def __init__(self, address: Optional[Tuple[str, int]] = None,
                 state_dir: Any = None,
                 timeout: Optional[float] = 60.0) -> None:
        if address is None and state_dir is None:
            raise ValueError(
                "ServiceClient needs address=(host, port) or "
                "state_dir=<server state directory>")
        self._address = address
        self._state_dir = (Path(state_dir)
                           if state_dir is not None else None)
        self.timeout = timeout

    # --- plumbing ---------------------------------------------------------

    def _endpoint(self) -> Tuple[str, int]:
        if self._address is not None:
            return self._address
        assert self._state_dir is not None
        path = self._state_dir / ENDPOINT_FILE
        try:
            endpoint = json.loads(path.read_text())
            return endpoint["host"], int(endpoint["port"])
        except (OSError, ValueError, KeyError) as exc:
            raise ServiceError(
                f"no running service at {self._state_dir} "
                f"(cannot read {path}: {exc})") from exc

    def _request(self, message: Dict[str, Any]) -> Dict[str, Any]:
        host, port = self._endpoint()
        try:
            with socket.create_connection(
                    (host, port), timeout=self.timeout) as sock:
                send_line(sock, message)
                with sock.makefile("rb") as fh:
                    reply = recv_line(fh)
        except OSError as exc:
            raise ServiceError(
                f"cannot reach service at {host}:{port}: {exc}"
            ) from exc
        if reply is None:
            raise ServiceError("service closed the connection "
                               "without replying")
        if not reply.get("ok", False):
            raise ServiceError(reply.get("error")
                               or "service refused the request")
        return reply

    # --- operations -------------------------------------------------------

    def ping(self) -> Dict[str, Any]:
        """Liveness probe; returns the server's pid."""
        return self._request({"op": "ping"})

    def submit(self, spec: JobSpec) -> Dict[str, Any]:
        """Submit a job; returns ``{"job": id, "state": ...}``.
        Resubmitting an identical spec maps to the same job (and
        therefore resumes rather than recomputes)."""
        return self._request({"op": "submit",
                              "spec": spec.to_dict()})

    def status(self, job: str) -> Dict[str, Any]:
        """One job's status payload (state, progress, metrics)."""
        return self._request({"op": "status", "job": job})

    def jobs(self) -> Any:
        """Status payloads for every job the server knows."""
        return self._request({"op": "jobs"})["jobs"]

    def result(self, job: str) -> Dict[str, Any]:
        """The finished job's ``EvaluationMatrix.to_dict()`` payload
        (raises :class:`ServiceError` unless the job is done)."""
        return self._request({"op": "result", "job": job})["result"]

    def shutdown(self) -> Dict[str, Any]:
        """Ask the server to stop."""
        return self._request({"op": "shutdown"})

    def watch(self, job: str) -> Iterator[Dict[str, Any]]:
        """Stream a job's progress events (one dict per event) until
        it reaches a terminal state."""
        host, port = self._endpoint()
        with socket.create_connection(
                (host, port), timeout=self.timeout) as sock:
            send_line(sock, {"op": "watch", "job": job})
            with sock.makefile("rb") as fh:
                while True:
                    event = recv_line(fh)
                    if event is None:
                        return
                    if event.get("ok") is False:
                        raise ServiceError(event.get("error")
                                           or "watch refused")
                    yield event
                    if event.get("event") == "state" and \
                            event.get("state") in ("done", "failed"):
                        return

    def wait(self, job: str, *, timeout: Optional[float] = None,
             poll: float = 0.1) -> Dict[str, Any]:
        """Block until *job* is done or failed; returns the final
        status payload."""
        deadline = (None if timeout is None
                    else time.monotonic() + timeout)
        while True:
            status = self.status(job)
            if status["state"] in ("done", "failed"):
                return status
            if deadline is not None and time.monotonic() > deadline:
                raise ServiceError(
                    f"timed out waiting for job {job} "
                    f"(last state {status['state']!r})")
            time.sleep(poll)


__all__ = ["ServiceClient", "ServiceError"]
