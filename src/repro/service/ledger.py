"""Journal-as-coordination-log cell claiming.

Multiple workers (threads of one server, or a restarted server
picking a job back up) shard a job's cells by *claiming* them in an
append-only JSONL ledger that sits next to the sweep journal.  The
protocol needs nothing beyond POSIX ``O_APPEND`` atomicity:

* a **claim** is one appended line ``{"kind": "claim", "index": i,
  "worker": w, "nonce": n, "expires": t}``; because each append is a
  single ``os.write`` on an ``O_APPEND`` descriptor, concurrent
  claims never interleave mid-line;
* conflicts resolve by *file order*: the first live (unexpired,
  current-epoch) claim line for an index wins; a worker that appended
  a later line for the same index simply does not own it and moves
  on;
* an **epoch** line voids every claim before it — a restarting server
  appends one so cells claimed by its dead predecessor become
  claimable again immediately instead of waiting out the lease;
* **leases**: claims expire after ``lease`` seconds of wall clock, so
  a worker that dies mid-cell (without a server restart) self-heals —
  some other worker re-claims once the lease lapses.

The ledger only coordinates *who runs what*; the sweep journal
remains the single source of truth for *what is done*.  Re-running a
cell someone already journalled is therefore only waste, never
corruption — executors check the journal before honouring a claim.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

LEDGER_VERSION = 1

#: Default claim lease in seconds — generous against slow cells, small
#: against a stuck worker holding a shard hostage.
DEFAULT_LEASE = 300.0


class CellLedger:
    """Append-only claim ledger for one job's cells.

    Every mutation is a single ``O_APPEND`` write; every read re-reads
    the file.  Corrupt lines (torn tail from a crash mid-append) are
    skipped — a lost claim line merely means the cell gets claimed
    again.
    """

    def __init__(self, path, *, lease: float = DEFAULT_LEASE) -> None:
        self.path = Path(path)
        self.lease = float(lease)
        self._nonce = 0

    # --- appending --------------------------------------------------------

    def _append(self, record: Dict) -> None:
        line = (json.dumps(record, sort_keys=True) + "\n").encode()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(self.path,
                     os.O_CREAT | os.O_WRONLY | os.O_APPEND, 0o644)
        try:
            os.write(fd, line)
        finally:
            os.close(fd)

    def epoch(self, worker: str) -> None:
        """Void every claim appended so far — the restart fence."""
        self._append({"kind": "epoch", "version": LEDGER_VERSION,
                      "worker": worker, "time": time.time()})

    def claim(self, worker: str,
              indices: Sequence[int]) -> List[int]:
        """Try to claim *indices*; return the subset actually won.

        Appends one claim line per index, then re-reads the ledger:
        an index is ours iff our line (matched by worker + nonce) is
        the first live claim for it.  Losing a race is silent — the
        winner runs the cell.
        """
        if not indices:
            return []
        self._nonce += 1
        nonce = f"{os.getpid()}:{self._nonce}"
        now = time.time()
        for index in indices:
            self._append({
                "kind": "claim", "index": int(index),
                "worker": worker, "nonce": nonce,
                "expires": now + self.lease,
            })
        owners = self._owners(now=time.time())
        return [i for i in indices
                if owners.get(int(i)) == (worker, nonce)]

    # --- reading ----------------------------------------------------------

    def _records(self) -> Iterable[Dict]:
        try:
            text = self.path.read_text(encoding="utf-8")
        except OSError:
            return
        for line in text.splitlines():
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn append; later lines are still whole
            if isinstance(record, dict):
                yield record

    def _owners(self, now: Optional[float] = None
                ) -> Dict[int, tuple]:
        """Index → (worker, nonce) of the winning live claim."""
        if now is None:
            now = time.time()
        owners: Dict[int, tuple] = {}
        for record in self._records():
            kind = record.get("kind")
            if kind == "epoch":
                owners.clear()
                continue
            if kind != "claim":
                continue
            try:
                index = int(record["index"])
                expires = float(record["expires"])
                key = (record["worker"], record["nonce"])
            except (KeyError, TypeError, ValueError):
                continue
            if expires <= now:
                continue
            owners.setdefault(index, key)
        return owners

    def claimed(self) -> Dict[int, str]:
        """Index → owning worker, for every live claim."""
        return {index: key[0]
                for index, key in self._owners().items()}

    def unclaimed(self, indices: Sequence[int]) -> List[int]:
        """The subset of *indices* with no live claim."""
        owners = self._owners()
        return [i for i in indices if int(i) not in owners]


__all__ = ["DEFAULT_LEASE", "LEDGER_VERSION", "CellLedger"]
