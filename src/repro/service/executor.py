"""The sharded cell executor: claim, execute, journal, repeat.

A :class:`CellExecutor` is one worker's view of one job.  Any number
of executors — threads of one server, or executors of a server that
restarted mid-job — cooperate on the same job directory with zero
coordination beyond two append-only files:

* the **sweep journal** (:class:`~repro.harness.journal.SweepJournal`,
  atomic append mode) is the single source of completion truth: a
  cell is done iff its result line is in the journal;
* the **cell ledger** (:class:`~repro.service.ledger.CellLedger`)
  shards the *pending* cells: an executor only runs cells it holds a
  live claim on.

The execution loop is: peek the journal → drop completed cells →
claim a batch of unclaimed pending cells → resolve them (trial store
first, then the job's configured
:class:`~repro.harness.backends.ExecutionBackend`) → repeat.  When
every pending cell is claimed by someone else the executor polls the
journal until they land (or their claims lease out, at which point it
claims them itself).  Because cells carry absolute trial indices,
any claim pattern yields bit-identical results — the same guarantee
the backends layer gives ``run_resilient_sweep``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.harness.backends import ExecutionRequest, resolve_backend
from repro.harness.journal import SweepJournal
from repro.harness.resilience import (
    SKIPPED,
    FaultPolicy,
    SweepReport,
    TrialReport,
)
from repro.harness.sweep import Trial, TrialFn, derive_seed
from repro.service.ledger import CellLedger

#: How many cells one claim batch grabs — small enough that shards
#: stay balanced, large enough to amortise the ledger append.
CLAIM_BATCH = 4

#: Seconds between journal polls while waiting on other workers.
POLL_INTERVAL = 0.05

#: The fault policy service jobs run under: the matrix trial converts
#: attack exceptions into error metrics itself, so harness-level
#: faults are infrastructure trouble — retry twice, then record the
#: cell as skipped (``None`` payload) rather than wedging the job.
SERVICE_POLICY = FaultPolicy(max_attempts=3, backoff_base=0.0,
                             on_exhausted="default", default=None)


@dataclass
class CellExecutor:
    """One worker executing its share of one job's cells."""

    trial_fn: TrialFn
    params: List[Any]
    journal_path: Any
    ledger: CellLedger
    worker: str
    master_seed: int = 0
    label: str = ""
    backend: str = "scalar"
    workers: int = 1
    policy: FaultPolicy = SERVICE_POLICY
    store: Any = None
    claim_batch: int = CLAIM_BATCH
    poll_interval: float = POLL_INTERVAL
    #: Called after every loop iteration with the number of journalled
    #: cells — the server's progress hook.
    on_progress: Optional[Callable[[int], None]] = None
    #: Set by the server to abort the loop (e.g. on shutdown).
    should_stop: Optional[Callable[[], bool]] = None
    report: Optional[SweepReport] = field(default=None, init=False)

    def _trials(self) -> List[Trial]:
        return [Trial(index=i,
                      seed=derive_seed(self.master_seed, i, self.label),
                      params=p)
                for i, p in enumerate(self.params)]

    # --- store integration ------------------------------------------------

    def _store_keys(self, trials: List[Trial]) -> Dict[int, str]:
        if self.store is None:
            return {}
        from repro.harness.resilience import _trial_keys
        return _trial_keys(self.trial_fn, trials, self.store)

    def _resolve_cached(self, todo: List[Trial],
                        keys: Dict[int, str],
                        journal: SweepJournal,
                        outcomes: Dict[int, Any],
                        reports: Dict[int, TrialReport]
                        ) -> List[Trial]:
        """Serve claimed cells from the trial store; journal the hits
        so every other worker sees them as completed."""
        if self.store is None:
            return todo
        remaining: List[Trial] = []
        for trial in todo:
            key = keys.get(trial.index)
            if key is None:
                remaining.append(trial)
                continue
            hit, result = self.store.get(key,
                                         verify=self.policy.verify)
            if not hit:
                remaining.append(trial)
                continue
            outcomes[trial.index] = result
            reports[trial.index] = TrialReport(
                index=trial.index, attempts=[], resolution="cached")
            journal.record(trial.index, 0, trial.seed, result)
        return remaining

    def _persist(self, todo: List[Trial], keys: Dict[int, str],
                 outcomes: Dict[int, Any],
                 reports: Dict[int, TrialReport]) -> None:
        """Store attempt-0 successes (same rule as the sweep driver:
        retried results ran under attempt-k seeds and must not be
        cached against the attempt-0 key)."""
        if self.store is None:
            return
        for trial in todo:
            report = reports.get(trial.index)
            if (trial.index in keys
                    and report is not None
                    and report.resolution == "ok"
                    and report.attempts
                    and report.attempts[-1].attempt == 0):
                self.store.put(keys[trial.index], trial.seed,
                               outcomes[trial.index])

    # --- the loop ---------------------------------------------------------

    def run(self) -> Tuple[List[Any], SweepReport]:
        """Cooperate on the job until every cell is journalled.

        Returns the results in trial order plus this worker's
        :class:`~repro.harness.resilience.SweepReport` (cells other
        workers ran appear with resolution ``"journal"``).
        """
        t0 = time.perf_counter()
        trials = self._trials()
        counts_before: Dict[str, int] = (
            self.store.counts() if self.store is not None else {})
        journal = SweepJournal(self.journal_path, atomic=True)
        outcomes: Dict[int, Any] = {}
        reports: Dict[int, TrialReport] = {}
        for index, (_attempt, result) in journal.open(
                self.label, self.master_seed, len(trials)).items():
            outcomes[index] = result
            reports[index] = TrialReport(index=index, attempts=[],
                                         resolution="journal")
        keys = self._store_keys(trials)
        try:
            self._loop(trials, journal, keys, outcomes, reports, t0)
        finally:
            journal.close()
        wall = time.perf_counter() - t0
        cache_delta: Optional[Dict[str, int]] = None
        if self.store is not None:
            counts_after = self.store.counts()
            cache_delta = {name: counts_after[name]
                           - counts_before.get(name, 0)
                           for name in counts_after}
        self.report = SweepReport(
            label=self.label, master_seed=self.master_seed,
            workers=self.workers,
            trials=[reports[t.index] for t in trials
                    if t.index in reports],
            wall_seconds=wall, cache=cache_delta)
        results = [outcomes.get(t.index) for t in trials]
        return results, self.report

    def _loop(self, trials: List[Trial], journal: SweepJournal,
              keys: Dict[int, str], outcomes: Dict[int, Any],
              reports: Dict[int, TrialReport], t0: float) -> None:
        backend_obj = resolve_backend(self.backend)
        backend_obj.validate(self.trial_fn)
        while True:
            if self.should_stop is not None and self.should_stop():
                return
            pending = [t for t in trials if t.index not in reports]
            if not pending:
                return
            won = set(self.ledger.claim(
                self.worker,
                self.ledger.unclaimed(
                    [t.index for t in pending])[:self.claim_batch]))
            if not won:
                # Everything pending is claimed by someone else: wait
                # for their journal lines (or their leases) to land.
                time.sleep(self.poll_interval)
                self._absorb(journal, outcomes, reports)
                continue
            todo = [t for t in pending if t.index in won]
            todo = self._resolve_cached(todo, keys, journal,
                                        outcomes, reports)
            if todo:
                backend_obj.execute(ExecutionRequest(
                    trial_fn=self.trial_fn, todo=todo,
                    policy=self.policy, master_seed=self.master_seed,
                    label=self.label, workers=self.workers,
                    chaos=None, journal=journal, outcomes=outcomes,
                    reports=reports, t0=t0))
                self._journal_unjournalled(todo, journal, outcomes,
                                           reports)
                self._persist(todo, keys, outcomes, reports)
            if self.on_progress is not None:
                self.on_progress(len(reports))

    def _absorb(self, journal: SweepJournal,
                outcomes: Dict[int, Any],
                reports: Dict[int, TrialReport]) -> None:
        """Pull other workers' completions out of the journal."""
        for index, (_attempt, result) in journal.peek().items():
            if index not in reports:
                outcomes[index] = result
                reports[index] = TrialReport(
                    index=index, attempts=[], resolution="journal")
        if self.on_progress is not None:
            self.on_progress(len(reports))

    def _journal_unjournalled(self, todo: List[Trial],
                              journal: SweepJournal,
                              outcomes: Dict[int, Any],
                              reports: Dict[int, TrialReport]) -> None:
        """Journal skipped/defaulted resolutions too: the journal is
        the job's completion truth, so a cell that exhausted its
        attempts must still land there (as its fallback payload) or
        every other worker would wait on it forever."""
        for trial in todo:
            report = reports.get(trial.index)
            if report is None or report.resolution == "ok":
                continue  # successes were journalled by the backend
            result = outcomes.get(trial.index)
            if result is SKIPPED:
                result = None
                outcomes[trial.index] = None
            journal.record(trial.index, 0, trial.seed, result)


__all__ = [
    "CLAIM_BATCH",
    "POLL_INTERVAL",
    "SERVICE_POLICY",
    "CellExecutor",
]
