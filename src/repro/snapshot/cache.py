"""Per-worker snapshot cache for warm-started experiment sweeps.

Sweep trial functions (:mod:`repro.harness`) run in forked worker
processes, and each trial historically paid the full cost of
``AttackEnvironment.build`` + victim setup + launch.  This cache keeps
one built environment and its post-setup :class:`MachineSnapshot` per
*builder key* in the worker process; every trial after the first simply
rewinds the cached environment to the snapshot — the amortization that
turns N-trial sweeps from O(N · full-run) into O(setup + N · window).

Keys must be deterministic functions of the experiment parameters
(e.g. the harness' derived seed plus the victim configuration) so that
a cache hit is guaranteed to mean "bit-identical starting state".
Workers created by fork inherit the parent's cache; builds after the
fork stay private to each worker, which is exactly the per-worker
semantics the harness needs.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.snapshot.machine import MachineSnapshot

#: key -> (environment, builder payload, post-setup snapshot)
_CACHE: Dict[object, Tuple[object, object, MachineSnapshot]] = {}


def warm_start(key, builder: Callable[[], Tuple[object, object]]
               ) -> Tuple[object, object]:
    """Return ``(env, payload)`` positioned at the post-setup snapshot.

    *builder* is invoked once per key per worker process and must
    return ``(env, payload)``: the environment to snapshot (anything
    :meth:`MachineSnapshot.take` accepts) and an arbitrary payload of
    setup artifacts (processes, programs, addresses...) the trial needs
    alongside it.  On a hit, the cached environment is rewound to the
    snapshot before being returned, so every call observes the same
    bit-exact machine state.
    """
    entry = _CACHE.get(key)
    if entry is None:
        env, payload = builder()
        _CACHE[key] = (env, payload, MachineSnapshot.take(env))
        return env, payload
    env, payload, snapshot = entry
    snapshot.restore(env)
    return env, payload


def cache_size() -> int:
    return len(_CACHE)


def clear_cache():
    """Drop every cached environment (tests and memory pressure)."""
    _CACHE.clear()
