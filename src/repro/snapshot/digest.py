"""Stable content digests of machine snapshots.

:func:`state_digest` reduces a :class:`~repro.snapshot.machine.
MachineSnapshot` to a SHA-256 that is a pure function of the captured
*logical* state: two snapshots of bit-identical platform states —
taken at different times, in different processes, or from
independently built environments — produce the same digest.  This is
the keying primitive of :mod:`repro.memo`'s replay-window cache: a
digest collision is only possible for states that would also behave
identically, so a cache hit is always sound.

A plain ``pickle.dumps`` of the snapshot payload is *not* stable,
because capture payloads reach live identity wiring (core contexts
hold their :class:`~repro.kernel.process.Process`, processes hold the
live :class:`~repro.mem.physical.PhysicalMemory`, recipes hold attack
callbacks).  The normalizing pickler therefore rewrites exactly the
three classes of unstable objects:

* **callables** (functions, bound methods, builtins) become
  deterministic ``module:qualname`` tokens, with primitive closure
  cell values appended so closure *state* still distinguishes keys;
* **sets and frozensets** are emitted in sorted order — their native
  iteration order depends on insertion history, which is execution
  history, not state;
* **physical memory** is reduced to its logical frame contents,
  dropping the copy-on-write bookkeeping (``_cow``) that later
  ``take()`` calls mutate in place.

Everything else pickles normally, so any state change — registers,
cache tags, RNG streams, recipe progress, metrics instruments —
changes the digest.
"""

from __future__ import annotations

import hashlib
import io
import pickle
import types
from typing import Any

_PRIMITIVES = (type(None), bool, int, float, str, bytes)


def _callable_token(obj: Any) -> str:
    """A deterministic identity token for a callable, including the
    values of primitive closure cells (closure state is attack state:
    ``replay_n_times(3)`` and ``replay_n_times(5)`` must differ)."""
    module = getattr(obj, "__module__", "") or ""
    qualname = getattr(obj, "__qualname__", repr(type(obj)))
    cells = ""
    closure = getattr(obj, "__closure__", None)
    if closure:
        parts = []
        for cell in closure:
            try:
                value = cell.cell_contents
            except ValueError:  # pragma: no cover - empty cell
                parts.append("<empty>")
                continue
            if isinstance(value, _PRIMITIVES):
                parts.append(repr(value))
            else:
                parts.append(f"<{type(value).__name__}>")
        cells = ":" + ",".join(parts)
    return f"__fn__:{module}:{qualname}{cells}"


class _NormalizingPickler(pickle.Pickler):
    """Pickler whose output is a function of logical state only."""

    def reducer_override(self, obj):  # noqa: D102 - pickle protocol
        if isinstance(obj, (types.FunctionType, types.MethodType,
                            types.BuiltinFunctionType)):
            return (str, (_callable_token(obj),))
        if type(obj) is set or type(obj) is frozenset:
            try:
                ordered = sorted(obj)
            except TypeError:
                ordered = sorted(obj, key=lambda v: (repr(type(v)),
                                                     repr(v)))
            return (str, (f"__set__:{ordered!r}",))
        from repro.mem.physical import PhysicalMemory
        if isinstance(obj, PhysicalMemory):
            frames = tuple(sorted(
                (frame_no, tuple(sorted(frame.items())))
                for frame_no, frame in obj._frames.items()))
            body = hashlib.sha256(repr(frames).encode()).hexdigest()
            return (str,
                    (f"__phys__:{obj.num_frames}:{obj.size}:{body}",))
        return NotImplemented


def canonical_dump(state: Any) -> bytes:
    """Pickle *state* through the normalizing pickler."""
    buffer = io.BytesIO()
    _NormalizingPickler(buffer, protocol=4).dump(state)
    return buffer.getvalue()


def state_digest(snapshot: Any) -> str:
    """SHA-256 hex digest of a snapshot's logical state."""
    return hashlib.sha256(canonical_dump(
        (snapshot.version, snapshot.machine_state,
         snapshot.kernel_state, snapshot.sgx_state,
         snapshot.module_state))).hexdigest()


__all__ = ["canonical_dump", "state_digest"]
