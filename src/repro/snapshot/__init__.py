"""Machine snapshot/restore for warm-started replay experiments.

See :mod:`repro.snapshot.machine` for the snapshot composition and
:mod:`repro.snapshot.cache` for the per-worker warm-start cache used
by the sweep harness.
"""

from repro.snapshot.cache import cache_size, clear_cache, warm_start
from repro.snapshot.digest import state_digest
from repro.snapshot.machine import (
    SNAPSHOT_VERSION,
    MachineSnapshot,
    SnapshotError,
)

__all__ = [
    "MachineSnapshot",
    "SnapshotError",
    "SNAPSHOT_VERSION",
    "cache_size",
    "clear_cache",
    "state_digest",
    "warm_start",
]
