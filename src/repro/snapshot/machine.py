"""Versioned, bit-exact snapshots of the whole simulated platform.

A :class:`MachineSnapshot` composes the ``capture()`` / ``restore()``
methods that every stateful subsystem exposes:

* ``repro.cpu`` — cycle, SMT contexts (registers, ROB, rename map,
  ready queue, in-flight loads, TSX state), ports, branch predictor,
  the event heap and both core RNG streams;
* ``repro.mem`` — cache tag/dirty/replacement state per level, DRAM
  counters, and physical memory (shared copy-on-write per frame, so
  holding a snapshot costs only the frames that change afterwards);
* ``repro.vm`` — TLB hierarchy, page-walk cache and walker counters
  (page-table contents travel with physical memory);
* ``repro.kernel`` / ``repro.sgx`` — frame allocator, per-process
  address-space bookkeeping, kernel RNG, enclave state;
* ``repro.core`` — MicroScope module stats, armed pages and per-recipe
  attack progress.

Identity wiring — hook registrations, trap handlers, tracers, the
object graph between kernel/module/processes — is deliberately *not*
part of a snapshot: it never changes during execution, and restoring
into the same environment reuses it.  A snapshot may be restored any
number of times; every restore clones from the snapshot again.
"""

from __future__ import annotations

from typing import Optional

#: Bump when the layout of any subsystem's capture() payload changes.
#: v2: machine payloads gained the metrics-registry instrument state
#: (walker latency histogram etc.) as a trailing element.
SNAPSHOT_VERSION = 2


class SnapshotError(Exception):
    """Raised on version or topology mismatch at restore time."""


class MachineSnapshot:
    """Bit-exact state of a machine (optionally with its OS stack).

    ``take``/``restore`` accept either a bare
    :class:`~repro.cpu.machine.Machine` or any environment object with
    a ``machine`` attribute and optional ``kernel`` / ``sgx`` /
    ``module`` attributes (e.g.
    :class:`~repro.core.replayer.AttackEnvironment`).
    """

    __slots__ = ("version", "machine_state", "kernel_state", "sgx_state",
                 "module_state")

    def __init__(self, version: int, machine_state: tuple,
                 kernel_state: Optional[tuple],
                 sgx_state: Optional[tuple],
                 module_state: Optional[tuple]):
        self.version = version
        self.machine_state = machine_state
        self.kernel_state = kernel_state
        self.sgx_state = sgx_state
        self.module_state = module_state

    @staticmethod
    def _parts(env):
        machine = getattr(env, "machine", env)
        return (machine, getattr(env, "kernel", None),
                getattr(env, "sgx", None), getattr(env, "module", None))

    @classmethod
    def take(cls, env) -> "MachineSnapshot":
        """Capture *env* (an ``AttackEnvironment`` or bare ``Machine``)."""
        machine, kernel, sgx, module = cls._parts(env)
        return cls(
            SNAPSHOT_VERSION,
            machine.capture(),
            kernel.capture() if kernel is not None else None,
            sgx.capture() if sgx is not None else None,
            module.capture() if module is not None else None,
        )

    def digest(self) -> str:
        """Stable SHA-256 of the captured logical state (see
        :mod:`repro.snapshot.digest`): equal for bit-identical
        platform states however and whenever they were captured."""
        from repro.snapshot.digest import state_digest
        return state_digest(self)

    def restore(self, env):
        """Restore *env* in place to the captured state."""
        if self.version != SNAPSHOT_VERSION:
            raise SnapshotError(
                f"snapshot version {self.version} != supported "
                f"{SNAPSHOT_VERSION}")
        machine, kernel, sgx, module = self._parts(env)
        for name, part, state in (("kernel", kernel, self.kernel_state),
                                  ("sgx", sgx, self.sgx_state),
                                  ("module", module, self.module_state)):
            if state is not None and part is None:
                raise SnapshotError(
                    f"snapshot carries {name} state but the target "
                    f"environment has no {name}")
        machine.restore(self.machine_state)
        if kernel is not None and self.kernel_state is not None:
            kernel.restore(self.kernel_state)
        if sgx is not None and self.sgx_state is not None:
            sgx.restore(self.sgx_state)
        if module is not None and self.module_state is not None:
            module.restore(self.module_state)
