"""Canonical configuration namespace.

Every tunable of the simulated platform is a plain dataclass; this
module gathers them under one import so experiment scripts stop
reaching into five subsystem modules to assemble a machine::

    from repro.config import MachineConfig, CoreConfig

    cfg = MachineConfig(core=CoreConfig(num_contexts=2))

:class:`MachineConfig` is *defined* here (it composes the subsystem
configs, so it belongs to the top level, not to ``repro.cpu``); the
old ``repro.cpu.machine.MachineConfig`` path keeps working through a
:class:`DeprecationWarning` shim.  The subsystem configs stay defined
next to the code they configure and are re-exported:

======================  ============================================
class                   defined in
======================  ============================================
:class:`CoreConfig`     :mod:`repro.cpu.config`
:class:`DefenseHookConfig`  :mod:`repro.cpu.config`
:class:`PortConfig`     :mod:`repro.cpu.config`
:class:`CacheConfig`    :mod:`repro.mem.cache`
:class:`HierarchyConfig`  :mod:`repro.mem.hierarchy`
:class:`TLBConfig`      :mod:`repro.vm.tlb`
:class:`TLBHierarchyConfig`  :mod:`repro.vm.tlb`
:class:`PWCConfig`      :mod:`repro.vm.pwc`
:class:`KernelConfig`   :mod:`repro.kernel.kernel` (lazy)
:class:`EnclaveConfig`  :mod:`repro.sgx.enclave` (lazy)
:class:`MicroScopeConfig`  :mod:`repro.core.module` (lazy)
:class:`MemoConfig`     :mod:`repro.memo.store` (lazy)
======================  ============================================

The last four are resolved lazily (PEP 562): they live in modules
that transitively import :mod:`repro.cpu.machine` (or this module),
and importing them eagerly here would close an import cycle.

Serialisation
-------------

:func:`to_dict` / :func:`from_dict` round-trip any registered config —
including nested configs, tuples, frozensets and dicts — through a
JSON-compatible dict.  Nested values are tagged (``"__config__"``,
``"__tuple__"``, ``"__frozenset__"``) so the inverse is exact::

    cfg == from_dict(to_dict(cfg))

which is what sweep journals and experiment reports rely on to
persist the configuration alongside results.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field, fields, is_dataclass
from typing import Any, Dict, Optional

from repro.cpu.config import CoreConfig, DefenseHookConfig, PortConfig
from repro.mem.cache import CacheConfig
from repro.mem.hierarchy import HierarchyConfig
from repro.vm.pwc import PWCConfig
from repro.vm.tlb import TLBConfig, TLBHierarchyConfig


@dataclass
class MachineConfig:
    """Top-level configuration of the whole simulated platform."""

    core: CoreConfig = field(default_factory=CoreConfig)
    hierarchy: HierarchyConfig = field(default_factory=HierarchyConfig)
    tlbs: TLBHierarchyConfig = field(default_factory=TLBHierarchyConfig)
    pwc: PWCConfig = field(default_factory=PWCConfig)
    #: Physical memory size in 4 KiB frames (default 256 MiB).
    num_frames: int = 1 << 16
    #: Hardware defense mechanism installed through the core's hook
    #: layer (None = stock platform; see
    #: :mod:`repro.evaluation.defenses.mechanisms`).
    defense: Optional[DefenseHookConfig] = None


#: Configs importable lazily (their modules import repro.cpu.machine,
#: or — for MemoConfig — repro.config itself).
_LAZY_CONFIGS = {
    "KernelConfig": "repro.kernel.kernel",
    "EnclaveConfig": "repro.sgx.enclave",
    "MicroScopeConfig": "repro.core.module",
    "MemoConfig": "repro.memo.store",
}

#: Registry used by :func:`from_dict` to resolve ``"__config__"`` tags.
_CONFIG_TYPES: Dict[str, type] = {
    cls.__name__: cls
    for cls in (MachineConfig, CoreConfig, DefenseHookConfig,
                PortConfig, CacheConfig, HierarchyConfig, TLBConfig,
                TLBHierarchyConfig, PWCConfig)
}


def __getattr__(name: str) -> Any:
    module = _LAZY_CONFIGS.get(name)
    if module is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}")
    cls = getattr(importlib.import_module(module), name)
    _CONFIG_TYPES.setdefault(name, cls)
    return cls


def _resolve(tag: str) -> type:
    cls = _CONFIG_TYPES.get(tag)
    if cls is None and tag in _LAZY_CONFIGS:
        cls = __getattr__(tag)
    if cls is None:
        raise ValueError(f"unknown config class {tag!r} "
                         f"(known: {sorted(_CONFIG_TYPES)})")
    return cls


def _encode(value: Any) -> Any:
    if is_dataclass(value) and not isinstance(value, type):
        tag = type(value).__name__
        if tag not in _CONFIG_TYPES and tag in _LAZY_CONFIGS:
            __getattr__(tag)
        if _CONFIG_TYPES.get(tag) is not type(value):
            raise TypeError(
                f"{tag} is not a registered config dataclass")
        record: Dict[str, Any] = {"__config__": tag}
        for f in fields(value):
            record[f.name] = _encode(getattr(value, f.name))
        return record
    if isinstance(value, tuple):
        return {"__tuple__": [_encode(v) for v in value]}
    if isinstance(value, frozenset):
        return {"__frozenset__": sorted(_encode(v) for v in value)}
    if isinstance(value, list):
        return [_encode(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _encode(v) for k, v in value.items()}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(
        f"cannot serialise {type(value).__name__!r} value {value!r}")


def _decode(value: Any) -> Any:
    if isinstance(value, dict):
        if "__config__" in value:
            cls = _resolve(value["__config__"])
            kwargs = {k: _decode(v) for k, v in value.items()
                      if k != "__config__"}
            return cls(**kwargs)
        if "__tuple__" in value:
            return tuple(_decode(v) for v in value["__tuple__"])
        if "__frozenset__" in value:
            return frozenset(_decode(v) for v in value["__frozenset__"])
        return {k: _decode(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_decode(v) for v in value]
    return value


def to_dict(config: Any) -> Dict[str, Any]:
    """Serialise a config dataclass to a JSON-compatible dict.

    Nested configs, tuples, frozensets and dicts are handled; the
    result is exactly invertible by :func:`from_dict`.
    """
    encoded = _encode(config)
    if not isinstance(encoded, dict) or "__config__" not in encoded:
        raise TypeError("to_dict expects a config dataclass instance")
    return encoded


def from_dict(data: Dict[str, Any]) -> Any:
    """Rebuild a config dataclass from :func:`to_dict` output."""
    if not isinstance(data, dict) or "__config__" not in data:
        raise ValueError("from_dict expects a dict with a "
                         "'__config__' tag")
    return _decode(data)


__all__ = [
    "CacheConfig",
    "CoreConfig",
    "DefenseHookConfig",
    "EnclaveConfig",
    "HierarchyConfig",
    "KernelConfig",
    "MachineConfig",
    "MemoConfig",
    "MicroScopeConfig",
    "PWCConfig",
    "PortConfig",
    "TLBConfig",
    "TLBHierarchyConfig",
    "from_dict",
    "to_dict",
]
