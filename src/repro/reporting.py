"""Machine-wide statistics reporting.

Aggregates every subsystem's counters into a structured snapshot and a
human-readable report: per-context IPC and squash behaviour, cache and
TLB hit rates, page-walk and PWC statistics, execution-port usage,
branch-predictor accuracy, and (when a kernel is supplied) fault
accounting.  Standard simulator telemetry — and a quick way to *see*
an attack: replays show up as squash storms with near-zero IPC on the
victim context while the monitor hums along.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.cpu.machine import Machine


@dataclass
class ContextReport:
    context_id: int
    fetched: int
    retired: int
    squashed: int
    squash_events: int
    replays: int
    faults: int
    txn_aborts: int
    ipc: float

    @property
    def squash_rate(self) -> float:
        return self.squashed / self.fetched if self.fetched else 0.0


@dataclass
class CacheReport:
    name: str
    hits: int
    misses: int
    evictions: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass
class MachineReport:
    cycles: int
    contexts: List[ContextReport]
    caches: List[CacheReport]
    tlb_hit_rate: float
    pwc_hit_rate: float
    walks: int
    walk_faults: int
    mean_walk_latency: float
    dram_accesses: int
    predictor_accuracy: float
    port_issues: Dict[str, int]
    kernel_page_faults: Optional[int] = None
    microscope_replays: Optional[int] = None

    def render(self) -> str:
        lines = [f"machine report @ cycle {self.cycles}",
                 "=" * 40]
        for ctx in self.contexts:
            lines.append(
                f"ctx{ctx.context_id}: IPC {ctx.ipc:.2f}  retired "
                f"{ctx.retired}  fetched {ctx.fetched}  squashed "
                f"{ctx.squashed} ({ctx.squash_rate:.0%})  replays "
                f"{ctx.replays}  faults {ctx.faults}  aborts "
                f"{ctx.txn_aborts}")
        for cache in self.caches:
            lines.append(
                f"{cache.name}: hit rate {cache.hit_rate:.1%} "
                f"({cache.hits}/{cache.hits + cache.misses}), "
                f"{cache.evictions} evictions")
        lines.append(f"TLB hit rate: {self.tlb_hit_rate:.1%}   "
                     f"PWC hit rate: {self.pwc_hit_rate:.1%}")
        lines.append(f"page walks: {self.walks} ({self.walk_faults} "
                     f"faulted, mean {self.mean_walk_latency:.0f} "
                     f"cycles)   DRAM accesses: {self.dram_accesses}")
        lines.append(
            f"branch predictor accuracy: "
            f"{self.predictor_accuracy:.1%}")
        busiest = sorted(self.port_issues.items(),
                         key=lambda kv: -kv[1])
        lines.append("port issues: " + "  ".join(
            f"{name}={count}" for name, count in busiest))
        if self.kernel_page_faults is not None:
            lines.append(f"kernel page faults: "
                         f"{self.kernel_page_faults}")
        if self.microscope_replays is not None:
            lines.append(f"microscope handle faults: "
                         f"{self.microscope_replays}")
        return "\n".join(lines)


def machine_report(machine: Machine, kernel=None,
                   module=None) -> MachineReport:
    """Snapshot every counter of *machine* (and optionally the kernel
    and MicroScope module) into a :class:`MachineReport`."""
    cycles = max(machine.cycle, 1)
    contexts = []
    for ctx in machine.contexts:
        contexts.append(ContextReport(
            context_id=ctx.context_id,
            fetched=ctx.stats.fetched,
            retired=ctx.stats.retired,
            squashed=ctx.stats.squashed,
            squash_events=ctx.stats.squash_events,
            replays=ctx.stats.replays,
            faults=ctx.stats.faults,
            txn_aborts=ctx.stats.txn_aborts,
            ipc=ctx.stats.retired / cycles))
    caches = [CacheReport(c.name, c.stats.hits, c.stats.misses,
                          c.stats.evictions)
              for c in machine.hierarchy.levels]
    tlb = machine.tlbs.l1d.stats
    tlb_total = tlb.hits + tlb.misses
    pwc = machine.pwc.stats
    pwc_total = pwc.hits + pwc.misses
    walker = machine.walker.stats
    report = MachineReport(
        cycles=machine.cycle,
        contexts=contexts,
        caches=caches,
        tlb_hit_rate=tlb.hits / tlb_total if tlb_total else 0.0,
        pwc_hit_rate=pwc.hits / pwc_total if pwc_total else 0.0,
        walks=walker.walks,
        walk_faults=walker.faults,
        mean_walk_latency=(walker.total_latency / walker.walks
                           if walker.walks else 0.0),
        dram_accesses=machine.hierarchy.dram_accesses,
        predictor_accuracy=machine.core.predictor.stats.accuracy,
        port_issues={p.name: p.stats.issued
                     for p in machine.core.ports.ports})
    if kernel is not None:
        report.kernel_page_faults = kernel.stats.page_faults
    if module is not None:
        report.microscope_replays = module.stats.handle_faults
    return report


def metrics_payload(env_or_machine) -> Dict[str, Any]:
    """Flatten the machine's metrics registry into a JSON-ready dict.

    Accepts a bare :class:`Machine` or anything with a ``machine``
    attribute (e.g. an ``AttackEnvironment``).  The payload carries the
    cycle count alongside the registry dump so offline tooling can
    compute rates.
    """
    machine = getattr(env_or_machine, "machine", env_or_machine)
    return {"cycle": machine.cycle, "metrics": machine.metrics.dump()}


def export_metrics_json(env_or_machine, path) -> Dict[str, Any]:
    """Write :func:`metrics_payload` to *path*; returns the payload."""
    payload = metrics_payload(env_or_machine)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return payload
