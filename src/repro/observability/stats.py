"""Single definition of record for every subsystem's counters.

Historically each subsystem declared its own ``*Stats`` dataclass and
mutated the fields from wherever was convenient; the same counter
semantics were re-implemented (reset, capture/restore tuples) eight
times over.  :class:`StatGroup` consolidates that: one slotted base
class owns the lifecycle — zeroed construction, :meth:`reset`,
bit-exact :meth:`capture`/:meth:`restore`, dict export — and every
concrete group below declares only its field names.

The concrete classes keep their historical names and attribute sets,
and the owning modules (``repro.cpu.context``, ``repro.mem.cache``,
…) re-export them, so legacy access like ``ctx.stats.retired`` and
``from repro.mem.cache import CacheStats`` keeps working unchanged
(see ``tests/observability/test_stats_shim.py``).

Hot paths still increment plain attributes (``self.stats.hits += 1``)
— there is no property or dispatch overhead.  The
:class:`~repro.observability.registry.MetricsRegistry` reads groups
*by reference* at dump time, so registration costs nothing during
simulation.
"""

from __future__ import annotations

from typing import Dict, Tuple


class StatGroup:
    """Base class for a named bundle of integer counters.

    Subclasses declare ``FIELDS`` (and mirror it in ``__slots__``).
    All fields start at zero; keyword arguments may preset them, which
    preserves the constructor surface of the old dataclasses.
    """

    FIELDS: Tuple[str, ...] = ()
    __slots__ = ()

    def __init__(self, **values: int):
        for name in self.FIELDS:
            setattr(self, name, values.pop(name, 0))
        if values:
            unexpected = ", ".join(sorted(values))
            raise TypeError(
                f"{type(self).__name__}: unexpected fields {unexpected}")

    def reset(self) -> None:
        for name in self.FIELDS:
            setattr(self, name, 0)

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.FIELDS}

    # --- snapshot support -------------------------------------------------

    def capture(self) -> tuple:
        """Field values in declaration order (bit-exact, hashable)."""
        return tuple(getattr(self, name) for name in self.FIELDS)

    def restore(self, state: tuple) -> None:
        if len(state) != len(self.FIELDS):
            raise ValueError(
                f"{type(self).__name__}: snapshot carries {len(state)} "
                f"fields, expected {len(self.FIELDS)}")
        for name, value in zip(self.FIELDS, state):
            setattr(self, name, value)

    # --- conveniences -----------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if type(other) is not type(self):
            return NotImplemented
        return self.capture() == other.capture()

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.capture()))

    def __repr__(self) -> str:
        fields = ", ".join(f"{n}={getattr(self, n)}" for n in self.FIELDS)
        return f"{type(self).__name__}({fields})"


class ContextStats(StatGroup):
    """Per-hardware-context pipeline event counters."""

    FIELDS = ("fetched", "issued", "retired", "squashed", "squash_events",
              "faults", "replays", "txn_aborts", "interrupts")
    __slots__ = FIELDS


class CacheStats(StatGroup):
    """Per-cache-level hit/miss/eviction counters."""

    FIELDS = ("hits", "misses", "evictions", "invalidations")
    __slots__ = FIELDS


class HierarchyStats(StatGroup):
    """Whole-hierarchy counters (below the last cache level)."""

    FIELDS = ("dram_accesses",)
    __slots__ = FIELDS


class TLBStats(StatGroup):
    """Per-TLB-level counters."""

    FIELDS = ("hits", "misses", "evictions", "invalidations")
    __slots__ = FIELDS


class PWCStats(StatGroup):
    """Page-walk-cache counters."""

    FIELDS = ("hits", "misses")
    __slots__ = FIELDS


class WalkerStats(StatGroup):
    """Hardware page-walker counters."""

    FIELDS = ("walks", "faults", "total_latency")
    __slots__ = FIELDS


class PortStats(StatGroup):
    """Per-execution-port counters."""

    FIELDS = ("issued", "contended")
    __slots__ = FIELDS


class PredictorStats(StatGroup):
    """Branch-predictor counters."""

    FIELDS = ("predictions", "mispredictions")
    __slots__ = FIELDS

    @property
    def accuracy(self) -> float:
        if not self.predictions:
            return 1.0
        return 1.0 - self.mispredictions / self.predictions


class KernelStats(StatGroup):
    """OS fault/interrupt accounting."""

    FIELDS = ("page_faults", "minor_faults", "demand_pages", "segfaults",
              "interrupts", "hook_claims")
    __slots__ = FIELDS


class MicroScopeStats(StatGroup):
    """MicroScope module counters (recipe fires, probes, primes)."""

    FIELDS = ("handle_faults", "pivot_faults", "releases", "probes",
              "primes")
    __slots__ = FIELDS


__all__ = [
    "StatGroup",
    "ContextStats",
    "CacheStats",
    "HierarchyStats",
    "TLBStats",
    "PWCStats",
    "WalkerStats",
    "PortStats",
    "PredictorStats",
    "KernelStats",
    "MicroScopeStats",
]
