"""Structured event tracing with ring-buffer backing.

:class:`EventTracer` is the opt-in, zero-cost-when-off observability
channel.  "Off" means *not attached*: every emission site in the
simulator is guarded by an ``if tracer is not None`` check (the core
has carried exactly this guard since the pipeline viewer landed), so
an untraced run executes no tracing code at all and its results are
bit-identical to a traced run — tracing only ever *reads* simulation
state.

Events live in a fixed-capacity ring buffer (:class:`TraceEvent` is a
slotted record), so arbitrarily long runs trace in bounded memory:
once the ring wraps, the oldest events fall off.  Two exporters are
provided:

* :meth:`EventTracer.export_jsonl` — one JSON object per line, for
  ad-hoc ``jq``/pandas digestion;
* :meth:`EventTracer.export_chrome_trace` — the Chrome
  ``trace_event`` JSON format.  Load the file in Perfetto
  (https://ui.perfetto.dev) or ``chrome://tracing`` and the replay
  windows appear as slices on the kernel/MicroScope tracks, with the
  victim's squash storms interleaved on its context track.

Timestamps are simulated cycles, exported through the trace format's
microsecond field — i.e. 1 "us" in the viewer is 1 cycle.

The tracer also implements the core's pipeline-tracer protocol
(``on_fetch``/``on_issue``/``on_complete``/``on_retire``/
``on_squash``), recording every dynamic instruction as a completed
slice on its context's track.  Attach it with
:meth:`repro.cpu.machine.Machine.attach_tracer`, which wires both the
core notifications and the kernel/module emission sites at once.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterator, List, Optional, Sequence

#: Synthetic track ("thread") ids for non-context emitters.  Context
#: tracks use their context_id directly.
KERNEL_TID = 100
MICROSCOPE_TID = 101
#: Track for the sweep harness (per-attempt slices from
#: :meth:`repro.harness.resilience.SweepReport.emit_trace`; host-time
#: microseconds rather than cycles).
HARNESS_TID = 102
#: Track for :mod:`repro.memo` cache hit/miss slices (host-time
#: microseconds, like the harness track).
MEMO_TID = 103

_TRACK_NAMES = {KERNEL_TID: "kernel", MICROSCOPE_TID: "microscope",
                HARNESS_TID: "harness", MEMO_TID: "memo"}

#: Chrome trace_event phases used by this tracer.
PH_COMPLETE = "X"
PH_INSTANT = "i"
PH_COUNTER = "C"


class TraceEvent:
    """One structured trace event (Chrome ``trace_event`` shaped)."""

    __slots__ = ("name", "cat", "ph", "ts", "dur", "tid", "args")

    def __init__(self, name: str, cat: str, ph: str, ts: int,
                 dur: int = 0, tid: int = 0,
                 args: Optional[Dict[str, Any]] = None):
        self.name = name
        self.cat = cat
        self.ph = ph
        self.ts = ts
        self.dur = dur
        self.tid = tid
        self.args = args

    def to_chrome(self) -> Dict[str, Any]:
        event: Dict[str, Any] = {
            "name": self.name, "cat": self.cat, "ph": self.ph,
            "ts": self.ts, "pid": 0, "tid": self.tid,
        }
        if self.ph == PH_COMPLETE:
            event["dur"] = self.dur
        if self.ph == PH_INSTANT:
            event["s"] = "t"  # thread-scoped instant
        if self.args:
            event["args"] = self.args
        return event

    def __repr__(self) -> str:
        return (f"TraceEvent({self.name!r}, cat={self.cat!r}, "
                f"ph={self.ph!r}, ts={self.ts}, dur={self.dur}, "
                f"tid={self.tid})")


class EventTracer:
    """Ring-buffered structured tracer."""

    def __init__(self, capacity: int = 1 << 16,
                 trace_instructions: bool = True):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.trace_instructions = trace_instructions
        self._ring: List[Optional[TraceEvent]] = [None] * capacity
        self._total = 0
        #: Live instruction fetch cycles, keyed like the pipeline
        #: viewer keys entries; popped at the terminal transition.
        self._fetch_cycles: Dict[int, int] = {}

    # --- ring mechanics ---------------------------------------------------

    def _append(self, event: TraceEvent) -> None:
        self._ring[self._total % self.capacity] = event
        self._total += 1

    def __len__(self) -> int:
        return min(self._total, self.capacity)

    @property
    def total_emitted(self) -> int:
        return self._total

    @property
    def dropped(self) -> int:
        return max(self._total - self.capacity, 0)

    def events(self) -> Iterator[TraceEvent]:
        """Retained events, oldest first (handles wraparound)."""
        if self._total <= self.capacity:
            for event in self._ring[:self._total]:
                assert event is not None
                yield event
            return
        head = self._total % self.capacity
        for event in self._ring[head:]:
            assert event is not None
            yield event
        for event in self._ring[:head]:
            assert event is not None
            yield event

    def clear(self) -> None:
        self._ring = [None] * self.capacity
        self._total = 0
        self._fetch_cycles.clear()

    # --- generic emission -------------------------------------------------

    def instant(self, name: str, ts: int, cat: str = "event",
                tid: int = 0, **args: Any) -> None:
        self._append(TraceEvent(name, cat, PH_INSTANT, ts, tid=tid,
                                args=args or None))

    def complete(self, name: str, ts: int, dur: int, cat: str = "span",
                 tid: int = 0, **args: Any) -> None:
        self._append(TraceEvent(name, cat, PH_COMPLETE, ts,
                                dur=max(dur, 1), tid=tid,
                                args=args or None))

    def counter(self, name: str, ts: int,
                values: Dict[str, Any]) -> None:
        self._append(TraceEvent(name, "counter", PH_COUNTER, ts,
                                args=dict(values)))

    # --- core pipeline-tracer protocol ------------------------------------
    #
    # Instruction lifecycles are recorded as one complete slice each,
    # emitted at the terminal transition (retire or squash) when the
    # whole fetch->issue->complete timeline is known from the entry.

    def _key(self, entry) -> int:
        return (entry.context_id << 48) | entry.seq

    def on_fetch(self, cycle: int, entry) -> None:
        if self.trace_instructions:
            self._fetch_cycles[self._key(entry)] = cycle

    def on_issue(self, cycle: int, entry) -> None:
        pass  # issue_cycle is read off the entry at retire/squash

    def on_complete(self, cycle: int, entry) -> None:
        pass  # complete_cycle is read off the entry at retire/squash

    def _instruction_slice(self, cycle: int, entry, cat: str,
                           **extra: Any) -> None:
        fetched = self._fetch_cycles.pop(self._key(entry), None)
        if fetched is None:
            return
        args: Dict[str, Any] = {"seq": entry.seq, "index": entry.index}
        if entry.issue_cycle is not None:
            args["issue"] = entry.issue_cycle
        if entry.complete_cycle is not None:
            args["complete"] = entry.complete_cycle
        if entry.is_replay:
            args["replay"] = True
        args.update(extra)
        self._append(TraceEvent(str(entry.instr), cat, PH_COMPLETE,
                                fetched, dur=max(cycle - fetched, 1),
                                tid=entry.context_id, args=args))

    def on_retire(self, cycle: int, entry) -> None:
        if self.trace_instructions:
            self._instruction_slice(cycle, entry, "pipeline")

    def on_squash(self, cycle: int, entries: Sequence, reason: str
                  ) -> None:
        if not self.trace_instructions:
            return
        for entry in entries:
            self._instruction_slice(cycle, entry, "squash",
                                    reason=reason)

    # --- exporters --------------------------------------------------------

    def export_jsonl(self, path) -> int:
        """Write retained events as JSON Lines; returns event count."""
        count = 0
        with open(path, "w") as fh:
            for event in self.events():
                record: Dict[str, Any] = {
                    "name": event.name, "cat": event.cat,
                    "ph": event.ph, "ts": event.ts, "tid": event.tid,
                }
                if event.ph == PH_COMPLETE:
                    record["dur"] = event.dur
                if event.args:
                    record["args"] = event.args
                fh.write(json.dumps(record, sort_keys=True) + "\n")
                count += 1
        return count

    def chrome_trace(self) -> Dict[str, Any]:
        """The Chrome ``trace_event`` payload as a dict."""
        trace_events: List[Dict[str, Any]] = [{
            "name": "process_name", "ph": "M", "pid": 0,
            "args": {"name": "repro machine"},
        }]
        tids = sorted({e.tid for e in self.events()})
        for tid in tids:
            trace_events.append({
                "name": "thread_name", "ph": "M", "pid": 0, "tid": tid,
                "args": {"name": _TRACK_NAMES.get(tid, f"ctx{tid}")},
            })
        trace_events.extend(e.to_chrome() for e in self.events())
        return {"traceEvents": trace_events, "displayTimeUnit": "ns",
                "otherData": {"dropped_events": self.dropped,
                              "timestamp_unit": "cycles"}}

    def export_chrome_trace(self, path) -> int:
        """Write the Chrome trace JSON; returns event count (without
        metadata records)."""
        payload = self.chrome_trace()
        with open(path, "w") as fh:
            json.dump(payload, fh)
        return len(self)


__all__ = [
    "EventTracer",
    "TraceEvent",
    "HARNESS_TID",
    "KERNEL_TID",
    "MICROSCOPE_TID",
    "PH_COMPLETE",
    "PH_INSTANT",
    "PH_COUNTER",
]
