"""Hierarchical metrics registry: counters, gauges, histograms.

A :class:`MetricsRegistry` is the machine-wide index of everything
countable.  Two kinds of participants exist:

* **Stat groups** — the per-subsystem
  :class:`~repro.observability.stats.StatGroup` bundles (cache hits,
  context retires, …).  Groups are registered *by reference* under a
  hierarchical prefix (``mem.l1d``, ``cpu.ctx0``); the hot paths keep
  mutating plain attributes and the registry only reads them at dump
  time, so registration adds zero simulation cost.
* **Standalone instruments** — :class:`Counter`, :class:`Gauge` and
  :class:`Histogram` objects created through the registry for values
  that have no natural stat-group home (e.g. the page-walk latency
  distribution).  These are owned by the registry and travel with
  machine snapshots via :meth:`MetricsRegistry.capture`.

Names are lowercase dotted paths: ``<subsystem>.<unit>.<metric>``,
e.g. ``mem.l1d.misses``, ``vm.walker.latency_cycles``,
``cpu.ctx0.replays`` — see ``docs/OBSERVABILITY.md`` for the full
naming scheme.  :meth:`MetricsRegistry.dump` flattens everything into
one sorted ``{name: value}`` dict ready for JSON.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.observability.stats import StatGroup

#: Default histogram bucket upper bounds (cycles): powers of two from
#: a cache hit to well past a DRAM-bound page walk.
DEFAULT_BOUNDS: Tuple[int, ...] = (4, 8, 16, 32, 64, 128, 256, 512,
                                   1024, 2048, 4096)


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def capture(self) -> tuple:
        return (self.value,)

    def restore(self, state: tuple) -> None:
        (self.value,) = state

    def reset(self) -> None:
        self.value = 0

    def dump(self) -> int:
        return self.value


class Gauge:
    """A point-in-time value (set, not accumulated)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def set(self, value: Any) -> None:
        self.value = value

    def capture(self) -> tuple:
        return (self.value,)

    def restore(self, state: tuple) -> None:
        (self.value,) = state

    def reset(self) -> None:
        self.value = 0

    def dump(self) -> Any:
        return self.value


class Histogram:
    """Fixed-bucket histogram with exact count/sum/min/max.

    ``bounds`` are *upper* bucket edges; an observation lands in the
    first bucket whose bound is >= the value, or in the overflow
    bucket past the last bound.  Buckets therefore never change shape
    at runtime, which keeps :meth:`capture` bit-exact and merges
    well-defined.
    """

    __slots__ = ("name", "bounds", "counts", "count", "total",
                 "min", "max")

    def __init__(self, name: str,
                 bounds: Sequence[int] = DEFAULT_BOUNDS):
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(f"{name}: bounds must be strictly increasing")
        self.name = name
        self.bounds: Tuple[int, ...] = tuple(bounds)
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0
        self.min: Optional[int] = None
        self.max: Optional[int] = None

    def observe(self, value: int) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def bucket_for(self, value: int) -> int:
        """Index of the bucket *value* falls into (tests/analysis)."""
        return bisect_left(self.bounds, value)

    def capture(self) -> tuple:
        return (list(self.counts), self.count, self.total,
                self.min, self.max)

    def restore(self, state: tuple) -> None:
        counts, count, total, lo, hi = state
        if len(counts) != len(self.counts):
            raise ValueError(f"{self.name}: bucket count mismatch")
        self.counts = list(counts)
        self.count = count
        self.total = total
        self.min = lo
        self.max = hi

    def reset(self) -> None:
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0
        self.min = None
        self.max = None

    def dump(self) -> Dict[str, Any]:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
        }


class MetricsRegistry:
    """The machine-wide metric index."""

    __slots__ = ("_groups", "_instruments", "_pulls")

    def __init__(self) -> None:
        #: prefix -> StatGroup, insertion-ordered.
        self._groups: Dict[str, StatGroup] = {}
        #: name -> Counter | Gauge | Histogram.
        self._instruments: Dict[str, Any] = {}
        #: prefix -> zero-arg callable returning {suffix: value}; read
        #: at dump time only (identity wiring, excluded from capture).
        self._pulls: Dict[str, Callable[[], Dict[str, Any]]] = {}

    # --- registration -----------------------------------------------------

    def register_group(self, prefix: str, group: StatGroup,
                       replace: bool = False) -> StatGroup:
        """Bind *group* under *prefix*; its fields appear in dumps as
        ``prefix.field``.  Re-registering a prefix requires
        ``replace=True`` (used by stacks that rebuild a layer, e.g. a
        fresh kernel on an existing machine)."""
        if prefix in self._groups and not replace \
                and self._groups[prefix] is not group:
            raise ValueError(f"group prefix {prefix!r} already registered")
        self._groups[prefix] = group
        return group

    def register_pull(self, prefix: str,
                      fn: Callable[[], Dict[str, Any]],
                      replace: bool = False) -> None:
        """Register a dump-time callback contributing ``prefix.*``
        entries (e.g. per-recipe replay counts that only exist once
        recipes are created)."""
        if prefix in self._pulls and not replace:
            raise ValueError(f"pull prefix {prefix!r} already registered")
        self._pulls[prefix] = fn

    def _instrument(self, name: str, factory: Callable[[], Any],
                    kind: type) -> Any:
        existing = self._instruments.get(name)
        if existing is not None:
            if not isinstance(existing, kind):
                raise ValueError(
                    f"{name!r} already registered as "
                    f"{type(existing).__name__}")
            return existing
        instrument = factory()
        self._instruments[name] = instrument
        return instrument

    def counter(self, name: str) -> Counter:
        return self._instrument(name, lambda: Counter(name), Counter)

    def gauge(self, name: str) -> Gauge:
        return self._instrument(name, lambda: Gauge(name), Gauge)

    def histogram(self, name: str,
                  bounds: Sequence[int] = DEFAULT_BOUNDS) -> Histogram:
        return self._instrument(name, lambda: Histogram(name, bounds),
                                Histogram)

    # --- export -----------------------------------------------------------

    def dump(self) -> Dict[str, Any]:
        """Flatten every registered metric into a sorted dict."""
        out: Dict[str, Any] = {}
        for prefix, group in self._groups.items():
            for field, value in group.as_dict().items():
                out[f"{prefix}.{field}"] = value
        for name, instrument in self._instruments.items():
            out[name] = instrument.dump()
        for prefix, fn in self._pulls.items():
            for suffix, value in fn().items():
                out[f"{prefix}.{suffix}"] = value
        return dict(sorted(out.items()))

    def reset(self) -> None:
        """Zero every group and instrument (pulls are live views)."""
        for group in self._groups.values():
            group.reset()
        for instrument in self._instruments.values():
            instrument.reset()

    # --- snapshot support -------------------------------------------------
    #
    # Stat groups are owned (and captured) by their subsystems; the
    # registry snapshots only its standalone instruments.  Instrument
    # *identity* is wiring: a snapshot restores values into the
    # already-registered instruments and refuses unknown names.

    def capture(self) -> tuple:
        return tuple((name, instrument.capture())
                     for name, instrument in self._instruments.items())

    def restore(self, state: tuple) -> None:
        for name, inst_state in state:
            instrument = self._instruments.get(name)
            if instrument is None:
                raise ValueError(
                    f"snapshot carries unknown instrument {name!r}")
            instrument.restore(inst_state)


def merge_dumps(dumps: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Sum-merge several :meth:`MetricsRegistry.dump` payloads (used
    when one experiment ran several machines in-process).  Integer and
    float metrics add; histogram dicts merge bucket-wise (shapes must
    match); other values keep the last occurrence."""
    merged: Dict[str, Any] = {}
    for dump in dumps:
        for name, value in dump.items():
            if name not in merged:
                merged[name] = (dict(value) if isinstance(value, dict)
                                else value)
                continue
            current = merged[name]
            if isinstance(value, dict) and isinstance(current, dict):
                if current.get("bounds") != value.get("bounds"):
                    raise ValueError(
                        f"{name}: histogram bounds differ across dumps")
                current["counts"] = [a + b for a, b in
                                     zip(current["counts"],
                                         value["counts"])]
                current["count"] += value["count"]
                current["sum"] += value["sum"]
                mins = [m for m in (current["min"], value["min"])
                        if m is not None]
                maxes = [m for m in (current["max"], value["max"])
                         if m is not None]
                current["min"] = min(mins) if mins else None
                current["max"] = max(maxes) if maxes else None
            elif isinstance(value, bool) or isinstance(current, bool):
                merged[name] = value
            elif isinstance(value, (int, float)) \
                    and isinstance(current, (int, float)):
                merged[name] = current + value
            else:
                merged[name] = value
    return dict(sorted(merged.items()))


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BOUNDS",
    "merge_dumps",
]
