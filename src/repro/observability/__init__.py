"""Cycle-level observability: metrics registry, tracing, profiling.

Three layers, each opt-in at a different granularity:

* :mod:`repro.observability.stats` — the consolidated per-subsystem
  counter groups (always on; plain attribute increments, no overhead
  over the historical ad-hoc dataclasses they replace);
* :mod:`repro.observability.registry` — the hierarchical
  :class:`MetricsRegistry` every machine carries; ``dump()`` flattens
  all counters/gauges/histograms into one JSON-ready dict;
* :mod:`repro.observability.tracer` — the ring-buffered
  :class:`EventTracer` (zero cost unless attached) with JSONL and
  Chrome ``trace_event`` exporters for Perfetto.

See ``docs/OBSERVABILITY.md`` for the naming scheme and workflows.
"""

from repro.observability.profiler import (
    PhaseTimer,
    RunProfile,
    collect_machines,
)
from repro.observability.registry import (
    DEFAULT_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_dumps,
)
from repro.observability.stats import (
    CacheStats,
    ContextStats,
    HierarchyStats,
    KernelStats,
    MicroScopeStats,
    PortStats,
    PredictorStats,
    PWCStats,
    StatGroup,
    TLBStats,
    WalkerStats,
)
from repro.observability.tracer import (
    HARNESS_TID,
    KERNEL_TID,
    MICROSCOPE_TID,
    EventTracer,
    TraceEvent,
)

__all__ = [
    "PhaseTimer",
    "RunProfile",
    "collect_machines",
    "DEFAULT_BOUNDS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "merge_dumps",
    "StatGroup",
    "ContextStats",
    "CacheStats",
    "HierarchyStats",
    "TLBStats",
    "PWCStats",
    "WalkerStats",
    "PortStats",
    "PredictorStats",
    "KernelStats",
    "MicroScopeStats",
    "EventTracer",
    "TraceEvent",
    "HARNESS_TID",
    "KERNEL_TID",
    "MICROSCOPE_TID",
]
