"""Host-time profiling hooks.

Two complementary tools:

* :class:`PhaseTimer` — named-phase wall-clock attribution
  (``with timer.phase("probe"): ...``), so a benchmark can report
  where its *host* time went (setup vs simulation vs analysis).
* :func:`collect_machines` — a context manager that observes every
  :class:`~repro.cpu.machine.Machine` constructed inside it.  The
  benchmark harness uses this to emit a metrics JSON per experiment
  without threading a machine handle through every helper.  Machines
  built in *worker processes* (the parallel sweep harness) are not
  visible to the parent's collector; their counters stay
  worker-local.

``Machine.profile()`` (see :mod:`repro.cpu.machine`) returns a
:class:`RunProfile` capturing cycles and host seconds for one region,
from which cycles-per-host-second falls out directly.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Tuple

#: The active machine collector, or None.  Machine.__init__ performs
#: one module-attribute read + None check — nothing else — so the
#: hook is effectively free when no collector is installed.
_collector: Optional[List[Any]] = None


def note_machine(machine: Any) -> None:
    """Called by ``Machine.__init__``; records *machine* when a
    collector is active."""
    if _collector is not None:
        _collector.append(machine)


@contextmanager
def collect_machines() -> Iterator[List[Any]]:
    """Collect every Machine constructed in this block (re-entrant
    blocks nest: inner collectors shadow outer ones)."""
    global _collector
    previous = _collector
    machines: List[Any] = []
    _collector = machines
    try:
        yield machines
    finally:
        _collector = previous


class RunProfile:
    """Cycles + host time for one profiled region."""

    __slots__ = ("label", "start_cycle", "end_cycle", "host_seconds",
                 "_t0")

    def __init__(self, label: str, start_cycle: int):
        self.label = label
        self.start_cycle = start_cycle
        self.end_cycle = start_cycle
        self.host_seconds = 0.0
        self._t0 = time.perf_counter()

    def finish(self, end_cycle: int) -> None:
        self.end_cycle = end_cycle
        self.host_seconds = max(time.perf_counter() - self._t0, 1e-9)

    @property
    def cycles(self) -> int:
        return self.end_cycle - self.start_cycle

    @property
    def cycles_per_host_second(self) -> float:
        return self.cycles / self.host_seconds

    def as_dict(self) -> Dict[str, Any]:
        return {
            "label": self.label,
            "cycles": self.cycles,
            "host_seconds": self.host_seconds,
            "cycles_per_host_second": self.cycles_per_host_second,
        }


class PhaseTimer:
    """Accumulates wall-clock time per named phase."""

    __slots__ = ("_phases",)

    def __init__(self) -> None:
        self._phases: Dict[str, Tuple[int, float]] = {}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            calls, seconds = self._phases.get(name, (0, 0.0))
            self._phases[name] = (calls + 1, seconds + elapsed)

    def seconds(self, name: str) -> float:
        return self._phases.get(name, (0, 0.0))[1]

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        return {name: {"calls": calls, "seconds": seconds}
                for name, (calls, seconds)
                in sorted(self._phases.items())}


__all__ = [
    "PhaseTimer",
    "RunProfile",
    "collect_machines",
    "note_machine",
]
