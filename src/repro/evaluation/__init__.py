"""Attack × defense evaluation: the matrix behind ``docs/RESULTS.md``.

This package runs every registered attack against every registered
defense configuration (including the undefended ``"none"`` column)
and classifies each cell as ``defeated`` / ``degraded`` /
``unaffected`` — the reproduction of the paper's §8 argument that
MicroScope survives the deployed mitigations.  See
``docs/DEFENSES.md`` for the defense models and
``python -m repro.tools.results`` for the generated artifacts.

Typical use::

    from repro.evaluation import MatrixRunner

    matrix = MatrixRunner(
        attacks=("cf-cache", "controlled-channel"),
        defenses=("none", "fences", "pf-oblivious"),
    ).run()
    print(matrix.summary_markdown())
"""

from repro.evaluation.attacks import (
    ATTACKS,
    AttackSpec,
    attack_names,
    get_attack,
)
from repro.evaluation.classify import (
    CLASSIFICATIONS,
    EPSILON,
    CellMetrics,
    classify_cell,
)
from repro.evaluation.defenses import (
    DEFENSES,
    DefenseSpec,
    defense_names,
    get_defense,
)
from repro.evaluation.matrix import (
    DEFAULT_LABEL,
    DEFAULT_MASTER_SEED,
    EvaluationMatrix,
    MatrixCell,
    MatrixRunner,
    build_matrix,
    matrix_params,
)

__all__ = [
    "ATTACKS",
    "AttackSpec",
    "CLASSIFICATIONS",
    "CellMetrics",
    "DEFAULT_LABEL",
    "DEFAULT_MASTER_SEED",
    "DEFENSES",
    "DefenseSpec",
    "EPSILON",
    "EvaluationMatrix",
    "MatrixCell",
    "MatrixRunner",
    "attack_names",
    "build_matrix",
    "classify_cell",
    "defense_names",
    "matrix_params",
    "get_attack",
    "get_defense",
]
