"""The attack × defense matrix runner.

The whole matrix is *one* resilient sweep: each (attack, defense)
cell is a trial, executed through the :class:`repro.Experiment`
facade, so per-cell seeds, ``FaultPolicy`` retries, journalled resume
and worker-count-invariant merges all come from the existing
machinery.  Trial parameters are plain ``(attack, defense,
overrides)`` tuples of strings and dicts — registries are resolved
inside the trial — so cells pickle, journal and replay cleanly.

Classification happens in the parent against the same attack's
``"none"`` cell, producing the §8 verdict per cell: ``defeated`` /
``degraded`` / ``unaffected``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.evaluation.attacks import attack_names, get_attack
from repro.evaluation.classify import CellMetrics, classify_cell
from repro.evaluation.defenses import defense_names, get_defense
from repro.experiment import Experiment
from repro.harness import FaultPolicy, derive_seed
from repro.harness.chaos import ChaosPlan

#: Fixed master seed of the published results (the paper's year).
DEFAULT_MASTER_SEED = 2019

#: Default sweep label — part of the seed lineage, so changing it
#: changes every cell's seed.
DEFAULT_LABEL = "evaluation-matrix"


def _cell_trial(params: Any, seed: int) -> Dict[str, Any]:
    """One matrix cell as a harness trial (module-level so worker
    pools can pickle it).  Attack exceptions become ``error`` metrics
    rather than trial faults: a defense that *crashes* the attack is
    a deterministic result (the attack is defeated), not a flaky
    worker worth retrying."""
    attack_name, defense_name, overrides = params
    spec = get_attack(attack_name)
    defense = get_defense(defense_name)
    try:
        metrics = spec.runner(defense, dict(overrides or {}))
    except Exception as exc:  # noqa: BLE001 - defense may break the attack
        metrics = CellMetrics(
            error=f"{type(exc).__name__}: {exc}", chance=spec.chance)
    if defense.notes:
        metrics.notes = tuple(metrics.notes) + tuple(defense.notes)
    return metrics.to_dict()


def _cell_trial_oracle(params: Any, seed: int) -> Dict[str, Any]:
    """The oracle-instrumented cell trial: same cell, run under an
    active :class:`~repro.oracle.TaintOracle`, with the leakage
    summary embedded under ``detail["oracle"]``.  A separate
    module-level function (rather than a flag on :func:`_cell_trial`)
    so oracle-off sweeps keep their exact historical content address
    in the trial store."""
    from repro.oracle import OracleConfig, TaintOracle, activate
    attack_name, defense_name, overrides, oracle_cfg = params
    oracle = TaintOracle(OracleConfig.from_dict(oracle_cfg))
    with activate(oracle):
        payload = _cell_trial((attack_name, defense_name, overrides),
                              seed)
    payload["detail"]["oracle"] = oracle.summary.to_dict()
    return payload


@dataclass
class MatrixCell:
    """One evaluated (attack, defense) pair."""

    attack: str
    defense: str
    metrics: CellMetrics
    #: ``defeated`` / ``degraded`` / ``unaffected``.
    classification: str = "defeated"
    #: The exact seed the cell's trial ran with (resume-proof).
    seed: int = 0

    def to_dict(self) -> Dict[str, Any]:
        """Deterministic JSON-ready form."""
        return {
            "attack": self.attack,
            "classification": self.classification,
            "defense": self.defense,
            "metrics": self.metrics.to_dict(),
            "seed": self.seed,
        }


@dataclass
class EvaluationMatrix:
    """The classified cross-product, plus rendering helpers."""

    master_seed: int
    label: str
    attacks: Tuple[str, ...]
    defenses: Tuple[str, ...]
    cells: Dict[Tuple[str, str], MatrixCell]

    def cell(self, attack: str, defense: str) -> MatrixCell:
        """The cell for one (attack, defense) pair."""
        return self.cells[(attack, defense)]

    def to_dict(self) -> Dict[str, Any]:
        """Deterministic JSON payload (sorted cell keys)."""
        return {
            "attacks": list(self.attacks),
            "cells": {f"{a}/{d}": self.cells[(a, d)].to_dict()
                      for a, d in sorted(self.cells)},
            "defenses": list(self.defenses),
            "label": self.label,
            "master_seed": self.master_seed,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]
                  ) -> "EvaluationMatrix":
        """Rebuild a matrix from :meth:`to_dict` output."""
        cells: Dict[Tuple[str, str], MatrixCell] = {}
        for key, cell in payload["cells"].items():
            attack, defense = key.split("/", 1)
            cells[(attack, defense)] = MatrixCell(
                attack=attack, defense=defense,
                metrics=CellMetrics.from_dict(cell["metrics"]),
                classification=cell["classification"],
                seed=cell["seed"])
        return cls(master_seed=payload["master_seed"],
                   label=payload["label"],
                   attacks=tuple(payload["attacks"]),
                   defenses=tuple(payload["defenses"]),
                   cells=cells)

    # --- rendering -----------------------------------------------------

    def _cell_label(self, attack: str, defense: str) -> str:
        cell = self.cells[(attack, defense)]
        if defense == "none":
            if cell.metrics.accuracy is None:
                return "error"
            return f"leaks ({cell.metrics.accuracy:.2f})"
        return cell.classification

    def summary_rows(self) -> List[List[str]]:
        """Header + one row per attack, for table renderers."""
        header = ["attack"] + list(self.defenses)
        rows = [header]
        for attack in self.attacks:
            rows.append([attack] + [self._cell_label(attack, d)
                                    for d in self.defenses])
        return rows

    def summary_markdown(self) -> str:
        """The verdict table as GitHub markdown."""
        rows = self.summary_rows()
        lines = ["| " + " | ".join(rows[0]) + " |",
                 "|" + "---|" * len(rows[0])]
        lines += ["| " + " | ".join(row) + " |" for row in rows[1:]]
        return "\n".join(lines)

    def detail_markdown(self) -> str:
        """Per-cell accuracy / replays / notes as markdown."""
        lines = ["| attack | defense | class | accuracy | chance "
                 "| replays | detected | notes |",
                 "|---|---|---|---|---|---|---|---|"]
        for attack in self.attacks:
            for defense in self.defenses:
                cell = self.cells[(attack, defense)]
                m = cell.metrics
                acc = "—" if m.accuracy is None \
                    else f"{m.accuracy:.2f}"
                notes = "; ".join(m.notes)
                if m.error:
                    notes = f"error: {m.error}" + \
                        (f"; {notes}" if notes else "")
                lines.append(
                    f"| {attack} | {defense} "
                    f"| {cell.classification} | {acc} "
                    f"| {m.chance:.3f} | {m.replays} "
                    f"| {'yes' if m.detected else 'no'} "
                    f"| {notes} |")
        return "\n".join(lines)


def matrix_params(attacks: Sequence[str], defenses: Sequence[str],
                  overrides: Mapping[str, Mapping[str, Any]]
                  ) -> List[Tuple[str, str, Dict[str, Any]]]:
    """The sweep parameter list for a matrix: attacks-outer,
    defenses-inner, one picklable ``(attack, defense, overrides)``
    tuple per cell — the trial order every cell seed derives from."""
    return [(a, d, dict(overrides.get(a, {})))
            for a in attacks for d in defenses]


def build_matrix(attacks: Sequence[str], defenses: Sequence[str],
                 params: Sequence[Tuple[str, str, Any]],
                 results: Sequence[Any], *, master_seed: int,
                 label: str) -> EvaluationMatrix:
    """Classify raw cell payloads into an :class:`EvaluationMatrix`.

    *results* are the sweep outcomes in trial order (``None`` marks a
    cell skipped by the fault policy).  Shared by
    :meth:`MatrixRunner.run` and the job service, so a matrix
    assembled from a service journal is bit-identical to one run
    inline.
    """
    cells: Dict[Tuple[str, str], MatrixCell] = {}
    for index, (param, payload) in enumerate(zip(params, results)):
        # Cell params are (attack, defense, overrides[, oracle_cfg]).
        attack, defense = param[0], param[1]
        if payload is None:
            metrics = CellMetrics(
                error="trial skipped by fault policy",
                chance=get_attack(attack).chance)
        else:
            metrics = CellMetrics.from_dict(payload)
        cells[(attack, defense)] = MatrixCell(
            attack=attack, defense=defense, metrics=metrics,
            seed=derive_seed(master_seed, index, label))
    for (attack, defense), cell in cells.items():
        baseline = cells.get((attack, "none"))
        cell.classification = classify_cell(
            cell.metrics,
            baseline.metrics if baseline is not None
            and defense != "none" else None)
    return EvaluationMatrix(
        master_seed=master_seed, label=label,
        attacks=tuple(attacks), defenses=tuple(defenses), cells=cells)


@dataclass
class MatrixRunner:
    """Configure and execute the matrix sweep.

    With ``service=`` set (a :class:`repro.service.ServiceClient`, an
    ``(host, port)`` address tuple, or a server state directory),
    :meth:`run` does not execute cells in this process at all: it
    submits the matrix as a job to a running experiment service
    (``python -m repro serve``), waits for completion, and rebuilds
    the :class:`EvaluationMatrix` from the service's payload — which
    is bit-identical to a local run because the service executes the
    very same cell trials under the same seed lineage.
    """

    #: Rows/columns to run; empty = every registered one.
    attacks: Sequence[str] = ()
    defenses: Sequence[str] = ()
    #: Per-attack runner overrides, e.g.
    #: ``{"port-contention": {"measurements": 400}}``.
    overrides: Mapping[str, Mapping[str, Any]] = field(
        default_factory=dict)
    master_seed: int = DEFAULT_MASTER_SEED
    label: str = DEFAULT_LABEL
    workers: Optional[int] = None
    policy: Optional[FaultPolicy] = None
    chaos: Optional[ChaosPlan] = None
    #: Journal path (or ``SweepJournal``) for resumable matrices.
    journal: Any = None
    #: Path or :class:`~repro.memo.store.TrialStore`: cells whose
    #: content address (trial fn + params + seed) is already stored
    #: load instead of recomputing.
    store: Any = None
    #: Sweep backend, forwarded to :class:`repro.Experiment`
    #: (``"scalar"`` or ``"batch"``).
    backend: str = "scalar"
    metrics: Any = None
    tracer: Any = None
    #: A running experiment service to submit through instead of
    #: executing locally: a ``repro.service.ServiceClient``, an
    #: ``(host, port)`` tuple, or a server state directory.
    service: Any = None
    #: Taint-tracking leakage oracle: ``True`` / an
    #: :class:`~repro.oracle.OracleConfig` (or its dict form) runs
    #: every cell under :func:`repro.oracle.activate` and embeds the
    #: leakage summary in each cell's ``detail["oracle"]``;
    #: ``None``/``False`` keeps cells bit-identical to an oracle-free
    #: build.  Not combinable with ``service=`` (the service protocol
    #: does not carry oracle configs yet).
    oracle: Any = None
    #: The :class:`~repro.experiment.ExperimentReport` of the last
    #: :meth:`run` — cache hit/miss accounting lives here, *not* in
    #: the :class:`EvaluationMatrix` (whose serialised form must stay
    #: byte-identical whether or not a cache served it).  ``None``
    #: after a service-routed run (the accounting lives on the
    #: service's status endpoint).
    last_run_report: Any = field(default=None, init=False,
                                 repr=False, compare=False)

    def _axes(self) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
        attacks = tuple(self.attacks) or attack_names()
        defenses = tuple(self.defenses) or defense_names()
        for name in attacks:
            get_attack(name)
        for name in defenses:
            get_defense(name)
        return attacks, defenses

    def _run_via_service(self, attacks: Tuple[str, ...],
                         defenses: Tuple[str, ...]) -> EvaluationMatrix:
        """Submit the matrix as a service job and await the payload."""
        from repro.service import JobSpec, ServiceClient
        if isinstance(self.service, ServiceClient):
            client = self.service
        elif isinstance(self.service, tuple):
            client = ServiceClient(address=self.service)
        else:
            client = ServiceClient(state_dir=self.service)
        spec = JobSpec(
            attacks=attacks, defenses=defenses,
            overrides={a: dict(o) for a, o in self.overrides.items()},
            master_seed=self.master_seed, label=self.label,
            backend=self.backend, workers=self.workers or 1)
        submitted = client.submit(spec)
        status = client.wait(submitted["job"])
        if status["state"] != "done":
            raise RuntimeError(
                f"service job {submitted['job']} ended "
                f"{status['state']!r}: {status.get('error')}")
        self.last_run_report = None
        return EvaluationMatrix.from_dict(client.result(
            submitted["job"]))

    def run(self) -> EvaluationMatrix:
        """Execute every cell and classify against the baselines."""
        from repro.oracle.tracker import _coerce_config
        oracle_config = _coerce_config(self.oracle)
        attacks, defenses = self._axes()
        if self.service is not None:
            if oracle_config is not None:
                raise NotImplementedError(
                    "MatrixRunner(oracle=...) cannot be combined with "
                    "service=: the service job protocol does not "
                    "carry oracle configs yet. Run the oracle matrix "
                    "locally.")
            return self._run_via_service(attacks, defenses)
        params: Sequence[Tuple] = matrix_params(
            attacks, defenses, self.overrides)
        if oracle_config is not None:
            cfg = oracle_config.to_dict()
            params = [(a, d, o, dict(cfg)) for a, d, o in params]
            trial = _cell_trial_oracle
        else:
            trial = _cell_trial
        report = Experiment(
            trial=trial, sweep=params,
            master_seed=self.master_seed, label=self.label,
            workers=self.workers, policy=self.policy,
            chaos=self.chaos, journal=self.journal,
            store=self.store, backend=self.backend,
            metrics=self.metrics, tracer=self.tracer).run()
        self.last_run_report = report
        matrix = build_matrix(attacks, defenses, params,
                              report.results,
                              master_seed=self.master_seed,
                              label=self.label)
        if oracle_config is not None:
            self._record_oracle(matrix, report)
        return matrix

    def _record_oracle(self, matrix: EvaluationMatrix,
                       report: Any) -> None:
        """Fold per-cell leakage summaries into the observability
        sinks under ``oracle.cell.<attack>.<defense>.*``."""
        metrics = self.metrics if self.metrics is not None \
            else report.metrics
        for (attack, defense), cell in sorted(matrix.cells.items()):
            summary = cell.metrics.detail.get("oracle")
            if not isinstance(summary, dict):
                continue
            prefix = f"oracle.cell.{attack}.{defense}"
            total = summary.get("events", 0)
            metrics.counter(f"{prefix}.events").inc(total)
            for kind, count in summary.get("counts", {}).items():
                metrics.counter(f"{prefix}.{kind}").inc(count)
            if self.tracer is not None and total:
                self.tracer.instant(
                    "oracle.leak", ts=0, cat="oracle",
                    attack=attack, defense=defense, total=total,
                    verdict=summary.get("verdict"))
