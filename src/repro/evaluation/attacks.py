"""The attack rows of the matrix, adapted to a common contract.

Every registered attack is wrapped in a module-level *runner*
``fn(defense, overrides) -> CellMetrics`` that (1) instantiates the
attack with the defense's mechanism knobs (machine config, replay
budget, victim transform), (2) runs it over a small fixed set of
ground-truth secrets, and (3) reduces the outcomes to leak accuracy,
replay counts and per-trial diagnostics.  Runners are looked up by
name inside the sweep trial, so matrix trial parameters stay plain
picklable strings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Mapping, Sequence, Tuple

from repro.baselines.controlled_channel import ControlledChannelAttack
from repro.core.attacks.control_flow import ControlFlowCacheAttack
from repro.core.attacks.interrupt_replay import InterruptReplayAttack
from repro.core.attacks.loop_secret import LoopSecretAttack
from repro.core.attacks.mispredict_replay import infer_secret_by_priming
from repro.core.attacks.port_contention import PortContentionAttack
from repro.core.attacks.single_secret import SecretIdExtractionAttack
from repro.evaluation.defenses.tsgx import wrap_with_tsgx
from repro.evaluation.classify import CellMetrics
from repro.evaluation.defenses import DefenseSpec

Runner = Callable[[DefenseSpec, Mapping[str, Any]], CellMetrics]


def _accuracy(outcomes: Sequence[bool]) -> float:
    return sum(1 for ok in outcomes if ok) / len(outcomes)


def _tsgx_wrapper(program, process):
    """Victim transform for the ``tsgx`` column (module-level so the
    attack object stays picklable)."""
    return wrap_with_tsgx(program, process)


def run_cf_cache(defense: DefenseSpec,
                 overrides: Mapping[str, Any]) -> CellMetrics:
    """Cache-line control-flow attack (§4.2.3, Fig. 4c)."""
    secrets = tuple(overrides.get("secrets", (0, 1)))
    attack = ControlFlowCacheAttack(
        replays=overrides.get("replays", 5),
        machine=defense.machine,
        replay_budget=defense.replay_budget)
    results = [attack.run(s) for s in secrets]
    replays = max(r.replays for r in results)
    return CellMetrics(
        accuracy=_accuracy([r.correct for r in results]),
        chance=0.5, trials=len(results), replays=replays,
        detected=defense.detected(replays),
        detail={str(s): {"guessed": r.guessed, "hitsB": r.hitsB,
                         "hitsC": r.hitsC, "replays": r.replays}
                for s, r in zip(secrets, results)})


def run_secret_id(defense: DefenseSpec,
                  overrides: Mapping[str, Any]) -> CellMetrics:
    """Secret-id extraction on the Fig. 5 victim (§4.2.1)."""
    secret_ids = tuple(overrides.get("secret_ids", (5, 37)))
    attack = SecretIdExtractionAttack(
        replays=overrides.get("replays", 3),
        machine=defense.machine,
        replay_budget=defense.replay_budget)
    results = [attack.run(sid) for sid in secret_ids]
    replays = max(r.replays for r in results)
    lines = (attack.num_secrets * 8) // 64
    return CellMetrics(
        accuracy=_accuracy([r.correct for r in results]),
        chance=1.0 / lines, trials=len(results), replays=replays,
        detected=defense.detected(replays),
        detail={str(sid): {"extracted_line": r.extracted_line,
                           "true_line": r.true_line,
                           "replays": r.replays}
                for sid, r in zip(secret_ids, results)})


def run_loop_secret(defense: DefenseSpec,
                    overrides: Mapping[str, Any]) -> CellMetrics:
    """Loop-secret extraction with window tuning + pivot (§4.2.2)."""
    secrets = list(overrides.get("secrets", (3, 7, 1, 12)))
    attack = LoopSecretAttack(
        machine=defense.machine,
        replay_budget=defense.replay_budget)
    result = attack.run(secrets)
    return CellMetrics(
        accuracy=result.accuracy,
        chance=1.0 / attack.table_lines,
        trials=len(secrets), replays=result.replays,
        detected=defense.detected(result.replays),
        detail={"extracted": result.extracted,
                "truth": result.truth,
                "replays": result.replays})


def run_interrupt_replay(defense: DefenseSpec,
                         overrides: Mapping[str, Any]) -> CellMetrics:
    """Timer interrupts as replay handles (§7.1) — no page-table
    manipulation, so page-fault-centric defenses miss it."""
    secrets = tuple(overrides.get("secrets", (0, 1)))
    attack = InterruptReplayAttack(
        replays=overrides.get("replays", 8),
        machine=defense.machine,
        replay_budget=defense.replay_budget)
    results = [attack.run(secret=s) for s in secrets]
    replays = max(r.interrupts_delivered for r in results)
    notes: Tuple[str, ...] = ()
    if defense.victim_transform or defense.detects:
        notes = ("interrupt handles bypass page-fault defenses "
                 "(§7.1); budget applied to interrupts delivered",)
    return CellMetrics(
        accuracy=_accuracy([r.correct for r in results]),
        chance=0.5, trials=len(results), replays=replays,
        detected=defense.detected(replays),
        notes=notes,
        detail={str(s): {"guessed": r.guessed,
                         "mul": r.mul_executions,
                         "div": r.div_executions,
                         "interrupts": r.interrupts_delivered}
                for s, r in zip(secrets, results)})


def run_mispredict(defense: DefenseSpec,
                   overrides: Mapping[str, Any]) -> CellMetrics:
    """Primed-misprediction inference (§4.2.3 / §7.1): intrinsically
    bounded replays, so budgets never bind."""
    secrets = tuple(overrides.get("secrets", (0, 1)))
    outcomes = [infer_secret_by_priming(s, machine=defense.machine)
                for s in secrets]
    replays = max(o["result"].replayed_instructions
                  for o in outcomes)
    return CellMetrics(
        accuracy=_accuracy([o["correct"] for o in outcomes]),
        chance=0.5, trials=len(outcomes), replays=replays,
        detected=defense.detected(replays),
        detail={str(s): {"guessed": o["guessed_secret"],
                         "mispredicted":
                             o["misprediction_observed"]}
                for s, o in zip(secrets, outcomes)})


def run_port_contention(defense: DefenseSpec,
                        overrides: Mapping[str, Any]) -> CellMetrics:
    """The Fig. 10 port-contention attack (§4.3 / §6.1)."""
    secrets = tuple(overrides.get("secrets", (0, 1)))
    attack = PortContentionAttack(
        measurements=overrides.get("measurements", 800),
        machine=defense.machine,
        replay_budget=defense.replay_budget)
    threshold = attack.calibrate(
        samples=overrides.get("calibrate_samples", 600))
    results = [attack.run(s, threshold=threshold) for s in secrets]
    replays = max(r.replays for r in results)
    return CellMetrics(
        accuracy=_accuracy([r.correct for r in results]),
        chance=0.5, trials=len(results), replays=replays,
        detected=defense.detected(replays),
        detail={str(s): {"verdict": r.verdict,
                         "above_threshold": r.above_threshold,
                         "samples": len(r.samples),
                         "threshold": r.threshold,
                         "replays": r.replays}
                for s, r in zip(secrets, results)})


def run_controlled_channel(defense: DefenseSpec,
                           overrides: Mapping[str, Any]
                           ) -> CellMetrics:
    """The Table-1 controlled-channel baseline (Xu et al. [60]) —
    the row where victim-transform defenses actually bite, which is
    the paper's §8 contrast with MicroScope."""
    secrets = tuple(overrides.get("secrets", (0, 1)))
    attack = ControlledChannelAttack(
        machine=defense.machine,
        oblivious=defense.victim_transform == "oblivious",
        victim_wrapper=_tsgx_wrapper
        if defense.victim_transform == "tsgx" else None)
    results = [attack.run(s) for s in secrets]
    faults = max(len(r.fault_vpns) for r in results)
    return CellMetrics(
        accuracy=_accuracy([r.correct for r in results]),
        chance=0.5, trials=len(results), replays=0,
        detected=defense.detected(faults),
        notes=("page-granular OS channel, no replay machinery; "
               "fault count stands in for the detection load",),
        detail={str(s): {"guessed": r.guessed,
                         "faults": len(r.fault_vpns)}
                for s, r in zip(secrets, results)})


@dataclass(frozen=True)
class AttackSpec:
    """One matrix row: a registered attack plus its prior."""

    name: str
    #: One-line description for the generated docs.
    summary: str
    #: Where the paper describes it.
    paper_ref: str
    #: Probability of a blind guess being right (the accuracy floor).
    chance: float
    #: ``fn(defense, overrides) -> CellMetrics``; module-level.
    runner: Runner


#: Registry of every attack row, in canonical matrix order.
ATTACKS: Dict[str, AttackSpec] = {spec.name: spec for spec in (
    AttackSpec("cf-cache",
               "Cache-line control-flow secret (Prime+Probe in the "
               "replay window)", "§4.2.3, Fig. 4c", 0.5,
               run_cf_cache),
    AttackSpec("secret-id",
               "Secret table index at cache-line granularity",
               "§4.2.1, Fig. 5", 1.0 / 16, run_secret_id),
    AttackSpec("loop-secret",
               "Per-iteration loop secrets via window tuning and the "
               "pivot", "§4.2.2, Fig. 4b", 1.0 / 16,
               run_loop_secret),
    AttackSpec("interrupt-replay",
               "Timer interrupts as replay handles (no page-table "
               "writes)", "§7.1", 0.5, run_interrupt_replay),
    AttackSpec("mispredict",
               "Primed branch misprediction as a bounded replay "
               "handle", "§4.2.3 / §7.1", 0.5, run_mispredict),
    AttackSpec("port-contention",
               "SMT divider contention in the replay shadow "
               "(Fig. 10)", "§4.3 / §6.1", 0.5,
               run_port_contention),
    AttackSpec("controlled-channel",
               "Controlled-channel baseline: the OS logs the page-"
               "fault sequence", "Table 1, Xu et al. [60]", 0.5,
               run_controlled_channel),
)}


def attack_names() -> Tuple[str, ...]:
    """Canonical row order of the full matrix."""
    return tuple(ATTACKS)


def get_attack(name: str) -> AttackSpec:
    """Look up a registered attack; raises ``KeyError`` with the
    valid names otherwise."""
    try:
        return ATTACKS[name]
    except KeyError:
        raise KeyError(f"unknown attack {name!r}; registered: "
                       f"{', '.join(ATTACKS)}") from None
