"""Cell metrics and the defeated / degraded / unaffected verdict.

Every cell of the attack × defense matrix reduces to one
:class:`CellMetrics` — leak accuracy against chance, replay windows
consumed, whether a detection-based defense raised its flag — and
:func:`classify_cell` turns that into the verdict the paper's §8
discussion is about:

``defeated``
    the attack no longer beats random guessing (or it crashed
    outright under the defense);
``degraded``
    it still leaks, but measurably worse than against the undefended
    baseline — or the defense detected it;
``unaffected``
    the defense changed nothing the attacker cares about.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

#: The three possible verdicts, in increasing order of attacker joy.
CLASSIFICATIONS: Tuple[str, ...] = ("defeated", "degraded",
                                    "unaffected")

#: Accuracy margin treated as noise: a leak within ``EPSILON`` of
#: chance is no leak, and a drop within ``EPSILON`` of the baseline
#: is no degradation.
EPSILON = 0.1


def _clean(value: Any) -> Any:
    """Normalise *value* for deterministic JSON: sort dict keys,
    round floats, stringify everything else exotic."""
    if isinstance(value, dict):
        return {str(k): _clean(value[k])
                for k in sorted(value, key=str)}
    if isinstance(value, (list, tuple)):
        return [_clean(v) for v in value]
    if isinstance(value, float):
        return round(value, 6)
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    return repr(value)


@dataclass
class CellMetrics:
    """What one (attack, defense) cell measured.

    ``accuracy is None`` means the attack produced no estimate at all
    (it crashed, or the defense terminated the victim); ``error``
    carries the reason when there is one.  Wall-clock time is
    deliberately absent: cells must serialise bit-identically across
    runs and worker counts.
    """

    #: Leak accuracy over the cell's trials, in [0, 1]; None = no
    #: estimate (error / terminated victim).
    accuracy: Optional[float] = None
    #: Probability of guessing right with no side channel at all.
    chance: float = 0.5
    #: Number of ground-truth trials behind ``accuracy``.
    trials: int = 0
    #: Replay windows the attacker consumed (max across trials).
    replays: int = 0
    #: A detection-based defense (Déjà Vu) raised its flag.
    detected: bool = False
    #: Why there is no accuracy, when there isn't.
    error: Optional[str] = None
    #: Free-form caveats rendered into the results doc.
    notes: Tuple[str, ...] = ()
    #: Per-trial diagnostics (JSON-cleaned on serialisation).
    detail: Dict[str, Any] = field(default_factory=dict)

    @property
    def leak_margin(self) -> Optional[float]:
        """Accuracy above chance, the thing defenses try to erase."""
        if self.accuracy is None:
            return None
        return self.accuracy - self.chance

    def to_dict(self) -> Dict[str, Any]:
        """Deterministic JSON-ready form (sorted keys, rounded
        floats, no timestamps)."""
        return {
            "accuracy": None if self.accuracy is None
            else round(self.accuracy, 6),
            "chance": round(self.chance, 6),
            "detail": _clean(self.detail),
            "detected": self.detected,
            "error": self.error,
            "notes": list(self.notes),
            "replays": self.replays,
            "trials": self.trials,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "CellMetrics":
        """Inverse of :meth:`to_dict` (detail stays JSON-shaped)."""
        return cls(
            accuracy=payload.get("accuracy"),
            chance=payload.get("chance", 0.5),
            trials=payload.get("trials", 0),
            replays=payload.get("replays", 0),
            detected=payload.get("detected", False),
            error=payload.get("error"),
            notes=tuple(payload.get("notes", ())),
            detail=dict(payload.get("detail", {})))


def classify_cell(cell: CellMetrics,
                  baseline: Optional[CellMetrics] = None,
                  *, epsilon: float = EPSILON) -> str:
    """Classify one cell against its undefended baseline.

    *baseline* is the same attack's ``"none"`` cell (pass ``None``
    when the matrix has no undefended column); *epsilon* is the
    accuracy margin treated as noise.
    """
    if cell.error is not None or cell.accuracy is None:
        return "defeated"
    margin = cell.accuracy - cell.chance
    if margin <= epsilon:
        return "defeated"
    if cell.detected:
        return "degraded"
    if baseline is not None and baseline.accuracy is not None \
            and cell.accuracy < baseline.accuracy - epsilon:
        return "degraded"
    return "unaffected"
