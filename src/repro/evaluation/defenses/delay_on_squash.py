"""Delay-on-Squash (Sakalis et al., arXiv:2103.10692).

Where Jamais Vu tracks *which* instructions were squashed,
Delay-on-Squash reacts to the squash itself: after any pipeline
flush the core enters a *shadow* during which side-channel-capable
instructions (loads, stores, multiplies, divides — anything that
perturbs shared microarchitectural state) may not execute
speculatively.  Inside the shadow such an instruction issues only
once it is the oldest instruction still making progress, which also
forces the delayed instructions to release in program order.  The
shadow decays after ``shadow_retires`` architectural retirements
without a further squash — sustained replay pressure therefore keeps
the core permanently in the shadow, while a single benign
misprediction costs a short serialised stretch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional

from repro.config import DefenseHookConfig, MachineConfig
from repro.cpu.context import HardwareContext
from repro.cpu.rob import ROBEntry
from repro.evaluation.defenses.mechanisms import (
    DefenseMechanism,
    nonspeculative,
    register_mechanism,
)

#: Op classes treated as side-channel-capable: they leave observable
#: residue in caches (load/store) or occupy contended ports (mul/div,
#: the Fig. 10 channel).
SIDE_CHANNEL_CLASSES: FrozenSet[str] = frozenset(
    {"load", "store", "mul", "div", "fpalu"})


@register_mechanism("delay-on-squash")
class DelayOnSquashMechanism(DefenseMechanism):
    """Post-squash shadow gating side-channel-capable instructions."""

    scheme = "delay-on-squash"

    def __init__(self, shadow_retires: int = 64,
                 classes: FrozenSet[str] = SIDE_CHANNEL_CLASSES):
        self.shadow_retires = shadow_retires
        self.classes = frozenset(classes)
        #: context id -> retirements left before the shadow lifts.
        self._shadow: Dict[int, int] = {}
        self._delayed = None

    def attach(self, machine) -> None:
        core = machine.core
        core.squash_hooks.append(self._on_squash)
        core.retire_hooks.append(self._on_retire)
        core.issue_gates.append(self._gate)
        self._delayed = machine.metrics.counter(
            "defense.delay_on_squash.delayed_issues")

    def _on_squash(self, context: HardwareContext, squashed,
                   reason: str, trigger: Optional[ROBEntry]) -> None:
        self._shadow[context.context_id] = self.shadow_retires

    def _on_retire(self, context: HardwareContext,
                   entry: ROBEntry) -> None:
        cid = context.context_id
        left = self._shadow.get(cid, 0)
        if left > 0:
            self._shadow[cid] = left - 1

    def _gate(self, context: HardwareContext,
              entry: ROBEntry) -> bool:
        if not self._shadow.get(context.context_id):
            return True
        if entry.op_cls not in self.classes:
            return True
        if nonspeculative(context, entry):
            return True
        if self._delayed is not None:
            self._delayed.inc()
        return False

    def in_shadow(self, context_id: int) -> bool:
        """True while *context_id* is inside a post-squash shadow."""
        return bool(self._shadow.get(context_id))

    def capture(self) -> tuple:
        return (dict(self._shadow),)

    def restore(self, state: tuple) -> None:
        (shadow,) = state
        self._shadow = dict(shadow)


def delay_on_squash_machine(**params) -> MachineConfig:
    """A platform config with Delay-on-Squash installed."""
    return MachineConfig(defense=DefenseHookConfig(
        scheme="delay-on-squash", params=dict(params)))


@dataclass
class DelayOnSquashReport:
    """Speculative transmit executions with and without the shadow."""

    replays: int
    transmit_issues_undefended: int
    transmit_issues_defended: int

    @property
    def replay_suppressed(self) -> bool:
        """Only the pre-shadow first window leaks."""
        return self.transmit_issues_defended <= 2  # one window's divs


def evaluate_delay_on_squash(replays: int = 8,
                             secret: int = 1) -> DelayOnSquashReport:
    """Replay the Fig. 6 victim *replays* times on the stock platform
    and under Delay-on-Squash; count speculatively executed transmit
    (divide) instructions each way."""
    from repro.evaluation.defenses.fences import count_transmit_issues
    return DelayOnSquashReport(
        replays=replays,
        transmit_issues_undefended=count_transmit_issues(
            replays, secret),
        transmit_issues_defended=count_transmit_issues(
            replays, secret,
            machine_config=delay_on_squash_machine()))
