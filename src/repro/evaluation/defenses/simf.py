"""SIMF-style flush on kernel entry (arXiv:2011.10249).

SIMF ("Speculative Interference-Free Microarchitecture Flushing" in
spirit: flush microarchitectural state on protection-domain
crossings) attacks the replay loop at its probe step instead of its
execution step: every kernel entry — page-fault handling, interrupt
delivery — flushes the core-private caches and TLBs, so whatever
residue the speculative window left is gone by the time the
attacker's handler gets to measure it.  Speculation itself is
unrestricted; MicroScope's windows still execute, but the
Prime+Probe readout that §4.2 relies on comes back empty.

The model hooks the squash notification (kernel entries are exactly
the ``page-fault`` / ``interrupt:*`` squash reasons) and flushes the
whole private cache hierarchy plus, optionally, the TLBs.  Flushing
erases residue rather than restricting speculation; a side effect in
this model is that the cold restart each replay now pays also skews
the port-contention channel's timing alignment, so §4.3 degrades as
well even though contention itself is never policed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.config import DefenseHookConfig, MachineConfig
from repro.cpu.context import HardwareContext
from repro.cpu.rob import ROBEntry
from repro.evaluation.defenses.mechanisms import (
    DefenseMechanism,
    register_mechanism,
)

#: Squash reasons that correspond to a kernel entry.
KERNEL_ENTRY_REASONS = ("page-fault", "interrupt")


def is_kernel_entry(reason: str) -> bool:
    """True for squash reasons that transfer control to the kernel."""
    return reason == "page-fault" or reason.startswith("interrupt")


@register_mechanism("simf")
class SIMFFlushMechanism(DefenseMechanism):
    """Flush caches (and TLBs) on every kernel entry."""

    scheme = "simf"

    def __init__(self, flush_tlbs: bool = True):
        self.flush_tlbs = flush_tlbs
        self._machine = None
        self._flushes = None

    def attach(self, machine) -> None:
        self._machine = machine
        machine.core.squash_hooks.append(self._on_squash)
        self._flushes = machine.metrics.counter("defense.simf.flushes")

    def _on_squash(self, context: HardwareContext, squashed,
                   reason: str, trigger: Optional[ROBEntry]) -> None:
        if not is_kernel_entry(reason):
            return
        self._machine.hierarchy.flush_all()
        if self.flush_tlbs:
            self._machine.tlbs.flush_all()
        if self._flushes is not None:
            self._flushes.inc()

    # Stateless beyond the flush counter (which travels with the
    # metrics registry), so the base capture()/restore() suffice.


def simf_machine(**params) -> MachineConfig:
    """A platform config with the SIMF flush mechanism installed."""
    return MachineConfig(defense=DefenseHookConfig(
        scheme="simf", params=dict(params)))


@dataclass
class SIMFReport:
    """The cf-cache attack's verdicts with and without the flush."""

    secret: int
    undefended_guess: Optional[int]
    defended_guess: Optional[int]
    undefended_hits: int
    defended_hits: int

    @property
    def residue_erased(self) -> bool:
        """The probe no longer resolves the secret."""
        return self.defended_guess != self.secret


def evaluate_simf(secret: int = 1, replays: int = 5) -> SIMFReport:
    """Run the §4.2.3 cache control-flow attack against the stock
    platform and the SIMF platform; report what the probe decoded."""
    from repro.core.attacks.control_flow import ControlFlowCacheAttack
    plain = ControlFlowCacheAttack(replays=replays).run(secret)
    defended = ControlFlowCacheAttack(
        replays=replays, machine=simf_machine()).run(secret)
    return SIMFReport(
        secret=secret,
        undefended_guess=plain.guessed,
        defended_guess=defended.guessed,
        undefended_hits=plain.hitsB + plain.hitsC,
        defended_hits=defended.hitsB + defended.hitsC)
