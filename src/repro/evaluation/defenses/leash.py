"""LEASH-style reactive throttling (arXiv:2109.03998).

LEASH assumes attacks *will* slip past static defenses and instead
watches runtime behaviour: a context whose squash rate looks like a
replay storm gets its issue bandwidth cut until the storm subsides.
The detector here is deliberately simple and fully deterministic —
it reads ``squash_events`` from the per-context
:class:`~repro.observability.stats.ContextStats` group that is
already registered in the machine's
:class:`~repro.observability.registry.MetricsRegistry`, sampled at
fixed ``window_cycles`` boundaries, with two-threshold hysteresis:

* rate ≥ ``hi`` over a window → throttle **on**;
* rate ≤ ``lo``             → throttle **off**;
* in between                → keep the previous state.

While throttled, a context may issue at most
``issue_width // throttle_factor`` instructions per cycle (default:
half the core's issue bandwidth, floor one — the gate never
deadlocks).  MicroScope's replay loop is exactly such a storm: one
squash per window, thousands of windows; benign code mispredicts far
below ``hi``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.config import DefenseHookConfig, MachineConfig
from repro.cpu.context import HardwareContext
from repro.cpu.rob import ROBEntry
from repro.evaluation.defenses.mechanisms import (
    DefenseMechanism,
    register_mechanism,
)

#: Default detector knobs, sized to the replay storm this repo's
#: attacks actually produce: one squash every ~2,500 cycles (a
#: ``fault_handler_cost=2000`` page fault plus refetch), i.e. ≥ 3 per
#: 8,192-cycle window, versus isolated launch-time paging and benign
#: mispredict noise afterwards.
LEASH_HI_SQUASHES = 3
LEASH_LO_SQUASHES = 1
LEASH_WINDOW_CYCLES = 8192


@register_mechanism("leash")
class LeashMechanism(DefenseMechanism):
    """Squash-rate hysteresis driving a per-context issue limiter."""

    scheme = "leash"

    def __init__(self, hi: int = LEASH_HI_SQUASHES,
                 lo: int = LEASH_LO_SQUASHES,
                 window_cycles: int = LEASH_WINDOW_CYCLES,
                 throttle_factor: int = 2):
        if lo > hi:
            raise ValueError("hysteresis requires lo <= hi")
        self.hi = hi
        self.lo = lo
        self.window_cycles = window_cycles
        self.throttle_factor = throttle_factor
        self._core = None
        self._throttled_counter = None
        #: context id -> squash_events seen at the last window edge.
        self._last_seen: Dict[int, int] = {}
        #: context id -> cycle the current window started.
        self._window_start: Dict[int, int] = {}
        #: context id -> throttle engaged?
        self._state: Dict[int, bool] = {}
        #: context id -> (cycle, issues counted that cycle).
        self._issued: Dict[int, Tuple[int, int]] = {}

    # --- wiring -----------------------------------------------------------

    def attach(self, machine) -> None:
        core = machine.core
        self._core = core
        core.issue_gates.append(self._gate)
        core.issue_hooks.append(self._on_issue)
        self._throttled_counter = machine.metrics.counter(
            "defense.leash.throttled_issues")

    # --- detector ---------------------------------------------------------

    def _maybe_roll(self, context: HardwareContext) -> None:
        cid = context.context_id
        cycle = self._core.cycle
        start = self._window_start.get(cid, 0)
        if cycle - start < self.window_cycles:
            return
        events = context.stats.squash_events
        rate = events - self._last_seen.get(cid, 0)
        if rate >= self.hi:
            self._state[cid] = True
        elif rate <= self.lo:
            self._state[cid] = False
        self._last_seen[cid] = events
        self._window_start[cid] = cycle

    def throttled(self, context: HardwareContext) -> bool:
        """Poll (and roll) the detector for *context*."""
        self._maybe_roll(context)
        return self._state.get(context.context_id, False)

    # --- limiter ----------------------------------------------------------

    def _issue_budget(self) -> int:
        return max(1, self._core.config.issue_width
                   // self.throttle_factor)

    def _gate(self, context: HardwareContext,
              entry: ROBEntry) -> bool:
        if not self.throttled(context):
            return True
        cycle, count = self._issued.get(context.context_id, (-1, 0))
        if cycle != self._core.cycle:
            count = 0
        if count < self._issue_budget():
            return True
        if self._throttled_counter is not None:
            self._throttled_counter.inc()
        return False

    def _on_issue(self, context: HardwareContext,
                  entry: ROBEntry) -> None:
        cid = context.context_id
        cycle, count = self._issued.get(cid, (-1, 0))
        if cycle != self._core.cycle:
            cycle, count = self._core.cycle, 0
        self._issued[cid] = (cycle, count + 1)

    # --- snapshot support -------------------------------------------------

    def capture(self) -> tuple:
        return (dict(self._last_seen), dict(self._window_start),
                dict(self._state), dict(self._issued))

    def restore(self, state: tuple) -> None:
        last_seen, window_start, throttle, issued = state
        self._last_seen = dict(last_seen)
        self._window_start = dict(window_start)
        self._state = dict(throttle)
        self._issued = dict(issued)


def leash_machine(**params) -> MachineConfig:
    """A platform config with the LEASH throttler installed."""
    return MachineConfig(defense=DefenseHookConfig(
        scheme="leash", params=dict(params)))


@dataclass
class LeashReport:
    """Hysteresis trace of the detector under a synthetic squash
    storm followed by quiet windows."""

    window_cycles: int
    hi: int
    lo: int
    #: Throttle state sampled after each simulated window.
    trace: List[bool]
    #: Window index the throttle first engaged (None = never).
    engaged_at: Optional[int]
    #: Window index it released again (None = never).
    released_at: Optional[int]

    @property
    def hysteresis_observed(self) -> bool:
        return self.engaged_at is not None \
            and self.released_at is not None \
            and self.released_at > self.engaged_at


def evaluate_leash(storm_windows: int = 3, quiet_windows: int = 3,
                   squashes_per_storm_window: int = 6) -> LeashReport:
    """Drive the detector through a squash storm and the quiet that
    follows, sampling the throttle state at every window edge."""
    from repro.cpu.machine import Machine
    machine = Machine(leash_machine())
    mechanism = machine.defense
    context = machine.contexts[0]
    trace: List[bool] = []
    engaged_at: Optional[int] = None
    released_at: Optional[int] = None
    for window in range(storm_windows + quiet_windows):
        if window < storm_windows:
            context.stats.squash_events += squashes_per_storm_window
        machine.step(mechanism.window_cycles)
        state = mechanism.throttled(context)
        trace.append(state)
        if state and engaged_at is None:
            engaged_at = window
        if not state and engaged_at is not None \
                and released_at is None and window >= storm_windows:
            released_at = window
    return LeashReport(
        window_cycles=mechanism.window_cycles,
        hi=mechanism.hi, lo=mechanism.lo, trace=trace,
        engaged_at=engaged_at, released_at=released_at)
