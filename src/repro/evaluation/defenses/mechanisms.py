"""Machine-level defense mechanisms behind ``MachineConfig.defense``.

The follow-on literature's defenses (Jamais Vu, Delay-on-Squash,
SIMF, LEASH) are not knobs on existing subsystems the way
``fence_on_flush`` is — they are small state machines that watch the
pipeline through the core's hook layer (``squash_hooks``,
``retire_hooks``, ``issue_hooks``) and push back through
``issue_gates``.  Each one is a :class:`DefenseMechanism`:

* ``attach(machine)`` registers its hooks (identity wiring, done once
  at machine construction);
* ``capture()`` / ``restore()`` clone its mutable state, which the
  machine appends to its own snapshot payload — so Replayer
  checkpoints, window memoization and the batch engine stay bit-exact
  with a mechanism installed.

A mechanism is selected by :class:`~repro.config.DefenseHookConfig`:
``Machine.__init__`` resolves ``config.defense.scheme`` against the
:data:`MECHANISMS` registry and installs the result.  Because every
attack runner passes ``machine=defense.machine`` through unchanged,
a new defense reaches all seven attack rows with zero attack-side
code.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, Mapping

from repro.cpu.context import HardwareContext
from repro.cpu.rob import EntryState, ROBEntry

if TYPE_CHECKING:
    from repro.cpu.config import DefenseHookConfig


class DefenseMechanism:
    """Base class: a defense installed through the core hook layer."""

    #: Registry key; subclasses override.
    scheme: str = ""

    def attach(self, machine) -> None:
        """Register hooks on *machine* (called once, at construction)."""
        raise NotImplementedError

    def capture(self) -> tuple:
        """Clone the mechanism's mutable state (snapshot support)."""
        return ()

    def restore(self, state: tuple) -> None:
        """Inverse of :meth:`capture`."""


def nonspeculative(context: HardwareContext, entry: ROBEntry) -> bool:
    """True when *entry* is the oldest instruction still making
    progress: every older ROB entry has completed without a fault.

    This is the release condition squash-tracking defenses gate on —
    a faulted older entry is about to squash *entry* anyway, and an
    incomplete one means *entry* would execute in its speculative
    shadow.  The entry at the ROB head satisfies it vacuously, so a
    gated context always makes forward progress.
    """
    seq = entry.seq
    for older in context.rob.entries:
        if older.seq >= seq:
            return True
        if older.state is not EntryState.COMPLETED or older.faulted:
            return False
    return True


#: Scheme name → factory taking the ``DefenseHookConfig.params`` dict.
MECHANISMS: Dict[str, Callable[..., DefenseMechanism]] = {}


def register_mechanism(scheme: str
                       ) -> Callable[[Callable[..., DefenseMechanism]],
                                     Callable[..., DefenseMechanism]]:
    """Class decorator registering a mechanism factory under *scheme*."""
    def decorate(factory: Callable[..., DefenseMechanism]
                 ) -> Callable[..., DefenseMechanism]:
        if scheme in MECHANISMS:
            raise ValueError(f"mechanism {scheme!r} already registered")
        MECHANISMS[scheme] = factory
        return factory
    return decorate


def build_mechanism(config: "DefenseHookConfig") -> DefenseMechanism:
    """Instantiate the mechanism *config* names (unattached)."""
    try:
        factory = MECHANISMS[config.scheme]
    except KeyError:
        raise KeyError(
            f"unknown defense scheme {config.scheme!r}; registered: "
            f"{', '.join(sorted(MECHANISMS))}") from None
    params: Mapping[str, Any] = config.params or {}
    return factory(**dict(params))


def install_defense(machine, config: "DefenseHookConfig"
                    ) -> DefenseMechanism:
    """Build the mechanism *config* names and attach it to *machine*."""
    mechanism = build_mechanism(config)
    mechanism.attach(machine)
    return mechanism


# The scheme modules self-register on import; the package __init__
# (which Python always runs before any submodule import) imports all
# of them, so the registry is complete by the time anything can call
# build_mechanism.
