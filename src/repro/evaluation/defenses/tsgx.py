"""T-SGX (§8, "Page Fault Protection Schemes").

T-SGX [50] wraps enclave execution in TSX transactions: a page fault
inside a transaction aborts it *without notifying the OS*, and a
user-level fallback handler decides what to do.  Because the handler
cannot distinguish page-fault aborts from interrupt aborts, T-SGX
terminates the program only after a threshold of ``N = 10`` failed
transactions.

The paper's observation, reproduced here: "This design decision still
provides N - 1 replays to MicroScope.  Such number can be sufficient
in many attacks."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.replayer import AttackEnvironment, Replayer
from repro.isa.instructions import Opcode
from repro.isa.program import Program, ProgramBuilder
from repro.kernel.process import Process
from repro.victims.control_flow import setup_control_flow_victim

#: T-SGX's failed-transaction threshold.
TSGX_THRESHOLD = 10


def wrap_with_tsgx(program: Program, process: Process,
                   threshold: int = TSGX_THRESHOLD) -> Program:
    """Wrap *program* in a T-SGX style transaction.

    The body re-executes from TBEGIN on every abort; the fallback
    counts aborts in memory and terminates the program once the
    threshold is reached.  HALTs in the body become commits.
    """
    counter_va = process.alloc(4096, "tsgx-counter")
    b = ProgramBuilder(f"tsgx({program.name})")
    b.label("tsgx_retry")
    b.tbegin("tsgx_fallback")
    body_start = len(b)
    for instr in program.instructions:
        if instr.op is Opcode.HALT:
            b.jmp("tsgx_commit")
        else:
            b.emit(instr)
    # Re-anchor the original labels onto the shifted body.
    for label, index in program.labels.items():
        b.bind_label(label, body_start + index)
    b.label("tsgx_commit")
    b.tend()
    b.halt()
    b.label("tsgx_fallback")
    b.li("r14", counter_va)
    b.load("r15", "r14", 0)
    b.addi("r15", "r15", 1)
    b.store("r14", "r15", 0)
    b.li("r14", threshold)
    b.blt("r15", "r14", "tsgx_retry")
    b.halt("tsgx-terminate")
    return b.build()


@dataclass
class TSGXReport:
    threshold: int
    aborts: int
    #: Speculative windows the attacker observed before termination.
    replay_windows_observed: int
    victim_terminated: bool
    #: The OS never saw a single page fault (the T-SGX guarantee).
    os_faults_seen: int

    @property
    def matches_paper(self) -> bool:
        """N-1 replays despite the defense."""
        return self.replay_windows_observed >= self.threshold - 1


def evaluate_tsgx(secret: int = 1,
                  threshold: int = TSGX_THRESHOLD) -> TSGXReport:
    """Attack a T-SGX-protected victim with the page-fault handle and
    count what the attacker still gets."""
    rep = Replayer(AttackEnvironment.build())
    victim_proc = rep.create_victim_process("tsgx-victim")
    victim = setup_control_flow_victim(victim_proc, secret)
    wrapped = wrap_with_tsgx(victim.program, victim_proc, threshold)
    windows = {"div_issues": 0}

    def observer(context, entry):
        if context.context_id == 0 and entry.instr.op is Opcode.FDIV:
            windows["div_issues"] += 1

    rep.machine.core.issue_hooks.append(observer)
    # The attacker clears the present bit once; inside a transaction
    # every fault becomes an abort, so the MicroScope module is never
    # invoked again — and neither is the kernel.  To keep the replay
    # windows long, the attacker polls from another core, re-flushing
    # the handle's translation path (it cannot rely on the fault
    # trampoline, which TSX suppresses).
    rep.module.initiate_page_fault(victim_proc, victim.handle_va + 0x20)
    rep.launch_victim(victim_proc, wrapped)
    ctx0 = rep.machine.contexts[0]
    budget = 5_000_000
    while budget > 0 and not ctx0.finished():
        rep.machine.step(200)
        budget -= 200
        rep.module.initiate_page_fault(victim_proc,
                                       victim.handle_va + 0x20)
    ctx = rep.machine.contexts[0]
    terminated = victim_proc.read(
        victim_proc.vma_named("tsgx-counter").start) >= threshold
    return TSGXReport(
        threshold=threshold,
        aborts=ctx.stats.txn_aborts,
        replay_windows_observed=windows["div_issues"] // 2
        if secret == 1 else windows["div_issues"],
        victim_terminated=terminated,
        os_faults_seen=rep.kernel.stats.page_faults)
