"""Déjà Vu (§8): detecting attacks with a reference clock.

Déjà Vu [13] measures, with a TSX-protected clock thread, whether a
program region takes abnormally long to execute, flagging compromise.
We model it faithfully: a clock thread free-runs on the SMT sibling,
incrementing a counter in shared memory; the victim reads the counter
before and after its sensitive region and raises a detection flag when
the elapsed ticks exceed a budget.

The paper identifies two weaknesses, both reproducible here:

1. **Masking** — the time of a MicroScope replay is comparable to an
   ordinary page fault's, so a budget loose enough to tolerate benign
   demand paging admits a bounded number of replays.
2. (Discussed, not modelled as a default) the attacker can starve the
   clock thread itself; and the clock's own TSX protection is a replay
   mechanism (§7.1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.module import MicroScopeConfig
from repro.core.recipes import ReplayAction, ReplayDecision
from repro.core.replayer import AttackEnvironment, Replayer
from repro.isa.program import Program, ProgramBuilder
from repro.victims.common import REPLAY_HANDLE


def build_clock_program(counter_va: int) -> Program:
    """The reference-clock thread: a tight increment/store loop."""
    b = ProgramBuilder("dejavu-clock")
    b.li("r1", counter_va)
    b.li("r2", 0)
    b.label("tick")
    b.addi("r2", "r2", 1)
    b.store("r1", "r2", 0)
    b.jmp("tick")
    return b.build()


def build_timed_victim(handle_va: int, clock_va: int,
                       result_va: int) -> Program:
    """A victim whose sensitive region is bracketed by clock reads."""
    b = ProgramBuilder("dejavu-victim")
    b.li("r1", handle_va)
    b.li("r2", clock_va)
    b.li("r3", result_va)
    b.load("r4", "r2", 0)          # clock before the region
    b.load("r5", "r1", 0, comment=REPLAY_HANDLE)
    b.fli("f0", 5.0)
    b.fli("f1", 2.0)
    b.fdiv("f2", "f0", "f1")       # the sensitive work
    b.fdiv("f3", "f0", "f1")
    b.load("r6", "r2", 0)          # clock after the region
    b.sub("r7", "r6", "r4")
    b.store("r3", "r7", 0)         # elapsed ticks
    b.halt()
    return b.build()


@dataclass
class DejaVuReport:
    replays: int
    elapsed_ticks: int
    budget_ticks: int

    @property
    def detected(self) -> bool:
        return self.elapsed_ticks > self.budget_ticks


def evaluate_dejavu(replays: int, budget_ticks: int = 12_000
                    ) -> DejaVuReport:
    """Run the MicroScope replay attack against the Déjà-Vu-timed
    victim; report whether the clock catches it.

    The default budget tolerates a few *legitimate* demand-paging
    faults (each costs thousands of cycles), which is exactly why the
    paper's masking argument works: a replay is indistinguishable from
    an ordinary fault, so small replay counts hide under the budget
    while large ones are detected.
    """
    rep = Replayer(AttackEnvironment.build(
        module_config=MicroScopeConfig(fault_handler_cost=3000)))
    victim_proc = rep.create_victim_process("dejavu-victim")
    clock_proc = rep.create_monitor_process("dejavu-clock")
    channel = rep.shared_channel(victim_proc, clock_proc)
    clock_va_victim = channel.va_for(victim_proc)
    clock_va_clock = channel.va_for(clock_proc)
    handle_va = victim_proc.alloc(4096, "dv-handle")
    result_va = victim_proc.alloc(4096, "dv-result")

    victim = build_timed_victim(handle_va, clock_va_victim, result_va)
    clock = build_clock_program(clock_va_clock)

    def attack_fn(event) -> ReplayDecision:
        if event.replay_no >= replays:
            return ReplayDecision(ReplayAction.RELEASE)
        return ReplayDecision(ReplayAction.REPLAY)

    recipe = rep.module.provide_replay_handle(
        victim_proc, handle_va, name="dejavu-eval",
        attack_function=attack_fn, max_replays=10**9)
    rep.launch_victim(victim_proc, victim)
    rep.launch_monitor(clock_proc, clock, context_id=1)
    rep.arm(recipe)
    rep.run_until_victim_done(context_id=0, max_cycles=10_000_000)
    elapsed = victim_proc.read(result_va)
    return DejaVuReport(replays=replays, elapsed_ticks=elapsed,
                        budget_ticks=budget_ticks)
