"""PF-obliviousness (§8, Shinde et al. [51]).

The defense rewrites a program so its *page-fault sequence* is
input-independent: both sides of every secret-dependent branch touch
the same pages, with redundant accesses padding the shorter side.
This genuinely defeats controlled-channel (page-trace) attacks — and,
as the paper notes, "makes it easier for MicroScope to perform an
attack, as the added memory accesses provide more replay handles."

Both effects are measurable here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.handles import count_memory_instructions, find_replay_handles
from repro.isa.instructions import Opcode
from repro.isa.program import Program, ProgramBuilder
from repro.kernel.process import Process
from repro.oracle.runtime import note_secret_write
from repro.victims.common import REPLAY_HANDLE, TRANSMIT


@dataclass(frozen=True)
class ObliviousCFVictim:
    """A Fig. 4c-style victim in plain and PF-oblivious forms."""

    plain: Program
    oblivious: Program
    handle_va: int
    secret_va: int
    pageB_va: int
    pageC_va: int


def setup_oblivious_cf_victim(process: Process,
                              secret: int) -> ObliviousCFVictim:
    """Build the control-flow victim whose two paths touch pages B and
    C, plus its PF-oblivious transformation where *both* paths touch
    *both* pages (the redundant access is the defense)."""
    if secret not in (0, 1):
        raise ValueError("secret must be 0 or 1")
    handle_va = process.alloc(4096, "ob-handle")
    pageB_va = process.alloc(4096, "ob-pageB")
    pageC_va = process.alloc(4096, "ob-pageC")
    secret_va = process.alloc(4096, "ob-secret")
    process.write(secret_va, secret)
    note_secret_write(process, secret_va)
    plain = _build(handle_va, secret_va, pageB_va, pageC_va,
                   oblivious=False)
    oblivious = _build(handle_va, secret_va, pageB_va, pageC_va,
                       oblivious=True)
    return ObliviousCFVictim(plain, oblivious, handle_va, secret_va,
                             pageB_va, pageC_va)


def _build(handle_va: int, secret_va: int, pageB_va: int, pageC_va: int,
           oblivious: bool) -> Program:
    b = ProgramBuilder("cf-oblivious" if oblivious else "cf-plain")
    b.li("r1", handle_va)
    b.li("r2", secret_va)
    b.li("r3", pageB_va)
    b.li("r4", pageC_va)
    b.load("r5", "r1", 0, comment=REPLAY_HANDLE)
    b.load("r6", "r2", 0)
    b.li("r7", 0)
    b.bne("r6", "r7", "path_c")
    b.load("r8", "r3", 0, comment=f"{TRANSMIT}-B")
    b.mul("r9", "r8", "r8")
    if oblivious:
        b.load("r10", "r4", 0, comment="redundant-C")
    b.jmp("done")
    b.label("path_c")
    if oblivious:
        # Redundant access first, so both paths touch B then C in the
        # same order — the page-fault sequence becomes input-invariant.
        b.load("r10", "r3", 0, comment="redundant-B")
    b.load("r8", "r4", 0, comment=f"{TRANSMIT}-C")
    b.fli("f0", 3.0)
    b.fli("f1", 2.0)
    b.fdiv("f2", "f0", "f1")
    b.label("done")
    b.halt()
    return b.build()


@dataclass
class PFObliviousReport:
    #: Page-trace distinguishability under the controlled channel.
    plain_page_traces_differ: bool
    oblivious_page_traces_differ: bool
    #: Replay-handle counts (the paper's "more handles" point).
    plain_handles: int
    oblivious_handles: int
    plain_memory_ops: int
    oblivious_memory_ops: int

    @property
    def defeats_controlled_channel(self) -> bool:
        return (self.plain_page_traces_differ
                and not self.oblivious_page_traces_differ)

    @property
    def helps_microscope(self) -> bool:
        return self.oblivious_handles > self.plain_handles


def page_trace(program: Program, secret: int) -> List[str]:
    """Static page-access trace along the *secret*'s path — what the
    controlled-channel attacker observes fault by fault."""
    trace: List[str] = []
    index = 0
    guard = 0
    while index < len(program) and guard < 10_000:
        guard += 1
        instr = program[index]
        if instr.is_memory:
            trace.append(instr.comment or f"mem@{index}")
        if instr.op is Opcode.HALT:
            break
        if instr.op is Opcode.JMP:
            index = program.target_index(instr)
        elif instr.is_cond_branch:
            # The only branch in these victims keys on the secret.
            index = (program.target_index(instr) if secret
                     else index + 1)
        else:
            index += 1
    # Reduce to the page identities (comments name the page).
    return [t.split("-")[-1] if "-" in t else t for t in trace]


def evaluate_pf_obliviousness(process: Process) -> PFObliviousReport:
    victim = setup_oblivious_cf_victim(process, secret=0)

    def traces_differ(program: Program) -> bool:
        return page_trace(program, 0) != page_trace(program, 1)

    def handle_count(program: Program) -> int:
        # Sensitive instruction: the division on the C path.
        sensitive_index = next(
            i for i, instr in enumerate(program.instructions)
            if instr.op is Opcode.FDIV)
        return len(find_replay_handles(program, sensitive_index))

    return PFObliviousReport(
        plain_page_traces_differ=traces_differ(victim.plain),
        oblivious_page_traces_differ=traces_differ(victim.oblivious),
        plain_handles=handle_count(victim.plain),
        oblivious_handles=handle_count(victim.oblivious),
        plain_memory_ops=count_memory_instructions(victim.plain),
        oblivious_memory_ops=count_memory_instructions(victim.oblivious))
