"""Jamais Vu squash-tracking (Skarlatos et al., ASPLOS'21).

The MicroScope authors' follow-on defense: remember which (dynamic)
instructions were squashed and refuse to *re-execute* them
speculatively — a replayed instruction only runs again once it is the
oldest instruction still making progress, so re-execution leaves no
microarchitectural residue.  The first execution of any instruction
is unrestricted (nothing has been squashed yet), which is the
defense's documented leak: the attacker keeps one window, exactly
like the fence-on-flush corner case.

The paper's three variants differ in how tracking state decays:

``counter``
    a per-instruction saturating counter, incremented on squash and
    decremented on (architectural) retire — replay pressure keeps the
    instruction flagged, normal progress releases it;
``epoch``
    flags are cleared in bulk every ``epoch_retires`` retirements
    (cheap hardware, coarse forgiveness);
``clear-on-retire``
    a flag is dropped the moment its instruction retires (precise,
    per-entry clearing).

All three install through the core hook layer: ``squash_hooks`` set
flags, ``retire_hooks`` decay them, and an ``issue_gate`` holds
flagged entries in the ready queue until
:func:`~repro.evaluation.defenses.mechanisms.nonspeculative` admits
them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.config import DefenseHookConfig, MachineConfig
from repro.cpu.context import HardwareContext
from repro.cpu.rob import ROBEntry
from repro.evaluation.defenses.mechanisms import (
    DefenseMechanism,
    nonspeculative,
    register_mechanism,
)

#: The three tracking-decay strategies of the paper.
JAMAIS_VU_VARIANTS: Tuple[str, ...] = ("counter", "epoch",
                                       "clear-on-retire")


@register_mechanism("jamais-vu")
class JamaisVuMechanism(DefenseMechanism):
    """Per-instruction squash tracking with a replay-issue gate."""

    scheme = "jamais-vu"

    def __init__(self, variant: str = "counter", saturate: int = 3,
                 epoch_retires: int = 64):
        if variant not in JAMAIS_VU_VARIANTS:
            raise ValueError(
                f"unknown Jamais Vu variant {variant!r}; one of "
                f"{', '.join(JAMAIS_VU_VARIANTS)}")
        self.variant = variant
        self.saturate = saturate
        self.epoch_retires = epoch_retires
        #: context id -> {program index -> counter}; presence of an
        #: index means "was squashed, do not re-execute speculatively".
        self._tables: Dict[int, Dict[int, int]] = {}
        #: context id -> retires left until the next epoch clear.
        self._epoch_left: Dict[int, int] = {}
        self._tracked = None
        self._blocked = None

    # --- wiring -----------------------------------------------------------

    def attach(self, machine) -> None:
        core = machine.core
        core.squash_hooks.append(self._on_squash)
        core.retire_hooks.append(self._on_retire)
        core.issue_gates.append(self._gate)
        self._tracked = machine.metrics.counter(
            "defense.jamais_vu.tracked")
        self._blocked = machine.metrics.counter(
            "defense.jamais_vu.blocked_issues")

    # --- hook bodies ------------------------------------------------------

    def _on_squash(self, context: HardwareContext, squashed,
                   reason: str, trigger: Optional[ROBEntry]) -> None:
        if not squashed:
            return
        table = self._tables.setdefault(context.context_id, {})
        if self.variant == "counter":
            saturate = self.saturate
            for entry in squashed:
                table[entry.index] = min(
                    table.get(entry.index, 0) + 1, saturate)
        else:
            for entry in squashed:
                table[entry.index] = 1
        if self._tracked is not None:
            self._tracked.inc(len(squashed))

    def _on_retire(self, context: HardwareContext,
                   entry: ROBEntry) -> None:
        cid = context.context_id
        if self.variant == "epoch":
            left = self._epoch_left.get(cid, self.epoch_retires) - 1
            if left <= 0:
                table = self._tables.get(cid)
                if table:
                    table.clear()
                left = self.epoch_retires
            self._epoch_left[cid] = left
            return
        table = self._tables.get(cid)
        if not table or entry.index not in table:
            return
        if self.variant == "counter":
            remaining = table[entry.index] - 1
            if remaining <= 0:
                del table[entry.index]
            else:
                table[entry.index] = remaining
        else:  # clear-on-retire
            del table[entry.index]

    def _gate(self, context: HardwareContext,
              entry: ROBEntry) -> bool:
        table = self._tables.get(context.context_id)
        if not table or entry.index not in table:
            return True
        if nonspeculative(context, entry):
            return True
        if self._blocked is not None:
            self._blocked.inc()
        return False

    # --- introspection (tests / drivers) ----------------------------------

    def flagged(self, context_id: int) -> Dict[int, int]:
        """The tracking table of one context (a copy)."""
        return dict(self._tables.get(context_id, {}))

    # --- snapshot support -------------------------------------------------

    def capture(self) -> tuple:
        return ({cid: dict(table)
                 for cid, table in self._tables.items()},
                dict(self._epoch_left))

    def restore(self, state: tuple) -> None:
        tables, epoch_left = state
        self._tables = {cid: dict(table)
                        for cid, table in tables.items()}
        self._epoch_left = dict(epoch_left)


def jamais_vu_machine(variant: str = "counter", **params
                      ) -> MachineConfig:
    """A platform config with the Jamais Vu mechanism installed."""
    return MachineConfig(defense=DefenseHookConfig(
        scheme="jamais-vu", params={"variant": variant, **params}))


@dataclass
class JamaisVuReport:
    """Speculative transmit executions with and without tracking,
    for the same replay count (the re-execution suppression claim)."""

    variant: str
    replays: int
    transmit_issues_undefended: int
    transmit_issues_defended: int

    @property
    def replay_suppressed(self) -> bool:
        """Re-executions are gone; only the first window leaks."""
        return self.transmit_issues_defended <= 2  # one window's divs


def evaluate_jamais_vu(replays: int = 8, secret: int = 1,
                       variant: str = "counter") -> JamaisVuReport:
    """Replay the Fig. 6 victim *replays* times on the stock platform
    and under Jamais Vu; count speculatively executed transmit
    (divide) instructions each way."""
    from repro.evaluation.defenses.fences import count_transmit_issues
    return JamaisVuReport(
        variant=variant,
        replays=replays,
        transmit_issues_undefended=count_transmit_issues(
            replays, secret),
        transmit_issues_defended=count_transmit_issues(
            replays, secret, machine_config=jamais_vu_machine(variant)))
