"""The defense configurations a matrix column stands for.

Each §8 countermeasure acts on the attacks through one (or more) of
three *mechanism-level* levers, so the attack code never has to know
which defense it is facing:

* a **machine configuration** (fences: ``CoreConfig.fence_on_flush``);
* a **replay budget** — how many squash-and-refetch windows the
  platform grants before the victim makes forward progress (T-SGX's
  ``N - 1``; Déjà Vu's masking bound ``budget_ticks // fault_cost``,
  the most an attacker can replay while staying indistinguishable
  from benign demand paging);
* a **victim transform** (T-SGX transaction wrapping, the
  PF-oblivious rewrite) — only meaningful for attacks that observe
  the victim's program shape, i.e. the controlled-channel baseline.

Déjà Vu additionally *detects*: :meth:`DefenseSpec.detected` flags a
cell whose replay count would have blown the reference-clock budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.config import DefenseHookConfig, MachineConfig
from repro.cpu.config import CoreConfig
from repro.evaluation.defenses.tsgx import TSGX_THRESHOLD

#: Déjà Vu's reference-clock budget and the cost one replay (≈ one
#: page fault) adds to the timed region — the §8 masking arithmetic.
DEJAVU_BUDGET_TICKS = 12_000
DEJAVU_FAULT_COST = 3_000


@dataclass(frozen=True)
class DefenseSpec:
    """One matrix column: a defense reduced to mechanism knobs."""

    name: str
    #: One-line description for the generated docs.
    summary: str
    #: Where the paper discusses it.
    paper_ref: str
    #: Machine-level knobs the defense flips (None = stock platform).
    machine: Optional[MachineConfig] = None
    #: Replay windows the platform grants (None = unbounded).
    replay_budget: Optional[int] = None
    #: Victim rewrite the defense mandates: "tsgx" | "oblivious".
    victim_transform: Optional[str] = None
    #: The defense watches a reference clock and can raise a flag.
    detects: bool = False
    budget_ticks: Optional[int] = None
    fault_cost: Optional[int] = None
    #: Caveats propagated into every cell of this column.
    notes: Tuple[str, ...] = ()
    #: Prose for the generated docs/DEFENSES.md section: how the
    #: defense works in this model, a short paragraph.
    mechanism: str = ""
    #: (knob, meaning) pairs for the generated docs.
    knobs: Tuple[Tuple[str, str], ...] = ()
    #: A doccheck-executable python example for the generated docs
    #: (empty = no example section).
    example: str = ""

    def detected(self, replays: int) -> bool:
        """Would *replays* windows have blown the detection budget?"""
        if not self.detects or not self.fault_cost \
                or self.budget_ticks is None:
            return False
        return replays * self.fault_cost > self.budget_ticks


def _jamais_vu_spec(name: str, variant: str, decay: str,
                    knobs: Tuple[Tuple[str, str], ...]) -> DefenseSpec:
    return DefenseSpec(
        name=name,
        summary=f"Jamais Vu squash tracking ({variant} variant): "
                "squashed instructions may not re-execute "
                "speculatively.",
        paper_ref="Jamais Vu (Skarlatos et al., ASPLOS'21)",
        machine=MachineConfig(defense=DefenseHookConfig(
            scheme="jamais-vu", params={"variant": variant})),
        notes=("launch-time demand-paging squashes flag the window "
               "before replay 1, so in this model no window leaks",),
        mechanism=(
            "A per-context table remembers which program indices were "
            "squashed (``squash_hooks``); a gate on the issue stage "
            "(``issue_gates``) holds a flagged instruction in the "
            "ready queue until every older ROB entry has completed "
            "without faulting, i.e. until it is no longer "
            f"speculative.  Tracking state decays by {decay}."),
        knobs=knobs,
        example=(
            "from repro.evaluation.defenses import evaluate_jamais_vu\n"
            "\n"
            f"report = evaluate_jamais_vu(replays=6, variant={variant!r})\n"
            "assert report.transmit_issues_undefended > 0\n"
            "assert report.transmit_issues_defended == 0\n"
            "assert report.replay_suppressed\n"))


def _specs() -> Dict[str, DefenseSpec]:
    fences = MachineConfig(core=CoreConfig(fence_on_flush=True))
    return {spec.name: spec for spec in (
        DefenseSpec(
            name="none",
            summary="Undefended baseline platform.",
            paper_ref="§6",
            mechanism=(
                "The stock platform: no fences, no squash tracking, "
                "no flushing.  Every other column is measured "
                "against this baseline's accuracy."),
        ),
        DefenseSpec(
            name="fences",
            summary="Serialising fence after every pipeline flush: "
                    "replayed code cannot run ahead of the faulting "
                    "handle.",
            paper_ref="§8 'Fences on Pipeline Flushes'",
            machine=fences,
            notes=("first (pre-flush) speculative window still "
                   "executes",),
            mechanism=(
                "``CoreConfig.fence_on_flush`` makes the first "
                "instruction fetched after any squash serialising, so "
                "a replayed window cannot issue anything younger than "
                "the faulting instruction.  The pre-flush first "
                "window is the paper's documented leak — though in "
                "this model the victim's launch-time demand paging "
                "already squashes once before the attack window, so "
                "even that window arrives fenced."),
            knobs=(("CoreConfig.fence_on_flush",
                    "serialise the first fetch after any squash"),),
        ),
        DefenseSpec(
            name="dejavu",
            summary="Déjà Vu reference clock; attacker plays the "
                    "masking strategy and stays under the budget.",
            paper_ref="§8 'Déjà Vu'",
            replay_budget=DEJAVU_BUDGET_TICKS // DEJAVU_FAULT_COST,
            detects=True,
            budget_ticks=DEJAVU_BUDGET_TICKS,
            fault_cost=DEJAVU_FAULT_COST,
            notes=("attacker restricted to the masking budget of "
                   f"{DEJAVU_BUDGET_TICKS // DEJAVU_FAULT_COST} "
                   "replays; clock-thread starvation (§8) not "
                   "modelled",),
            mechanism=(
                "A TSX-protected reference clock times the victim; "
                "replays inflate the timed region.  The attacker "
                "plays the §8 masking strategy — stay under "
                "``budget_ticks`` — so the matrix grants each cell "
                "``budget_ticks // fault_cost`` replay windows and "
                "flags the cell *detected* when an attack would need "
                "more."),
            knobs=(("budget_ticks",
                    "reference-clock budget before the victim raises "
                    "a flag"),
                   ("fault_cost",
                    "ticks one replayed page fault adds to the timed "
                    "region")),
        ),
        DefenseSpec(
            name="tsgx",
            summary="T-SGX transaction wrapping: page faults abort "
                    "without notifying the OS; the fallback "
                    "terminates after N failed transactions.",
            paper_ref="§8 'Page Fault Protection Schemes'",
            replay_budget=TSGX_THRESHOLD - 1,
            victim_transform="tsgx",
            notes=(f"N-1 = {TSGX_THRESHOLD - 1} replay windows "
                   "remain before termination (the paper's "
                   "observation)",),
            mechanism=(
                "The victim runs inside TSX transactions; a page "
                "fault aborts the transaction without notifying the "
                "OS, and the fallback path terminates the enclave "
                "after N consecutive aborts.  The attacker still "
                "gets the N-1 windows before termination — the "
                "paper's observation that replay survives in "
                "bounded form."),
            knobs=(("TSGX_THRESHOLD",
                    "consecutive failed transactions before the "
                    "fallback terminates the victim"),),
        ),
        DefenseSpec(
            name="pf-oblivious",
            summary="PF-oblivious rewrite: both branch sides touch "
                    "the same pages, erasing the fault-sequence "
                    "signal.",
            paper_ref="§8 'Page Fault Protection Schemes'",
            victim_transform="oblivious",
            notes=("adds memory accesses, i.e. *more* replay "
                   "handles for MicroScope (§8)",),
            mechanism=(
                "The victim is rewritten so both sides of every "
                "secret-dependent branch touch the same pages, "
                "erasing the page-fault-sequence channel the "
                "controlled-channel baseline reads.  MicroScope is "
                "unimpressed: the added accesses are *more* replay "
                "handles, and the cache/port channels still "
                "resolve inside one page."),
        ),
        _jamais_vu_spec(
            "jv-counter", "counter",
            "a per-instruction saturating counter — incremented on "
            "squash, decremented on retire",
            (("variant", "'counter'"),
             ("saturate",
              "counter ceiling; replay pressure keeps an "
              "instruction flagged until this many clean retires"))),
        _jamais_vu_spec(
            "jv-epoch", "epoch",
            "bulk-clearing the table every ``epoch_retires`` "
            "architectural retirements (cheap hardware, coarse "
            "forgiveness)",
            (("variant", "'epoch'"),
             ("epoch_retires",
              "retirements between bulk table clears"))),
        _jamais_vu_spec(
            "jv-cor", "clear-on-retire",
            "dropping an instruction's flag the moment it retires "
            "(precise per-entry clearing)",
            (("variant", "'clear-on-retire'"),)),
        DefenseSpec(
            name="delay-on-squash",
            summary="Delay-on-Squash: after any pipeline flush, "
                    "side-channel-capable instructions may not "
                    "execute speculatively until the shadow decays.",
            paper_ref="Sakalis et al. (arXiv:2103.10692)",
            machine=MachineConfig(defense=DefenseHookConfig(
                scheme="delay-on-squash")),
            notes=("sustained replay pressure keeps the core in the "
                   "shadow permanently; a benign misprediction costs "
                   "one short serialised stretch",),
            mechanism=(
                "Any squash arms a per-context *shadow* lasting "
                "``shadow_retires`` architectural retirements.  "
                "Inside the shadow, instructions in the "
                "side-channel-capable classes (loads, stores, "
                "multiplies, divides) issue only once they are no "
                "longer speculative — replayed transmit instructions "
                "therefore never execute speculatively, and release "
                "in program order."),
            knobs=(("shadow_retires",
                    "retirements without a squash before the shadow "
                    "lifts"),
                   ("classes",
                    "op classes gated inside the shadow")),
            example=(
                "from repro.evaluation.defenses import "
                "evaluate_delay_on_squash\n"
                "\n"
                "report = evaluate_delay_on_squash(replays=6)\n"
                "assert report.transmit_issues_undefended > 0\n"
                "assert report.transmit_issues_defended == 0\n"
                "assert report.replay_suppressed\n"),
        ),
        DefenseSpec(
            name="simf",
            summary="SIMF-style flush of core-private caches and "
                    "TLBs on every kernel entry.",
            paper_ref="SIMF (arXiv:2011.10249)",
            machine=MachineConfig(defense=DefenseHookConfig(
                scheme="simf")),
            notes=("erases residue rather than restricting "
                   "speculation; the per-entry cold restart it "
                   "imposes also breaks the port channel's timing "
                   "alignment in this model",),
            mechanism=(
                "Every kernel entry — page-fault handling, interrupt "
                "delivery — flushes the private cache hierarchy and "
                "the TLBs before the handler can probe, so the "
                "speculative window's cache residue is gone by the "
                "time the attacker measures.  Speculation itself is "
                "unrestricted: windows execute, the Prime+Probe "
                "readout just comes back empty."),
            knobs=(("flush_tlbs",
                    "also flush the TLB hierarchy on kernel entry"),),
            example=(
                "from repro.evaluation.defenses import evaluate_simf\n"
                "\n"
                "report = evaluate_simf(secret=1, replays=4)\n"
                "assert report.undefended_guess == 1\n"
                "assert report.residue_erased\n"),
        ),
        DefenseSpec(
            name="leash",
            summary="LEASH-style reactive throttling: contexts whose "
                    "squash rate looks like a replay storm lose half "
                    "their issue bandwidth.",
            paper_ref="LEASH (arXiv:2109.03998)",
            machine=MachineConfig(defense=DefenseHookConfig(
                scheme="leash")),
            notes=("a throttler rate-limits the storm but erases no "
                   "residue: channels that survive at half bandwidth "
                   "still leak",),
            mechanism=(
                "A detector samples each context's ``squash_events`` "
                "counter (from the machine's metrics registry) every "
                "``window_cycles`` cycles and applies two-threshold "
                "hysteresis: a squash rate ≥ ``hi`` engages the "
                "throttle, ≤ ``lo`` releases it.  While throttled, "
                "the context may issue at most ``issue_width // "
                "throttle_factor`` instructions per cycle."),
            knobs=(("hi", "squashes per window that engage the "
                          "throttle"),
                   ("lo", "squashes per window that release it"),
                   ("window_cycles", "detector sampling period"),
                   ("throttle_factor",
                    "issue-bandwidth divisor while throttled")),
            example=(
                "from repro.evaluation.defenses import evaluate_leash\n"
                "\n"
                "report = evaluate_leash()\n"
                "assert report.hysteresis_observed\n"
                "assert report.trace[0] and not report.trace[-1]\n"),
        ),
    )}


#: Registry of every defense column, in canonical matrix order.
DEFENSES: Dict[str, DefenseSpec] = _specs()


def defense_names() -> Tuple[str, ...]:
    """Canonical column order, baseline first."""
    return tuple(DEFENSES)


def get_defense(name: str) -> DefenseSpec:
    """Look up a registered defense; raises ``KeyError`` with the
    valid names otherwise."""
    try:
        return DEFENSES[name]
    except KeyError:
        raise KeyError(f"unknown defense {name!r}; registered: "
                       f"{', '.join(DEFENSES)}") from None
