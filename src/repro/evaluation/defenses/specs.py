"""The defense configurations a matrix column stands for.

Each §8 countermeasure acts on the attacks through one (or more) of
three *mechanism-level* levers, so the attack code never has to know
which defense it is facing:

* a **machine configuration** (fences: ``CoreConfig.fence_on_flush``);
* a **replay budget** — how many squash-and-refetch windows the
  platform grants before the victim makes forward progress (T-SGX's
  ``N - 1``; Déjà Vu's masking bound ``budget_ticks // fault_cost``,
  the most an attacker can replay while staying indistinguishable
  from benign demand paging);
* a **victim transform** (T-SGX transaction wrapping, the
  PF-oblivious rewrite) — only meaningful for attacks that observe
  the victim's program shape, i.e. the controlled-channel baseline.

Déjà Vu additionally *detects*: :meth:`DefenseSpec.detected` flags a
cell whose replay count would have blown the reference-clock budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.config import MachineConfig
from repro.cpu.config import CoreConfig
from repro.evaluation.defenses.tsgx import TSGX_THRESHOLD

#: Déjà Vu's reference-clock budget and the cost one replay (≈ one
#: page fault) adds to the timed region — the §8 masking arithmetic.
DEJAVU_BUDGET_TICKS = 12_000
DEJAVU_FAULT_COST = 3_000


@dataclass(frozen=True)
class DefenseSpec:
    """One matrix column: a defense reduced to mechanism knobs."""

    name: str
    #: One-line description for the generated docs.
    summary: str
    #: Where the paper discusses it.
    paper_ref: str
    #: Machine-level knobs the defense flips (None = stock platform).
    machine: Optional[MachineConfig] = None
    #: Replay windows the platform grants (None = unbounded).
    replay_budget: Optional[int] = None
    #: Victim rewrite the defense mandates: "tsgx" | "oblivious".
    victim_transform: Optional[str] = None
    #: The defense watches a reference clock and can raise a flag.
    detects: bool = False
    budget_ticks: Optional[int] = None
    fault_cost: Optional[int] = None
    #: Caveats propagated into every cell of this column.
    notes: Tuple[str, ...] = ()

    def detected(self, replays: int) -> bool:
        """Would *replays* windows have blown the detection budget?"""
        if not self.detects or not self.fault_cost \
                or self.budget_ticks is None:
            return False
        return replays * self.fault_cost > self.budget_ticks


def _specs() -> Dict[str, DefenseSpec]:
    fences = MachineConfig(core=CoreConfig(fence_on_flush=True))
    return {spec.name: spec for spec in (
        DefenseSpec(
            name="none",
            summary="Undefended baseline platform.",
            paper_ref="§6"),
        DefenseSpec(
            name="fences",
            summary="Serialising fence after every pipeline flush: "
                    "replayed code cannot run ahead of the faulting "
                    "handle.",
            paper_ref="§8 'Fences on Pipeline Flushes'",
            machine=fences,
            notes=("first (pre-flush) speculative window still "
                   "executes",)),
        DefenseSpec(
            name="dejavu",
            summary="Déjà Vu reference clock; attacker plays the "
                    "masking strategy and stays under the budget.",
            paper_ref="§8 'Déjà Vu'",
            replay_budget=DEJAVU_BUDGET_TICKS // DEJAVU_FAULT_COST,
            detects=True,
            budget_ticks=DEJAVU_BUDGET_TICKS,
            fault_cost=DEJAVU_FAULT_COST,
            notes=("attacker restricted to the masking budget of "
                   f"{DEJAVU_BUDGET_TICKS // DEJAVU_FAULT_COST} "
                   "replays; clock-thread starvation (§8) not "
                   "modelled",)),
        DefenseSpec(
            name="tsgx",
            summary="T-SGX transaction wrapping: page faults abort "
                    "without notifying the OS; the fallback "
                    "terminates after N failed transactions.",
            paper_ref="§8 'Page Fault Protection Schemes'",
            replay_budget=TSGX_THRESHOLD - 1,
            victim_transform="tsgx",
            notes=(f"N-1 = {TSGX_THRESHOLD - 1} replay windows "
                   "remain before termination (the paper's "
                   "observation)",)),
        DefenseSpec(
            name="pf-oblivious",
            summary="PF-oblivious rewrite: both branch sides touch "
                    "the same pages, erasing the fault-sequence "
                    "signal.",
            paper_ref="§8 'Page Fault Protection Schemes'",
            victim_transform="oblivious",
            notes=("adds memory accesses, i.e. *more* replay "
                   "handles for MicroScope (§8)",)),
    )}


#: Registry of every defense column, in canonical matrix order.
DEFENSES: Dict[str, DefenseSpec] = _specs()


def defense_names() -> Tuple[str, ...]:
    """Canonical column order, baseline first."""
    return tuple(DEFENSES)


def get_defense(name: str) -> DefenseSpec:
    """Look up a registered defense; raises ``KeyError`` with the
    valid names otherwise."""
    try:
        return DEFENSES[name]
    except KeyError:
        raise KeyError(f"unknown defense {name!r}; registered: "
                       f"{', '.join(DEFENSES)}") from None
