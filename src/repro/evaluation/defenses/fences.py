"""Fence-on-pipeline-flush (§8, "Fences on Pipeline Flushes").

"The obvious defense ... is for the hardware or the OS to insert a
fence after each pipeline flush."  The core implements this as
``CoreConfig.fence_on_flush``: after any squash (fault, misprediction,
memory-order violation) the next fetched instruction is serialising,
so replayed code cannot run ahead of the faulting handle.

The paper's corner case is also measurable here: the *first* execution
of the window (before any flush has happened) still leaks — the
defense bounds the adversary to one noisy sample instead of zero.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.module import MicroScopeConfig
from repro.core.recipes import ReplayAction, ReplayDecision, WalkLocation, WalkTuning
from repro.core.replayer import AttackEnvironment, Replayer
from repro.cpu.config import CoreConfig
from repro.config import MachineConfig
from repro.isa.instructions import Opcode
from repro.victims.control_flow import setup_control_flow_victim


@dataclass
class FenceDefenseReport:
    """Transmit executions visible to the attacker, with and without
    the defense, for the same number of replays."""

    replays: int
    transmit_issues_undefended: int
    transmit_issues_defended: int

    @property
    def leakage_blocked(self) -> bool:
        """The defense caps the leak at the single pre-flush window."""
        return self.transmit_issues_defended <= 2  # one window's divs


def evaluate_fence_on_flush(replays: int = 10,
                            secret: int = 1) -> FenceDefenseReport:
    """Replay the Fig. 6 victim *replays* times with and without the
    fence-on-flush defense; count the victim's speculatively executed
    transmit (divide) instructions each way."""
    counts: Dict[bool, int] = {}
    for defended in (False, True):
        counts[defended] = _count_transmit_issues(replays, secret,
                                                  defended)
    return FenceDefenseReport(
        replays=replays,
        transmit_issues_undefended=counts[False],
        transmit_issues_defended=counts[True])


def _count_transmit_issues(replays: int, secret: int,
                           defended: bool) -> int:
    return count_transmit_issues(
        replays, secret,
        machine_config=MachineConfig(core=CoreConfig(
            fence_on_flush=defended)))


def count_transmit_issues(replays: int, secret: int,
                          machine_config: MachineConfig = None) -> int:
    """Replay the Fig. 6 victim *replays* times on *machine_config*
    (stock platform when None) and count its speculatively executed
    transmit (divide) instructions — the measurement every
    "suppress re-execution" defense is judged by."""
    rep = Replayer(AttackEnvironment.build(
        machine_config=machine_config or MachineConfig(),
        module_config=MicroScopeConfig(fault_handler_cost=2000)))
    victim_proc = rep.create_victim_process("victim")
    victim = setup_control_flow_victim(victim_proc, secret)
    issues = {"div": 0}

    def observer(context, entry):
        if context.context_id == 0 and entry.instr.op is Opcode.FDIV:
            issues["div"] += 1

    rep.machine.core.issue_hooks.append(observer)

    def attack_fn(event) -> ReplayDecision:
        if event.replay_no >= replays:
            return ReplayDecision(ReplayAction.RELEASE)
        return ReplayDecision(ReplayAction.REPLAY)

    recipe = rep.module.provide_replay_handle(
        victim_proc, victim.handle_va + 0x20, name="fence-eval",
        attack_function=attack_fn,
        walk_tuning=WalkTuning(upper=WalkLocation.PWC,
                               leaf=WalkLocation.DRAM),
        max_replays=10**9)
    rep.launch_victim(victim_proc, victim.program)
    rep.arm(recipe)
    rep.run_until_victim_done(context_id=0, max_cycles=5_000_000)
    # Subtract the architectural (retired) executions after release.
    architectural = 2 if secret == 1 else 0
    return max(0, issues["div"] - architectural)
