"""The canonical home of the §8 countermeasures.

Two layers live here:

* :mod:`repro.evaluation.defenses.specs` — :class:`DefenseSpec`, the
  mechanism-level reduction of each defense that the evaluation
  matrix columns are built from (machine knobs, replay budgets,
  victim transforms, detection budgets);
* the faithful standalone models and their evaluation drivers —
  :mod:`~repro.evaluation.defenses.fences`,
  :mod:`~repro.evaluation.defenses.dejavu`,
  :mod:`~repro.evaluation.defenses.tsgx` and
  :mod:`~repro.evaluation.defenses.pf_oblivious`.

The legacy ``repro.defenses`` package re-exports everything from here
with a :class:`DeprecationWarning` (mirroring the ``repro.config``
migration); new code should import from this package.
"""

from repro.evaluation.defenses.dejavu import (
    DejaVuReport,
    build_clock_program,
    build_timed_victim,
    evaluate_dejavu,
)
from repro.evaluation.defenses.fences import (
    FenceDefenseReport,
    evaluate_fence_on_flush,
)
from repro.evaluation.defenses.pf_oblivious import (
    ObliviousCFVictim,
    PFObliviousReport,
    evaluate_pf_obliviousness,
    page_trace,
    setup_oblivious_cf_victim,
)
from repro.evaluation.defenses.specs import (
    DEFENSES,
    DEJAVU_BUDGET_TICKS,
    DEJAVU_FAULT_COST,
    DefenseSpec,
    defense_names,
    get_defense,
)
from repro.evaluation.defenses.tsgx import (
    TSGX_THRESHOLD,
    TSGXReport,
    evaluate_tsgx,
    wrap_with_tsgx,
)

__all__ = [
    "DEFENSES",
    "DEJAVU_BUDGET_TICKS",
    "DEJAVU_FAULT_COST",
    "DefenseSpec",
    "DejaVuReport",
    "FenceDefenseReport",
    "ObliviousCFVictim",
    "PFObliviousReport",
    "TSGX_THRESHOLD",
    "TSGXReport",
    "build_clock_program",
    "build_timed_victim",
    "defense_names",
    "evaluate_dejavu",
    "evaluate_fence_on_flush",
    "evaluate_pf_obliviousness",
    "evaluate_tsgx",
    "get_defense",
    "page_trace",
    "setup_oblivious_cf_victim",
    "wrap_with_tsgx",
]
