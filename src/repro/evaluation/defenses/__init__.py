"""The canonical home of the §8 countermeasures.

Three layers live here:

* :mod:`repro.evaluation.defenses.specs` — :class:`DefenseSpec`, the
  mechanism-level reduction of each defense that the evaluation
  matrix columns are built from (machine knobs, replay budgets,
  victim transforms, detection budgets);
* the faithful standalone models and their evaluation drivers —
  :mod:`~repro.evaluation.defenses.fences`,
  :mod:`~repro.evaluation.defenses.dejavu`,
  :mod:`~repro.evaluation.defenses.tsgx` and
  :mod:`~repro.evaluation.defenses.pf_oblivious`;
* machine-level :class:`~repro.evaluation.defenses.mechanisms.\
DefenseMechanism` models installed through ``MachineConfig.defense``
  — :mod:`~repro.evaluation.defenses.jamais_vu`,
  :mod:`~repro.evaluation.defenses.delay_on_squash`,
  :mod:`~repro.evaluation.defenses.simf` and
  :mod:`~repro.evaluation.defenses.leash`.

Importing this package imports every mechanism module, which is what
populates the :data:`~repro.evaluation.defenses.mechanisms.MECHANISMS`
registry ``Machine.__init__`` resolves schemes against.

The legacy ``repro.defenses`` package re-exports everything from here
with a :class:`DeprecationWarning` (mirroring the ``repro.config``
migration); new code should import from this package.
"""

from repro.evaluation.defenses.dejavu import (
    DejaVuReport,
    build_clock_program,
    build_timed_victim,
    evaluate_dejavu,
)
from repro.evaluation.defenses.delay_on_squash import (
    SIDE_CHANNEL_CLASSES,
    DelayOnSquashMechanism,
    DelayOnSquashReport,
    delay_on_squash_machine,
    evaluate_delay_on_squash,
)
from repro.evaluation.defenses.fences import (
    FenceDefenseReport,
    count_transmit_issues,
    evaluate_fence_on_flush,
)
from repro.evaluation.defenses.jamais_vu import (
    JAMAIS_VU_VARIANTS,
    JamaisVuMechanism,
    JamaisVuReport,
    evaluate_jamais_vu,
    jamais_vu_machine,
)
from repro.evaluation.defenses.leash import (
    LeashMechanism,
    LeashReport,
    evaluate_leash,
    leash_machine,
)
from repro.evaluation.defenses.mechanisms import (
    MECHANISMS,
    DefenseMechanism,
    build_mechanism,
    install_defense,
    nonspeculative,
    register_mechanism,
)
from repro.evaluation.defenses.pf_oblivious import (
    ObliviousCFVictim,
    PFObliviousReport,
    evaluate_pf_obliviousness,
    page_trace,
    setup_oblivious_cf_victim,
)
from repro.evaluation.defenses.simf import (
    SIMFFlushMechanism,
    SIMFReport,
    evaluate_simf,
    is_kernel_entry,
    simf_machine,
)
from repro.evaluation.defenses.specs import (
    DEFENSES,
    DEJAVU_BUDGET_TICKS,
    DEJAVU_FAULT_COST,
    DefenseSpec,
    defense_names,
    get_defense,
)
from repro.evaluation.defenses.tsgx import (
    TSGX_THRESHOLD,
    TSGXReport,
    evaluate_tsgx,
    wrap_with_tsgx,
)

__all__ = [
    "DEFENSES",
    "DEJAVU_BUDGET_TICKS",
    "DEJAVU_FAULT_COST",
    "DefenseMechanism",
    "DefenseSpec",
    "DejaVuReport",
    "DelayOnSquashMechanism",
    "DelayOnSquashReport",
    "FenceDefenseReport",
    "JAMAIS_VU_VARIANTS",
    "JamaisVuMechanism",
    "JamaisVuReport",
    "LeashMechanism",
    "LeashReport",
    "MECHANISMS",
    "ObliviousCFVictim",
    "PFObliviousReport",
    "SIDE_CHANNEL_CLASSES",
    "SIMFFlushMechanism",
    "SIMFReport",
    "TSGX_THRESHOLD",
    "TSGXReport",
    "build_clock_program",
    "build_mechanism",
    "build_timed_victim",
    "count_transmit_issues",
    "defense_names",
    "delay_on_squash_machine",
    "evaluate_dejavu",
    "evaluate_delay_on_squash",
    "evaluate_fence_on_flush",
    "evaluate_jamais_vu",
    "evaluate_leash",
    "evaluate_pf_obliviousness",
    "evaluate_simf",
    "evaluate_tsgx",
    "get_defense",
    "install_defense",
    "is_kernel_entry",
    "jamais_vu_machine",
    "leash_machine",
    "nonspeculative",
    "page_trace",
    "register_mechanism",
    "setup_oblivious_cf_victim",
    "simf_machine",
    "wrap_with_tsgx",
]
