"""Processes and their address spaces.

A :class:`Process` owns a page-table tree, a PCID, and a set of virtual
memory areas (VMAs).  Data regions are allocated page-aligned via
:meth:`Process.alloc`, which is how victim programs get the property
the paper's attacks rely on: the replay handle, the pivot and the
secret tables all live on *different* pages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.kernel.frames import FrameAllocator
from repro.mem.physical import PhysicalMemory
from repro.vm import address as vaddr
from repro.vm.pagetable import (
    PTE_PRESENT,
    PTE_USER,
    PTE_WRITABLE,
    PageTables,
)

#: Default base of the data segment.
DATA_BASE = 0x1000_0000
#: Default base of the code segment (fetch itself is not translated in
#: the timing model, but the layout keeps addresses realistic).
CODE_BASE = 0x0040_0000


@dataclass
class VMA:
    """One virtual memory area."""

    name: str
    start: int
    size: int
    flags: int = PTE_PRESENT | PTE_WRITABLE | PTE_USER
    #: Whether pages were populated eagerly (False = demand-paged).
    populated: bool = True

    @property
    def end(self) -> int:
        return self.start + self.size

    def contains(self, va: int) -> bool:
        return self.start <= va < self.end


class ProcessError(Exception):
    """Raised on bad address-space operations."""


class Process:
    """A user process: address space + identity."""

    def __init__(self, pid: int, pcid: int, phys: PhysicalMemory,
                 frames: FrameAllocator, name: str = ""):
        self.pid = pid
        self.pcid = pcid
        self.name = name or f"proc{pid}"
        self.phys = phys
        self.frames = frames
        self.page_tables = PageTables(phys, frames.allocate)
        self.vmas: List[VMA] = []
        self._data_cursor = DATA_BASE
        #: Pages mapped into this process: vpn -> frame.
        self.page_frames: Dict[int, int] = {}
        #: Set when the process is killed by a fault it cannot satisfy.
        self.terminated = False
        self.enclave = None  # set by repro.sgx when the process enters one

    @property
    def root_frame(self) -> int:
        """The CR3 value of this address space."""
        return self.page_tables.root_frame

    # --- region allocation -------------------------------------------------

    def alloc(self, size: int, name: str = "anon", populate: bool = True,
              flags: int = PTE_PRESENT | PTE_WRITABLE | PTE_USER) -> int:
        """Allocate a page-aligned region of at least *size* bytes and
        return its base virtual address.

        Regions never share pages with each other — each allocation
        starts on a fresh page and is padded to a page boundary, so
        distinct variables can serve as independent replay handles and
        pivots.
        """
        if size <= 0:
            raise ProcessError("allocation size must be positive")
        pages = (size + vaddr.PAGE_SIZE - 1) // vaddr.PAGE_SIZE
        base = self._data_cursor
        self._data_cursor += pages * vaddr.PAGE_SIZE
        vma = VMA(name, base, pages * vaddr.PAGE_SIZE, flags,
                  populated=populate)
        self.vmas.append(vma)
        if populate:
            for i in range(pages):
                self._populate_page(base + i * vaddr.PAGE_SIZE, flags)
        return base

    def _populate_page(self, va: int, flags: int) -> int:
        frame = self.frames.allocate()
        self.phys.zero_frame(frame)
        self.page_tables.map(va, frame, flags)
        self.page_frames[vaddr.vpn(va)] = frame
        return frame

    def ensure_mapped(self, va: int) -> int:
        """Demand-page *va* if needed; return its frame.  Raises
        :class:`ProcessError` when *va* is outside every VMA."""
        page_vpn = vaddr.vpn(va)
        if page_vpn in self.page_frames:
            self.page_tables.set_present(vaddr.page_base(va), True)
            return self.page_frames[page_vpn]
        vma = self.vma_containing(va)
        if vma is None:
            raise ProcessError(f"{va:#x} not in any VMA of {self.name}")
        return self._populate_page(vaddr.page_base(va), vma.flags)

    def vma_containing(self, va: int) -> Optional[VMA]:
        for vma in self.vmas:
            if vma.contains(va):
                return vma
        return None

    def vma_named(self, name: str) -> VMA:
        for vma in self.vmas:
            if vma.name == name:
                return vma
        raise ProcessError(f"no VMA named {name!r} in {self.name}")

    # --- debug (kernel-port) memory access --------------------------------

    def translate(self, va: int) -> int:
        """Software translation (no cache/TLB side effects)."""
        return self.page_tables.translate(va)

    def translate_any(self, va: int) -> int:
        """Translate even when the present bit is cleared — the kernel
        knows where the page really is."""
        page_vpn = vaddr.vpn(va)
        if page_vpn not in self.page_frames:
            raise ProcessError(f"{va:#x} has no backing frame")
        return (self.page_frames[page_vpn] << vaddr.PAGE_SHIFT) | \
            vaddr.page_offset(va)

    def read(self, va: int, width: int = 8):
        """Debug read, bypassing caches (kernel direct-map access)."""
        return self.phys.read(self.translate_any(va), width)

    def write(self, va: int, value, width: int = 8):
        """Debug write, bypassing caches."""
        self.phys.write(self.translate_any(va), value, width)

    def write_words(self, va: int, values, width: int = 8):
        """Write a sequence of words starting at *va*."""
        for i, value in enumerate(values):
            self.write(va + i * width, value, width)

    def read_words(self, va: int, count: int, width: int = 8) -> list:
        return [self.read(va + i * width, width) for i in range(count)]

    # --- snapshot support -------------------------------------------------

    def capture(self) -> tuple:
        """Clone address-space bookkeeping.  Page-table *contents* live
        in physical memory and are captured there; ``root_frame`` is
        fixed at construction."""
        return (
            [VMA(v.name, v.start, v.size, v.flags, v.populated)
             for v in self.vmas],
            self._data_cursor,
            dict(self.page_frames),
            self.terminated,
            self.enclave,
        )

    def restore(self, state: tuple):
        vmas, data_cursor, page_frames, terminated, enclave = state
        self.vmas = [VMA(v.name, v.start, v.size, v.flags, v.populated)
                     for v in vmas]
        self._data_cursor = data_cursor
        self.page_frames = dict(page_frames)
        self.terminated = terminated
        self.enclave = enclave
