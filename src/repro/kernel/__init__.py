"""Kernel substrate: frames, processes, traps and shared memory."""

from repro.kernel.frames import FrameAllocator, OutOfMemoryError
from repro.kernel.kernel import Kernel, KernelConfig, KernelStats
from repro.kernel.process import CODE_BASE, DATA_BASE, Process, ProcessError, VMA
from repro.kernel.shm import (
    CTRL_WORD,
    DATA_WORD,
    MONITOR_QUIT,
    MONITOR_START,
    MONITOR_STOP,
    STATUS_WORD,
    SharedChannel,
)

__all__ = [
    "FrameAllocator",
    "OutOfMemoryError",
    "Kernel",
    "KernelConfig",
    "KernelStats",
    "CODE_BASE",
    "DATA_BASE",
    "Process",
    "ProcessError",
    "VMA",
    "CTRL_WORD",
    "DATA_WORD",
    "MONITOR_QUIT",
    "MONITOR_START",
    "MONITOR_STOP",
    "STATUS_WORD",
    "SharedChannel",
]
