"""Physical frame allocator.

A simple free-list allocator over the machine's physical frames.  The
first frames are reserved for the kernel image (never handed out), as
on a real system.
"""

from __future__ import annotations

from typing import List, Set


class OutOfMemoryError(Exception):
    """No physical frames left."""


class FrameAllocator:
    """First-fit allocator over ``[reserved, num_frames)``."""

    def __init__(self, num_frames: int, reserved: int = 16):
        if reserved >= num_frames:
            raise ValueError("reserved frames exceed physical memory")
        self.num_frames = num_frames
        self.reserved = reserved
        self._next = reserved
        self._free: List[int] = []
        self._allocated: Set[int] = set()

    def allocate(self) -> int:
        """Return a free frame number."""
        if self._free:
            frame = self._free.pop()
        elif self._next < self.num_frames:
            frame = self._next
            self._next += 1
        else:
            raise OutOfMemoryError("physical memory exhausted")
        self._allocated.add(frame)
        return frame

    def free(self, frame: int):
        """Return *frame* to the pool."""
        if frame not in self._allocated:
            raise ValueError(f"double free of frame {frame}")
        self._allocated.remove(frame)
        self._free.append(frame)

    @property
    def allocated_count(self) -> int:
        return len(self._allocated)

    def is_allocated(self, frame: int) -> bool:
        return frame in self._allocated

    # --- snapshot support -------------------------------------------------

    def capture(self) -> tuple:
        return (self._next, list(self._free), set(self._allocated))

    def restore(self, state: tuple):
        next_frame, free, allocated = state
        self._next = next_frame
        self._free = list(free)
        self._allocated = set(allocated)
