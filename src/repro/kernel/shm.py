"""Shared memory and signalling between processes.

The MicroScope module "can communicate through shared memory or
signals with the Monitor that runs concurrently with the Victim"
(§5.2.2).  :class:`SharedChannel` maps the same physical frame into two
address spaces and layers a tiny word-based mailbox on top: the kernel
side writes control words directly (debug port), the user side polls
them with ordinary loads.
"""

from __future__ import annotations

from typing import Dict

from repro.kernel.process import Process
from repro.vm import address as vaddr
from repro.vm.pagetable import PTE_PRESENT, PTE_USER, PTE_WRITABLE

#: Well-known mailbox word offsets within the shared page.
CTRL_WORD = 0          # Replayer -> Monitor control (start/stop)
STATUS_WORD = 8        # Monitor -> Replayer status
DATA_WORD = 16         # free-form payload

#: Control values.
MONITOR_STOP = 0
MONITOR_START = 1
MONITOR_QUIT = 2


class SharedChannel:
    """One shared 4 KiB page mapped into one or more processes."""

    def __init__(self, kernel, name: str = "shm"):
        self.kernel = kernel
        self.name = name
        self.frame = kernel.frames.allocate()
        kernel.machine.phys.zero_frame(self.frame)
        #: Per-process base virtual address of the mapping.
        self.mappings: Dict[int, int] = {}

    def map_into(self, process: Process) -> int:
        """Map the shared frame into *process*; return the base VA."""
        base = process.alloc(vaddr.PAGE_SIZE,
                             name=f"{self.name}:{process.name}",
                             populate=False)
        process.page_tables.map(
            base, self.frame, PTE_PRESENT | PTE_WRITABLE | PTE_USER)
        process.page_frames[vaddr.vpn(base)] = self.frame
        self.mappings[process.pid] = base
        return base

    def va_for(self, process: Process) -> int:
        try:
            return self.mappings[process.pid]
        except KeyError:
            raise KeyError(
                f"{self.name} not mapped into {process.name}") from None

    # --- kernel-side (Replayer) access: direct physical writes ---------

    def _paddr(self, offset: int) -> int:
        if not 0 <= offset < vaddr.PAGE_SIZE:
            raise ValueError(f"offset outside shared page: {offset}")
        return (self.frame << vaddr.PAGE_SHIFT) + offset

    def kernel_write(self, offset: int, value: int):
        self.kernel.machine.phys.write(self._paddr(offset), value, 8)

    def kernel_read(self, offset: int) -> int:
        return self.kernel.machine.phys.read(self._paddr(offset), 8)

    # --- mailbox conveniences ---------------------------------------------

    def signal_monitor(self, command: int):
        """Replayer -> Monitor: start/stop/quit (§5.2.2 signalling)."""
        self.kernel_write(CTRL_WORD, command)

    def monitor_status(self) -> int:
        return self.kernel_read(STATUS_WORD)
