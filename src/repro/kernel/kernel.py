"""The simulated operating system kernel.

The kernel owns physical frames, creates processes, performs demand
paging, and implements the trap path of Figure 9:

1. the MMU raises a page fault and the core traps here;
2. the fault handler classifies the fault;
3. *trampoline*: registered hooks (the MicroScope module installs one)
   get first claim on the fault;
4. unclaimed faults fall back to regular demand paging (or kill the
   process on a genuine segfault).

Kernel work costs simulated time: the faulting context stays blocked
for the returned cost while other SMT contexts — e.g. the attack's
Monitor — keep running.  The paper leans on exactly this ("most
Monitor samples are taken while the page fault handling code is
running", §6.1).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.cpu.context import HardwareContext
from repro.cpu.machine import Machine
from repro.cpu.traps import TrapAction, TrapHandler
from repro.kernel.frames import FrameAllocator
from repro.kernel.process import Process, ProcessError
from repro.observability.stats import KernelStats
from repro.observability.tracer import KERNEL_TID
from repro.vm import address as vaddr
from repro.vm.faults import PageFault

__all__ = ["FaultHook", "Kernel", "KernelConfig", "KernelStats"]

#: A trampoline hook: returns a TrapAction to claim the fault, or None
#: to pass it on.
FaultHook = Callable[[HardwareContext, PageFault], Optional[TrapAction]]


@dataclass
class KernelConfig:
    """Timing and policy knobs of the kernel."""

    #: Cycles charged for a minor page fault (handler entry, PTE fix-up,
    #: return to user).  Real kernels take on the order of microseconds;
    #: at ~3 GHz that is thousands of cycles.
    minor_fault_cost: int = 3000
    #: Extra cost when a fresh frame must be allocated and zeroed.
    major_fault_extra: int = 4000
    #: Cycles charged for a timer/IPI interrupt.
    interrupt_cost: int = 1200
    #: Uniform jitter added to handler costs (0 disables). Seeded.
    cost_jitter: int = 0
    jitter_seed: int = 1234
    #: Kill processes on faults outside any VMA (else raise).
    kill_on_segfault: bool = True


class Kernel(TrapHandler):
    """Supervisor software: process management + trap handling."""

    def __init__(self, machine: Machine,
                 config: Optional[KernelConfig] = None):
        self.machine = machine
        self.config = config or KernelConfig()
        self.frames = FrameAllocator(machine.phys.num_frames)
        self.processes: List[Process] = []
        self.stats = KernelStats()
        self._next_pid = 1
        self._fault_hooks: List[FaultHook] = []
        self._interrupt_hooks: List[Callable[[HardwareContext, str],
                                             Optional[TrapAction]]] = []
        self._jitter = random.Random(self.config.jitter_seed)
        machine.set_trap_handler(self)
        # Rebuilding a kernel on the same machine (tests do this)
        # rebinds the group rather than erroring.
        machine.metrics.register_group("kernel", self.stats, replace=True)

    # --- process management --------------------------------------------------

    def create_process(self, name: str = "") -> Process:
        process = Process(self._next_pid, pcid=self._next_pid,
                          phys=self.machine.phys, frames=self.frames,
                          name=name)
        self._next_pid += 1
        self.processes.append(process)
        return process

    def launch(self, process: Process, program, context_id: int = 0,
               start_index: int = 0):
        """Schedule *program* of *process* onto a hardware context."""
        context = self.machine.contexts[context_id]
        context.load_program(program, process, start_index)
        return context

    # --- TLB maintenance (the OS's side of coherence, §2.1) -----------------

    def invlpg(self, process: Process, va: int):
        """Invalidate one translation in every TLB level and in the
        paging-structure (page-walk) cache, as x86 INVLPG does."""
        self.machine.tlbs.invalidate(process.pcid, vaddr.vpn(va))
        self.machine.pwc.invalidate_va(process.pcid, va)

    def flush_tlbs(self, process: Optional[Process] = None):
        if process is None:
            self.machine.tlbs.flush_all()
        else:
            self.machine.tlbs.flush_pcid(process.pcid)

    def set_present(self, process: Process, va: int, present: bool,
                    flush: bool = True):
        """Toggle the present bit for the page of *va* and keep the TLB
        coherent — the primitive the controlled-channel attack and
        MicroScope both build on."""
        process.page_tables.set_present(vaddr.page_base(va), present)
        if flush:
            self.invlpg(process, va)

    # --- trampoline hooks (Fig. 9, step 4) -----------------------------------

    def add_fault_hook(self, hook: FaultHook):
        self._fault_hooks.append(hook)

    def remove_fault_hook(self, hook: FaultHook):
        self._fault_hooks.remove(hook)

    def add_interrupt_hook(self, hook):
        self._interrupt_hooks.append(hook)

    # --- trap handling ---------------------------------------------------------

    def _cost(self, base: int) -> int:
        if self.config.cost_jitter:
            return base + self._jitter.randint(0, self.config.cost_jitter)
        return base

    def handle_page_fault(self, context: HardwareContext,
                          fault: PageFault) -> TrapAction:
        self.stats.page_faults += 1
        claimed = False
        action = None
        for hook in self._fault_hooks:
            action = hook(context, fault)
            if action is not None:
                self.stats.hook_claims += 1
                claimed = True
                break
        if action is None:
            action = self._default_fault_handling(context, fault)
        tracer = self.machine.tracer
        if tracer is not None:
            tracer.complete(
                "page_fault", self.machine.cycle, action.cost,
                cat="kernel", tid=KERNEL_TID,
                va=fault.va, level=fault.level, ctx=context.context_id,
                claimed=claimed)
        return action

    def _default_fault_handling(self, context: HardwareContext,
                                fault: PageFault) -> TrapAction:
        process: Optional[Process] = context.process
        if process is None:
            raise RuntimeError("page fault with no process bound")
        vma = process.vma_containing(fault.va)
        if vma is None:
            self.stats.segfaults += 1
            if self.config.kill_on_segfault:
                process.terminated = True
                return TrapAction(cost=self._cost(
                    self.config.minor_fault_cost), halt=True)
            raise ProcessError(f"segfault: {fault.describe()}")
        already_backed = vaddr.vpn(fault.va) in process.page_frames
        process.ensure_mapped(fault.va)
        self.invlpg(process, fault.va)
        cost = self.config.minor_fault_cost
        if already_backed:
            self.stats.minor_faults += 1
        else:
            self.stats.demand_pages += 1
            cost += self.config.major_fault_extra
        return TrapAction(cost=self._cost(cost))

    def handle_interrupt(self, context: HardwareContext,
                         reason: str) -> TrapAction:
        self.stats.interrupts += 1
        action = None
        for hook in self._interrupt_hooks:
            action = hook(context, reason)
            if action is not None:
                break
        if action is None:
            action = TrapAction(cost=self._cost(self.config.interrupt_cost))
        tracer = self.machine.tracer
        if tracer is not None:
            tracer.complete(
                "interrupt", self.machine.cycle, action.cost,
                cat="kernel", tid=KERNEL_TID,
                reason=reason, ctx=context.context_id)
        return action

    # --- snapshot support -------------------------------------------------

    def capture(self) -> tuple:
        """Clone kernel state.  Process *objects* are shared by
        reference (the rest of the system holds pointers to them);
        their mutable address-space state is cloned per process.  Hook
        registrations are identity wiring and stay untouched."""
        return (
            self.stats.capture(),
            self._next_pid,
            self._jitter.getstate(),
            self.frames.capture(),
            [(process, process.capture()) for process in self.processes],
        )

    def restore(self, state: tuple):
        stats, next_pid, jitter, frames, processes = state
        self.stats.restore(stats)
        self._next_pid = next_pid
        self._jitter.setstate(jitter)
        self.frames.restore(frames)
        self.processes = [process for process, _ in processes]
        for process, process_state in processes:
            process.restore(process_state)
