"""Fleet plans: the shared-program / per-lane-data trial contract.

Every sweep this reproduction runs has the same shape: one program,
many trials that differ only in *data* — seeds, secrets, initial
register or memory contents.  A :class:`FleetPlan` captures that
shape declaratively so the batch engine can run all trials as lanes
of one :class:`~repro.batch.fleet.MachineFleet`, while the scalar
backend (and any peeled-off lane) runs the identical recipe on a
plain :class:`~repro.cpu.machine.Machine`:

* ``programs`` — which immutable :class:`~repro.isa.program.Program`
  runs on which hardware context (shared by every lane);
* ``lane_init(seed, params)`` — the per-lane data: initial register
  and physical-memory values (a :class:`LaneInit`);
* ``max_cycles`` / ``extract(machine)`` — when to stop and what a
  trial returns.

:func:`run_lane_scalar` is the scalar reference semantics; the fleet
is bit-identical to it lane by lane.  :class:`FleetTrial` adapts a
plan to the harness trial contract (``fn(params, seed)``) while
advertising the plan via its ``fleet_plan`` attribute, which is what
``run_sweep(..., backend="batch")`` keys on.  Instances pickle (for
the process-pool scalar path) as long as the plan's components are
module-level.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional, Tuple

from repro.cpu.machine import Machine
from repro.isa.program import Program


@dataclass(frozen=True)
class LaneInit:
    """Per-lane initial data, applied before the program starts.

    ``mem`` entries are ``(paddr, width, value)`` physical writes;
    ``regs`` entries are ``(context_id, reg, value)`` architectural
    writes.  Within a lane, later entries win, exactly like the
    sequential writes they describe.
    """

    mem: Tuple[Tuple[int, int, Any], ...] = ()
    regs: Tuple[Tuple[int, str, Any], ...] = ()


@dataclass(frozen=True)
class FleetPlan:
    """What one trial is, minus the per-lane data."""

    #: ``(context_id, program)`` pairs loaded on every lane.
    programs: Tuple[Tuple[int, Program], ...]
    #: ``fn(seed, params) -> LaneInit``: the only lane-variant input.
    lane_init: Callable[[int, Any], LaneInit]
    #: Absolute cycle budget (machines start at cycle 0).
    max_cycles: int
    #: ``fn(machine) -> result`` once the machine stops.
    extract: Callable[[Machine], Any]
    #: Machine configuration; ``None`` means defaults.
    config: Optional[Any] = None


def build_lane_machine(plan: FleetPlan, seed: int, params: Any) -> Machine:
    """Construct one lane's machine: config, per-lane data, programs."""
    machine = Machine(plan.config)
    init = plan.lane_init(seed, params)
    for context_id, reg, value in init.regs:
        machine.contexts[context_id].write_reg(reg, value)
    for paddr, width, value in init.mem:
        machine.phys.write(paddr, value, width)
    for context_id, program in plan.programs:
        machine.contexts[context_id].load_program(program)
    return machine


def run_lane_scalar(plan: FleetPlan, seed: int, params: Any) -> Any:
    """The scalar reference: one lane, one machine, start to finish."""
    machine = build_lane_machine(plan, seed, params)
    machine.run(max_cycles=plan.max_cycles)
    return plan.extract(machine)


@dataclass(frozen=True)
class FleetTrial:
    """Harness trial callable (``fn(params, seed)``) carrying its plan.

    The scalar backend (and the resilient sweep's retry ladder) calls
    instances directly; ``backend="batch"`` discovers the plan through
    the ``fleet_plan`` attribute and runs all trials as fleet lanes.
    A frozen dataclass so :func:`repro.memo.trial_key` can fingerprint
    it (class identity + declared field state): fleet-resolved trials
    then persist in the content-addressed store like any scalar trial,
    as long as the plan's callables are module-level functions.
    """

    fleet_plan: FleetPlan

    def __call__(self, params: Any, seed: int) -> Any:
        return run_lane_scalar(self.fleet_plan, seed, params)


__all__ = ["FleetPlan", "FleetTrial", "LaneInit", "build_lane_machine",
           "run_lane_scalar"]
