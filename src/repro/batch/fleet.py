"""The batched lockstep machine fleet.

A :class:`MachineFleet` runs N lanes — same programs, different
seeds/secrets — for the cost of roughly *one* machine.  The key
observation is that converged lanes share everything except data:
while no lane has diverged, the entire control plane (ROB occupancy,
cache tags, TLB state, port schedules, predictor, cycle counts,
statistics, RNG streams) is provably identical across lanes, so it is
stored exactly once, in a real scalar :class:`~repro.cpu.machine.
Machine` called the **leader** (lane 0).  Only the data plane is
lane-indexed: a sparse structure-of-arrays overlay of *taint tables*
mapping architectural locations to lane vectors (plain lists, element
0 = the leader's value; see :mod:`repro.batch.lanes` for the vector
engines):

* ``reg_taint[(ctx, reg)]``       — architectural registers,
* ``mem_taint[paddr]``            — ``(width, vector)`` memory words,
* ``val_taint[(ctx, seq)]``       — in-flight results,
* ``op_taint[(ctx, seq, slot)]``  — resolved source operands,
* ``store_taint[(ctx, seq)]``     — unretired store data.

A table entry exists only while the location actually differs across
lanes; lane-invariant values live solely in the leader.  The overlay
is maintained synchronously by read-only hooks on the leader's core
(decode / issue / complete / retire), each mirroring the exact scalar
dataflow rule it shadows, so every vector's element 0 always equals
the leader's scalar value — the invariant all bit-exactness rests on.

**Divergence and peel-off.**  The lockstep premise breaks the moment
per-lane data would change *control*: a branch whose lane outcome
differs from the leader's, a load/store whose lane virtual address
differs, an FDIV whose subnormal latency class differs, or any event
the overlay does not model (page faults, TSX, interrupts).  Detection
is synchronous — at the leader hook where the scalar core consumes
the value — and recovery is transparent: the divergent lane is
*peeled* to a fresh scalar Machine materialised from the last window
boundary (a cheap COW leader snapshot plus shallow copies of the
taint tables, taken every ``sync_base``..``sync_cap`` cycles), which
predates the divergence by construction, and runs the ordinary scalar
semantics to completion.  Other lanes are not perturbed.  Unmodelled
events conservatively peel every follower at once; a leader exception
additionally re-runs lane 0 from the boundary so the exception is
reproduced per-lane.

The result is bit-exact by construction rather than by vectorising
the out-of-order pipeline: every lane ends as either the leader
itself, a materialised copy of it patched with that lane's vector
elements, or an actual scalar Machine run — all three provably equal
to an independent scalar run with the same seed.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.batch.lanes import make_ops
from repro.batch.plan import FleetPlan
from repro.cpu.core import MASK64, Core, _is_subnormal, _to_signed
from repro.cpu.machine import Machine
from repro.isa.instructions import Opcode

#: Opcode -> lane-engine binop name (three-register ALU forms).
_BINOP_NAME = {
    Opcode.ADD: "add", Opcode.SUB: "sub", Opcode.AND: "and",
    Opcode.OR: "or", Opcode.XOR: "xor", Opcode.SHL: "shl",
    Opcode.SHR: "shr", Opcode.MUL: "mul", Opcode.DIV: "div",
    Opcode.FADD: "fadd", Opcode.FSUB: "fsub", Opcode.FMUL: "fmul",
    Opcode.FDIV: "fdiv",
}
#: Opcode -> lane-engine immop name (register-immediate ALU forms).
_IMMOP_NAME = {
    Opcode.ADDI: "addi", Opcode.SUBI: "subi", Opcode.ANDI: "andi",
    Opcode.ORI: "ori", Opcode.XORI: "xori", Opcode.SHLI: "shli",
    Opcode.SHRI: "shri",
}


def _invariant(vec: List) -> bool:
    """True when every element equals element 0 in value *and* type
    (int 5 and float 5.0 compare equal but are architecturally
    distinct).  NaN elements always count as variant — conservative
    and harmless."""
    v0 = vec[0]
    t0 = type(v0)
    for x in vec:
        if type(x) is not t0 or x != v0:
            return False
    return True


class LaneOutcome:
    """What one lane produced: a result or the error that ended it."""

    __slots__ = ("lane", "seed", "params", "result", "error", "peeled",
                 "reason")

    def __init__(self, lane: int, seed: int, params: Any, *,
                 result: Any = None,
                 error: Optional[BaseException] = None,
                 peeled: bool = False, reason: Optional[str] = None):
        self.lane = lane
        self.seed = seed
        self.params = params
        self.result = result
        self.error = error
        #: True when this lane fell back to a scalar re-run.
        self.peeled = peeled
        #: Why it peeled (``"branch"``, ``"addr"``, ``"fault"``, …).
        self.reason = reason

    def __repr__(self) -> str:
        status = (f"error={self.error!r}" if self.error is not None
                  else f"result={self.result!r}")
        tail = f" peeled:{self.reason}" if self.peeled else ""
        return f"<LaneOutcome lane={self.lane} {status}{tail}>"


class _Boundary:
    """A window boundary: leader snapshot + taint-table copies.

    The leader capture is copy-on-write (O(frames touched)); the
    taint dicts are shallow-copied, which suffices because lane
    vectors are never mutated in place.
    """

    __slots__ = ("capture", "reg", "mem", "val", "op", "store")

    def __init__(self, capture, reg, mem, val, op, store):
        self.capture = capture
        self.reg = reg
        self.mem = mem
        self.val = val
        self.op = op
        self.store = store


class MachineFleet:
    """N machines stepped in lockstep via a leader + taint overlay.

    ``lanes`` is a sequence of ``(seed, params)`` pairs, one per lane;
    lane data comes from ``plan.lane_init(seed, params)``.  ``ops``
    overrides the lane-vector engine (see
    :func:`repro.batch.lanes.make_ops`).  ``sync_base``/``sync_cap``
    bound the adaptive window interval: quiet windows double it up to
    the cap, any divergence resets it.

    :meth:`run` never raises for a per-lane failure — each lane's
    exception is captured in its :class:`LaneOutcome`.
    """

    def __init__(self, plan: FleetPlan,
                 lanes: Sequence[Tuple[int, Any]], *,
                 ops=None, sync_base: int = 1024,
                 sync_cap: int = 32768):
        if not lanes:
            raise ValueError("a fleet needs at least one lane")
        self.plan = plan
        self.lanes = list(lanes)
        self.n = len(self.lanes)
        self.ops = ops if ops is not None else make_ops()
        self.sync_base = max(1, sync_base)
        self.sync_cap = max(self.sync_base, sync_cap)

        if plan.config is not None:
            self.config = plan.config
        else:
            from repro.config import MachineConfig
            self.config = MachineConfig()

        # Taint tables (the structure-of-arrays data plane).
        self.reg_taint: Dict[Tuple[int, str], List] = {}
        self.mem_taint: Dict[int, Tuple[int, List]] = {}
        self.val_taint: Dict[Tuple[int, int], List] = {}
        self.op_taint: Dict[Tuple[int, int, int], List] = {}
        self.store_taint: Dict[Tuple[int, int], List] = {}

        # Lane status: None = batched, else the peel reason.
        self._lane_reason: List[Optional[str]] = [None] * self.n
        self._pending: Dict[int, str] = {}
        self._peel_all: Optional[str] = None

        #: Accounting for tests and benchmarks.
        self.stats = {"lanes": self.n, "windows": 0, "peeled": 0,
                      "boundaries": 0, "engine": self.ops.name}

        self.leader = self._build_leader()
        self.core = self.leader.core

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def _build_leader(self) -> Machine:
        """Build lane 0 as a real machine and seed the initial taints
        from the per-lane init deltas."""
        plan = self.plan
        machine = Machine(self.config)
        inits = [plan.lane_init(seed, params)
                 for seed, params in self.lanes]

        # Per-lane final values for every touched location (later
        # writes win within a lane, like the sequential writes they
        # mirror), plus the pre-init base value for lanes that never
        # touch a location.
        reg_writes: List[Dict[Tuple[int, str], Any]] = []
        mem_writes: List[Dict[int, Any]] = []
        mem_width: Dict[int, int] = {}
        for init in inits:
            regs: Dict[Tuple[int, str], Any] = {}
            for context_id, reg, value in init.regs:
                regs[(context_id, reg)] = value
            reg_writes.append(regs)
            mem: Dict[int, Any] = {}
            for paddr, width, value in init.mem:
                known = mem_width.get(paddr)
                if known is None:
                    mem_width[paddr] = width
                elif known != width:
                    raise ValueError(
                        f"conflicting widths for paddr {paddr:#x} "
                        f"across lane inits ({known} vs {width})")
                mem[paddr] = value
            mem_writes.append(mem)

        reg_keys = sorted({k for w in reg_writes for k in w})
        mem_keys = sorted({k for w in mem_writes for k in w})
        reg_base = {key: machine.contexts[key[0]].read_reg(key[1])
                    for key in reg_keys}
        mem_base = {paddr: machine.phys.read(paddr, mem_width[paddr])
                    for paddr in mem_keys}

        # Apply lane 0 for real, in build_lane_machine order.
        for context_id, reg, value in inits[0].regs:
            machine.contexts[context_id].write_reg(reg, value)
        for paddr, width, value in inits[0].mem:
            machine.phys.write(paddr, value, width)
        for context_id, program in plan.programs:
            machine.contexts[context_id].load_program(program)

        # Taint every location that differs across lanes.  Register
        # vectors go through the same int()/float() coercion write_reg
        # applies; memory is stored raw, exactly like phys.write.
        for key in reg_keys:
            context_id, reg = key
            cast = (int if reg in machine.contexts[context_id].int_regs
                    else float)
            vec = [cast(w.get(key, reg_base[key])) for w in reg_writes]
            if not _invariant(vec):
                self.reg_taint[key] = vec
        for paddr in mem_keys:
            vec = [w.get(paddr, mem_base[paddr]) for w in mem_writes]
            if not _invariant(vec):
                self.mem_taint[paddr] = (mem_width[paddr], vec)
        return machine

    # ------------------------------------------------------------------
    # lane bookkeeping
    # ------------------------------------------------------------------

    def _diverge(self, lane: int, reason: str):
        """Mark a follower lane divergent; it peels at window end."""
        if lane == 0 or self._lane_reason[lane] is not None:
            return
        self._lane_reason[lane] = reason
        self._pending[lane] = reason

    def _flag_peel_all(self, reason: str):
        if self._peel_all is None:
            self._peel_all = reason

    def _active_followers(self) -> List[int]:
        return [i for i in range(1, self.n)
                if self._lane_reason[i] is None]

    # ------------------------------------------------------------------
    # leader hooks (read-only mirrors of the scalar dataflow rules)
    # ------------------------------------------------------------------

    def _attach(self):
        core = self.core
        core.decode_hooks.append(self._on_decode)
        core.issue_hooks.append(self._on_issue)
        core.complete_hooks.append(self._on_complete)
        core.retire_hooks.append(self._on_retire)

    def _detach(self):
        core = self.core
        for hooks, fn in ((core.decode_hooks, self._on_decode),
                          (core.issue_hooks, self._on_issue),
                          (core.complete_hooks, self._on_complete),
                          (core.retire_hooks, self._on_retire)):
            try:
                hooks.remove(fn)
            except ValueError:
                pass

    def _on_decode(self, context, entry, sources):
        if self._peel_all is not None:
            return
        if entry.instr.op is Opcode.TBEGIN:
            # Transactions snapshot/restore registers and buffer
            # stores — outside the overlay's model.
            self._flag_peel_all("tsx")
            return
        context_id = context.context_id
        op_taint = self.op_taint
        for slot, src in enumerate(sources):
            if src is None:
                continue
            kind, ref = src
            if kind == "arch":
                taint = self.reg_taint.get((context_id, ref))
            elif kind == "value":
                taint = self.val_taint.get((context_id, ref.seq))
            else:  # pending: delivered by _on_complete later
                continue
            if taint is not None:
                op_taint[(context_id, entry.seq, slot)] = taint

    def _on_complete(self, context, entry):
        # Mirrors the dependent-distribution loop: a completing
        # entry's value taint becomes its dependents' operand taint.
        if self._peel_all is not None:
            return
        taint = self.val_taint.get((context.context_id, entry.seq))
        if taint is None:
            return
        context_id = context.context_id
        op_taint = self.op_taint
        for dependent, slot in entry.dependents:
            if dependent.squashed:
                continue
            op_taint[(context_id, dependent.seq, slot)] = taint

    def _on_issue(self, context, entry):
        if self._peel_all is not None:
            return
        if entry.fault is not None:
            # Page faults trap through OS machinery the overlay does
            # not model; every follower re-runs scalar.
            self._flag_peel_all("fault")
            return
        context_id = context.context_id
        instr = entry.instr
        t0 = self.op_taint.get((context_id, entry.seq, 0))
        t1 = self.op_taint.get((context_id, entry.seq, 1))
        if instr.is_load:
            self._mirror_load(context, entry, t0)
        elif instr.is_store:
            self._mirror_store(context, entry, t0, t1)
        elif instr.is_cond_branch:
            self._check_branch(entry, t0, t1)
        elif t0 is None and t1 is None:
            return  # operands lane-invariant => value lane-invariant
        elif instr.is_branch:
            return  # JMP: no data dependence on direction
        else:
            self._mirror_alu(context_id, entry, t0, t1)

    def _on_retire(self, context, entry):
        if self._peel_all is not None:
            return
        context_id = context.context_id
        key = (context_id, entry.seq)
        instr = entry.instr
        dest = instr.dest()
        if dest is not None and entry.value is not None:
            taint = self.val_taint.get(key)
            reg_key = (context_id, dest)
            if taint is None:
                # Invariant value retired over a (possibly tainted)
                # register: the register is invariant again.
                self.reg_taint.pop(reg_key, None)
            else:
                if dest in context.int_regs:
                    vec = self._coerce_vec(int, taint,
                                           context.int_regs[dest])
                else:
                    vec = self._coerce_vec(float, taint,
                                           context.fp_regs[dest])
                if _invariant(vec):
                    self.reg_taint.pop(reg_key, None)
                else:
                    self.reg_taint[reg_key] = vec
        if instr.is_store:
            taint = self.store_taint.get(key)
            if taint is None:
                self.mem_taint.pop(entry.paddr, None)
            else:
                # phys.write stores the raw value; mirror exactly.
                self.mem_taint[entry.paddr] = (instr.width, taint)

    # --- per-op mirrors ---------------------------------------------------

    def _mirror_alu(self, context_id, entry, t0, t1):
        op = entry.instr.op
        n = self.n
        a = t0 if t0 is not None else [entry.operands[0]] * n
        name = _BINOP_NAME.get(op)
        if name is not None:
            b = t1 if t1 is not None else [entry.operands[1]] * n
            if op is Opcode.FDIV:
                self._check_fdiv_class(entry, a, b)
            vec = self._vec_binop(name, a, b, entry.value)
        elif op in _IMMOP_NAME:
            vec = self._vec_immop(_IMMOP_NAME[op], a, entry.instr.imm,
                                  entry.value)
        elif op is Opcode.MOV or op is Opcode.FMOV:
            vec = list(a)
        else:
            # A tainted operand reached an op the overlay does not
            # mirror — should be unreachable, but never guess.
            self._flag_peel_all(f"unmirrored-op:{op.value}")
            return
        if not _invariant(vec):
            self.val_taint[(context_id, entry.seq)] = vec

    def _mirror_load(self, context, entry, t0):
        instr = entry.instr
        if t0 is not None:
            self._check_va(entry, t0, instr.imm)
        context_id = context.context_id
        # Value source priority mirrors _execute_load: store-forward
        # from the youngest older matching store, else memory.  (The
        # transactional buffer path cannot be reached: TBEGIN peels at
        # decode.)  A width-mismatched match cannot exist — the scalar
        # core refuses to issue the load until it retires.
        donor = None
        for store in context.rob.stores_older_than(entry.seq):
            if (store.addr_resolved and store.addr == entry.addr
                    and store.instr.width == instr.width):
                donor = store
        if donor is not None:
            src = self.store_taint.get((context_id, donor.seq))
        else:
            tainted = self.mem_taint.get(entry.paddr)
            src = tainted[1] if tainted is not None else None
        if src is None:
            return
        vec = []
        for lane in range(self.n):
            try:
                vec.append(Core._coerce_load_value(instr, src[lane]))
            except Exception:
                self._diverge(lane, "compute-error")
                vec.append(entry.value)
        if not _invariant(vec):
            self.val_taint[(context_id, entry.seq)] = vec

    def _mirror_store(self, context, entry, t0, t1):
        if t0 is not None:
            self._check_va(entry, t0, entry.instr.imm)
        if t1 is not None:
            # store_value = operands[1], raw and uncoerced.
            self.store_taint[(context.context_id, entry.seq)] = t1

    # --- divergence checks ------------------------------------------------

    def _check_va(self, entry, t0, imm):
        """Per-lane virtual address must match the leader's: address
        divergence changes cache/TLB behaviour, forwarding and
        memory-order checks — all control plane."""
        va0 = entry.addr
        for lane in self._active_followers():
            try:
                va = (t0[lane] + imm) & MASK64
            except Exception:
                self._diverge(lane, "compute-error")
                continue
            if va != va0:
                self._diverge(lane, "addr")

    def _check_branch(self, entry, t0, t1):
        if t0 is None and t1 is None:
            return
        n = self.n
        a = t0 if t0 is not None else [entry.operands[0]] * n
        b = t1 if t1 is not None else [entry.operands[1]] * n
        op = entry.instr.op
        taken0 = entry.actual_taken
        for lane in self._active_followers():
            try:
                x = _to_signed(a[lane])
                y = _to_signed(b[lane])
                if op is Opcode.BEQ:
                    taken = x == y
                elif op is Opcode.BNE:
                    taken = x != y
                elif op is Opcode.BLT:
                    taken = x < y
                else:  # BGE
                    taken = x >= y
            except Exception:
                self._diverge(lane, "compute-error")
                continue
            if taken != taken0:
                self._diverge(lane, "branch")

    def _check_fdiv_class(self, entry, a, b):
        """FDIV latency depends on subnormal operands/results; a lane
        in a different latency class completes at a different cycle —
        control divergence."""
        leader_class = self._fdiv_class(entry.operands[0],
                                        entry.operands[1])
        for lane in self._active_followers():
            try:
                lane_class = self._fdiv_class(a[lane], b[lane])
            except Exception:
                self._diverge(lane, "compute-error")
                continue
            if lane_class != leader_class:
                self._diverge(lane, "latency")

    @staticmethod
    def _fdiv_class(a, b) -> bool:
        result_sub = False
        try:
            result_sub = _is_subnormal(float(a) / float(b))
        except (ZeroDivisionError, TypeError, OverflowError):
            pass
        return (_is_subnormal(float(a or 0.0))
                or _is_subnormal(float(b or 0.0)) or result_sub)

    # --- guarded vector compute -------------------------------------------

    def _coerce_vec(self, cast, vec, leader_value):
        """Apply write_reg's int()/float() coercion per lane, falling
        back to the leader's (already coerced) register value for
        lanes whose element cannot coerce."""
        out = []
        for lane in range(self.n):
            try:
                out.append(cast(vec[lane]))
            except Exception:
                self._diverge(lane, "compute-error")
                out.append(leader_value)
        return out

    def _vec_binop(self, name, a, b, leader_value):
        try:
            return self.ops.binop(name, a, b)
        except Exception:
            pass
        # Diverged lanes can hold type-mismatched garbage that makes
        # the whole-vector expression raise; recompute per element,
        # substituting the leader value for failing lanes.  An
        # *active* lane whose element raises is genuinely divergent —
        # its scalar re-run reproduces the exception faithfully.
        out = []
        for lane in range(self.n):
            try:
                out.append(self.ops.binop(name, [a[lane]], [b[lane]])[0])
            except Exception:
                self._diverge(lane, "compute-error")
                out.append(leader_value)
        return out

    def _vec_immop(self, name, a, imm, leader_value):
        try:
            return self.ops.immop(name, a, imm)
        except Exception:
            pass
        out = []
        for lane in range(self.n):
            try:
                out.append(self.ops.immop(name, [a[lane]], imm)[0])
            except Exception:
                self._diverge(lane, "compute-error")
                out.append(leader_value)
        return out

    # ------------------------------------------------------------------
    # window boundaries and materialisation
    # ------------------------------------------------------------------

    def _prune_taints(self):
        """Drop per-entry taints whose (ctx, seq) is no longer
        referenced.  Live in-flight entries sit in their context's ROB
        (rename/ready/load-index are subsets), but squashed entries
        linger in the event heap until their due cycle passes — never
        consulted by execution, yet still part of a bit-exact capture
        (a squashed speculative load keeps the lane-variant value it
        read), so heap membership keeps a taint alive too.  Seqs are
        never reused (refetch after a squash allocates fresh ones), so
        a key names exactly one entry object."""
        live = set()
        for context in self.core.contexts:
            context_id = context.context_id
            for entry in context.rob.entries:
                live.add((context_id, entry.seq))
        for _due, _tb, entry in self.core._events:
            live.add((entry.context_id, entry.seq))
        self.val_taint = {k: v for k, v in self.val_taint.items()
                          if k in live}
        self.store_taint = {k: v for k, v in self.store_taint.items()
                            if k in live}
        self.op_taint = {k: v for k, v in self.op_taint.items()
                         if (k[0], k[1]) in live}

    def _take_boundary(self) -> _Boundary:
        self._prune_taints()
        self.stats["boundaries"] += 1
        return _Boundary(self.leader.capture(),
                         dict(self.reg_taint), dict(self.mem_taint),
                         dict(self.val_taint), dict(self.op_taint),
                         dict(self.store_taint))

    def _materialize(self, boundary: _Boundary, lane: int) -> Machine:
        """A fresh scalar machine equal to what lane *lane* would be
        at the boundary: restore the leader snapshot, then patch every
        tainted location with the lane's vector element.  The restore
        memo preserves entry aliasing (ROB / rename / ready / heap all
        reference one object per seq), so re-patching an entry reached
        through both walks just re-assigns the same values.  The heap
        walk matters for squashed entries that live only there: dead
        to execution, but their lane-variant speculative values are
        still part of the bit-exact capture."""
        machine = Machine(self.config)
        machine.restore(boundary.capture)
        for (context_id, reg), vec in boundary.reg.items():
            machine.contexts[context_id].write_reg(reg, vec[lane])
        for paddr, (width, vec) in boundary.mem.items():
            machine.phys.write(paddr, vec[lane], width)

        def patch(context_id, entry):
            key = (context_id, entry.seq)
            taint = boundary.val.get(key)
            if taint is not None:
                entry.value = taint[lane]
            taint = boundary.store.get(key)
            if taint is not None:
                entry.store_value = taint[lane]
            for slot in (0, 1):
                taint = boundary.op.get((context_id, entry.seq, slot))
                if taint is not None:
                    entry.operands[slot] = taint[lane]

        for context in machine.contexts:
            context_id = context.context_id
            for entry in context.rob.entries:
                patch(context_id, entry)
        for _due, _tb, entry in machine.core._events:
            patch(entry.context_id, entry)
        return machine

    def _finish_lane(self, lane: int, boundary: _Boundary,
                     reason: str) -> LaneOutcome:
        """Peel: materialise the lane at the boundary and run the
        ordinary scalar semantics to completion."""
        seed, params = self.lanes[lane]
        self.stats["peeled"] += 1
        try:
            machine = self._materialize(boundary, lane)
            machine.run_until_cycle(self.plan.max_cycles)
            return LaneOutcome(lane, seed, params,
                               result=self.plan.extract(machine),
                               peeled=True, reason=reason)
        except Exception as exc:
            return LaneOutcome(lane, seed, params, error=exc,
                               peeled=True, reason=reason)

    def _extract_lane(self, lane: int, machine: Machine,
                      *, peeled: bool = False,
                      reason: Optional[str] = None) -> LaneOutcome:
        seed, params = self.lanes[lane]
        try:
            return LaneOutcome(lane, seed, params,
                               result=self.plan.extract(machine),
                               peeled=peeled, reason=reason)
        except Exception as exc:
            return LaneOutcome(lane, seed, params, error=exc,
                               peeled=peeled, reason=reason)

    # ------------------------------------------------------------------
    # the run loop
    # ------------------------------------------------------------------

    def run(self) -> List[LaneOutcome]:
        """Run every lane to completion; outcomes in lane order."""
        outcomes: List[Optional[LaneOutcome]] = [None] * self.n
        deadline = self.plan.max_cycles
        leader = self.leader
        leader_lost = False
        self._attach()
        try:
            boundary = self._take_boundary()
            interrupts0 = self._interrupt_count()
            interval = self.sync_base
            while True:
                followers = self._active_followers()
                if not followers:
                    break
                if not leader.core.busy() or leader.cycle >= deadline:
                    break
                target = min(leader.cycle + interval, deadline)
                self.stats["windows"] += 1
                try:
                    leader.run_until_cycle(
                        target,
                        until=lambda _m: self._peel_all is not None)
                except Exception:
                    # The leader machine may be mid-mutation: discard
                    # it and re-run every remaining lane — lane 0
                    # included — from the boundary, reproducing the
                    # exception (or not) per lane.
                    for lane in range(self.n):
                        if outcomes[lane] is None:
                            outcomes[lane] = self._finish_lane(
                                lane, boundary, "leader-exception")
                    leader_lost = True
                    break
                if (self._peel_all is None
                        and self._interrupt_count() != interrupts0):
                    self._flag_peel_all("interrupt")
                if self._peel_all is not None:
                    reason = self._peel_all
                    for lane in followers:
                        self._lane_reason[lane] = reason
                        outcomes[lane] = self._finish_lane(
                            lane, boundary, reason)
                    self._pending.clear()
                    break
                if self._pending:
                    for lane, reason in sorted(self._pending.items()):
                        outcomes[lane] = self._finish_lane(
                            lane, boundary, reason)
                    self._pending.clear()
                    interval = self.sync_base
                else:
                    interval = min(interval * 2, self.sync_cap)
                boundary = self._take_boundary()
                interrupts0 = self._interrupt_count()
        finally:
            self._detach()
        if not leader_lost:
            # Finish the leader plain (followers all peeled or all
            # still convergent — either way the overlay is done).
            remaining = [lane for lane in range(1, self.n)
                         if outcomes[lane] is None]
            if remaining:
                # Convergent to the end: materialise from the final
                # state; no further run needed (the leader stopped
                # exactly where each lane's scalar run would).
                final = self._take_boundary()
                for lane in remaining:
                    try:
                        outcomes[lane] = self._extract_lane(
                            lane, self._materialize(final, lane))
                    except Exception as exc:
                        seed, params = self.lanes[lane]
                        outcomes[lane] = LaneOutcome(lane, seed, params,
                                                     error=exc)
            else:
                try:
                    leader.run_until_cycle(deadline)
                except Exception as exc:
                    # A leader-only trap (every follower already
                    # peeled): the exception is lane 0's outcome,
                    # exactly as its scalar run would have raised it.
                    seed, params = self.lanes[0]
                    outcomes[0] = LaneOutcome(0, seed, params,
                                              error=exc)
            if outcomes[0] is None:
                outcomes[0] = self._extract_lane(0, leader)
        return [outcome for outcome in outcomes if outcome is not None]

    def _interrupt_count(self) -> int:
        total = 0
        for context in self.core.contexts:
            total += context.stats.interrupts
            if context.pending_interrupt is not None:
                total += 1
        return total


def run_fleet(plan: FleetPlan, lanes: Sequence[Tuple[int, Any]], *,
              ops=None, sync_base: int = 1024,
              sync_cap: int = 32768) -> List[LaneOutcome]:
    """Convenience wrapper: build a fleet, run it, return outcomes."""
    return MachineFleet(plan, lanes, ops=ops, sync_base=sync_base,
                        sync_cap=sync_cap).run()


__all__ = ["LaneOutcome", "MachineFleet", "run_fleet"]
