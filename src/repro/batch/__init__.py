"""Batched lockstep machine execution (the structure-of-arrays fleet).

``repro.batch`` steps N machines that run the same program with
different seeds/secrets for roughly the cost of one: a real scalar
leader machine carries the lane-invariant control plane, and a sparse
structure-of-arrays taint overlay carries the per-lane data plane.
Divergent lanes peel off transparently to the ordinary scalar
:class:`~repro.cpu.machine.Machine`, so every lane is bit-identical
to an independent scalar run — snapshots, metrics counters and final
architectural state included.

Entry points:

* :class:`FleetPlan` / :class:`LaneInit` — declare the shared program
  and the per-lane data (:mod:`repro.batch.plan`);
* :class:`MachineFleet` / :func:`run_fleet` — run the lanes
  (:mod:`repro.batch.fleet`);
* :class:`FleetTrial` — adapt a plan to the sweep-harness trial
  contract; ``run_sweep(..., backend="batch")`` and
  ``Experiment(backend="batch")`` batch automatically when the trial
  function carries a ``fleet_plan``;
* :func:`make_ops` — select the lane-vector engine (NumPy fast path
  or the pure-Python fallback; ``REPRO_NO_NUMPY=1`` forces pure).
"""

from repro.batch.fleet import LaneOutcome, MachineFleet, run_fleet
from repro.batch.lanes import NumpyOps, PurePythonOps, make_ops
from repro.batch.plan import (
    FleetPlan,
    FleetTrial,
    LaneInit,
    build_lane_machine,
    run_lane_scalar,
)

__all__ = [
    "FleetPlan",
    "FleetTrial",
    "LaneInit",
    "LaneOutcome",
    "MachineFleet",
    "NumpyOps",
    "PurePythonOps",
    "build_lane_machine",
    "make_ops",
    "run_fleet",
    "run_lane_scalar",
]
