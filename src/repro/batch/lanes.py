"""Lane-vector arithmetic engines for the batch fleet.

A *lane vector* is a plain Python list with one element per fleet
lane; element 0 always holds the leader machine's scalar value.
Vectors are treated as immutable — every operation returns a new
list — so window-boundary checkpoints can shallow-copy the taint
tables that hold them.

:class:`PurePythonOps` is the reference engine: each element is
computed with the *same Python expression* the scalar core uses
(``repro.cpu.core.Core._execute_alu``), so lane results are exact by
construction for every operand type the core can produce —
arbitrary-precision ints (``li`` places any Python int in a
register), floats, and IEEE specials.

:class:`NumpyOps` overlays a guarded ``uint64`` fast path on the
masked integer ops.  The guard falls back to the pure engine whenever
an operand leaves the ``[0, 2**64)`` range NumPy wraps correctly, the
vector is too short to amortise the array round-trip, or the op has
semantics NumPy cannot reproduce bit-for-bit (floating point, DIV's
divide-by-zero convention).  The fast path is therefore an
optimisation only — never a semantic fork.

:func:`make_ops` selects the engine: NumPy when importable, unless
the ``REPRO_NO_NUMPY`` environment variable is set (the CI leg that
proves the pure-Python fallback stays correct) or the caller asks for
a specific engine.
"""

from __future__ import annotations

import math
import os
from typing import List, Optional

MASK64 = (1 << 64) - 1

#: Binary ops with a NumPy ``uint64`` fast path: results are exact
#: under 64-bit wraparound when both operand vectors are in-range
#: ints.  DIV (zero convention) and all FP ops are excluded.
_U64_BINOPS = frozenset({"add", "sub", "and", "or", "xor",
                         "shl", "shr", "mul"})
#: Immediate ops eligible for the fast path.  ``addi``/``subi`` work
#: for any immediate (wraparound absorbs the mask); the bitwise ones
#: additionally require an in-range immediate.
_U64_IMMOPS = frozenset({"addi", "subi", "andi", "ori", "xori",
                         "shli", "shri"})
_IMM_ANY = frozenset({"addi", "subi", "shli", "shri"})


class PurePythonOps:
    """Elementwise lane math via the scalar core's own expressions."""

    name = "pure"

    def binop(self, op: str, a: List, b: List) -> List:
        if op == "add":
            return [(x + y) & MASK64 for x, y in zip(a, b)]
        if op == "sub":
            return [(x - y) & MASK64 for x, y in zip(a, b)]
        if op == "and":
            return [x & y for x, y in zip(a, b)]
        if op == "or":
            return [x | y for x, y in zip(a, b)]
        if op == "xor":
            return [x ^ y for x, y in zip(a, b)]
        if op == "shl":
            return [(x << (y & 63)) & MASK64 for x, y in zip(a, b)]
        if op == "shr":
            return [(x & MASK64) >> (y & 63) for x, y in zip(a, b)]
        if op == "mul":
            return [(x * y) & MASK64 for x, y in zip(a, b)]
        if op == "div":
            return [(x // y) & MASK64 if y else 0 for x, y in zip(a, b)]
        if op == "fadd":
            return [x + y for x, y in zip(a, b)]
        if op == "fsub":
            return [x - y for x, y in zip(a, b)]
        if op == "fmul":
            return [x * y for x, y in zip(a, b)]
        if op == "fdiv":
            out = []
            for x, y in zip(a, b):
                try:
                    out.append(x / y)
                except ZeroDivisionError:
                    out.append(math.inf if x > 0
                               else -math.inf if x < 0 else 0.0)
            return out
        raise ValueError(f"unknown lane binop {op!r}")

    def immop(self, op: str, a: List, imm) -> List:
        if op == "addi":
            return [(x + imm) & MASK64 for x in a]
        if op == "subi":
            return [(x - imm) & MASK64 for x in a]
        if op == "andi":
            return [x & imm for x in a]
        if op == "ori":
            return [x | imm for x in a]
        if op == "xori":
            return [x ^ imm for x in a]
        if op == "shli":
            return [(x << (imm & 63)) & MASK64 for x in a]
        if op == "shri":
            return [(x & MASK64) >> (imm & 63) for x in a]
        raise ValueError(f"unknown lane immop {op!r}")


class NumpyOps(PurePythonOps):
    """Pure engine plus a guarded ``uint64`` fast path."""

    name = "numpy"

    def __init__(self, np_module, min_lanes: int = 4):
        self._np = np_module
        #: Below this lane count the array round-trip costs more than
        #: the listcomp it replaces; fall through to the pure path.
        self.min_lanes = min_lanes

    def _as_u64(self, vec: List):
        """Vector as a uint64 array, or None when any element is not
        a plain in-range int (bools, bignums, negatives, floats all
        disqualify — the pure path owns those)."""
        for x in vec:
            if type(x) is not int or x < 0 or x > MASK64:
                return None
        return self._np.array(vec, dtype=self._np.uint64)

    def binop(self, op: str, a: List, b: List) -> List:
        if op in _U64_BINOPS and len(a) >= self.min_lanes:
            av = self._as_u64(a)
            if av is not None:
                bv = self._as_u64(b)
                if bv is not None:
                    return self._u64_binop(op, av, bv)
        return super().binop(op, a, b)

    def _u64_binop(self, op: str, av, bv) -> List:
        np = self._np
        with np.errstate(over="ignore"):
            if op == "add":
                r = av + bv
            elif op == "sub":
                r = av - bv
            elif op == "and":
                r = av & bv
            elif op == "or":
                r = av | bv
            elif op == "xor":
                r = av ^ bv
            elif op == "shl":
                r = np.left_shift(av, bv & np.uint64(63))
            elif op == "shr":
                r = np.right_shift(av, bv & np.uint64(63))
            else:  # mul
                r = av * bv
        return r.tolist()

    def immop(self, op: str, a: List, imm) -> List:
        if (op in _U64_IMMOPS and len(a) >= self.min_lanes
                and type(imm) is int
                and (op in _IMM_ANY or 0 <= imm <= MASK64)):
            av = self._as_u64(a)
            if av is not None:
                return self._u64_immop(op, av, imm)
        return super().immop(op, a, imm)

    def _u64_immop(self, op: str, av, imm: int) -> List:
        np = self._np
        with np.errstate(over="ignore"):
            if op == "addi":
                r = av + np.uint64(imm & MASK64)
            elif op == "subi":
                r = av - np.uint64(imm & MASK64)
            elif op == "andi":
                r = av & np.uint64(imm)
            elif op == "ori":
                r = av | np.uint64(imm)
            elif op == "xori":
                r = av ^ np.uint64(imm)
            elif op == "shli":
                r = np.left_shift(av, np.uint64(imm & 63))
            else:  # shri
                r = np.right_shift(av, np.uint64(imm & 63))
        return r.tolist()


def make_ops(prefer: Optional[str] = None) -> PurePythonOps:
    """Select a lane engine.

    ``prefer=None`` (the default) auto-selects: NumPy when importable
    and ``REPRO_NO_NUMPY`` is unset, pure Python otherwise.  Pass
    ``"pure"`` or ``"numpy"`` to force an engine; forcing ``"numpy"``
    raises when NumPy is genuinely unavailable.
    """
    if prefer == "pure":
        return PurePythonOps()
    if prefer not in (None, "numpy"):
        raise ValueError(f"unknown lane engine {prefer!r}")
    if prefer is None and os.environ.get("REPRO_NO_NUMPY"):
        return PurePythonOps()
    try:
        import numpy
    except ImportError:
        if prefer == "numpy":
            raise
        return PurePythonOps()
    return NumpyOps(numpy)


__all__ = ["MASK64", "NumpyOps", "PurePythonOps", "make_ops"]
