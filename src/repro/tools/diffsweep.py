"""Nightly differential sweep: the OOO core vs the golden model.

CounterPoint-style continuous differential testing, scaled past what
the tier-1 Hypothesis suite (``tests/cpu/test_differential.py``) can
afford per-PR: generate *cases* seeded random programs, execute each
on both the out-of-order :class:`~repro.cpu.machine.Machine` and the
sequential :mod:`repro.isa.interpreter` golden model, and require
final integer/FP register state and memory to agree.

The sweep runs through :func:`repro.harness.run_resilient_sweep`, so
it journals every completed case (``journal.jsonl``) and produces the
standard :class:`~repro.harness.SweepReport` accounting — both are
uploaded as artifacts by the nightly workflow, and an interrupted
sweep resumes from its journal with nothing rerun.

Each case's program is a pure function of its harness-derived seed
(init + bounded loop + data-dependent branches + straight-line tail,
the same shape the Hypothesis generator draws), so any mismatch is
reproducible from the case index alone::

    python -m repro.tools.diffsweep --cases 200 --out-dir /tmp/diff
    python -m repro.tools.diffsweep --case 137   # re-run one case

Exit status: 0 when every case matches, 1 otherwise (mismatching
cases are listed in ``diffsweep.json`` with their seeds).
"""

from __future__ import annotations

import argparse
import json
import math
import random
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional

#: Default number of cases the nightly sweep runs.
DEFAULT_CASES = 150

#: Sweep label (part of the seed lineage).
LABEL = "diffsweep"

#: Master seed of the nightly sweep.  The *date* is deliberately not
#: mixed in — a nightly failure must reproduce exactly from the case
#: index any day after.
DEFAULT_MASTER_SEED = 2019

#: Identity-mapped data page inside the default 256 MiB of DRAM.
DATA_BASE = 0x0010_0000

_DATA_REGS = [f"r{i}" for i in range(2, 12)]
_FP_REGS = [f"f{i}" for i in range(0, 8)]
_OFFSETS = [0, 8, 16, 24, 32, 64, 128]


def _block(rng: random.Random, builder, max_len: int) -> None:
    """Emit a dependency-rich straight-line block."""
    from repro.isa import instructions as ins
    for _ in range(rng.randint(1, max_len)):
        kind = rng.choice(
            ["alu", "alui", "mul", "div", "fp", "load", "store",
             "fload", "fstore"])
        rd, rs1, rs2 = (rng.choice(_DATA_REGS) for _ in range(3))
        fd, fs1, fs2 = (rng.choice(_FP_REGS) for _ in range(3))
        offset = rng.choice(_OFFSETS)
        if kind == "alu":
            ctor = rng.choice([ins.add, ins.sub, ins.xor,
                               ins.and_, ins.or_])
            builder.emit(ctor(rd, rs1, rs2))
        elif kind == "alui":
            ctor = rng.choice([ins.addi, ins.subi, ins.xori])
            builder.emit(ctor(rd, rs1, rng.randint(0, 1 << 16)))
        elif kind == "mul":
            builder.emit(ins.mul(rd, rs1, rs2))
        elif kind == "div":
            builder.emit(ins.div(rd, rs1, rs2))
        elif kind == "fp":
            ctor = rng.choice([ins.fadd, ins.fmul, ins.fsub])
            builder.emit(ctor(fd, fs1, fs2))
        elif kind == "load":
            builder.emit(ins.load(rd, "r1", offset))
        elif kind == "store":
            builder.emit(ins.store("r1", rs1, offset))
        elif kind == "fload":
            builder.emit(ins.fload(fd, "r1", offset))
        else:
            builder.emit(ins.fstore("r1", fs1, offset))


def generate_program(seed: int):
    """One terminating-by-construction random program, a pure
    function of *seed*."""
    from repro.isa.program import ProgramBuilder
    rng = random.Random(seed)
    builder = ProgramBuilder(f"diffsweep-{seed}")
    builder.li("r1", DATA_BASE)
    for reg in _DATA_REGS:
        builder.li(reg, rng.randint(0, 1 << 20))
    for reg in _FP_REGS:
        builder.fli(reg, round(rng.uniform(-1e6, 1e6), 3))
    builder.li("r0", rng.randint(1, 6))
    builder.label("loop")
    _block(rng, builder, max_len=14)
    if rng.random() < 0.5:
        builder.beq(rng.choice(_DATA_REGS), rng.choice(_DATA_REGS),
                    "skip")
        _block(rng, builder, max_len=4)
        builder.label("skip")
    builder.subi("r0", "r0", 1)
    builder.li("r13", 0)
    builder.bne("r0", "r13", "loop")
    _block(rng, builder, max_len=6)
    builder.halt()
    return builder.build()


def _fp_equal(x: Any, y: Any) -> bool:
    if isinstance(x, float) and isinstance(y, float):
        if math.isnan(x) and math.isnan(y):
            return True
        return x == y
    return x == y


def run_case(params: Any, seed: int) -> Dict[str, Any]:
    """One differential case: both engines, compared field by field.

    The harness trial function — *seed* drives the program generator,
    so the journal's seed-lineage checks also pin the program.  With
    ``params["oracle"]`` set the core runs under an active (but
    unseeded) :class:`~repro.oracle.TaintOracle`: no secrets are ever
    registered, so any leakage event — or any architectural deviation
    from the golden model — is an oracle bug.
    """
    import contextlib

    from repro.cpu.machine import Machine
    from repro.isa.interpreter import run_program as interpret
    program = generate_program(seed)
    reference = interpret(program)
    oracle = None
    scope = contextlib.nullcontext()
    if params.get("oracle"):
        from repro.oracle import TaintOracle, activate
        oracle = TaintOracle()
        scope = activate(oracle)
    with scope:
        machine = Machine()
        context = machine.contexts[0]
        context.load_program(program)
        machine.run(3_000_000)
    mismatches: List[str] = []
    if oracle is not None and oracle.summary.total:
        mismatches.append(
            f"oracle raised {oracle.summary.total} events with no "
            f"secrets registered")
    if not context.finished():
        mismatches.append("core did not finish the program")
    for reg, value in reference.int_regs.items():
        if context.int_regs[reg] != value:
            mismatches.append(f"int {reg}")
    for reg, value in reference.fp_regs.items():
        if not _fp_equal(context.fp_regs[reg], value):
            mismatches.append(f"fp {reg}")
    for addr, value in reference.memory.items():
        core = machine.phys.read(addr)
        if not _fp_equal(core or 0, value or 0):
            mismatches.append(f"mem {addr:#x}")
    return {
        "case": params["case"],
        "instructions": len(program.instructions),
        "match": not mismatches,
        "mismatches": mismatches,
        "retired": context.stats.retired,
        "seed": seed,
    }


def run_sweep(cases: int, *, master_seed: int = DEFAULT_MASTER_SEED,
              out_dir: Optional[Path] = None,
              workers: Optional[int] = None,
              oracle: bool = False) -> Dict[str, Any]:
    """The full differential sweep; returns the summary payload.

    With ``oracle=True`` every case runs under an active, unseeded
    taint oracle — a continuous soundness control proving the oracle
    machinery neither perturbs execution nor raises events without a
    taint source.
    """
    from repro.harness import FaultPolicy, run_resilient_sweep
    from repro.observability.registry import MetricsRegistry
    journal = None
    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)
        journal = out_dir / "journal.jsonl"
    registry = MetricsRegistry()
    sweep = run_resilient_sweep(
        run_case,
        [{"case": i, "oracle": oracle} for i in range(cases)],
        master_seed=master_seed, label=LABEL, workers=workers,
        policy=FaultPolicy(max_attempts=2, backoff_base=0.0),
        journal=journal, metrics=registry)
    results = sweep.results()
    failures = [r for r in results if not r["match"]]
    summary = {
        "cases": cases,
        "oracle": oracle,
        "failures": [{"case": r["case"], "seed": r["seed"],
                      "mismatches": r["mismatches"]}
                     for r in failures],
        "label": LABEL,
        "master_seed": master_seed,
        "matched": len(results) - len(failures),
        "metrics": registry.dump(),
        "report": sweep.report.to_dict() if sweep.report else None,
        "retired_total": sum(r["retired"] for r in results),
    }
    if out_dir is not None:
        (out_dir / "diffsweep.json").write_text(
            json.dumps(summary, sort_keys=True, indent=2) + "\n")
    return summary


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point (``python -m repro.tools.diffsweep``)."""
    parser = argparse.ArgumentParser(
        description="differential sweep: OOO core vs golden model")
    parser.add_argument("--cases", type=int, default=DEFAULT_CASES)
    parser.add_argument("--master-seed", type=int,
                        default=DEFAULT_MASTER_SEED)
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument("--out-dir", default=None,
                        help="directory for journal.jsonl + "
                             "diffsweep.json artifacts")
    parser.add_argument("--case", type=int, default=None,
                        help="re-run one case by index and print its "
                             "payload")
    parser.add_argument("--oracle", action="store_true",
                        help="run every case under an active, "
                             "unseeded taint oracle (soundness "
                             "control: zero events expected)")
    args = parser.parse_args(argv)
    if args.case is not None:
        from repro.harness import derive_seed
        payload = run_case(
            {"case": args.case, "oracle": args.oracle},
            derive_seed(args.master_seed, args.case, LABEL))
        print(json.dumps(payload, sort_keys=True, indent=2))
        return 0 if payload["match"] else 1
    out_dir = Path(args.out_dir) if args.out_dir else None
    summary = run_sweep(args.cases, master_seed=args.master_seed,
                        out_dir=out_dir, workers=args.workers,
                        oracle=args.oracle)
    print(f"diffsweep: {summary['matched']}/{summary['cases']} "
          f"cases matched, {summary['retired_total']} instructions "
          f"retired")
    for failure in summary["failures"]:
        print(f"  MISMATCH case {failure['case']} "
              f"(seed {failure['seed']}): "
              f"{', '.join(failure['mismatches'])}")
    return 0 if not summary["failures"] else 1


if __name__ == "__main__":
    sys.exit(main())
