"""Execute the Python code blocks in the docs — docs that drift fail.

Extracts every fenced ````` ```python ````` block from the given
markdown files (default: the README quickstart, ``docs/API.md`` and
``docs/ORACLE.md``)
and executes each one in a fresh namespace, with the working
directory pointed at a throwaway temp dir so examples may write
journals and artifacts freely.  Any exception fails the run with the
``file:line`` of the offending block, which is what keeps the prose
examples permanently in sync with the code.

A block can opt out by preceding its fence with an HTML comment
containing ``doccheck: skip`` (for fragments that are deliberately
not self-contained).  Non-Python fences (```bash`` etc.) are ignored.

Usage::

    python -m repro.tools.doccheck                # the default doc set
    python -m repro.tools.doccheck docs/FOO.md    # specific files
    python -m repro.tools.doccheck --list         # show blocks, don't run
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
import traceback
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence

_ROOT = Path(__file__).resolve().parents[3]

#: Files checked when none are given on the command line.
DEFAULT_DOCS = ("README.md", "docs/API.md", "docs/DEFENSES.md",
                "docs/ORACLE.md")

#: Comment text that exempts the following code block.
SKIP_MARKER = "doccheck: skip"


@dataclass
class CodeBlock:
    """One fenced Python block lifted out of a markdown file."""

    path: str
    #: 1-based line of the first code line (not the fence).
    lineno: int
    source: str
    skipped: bool = False

    @property
    def location(self) -> str:
        """``file:line`` anchor for error messages."""
        return f"{self.path}:{self.lineno}"


def extract_blocks(text: str, path: str) -> List[CodeBlock]:
    """All ```python fences in *text*, with skip markers honoured."""
    blocks: List[CodeBlock] = []
    lines = text.splitlines()
    in_block = False
    skip_next = False
    start = 0
    buffer: List[str] = []
    for number, line in enumerate(lines, start=1):
        stripped = line.strip()
        if not in_block:
            if stripped.startswith("```python"):
                in_block = True
                start = number + 1
                buffer = []
            elif stripped:
                skip_next = SKIP_MARKER in stripped
            continue
        if stripped == "```":
            blocks.append(CodeBlock(path=path, lineno=start,
                                    source="\n".join(buffer) + "\n",
                                    skipped=skip_next))
            in_block = False
            skip_next = False
        else:
            buffer.append(line)
    return blocks


def extract_file(path: Path, root: Path = _ROOT) -> List[CodeBlock]:
    """Blocks of one markdown file, with repo-relative labels."""
    try:
        label = str(path.resolve().relative_to(root))
    except ValueError:
        label = str(path)
    return extract_blocks(path.read_text(), label)


def run_block(block: CodeBlock, cwd: str) -> Optional[str]:
    """Execute one block; returns the formatted error, or ``None``."""
    namespace = {"__name__": "__doccheck__"}
    code = compile(block.source, block.location, "exec")
    previous = os.getcwd()
    try:
        os.chdir(cwd)
        exec(code, namespace)  # noqa: S102 - executing our own docs
    except Exception:
        return traceback.format_exc()
    finally:
        os.chdir(previous)
    return None


def check_paths(paths: Sequence[Path]) -> List[str]:
    """Run every runnable block in *paths*; returns failure lines."""
    failures: List[str] = []
    with tempfile.TemporaryDirectory(prefix="doccheck-") as tmp:
        for path in paths:
            for block in extract_file(path):
                if block.skipped:
                    print(f"  skip {block.location}")
                    continue
                print(f"  run  {block.location}")
                error = run_block(block, tmp)
                if error is not None:
                    failures.append(
                        f"{block.location} failed:\n{error}")
    return failures


def main(argv=None) -> int:
    """CLI entry point: run (or ``--list``) the blocks in *paths*."""
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*", type=Path,
                        help="markdown files to check (default: "
                             + ", ".join(DEFAULT_DOCS) + ")")
    parser.add_argument("--list", action="store_true",
                        help="list the blocks without running them")
    args = parser.parse_args(argv)

    paths = args.paths or [_ROOT / name for name in DEFAULT_DOCS]
    missing = [p for p in paths if not Path(p).exists()]
    if missing:
        for path in missing:
            print(f"no such file: {path}", file=sys.stderr)
        return 2

    if args.list:
        for path in paths:
            for block in extract_file(Path(path)):
                state = "skip" if block.skipped else "run"
                first = block.source.splitlines()[0] \
                    if block.source.strip() else "<empty>"
                print(f"{state:4} {block.location}  {first}")
        return 0

    failures = check_paths([Path(p) for p in paths])
    if failures:
        print(f"\n{len(failures)} doc block(s) failed:",
              file=sys.stderr)
        for failure in failures:
            print(failure, file=sys.stderr)
        return 1
    print("all doc blocks executed cleanly")
    return 0


if __name__ == "__main__":
    sys.exit(main())
