"""Developer tooling (API-surface snapshotting, etc.).

Nothing here is part of the simulated platform; these are scripts run
by CI and maintainers via ``python -m repro.tools.<name>``.
"""
