"""Export / check the public API surface.

The surface is everything promoted into ``repro.__all__`` (plus
``repro.config.__all__``, ``repro.harness.__all__``,
``repro.evaluation.__all__``, ``repro.memo.__all__`` and
``repro.batch.__all__``, the secondary entry points the docs commit
to), with enough shape
information to catch accidental breaks: the kind of each export and,
for callables, the full signature string.

Usage::

    python -m repro.tools.api_surface                # print to stdout
    python -m repro.tools.api_surface --update       # rewrite snapshot
    python -m repro.tools.api_surface --check        # diff vs snapshot

``--check`` exits non-zero on drift and prints a per-name diff; CI
runs it so any surface change must land together with a reviewed
snapshot update (``--update``) in the same commit.
"""

from __future__ import annotations

import argparse
import inspect
import json
import sys
from pathlib import Path
from typing import Any, Dict

#: The snapshot CI diffs against.
SNAPSHOT_PATH = (Path(__file__).resolve().parents[3]
                 / "tests" / "api" / "api_surface.json")

#: Modules whose ``__all__`` constitutes the public surface.
PUBLIC_MODULES = ("repro", "repro.config", "repro.harness",
                  "repro.evaluation", "repro.memo", "repro.batch",
                  "repro.service", "repro.oracle")


def _describe(obj: Any) -> Dict[str, str]:
    if inspect.isclass(obj):
        entry = {"kind": "class"}
        try:
            entry["signature"] = str(inspect.signature(obj))
        except (ValueError, TypeError):
            pass
        return entry
    if callable(obj):
        try:
            return {"kind": "function",
                    "signature": str(inspect.signature(obj))}
        except (ValueError, TypeError):
            return {"kind": "function"}
    return {"kind": type(obj).__name__}


def export_surface() -> Dict[str, Dict[str, Dict[str, str]]]:
    """The current surface: ``{module: {name: {kind, signature}}}``."""
    import importlib
    surface: Dict[str, Dict[str, Dict[str, str]]] = {}
    for module_name in PUBLIC_MODULES:
        module = importlib.import_module(module_name)
        names = {}
        for name in sorted(module.__all__):
            if name == "__version__":
                # The version string changes every release; pinning it
                # in the snapshot would make every bump look like drift.
                names[name] = {"kind": "str"}
                continue
            names[name] = _describe(getattr(module, name))
        surface[module_name] = names
    return surface


def diff_surface(expected: Dict, actual: Dict) -> list:
    """Human-readable drift lines ([] when surfaces match)."""
    lines = []
    for module in sorted(set(expected) | set(actual)):
        exp, act = expected.get(module), actual.get(module)
        if exp is None:
            lines.append(f"+ module {module} (not in snapshot)")
            continue
        if act is None:
            lines.append(f"- module {module} (removed)")
            continue
        for name in sorted(set(exp) | set(act)):
            if name not in act:
                lines.append(f"- {module}.{name} (removed)")
            elif name not in exp:
                lines.append(f"+ {module}.{name} (added)")
            elif exp[name] != act[name]:
                lines.append(f"! {module}.{name}: "
                             f"{exp[name]} -> {act[name]}")
    return lines


def main(argv=None) -> int:
    """CLI entry point: print, ``--update`` or ``--check`` the surface."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument("--check", action="store_true",
                      help="diff against the snapshot; exit 1 on drift")
    mode.add_argument("--update", action="store_true",
                      help="rewrite the snapshot from the live surface")
    parser.add_argument("--snapshot", type=Path, default=SNAPSHOT_PATH,
                        help="snapshot path (default: tests/api/"
                             "api_surface.json)")
    args = parser.parse_args(argv)

    actual = export_surface()
    payload = json.dumps(actual, indent=2, sort_keys=True) + "\n"

    if args.update:
        args.snapshot.parent.mkdir(parents=True, exist_ok=True)
        args.snapshot.write_text(payload)
        print(f"wrote {args.snapshot}")
        return 0
    if args.check:
        if not args.snapshot.exists():
            print(f"no snapshot at {args.snapshot}; run --update",
                  file=sys.stderr)
            return 1
        expected = json.loads(args.snapshot.read_text())
        drift = diff_surface(expected, actual)
        if drift:
            print("public API surface drifted from snapshot "
                  "(run `python -m repro.tools.api_surface --update` "
                  "and commit the diff):", file=sys.stderr)
            for line in drift:
                print(f"  {line}", file=sys.stderr)
            return 1
        print("public API surface matches snapshot")
        return 0
    print(payload, end="")
    return 0


if __name__ == "__main__":
    sys.exit(main())
