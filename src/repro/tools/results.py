"""Generate and drift-check the evaluation results docs.

Runs the full attack × defense matrix (:mod:`repro.evaluation`) plus
the key paper-claim checks — Fig. 10 port-contention separation, AES
key-recovery accuracy, replay counts per handle — from one fixed
master seed, and renders them into:

* ``docs/RESULTS.md`` — the human-readable verdict tables;
* ``docs/results.json`` — the machine-readable payload;
* ``docs/DEFENSES.md`` — per-defense sections (mechanism, knobs,
  paper citation, matrix column excerpt, runnable example);
* the marked block in ``README.md`` — the summary table alone.

Every artifact is a pure function of the committed code and the
master seed (no timestamps, sorted keys, rounded floats), so CI can
regenerate and byte-compare them exactly like
``tests/api/api_surface.json``:

Usage::

    python -m repro.tools.results                 # regenerate docs
    python -m repro.tools.results --check         # diff; exit 1 on drift
    python -m repro.tools.results --workers 4     # same bytes, faster
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.evaluation import (
    DEFAULT_MASTER_SEED,
    EvaluationMatrix,
    MatrixRunner,
)

_ROOT = Path(__file__).resolve().parents[3]

#: The committed artifacts CI diffs against.
RESULTS_MD_PATH = _ROOT / "docs" / "RESULTS.md"
RESULTS_JSON_PATH = _ROOT / "docs" / "results.json"
DEFENSES_MD_PATH = _ROOT / "docs" / "DEFENSES.md"
README_PATH = _ROOT / "README.md"

#: Markers delimiting the generated block inside README.md.
README_BEGIN = "<!-- BEGIN GENERATED: evaluation-matrix -->"
README_END = "<!-- END GENERATED: evaluation-matrix -->"

#: Payload schema version (bump on incompatible shape changes).
RESULTS_VERSION = 1

#: Fixed inputs of the AES key-recovery claim (FIPS-197 test key).
AES_KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
AES_PLAINTEXTS = (b"sixteen byte msg", b"another message!")

#: Replay counts exercised by the per-handle replay claim.
REPLAY_COUNTS = (1, 5, 10)


def run_matrix(*, workers: Optional[int] = None,
               attacks: Sequence[str] = (),
               defenses: Sequence[str] = (),
               overrides: Optional[Mapping[str, Mapping]] = None,
               journal: Any = None,
               store: Any = None) -> EvaluationMatrix:
    """Run the (possibly restricted) matrix at the published seed.

    *store* (a path or :class:`~repro.memo.store.TrialStore`) serves
    already-computed cells from the content-addressed cache; the
    rendered artifacts are byte-identical either way.
    """
    return MatrixRunner(
        attacks=attacks, defenses=defenses,
        overrides=dict(overrides or {}),
        master_seed=DEFAULT_MASTER_SEED,
        workers=workers, journal=journal, store=store).run()


# --- paper-claim checks --------------------------------------------------

def check_fig10_separation(matrix: EvaluationMatrix
                           ) -> Dict[str, Any]:
    """Fig. 10: the div side's above-threshold count separates from
    the mul side's, and the attacker calls both panels right."""
    claim = {
        "name": "fig10-port-contention-separation",
        "paper": "Fig. 10 / §6.1",
        "statement": "Port-contention above-threshold counts "
                     "separate the div side from the mul side in a "
                     "single victim run.",
    }
    cell = matrix.cells.get(("port-contention", "none"))
    if cell is None or cell.metrics.accuracy is None:
        claim.update(passed=None,
                     detail={"reason": "port-contention none-cell "
                                       "not in this matrix"})
        return claim
    detail = cell.metrics.detail
    above_mul = detail["0"]["above_threshold"]
    above_div = detail["1"]["above_threshold"]
    claim.update(
        passed=bool(above_div > above_mul
                    and cell.metrics.accuracy == 1.0),
        detail={"above_threshold_mul": above_mul,
                "above_threshold_div": above_div,
                "accuracy": cell.metrics.accuracy})
    return claim


def check_aes_key_recovery() -> Dict[str, Any]:
    """§4.4 / Fig. 11: round-1 attribution recovers key material with
    every recovered nibble correct."""
    from repro.core.attacks.aes_key_recovery import AESKeyRecoveryAttack
    from repro.crypto.aes import encrypt_block
    ciphertexts = [encrypt_block(AES_KEY, p) for p in AES_PLAINTEXTS]
    result = AESKeyRecoveryAttack(AES_KEY).run(ciphertexts)
    return {
        "name": "aes-key-recovery",
        "paper": "§4.4 / Fig. 11",
        "statement": "Single-run AES round-1 attribution recovers "
                     "key nibbles with no wrong guesses.",
        "passed": bool(result.all_correct
                       and result.bytes_recovered == 16),
        "detail": {"blocks": len(ciphertexts),
                   "bytes_recovered": result.bytes_recovered,
                   "bits_recovered": result.bits_recovered,
                   "all_correct": result.all_correct},
    }


def check_replay_counts() -> Dict[str, Any]:
    """§4.1.4: the Replayer delivers exactly the requested number of
    replays per handle before releasing."""
    from repro.core.recipes import replay_n_times
    from repro.core.replayer import AttackEnvironment, Replayer
    from repro.victims.control_flow import setup_control_flow_victim
    observed: Dict[str, int] = {}
    for n in REPLAY_COUNTS:
        rep = Replayer(AttackEnvironment.build())
        victim_proc = rep.create_victim_process()
        victim = setup_control_flow_victim(victim_proc, secret=1)
        recipe = rep.module.provide_replay_handle(
            victim_proc, victim.handle_va + 0x20,
            attack_function=replay_n_times(n))
        rep.launch_victim(victim_proc, victim.program)
        rep.arm(recipe)
        rep.run_until_victim_done(context_id=0, max_cycles=5_000_000)
        observed[str(n)] = recipe.replays
    return {
        "name": "replay-counts-per-handle",
        "paper": "§4.1.4",
        "statement": "Each armed handle replays exactly as many "
                     "times as the attack function requests.",
        "passed": all(observed[str(n)] == n for n in REPLAY_COUNTS),
        "detail": {"requested_vs_observed": observed},
    }


def run_claims(matrix: EvaluationMatrix) -> List[Dict[str, Any]]:
    """All paper-claim checks, in canonical order."""
    return [check_fig10_separation(matrix),
            check_aes_key_recovery(),
            check_replay_counts()]


# --- rendering -----------------------------------------------------------

def build_payload(matrix: EvaluationMatrix,
                  claims: Sequence[Dict[str, Any]]
                  ) -> Dict[str, Any]:
    """The machine-readable results (``docs/results.json``)."""
    return {
        "claims": list(claims),
        "master_seed": matrix.master_seed,
        "matrix": matrix.to_dict(),
        "version": RESULTS_VERSION,
    }


def _claims_markdown(claims: Sequence[Dict[str, Any]]) -> str:
    lines = ["| claim | paper | status | evidence |",
             "|---|---|---|---|"]
    for claim in claims:
        if claim["passed"] is None:
            status = "skipped"
        else:
            status = "pass" if claim["passed"] else "FAIL"
        evidence = ", ".join(f"{k}={v}" for k, v in
                             sorted(claim["detail"].items()))
        lines.append(f"| {claim['name']} | {claim['paper']} "
                     f"| {status} | {evidence} |")
    return "\n".join(lines)


def render_results_md(matrix: EvaluationMatrix,
                      claims: Sequence[Dict[str, Any]]) -> str:
    """The full ``docs/RESULTS.md`` document."""
    return f"""# Results (generated)

<!-- Generated by `python -m repro.tools.results`; do not edit by
     hand.  CI regenerates this file from master seed
     {matrix.master_seed} and fails on any byte of drift. -->

Every cell below is one seed-reproducible experiment: the named
attack run against the named defense configuration through
`repro.evaluation.MatrixRunner` (label `{matrix.label}`, master seed
`{matrix.master_seed}`; cell *i* runs with
`derive_seed({matrix.master_seed}, i, "{matrix.label}")`).  Verdicts
(`defeated` / `degraded` / `unaffected`) come from
`repro.evaluation.classify_cell`: a cell is *defeated* when leak
accuracy falls within ε = 0.1 of blind guessing, *degraded* when it
still leaks but measurably worse than the undefended baseline (or
the defense's detector fired), and *unaffected* otherwise.  See
`docs/DEFENSES.md` for what each column models.

## Attack × defense matrix

{matrix.summary_markdown()}

The reproduction of the paper's §8 argument is visible along two
axes: the victim-transform defenses (`tsgx`, `pf-oblivious`) defeat
the page-granular controlled-channel *baseline* but leave the
MicroScope rows standing, and the budgeted defenses (`dejavu`,
`tsgx`) only bite attacks that need many replay windows — the
few-replay attacks slip underneath, and interrupt-based replay
(§7.1) needs no page faults at all.

## Cell details

{matrix.detail_markdown()}

## Paper-claim checks

{_claims_markdown(claims)}

## Reproducing

```bash
PYTHONPATH=src python -m repro.tools.results            # regenerate
PYTHONPATH=src python -m repro.tools.results --check    # verify
python examples/evaluation_matrix.py                    # small demo
```

The machine-readable form of everything above is
[`docs/results.json`](results.json).
"""


def _defense_section(matrix: EvaluationMatrix, name: str) -> str:
    """One generated ``docs/DEFENSES.md`` section."""
    from repro.evaluation.defenses import get_defense
    spec = get_defense(name)
    parts = [f"## `{name}`", "", spec.summary, "",
             f"*Paper:* {spec.paper_ref}"]
    if spec.mechanism:
        parts += ["", spec.mechanism]
    levers = []
    if spec.machine is not None and spec.machine.defense is not None:
        levers.append(
            "machine mechanism "
            f"`{spec.machine.defense.scheme}` "
            "(installed via `MachineConfig.defense`)")
    elif spec.machine is not None:
        levers.append("machine knobs (see below)")
    if spec.replay_budget is not None:
        levers.append(f"replay budget {spec.replay_budget}")
    if spec.victim_transform:
        levers.append(f"victim transform `{spec.victim_transform}`")
    if spec.detects:
        levers.append("detection (cells over budget are flagged)")
    if levers:
        parts += ["", "*Levers:* " + "; ".join(levers) + "."]
    if spec.knobs:
        parts += ["", "| knob | meaning |", "|---|---|"]
        parts += [f"| `{knob}` | {meaning} |"
                  for knob, meaning in spec.knobs]
    if name in matrix.defenses:
        parts += ["", f"Matrix column (master seed "
                      f"{matrix.master_seed}):", "",
                  "| attack | verdict |", "|---|---|"]
        for attack in matrix.attacks:
            cell = matrix.cells[(attack, name)]
            acc = "—" if cell.metrics.accuracy is None \
                else f"{cell.metrics.accuracy:.2f}"
            parts.append(f"| {attack} "
                         f"| {cell.classification} ({acc}) |")
    for note in spec.notes:
        parts += ["", f"> {note}"]
    if spec.example:
        parts += ["", "```python", spec.example.rstrip("\n"), "```"]
    return "\n".join(parts)


def render_defenses_md(matrix: EvaluationMatrix) -> str:
    """The full generated ``docs/DEFENSES.md`` document."""
    from repro.evaluation.defenses import defense_names
    sections = "\n\n".join(_defense_section(matrix, name)
                           for name in defense_names())
    return f"""# Defenses (generated)

<!-- Generated by `python -m repro.tools.results`; do not edit by
     hand.  CI regenerates this file from master seed
     {matrix.master_seed} and fails on any byte of drift. -->

Every matrix column in [`RESULTS.md`](RESULTS.md) is one
`repro.evaluation.defenses.DefenseSpec`: a §8 countermeasure (or a
follow-on defense from the replay-attack literature) reduced to
mechanism-level levers — a machine configuration, a replay budget, a
victim transform, a detector, or a machine-level
`DefenseMechanism` installed through `MachineConfig.defense` and the
core's hook layer (`squash_hooks`, `retire_hooks`, `issue_gates`; see
[`ARCHITECTURE.md`](ARCHITECTURE.md)).  Because every attack runner
passes `machine=defense.machine` through unchanged, a new mechanism
reaches all seven attack rows with zero attack-side code.

The python examples below are executed by
`python -m repro.tools.doccheck` on every CI run.

{sections}

## Reading the matrix

A cell's verdict comes from `repro.evaluation.classify_cell`:

* **defeated** — leak accuracy within ε = 0.1 of blind guessing (or
  the cell errored: an attack that cannot run does not leak);
* **degraded** — still leaking, but measurably below the undefended
  baseline, or the defense's detector fired;
* **unaffected** — accuracy within ε of the baseline and no
  detection.

The baseline for each row is its `none` cell, so the verdicts are
per-attack, not absolute: `pf-oblivious` *defeats* the
controlled-channel baseline yet leaves every MicroScope row
`unaffected` — the paper's §8 argument in one table row.

## Regenerating

```bash
PYTHONPATH=src python -m repro.tools.results            # rewrite
PYTHONPATH=src python -m repro.tools.results --check    # CI drift gate
```
"""


def readme_block(matrix: EvaluationMatrix) -> str:
    """The generated summary block embedded in README.md (markers
    included)."""
    return (f"{README_BEGIN}\n"
            f"{matrix.summary_markdown()}\n\n"
            "*Generated by `python -m repro.tools.results` from "
            f"master seed {matrix.master_seed}; see "
            "[`docs/RESULTS.md`](docs/RESULTS.md) for cell details "
            "and paper-claim checks.*\n"
            f"{README_END}")


def apply_readme_block(readme_text: str, block: str) -> str:
    """Replace the marked block inside *readme_text* with *block*."""
    begin = readme_text.index(README_BEGIN)
    end = readme_text.index(README_END) + len(README_END)
    return readme_text[:begin] + block + readme_text[end:]


def extract_readme_block(readme_text: str) -> str:
    """The current marked block (markers included)."""
    begin = readme_text.index(README_BEGIN)
    end = readme_text.index(README_END) + len(README_END)
    return readme_text[begin:end]


# --- generation + drift check --------------------------------------------

def generate(*, workers: Optional[int] = None, store: Any = None
             ) -> Tuple[EvaluationMatrix, List[Dict[str, Any]],
                        str, str]:
    """Run the full matrix + claims; returns
    ``(matrix, claims, results_md, results_json_text)``."""
    matrix = run_matrix(workers=workers, store=store)
    claims = run_claims(matrix)
    payload = build_payload(matrix, claims)
    results_json = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    results_md = render_results_md(matrix, claims)
    return matrix, claims, results_md, results_json


def main(argv=None) -> int:
    """CLI entry point: write, ``--update`` or ``--check`` the artifacts."""
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0])
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument("--check", action="store_true",
                      help="regenerate and diff against the "
                           "committed artifacts; exit 1 on drift")
    mode.add_argument("--update", action="store_true",
                      help="rewrite the artifacts (the default)")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes for the matrix sweep "
                             "(results are bit-identical for any "
                             "count)")
    parser.add_argument("--cache-dir", default=None,
                        help="content-addressed trial cache for the "
                             "matrix cells (results are "
                             "bit-identical with or without it)")
    args = parser.parse_args(argv)

    matrix, claims, results_md, results_json = generate(
        workers=args.workers, store=args.cache_dir)
    block = readme_block(matrix)
    defenses_md = render_defenses_md(matrix)

    if args.check:
        stale = []
        if not RESULTS_MD_PATH.exists() \
                or RESULTS_MD_PATH.read_text() != results_md:
            stale.append(str(RESULTS_MD_PATH))
        if not RESULTS_JSON_PATH.exists() \
                or RESULTS_JSON_PATH.read_text() != results_json:
            stale.append(str(RESULTS_JSON_PATH))
        if not DEFENSES_MD_PATH.exists() \
                or DEFENSES_MD_PATH.read_text() != defenses_md:
            stale.append(str(DEFENSES_MD_PATH))
        readme = README_PATH.read_text()
        if README_BEGIN not in readme \
                or extract_readme_block(readme) != block:
            stale.append(f"{README_PATH} (generated block)")
        if stale:
            print("results docs drifted from the committed "
                  "artifacts (run `python -m repro.tools.results` "
                  "and commit the diff):", file=sys.stderr)
            for path in stale:
                print(f"  {path}", file=sys.stderr)
            return 1
        print("results docs match the generated artifacts")
        return 0

    RESULTS_MD_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_MD_PATH.write_text(results_md)
    RESULTS_JSON_PATH.write_text(results_json)
    DEFENSES_MD_PATH.write_text(defenses_md)
    readme = README_PATH.read_text()
    README_PATH.write_text(apply_readme_block(readme, block))
    failed = [c["name"] for c in claims if c["passed"] is False]
    print(f"wrote {RESULTS_MD_PATH}")
    print(f"wrote {RESULTS_JSON_PATH}")
    print(f"wrote {DEFENSES_MD_PATH}")
    print(f"updated generated block in {README_PATH}")
    if failed:
        print(f"WARNING: failed claims: {', '.join(failed)}",
              file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
