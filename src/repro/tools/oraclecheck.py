"""Cross-validate the taint oracle against the statistical verdicts.

The evaluation matrix (``docs/RESULTS.md``) decides "does this defense
work" *statistically*: per-cell accuracy against chance.  The taint
oracle (:mod:`repro.oracle`) decides the same question as an
*information-flow property*: did any secret-dependent state reach an
observable?  This tool runs both over the same cells and enforces the
direction in which they must agree:

* **consistency** — a cell whose oracle verdict is ``clean`` must not
  leak statistically (``accuracy - chance > EPSILON``).  A clean
  oracle over a leaking cell means the instrumentation missed a flow
  — the bug this tool exists to catch.  (The converse is fine: the
  oracle over-approximates, so ``leaks`` with at-chance accuracy just
  means the attacker failed to *decode* a real exposure.)
* **soundness control** — the same matrix re-run with secret seeding
  disabled (``OracleConfig(seed_secrets=False)``) must raise **zero**
  events in every cell: no taint source, no leak, whatever the
  machinery does.

Exit status 0 when both hold; 1 otherwise.  ``--json`` emits the full
payload for CI artifacts::

    python -m repro.tools.oraclecheck --attacks cf-cache secret-id
    python -m repro oracle            # same thing, demo spelling
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional, Sequence

#: Master seed / label of the published matrix — oraclecheck verdicts
#: must describe the same cells the results doc shows.
DEFAULT_MASTER_SEED = 2019
DEFAULT_LABEL = "evaluation-matrix"


def _runner(attacks: Sequence[str], defenses: Sequence[str],
            overrides: Dict[str, Dict[str, Any]], oracle: Any,
            workers: Optional[int], store: Any):
    from repro.evaluation.matrix import MatrixRunner
    return MatrixRunner(
        attacks=tuple(attacks), defenses=tuple(defenses),
        overrides=overrides, master_seed=DEFAULT_MASTER_SEED,
        label=DEFAULT_LABEL, workers=workers, store=store,
        oracle=oracle)


def run_check(attacks: Sequence[str] = (),
              defenses: Sequence[str] = (), *,
              samples: int = 600,
              workers: Optional[int] = None,
              store: Any = None) -> Dict[str, Any]:
    """Run both legs and cross-check; returns the JSON-ready payload.

    *samples* tunes the port-contention cells (the slowest rows) the
    same way ``python -m repro matrix`` does; accuracy thresholds are
    unaffected because EPSILON-scale leaks survive smaller samples.
    """
    from repro.evaluation.classify import EPSILON
    from repro.oracle import OracleConfig
    overrides = {"port-contention":
                 {"measurements": samples,
                  "calibrate_samples": max(200, samples // 2)}}

    matrix = _runner(attacks, defenses, overrides, True,
                     workers, store).run()
    control = _runner(attacks, defenses, overrides,
                      OracleConfig(seed_secrets=False),
                      workers, store).run()

    cells: List[Dict[str, Any]] = []
    inconsistent: List[str] = []
    control_events: List[str] = []
    for (attack, defense) in sorted(matrix.cells):
        cell = matrix.cell(attack, defense)
        summary = cell.metrics.detail.get("oracle") or {}
        ctl = control.cell(attack, defense).metrics.detail \
            .get("oracle") or {}
        name = f"{attack}/{defense}"
        margin = cell.metrics.leak_margin
        skipped = cell.metrics.error is not None
        bad = (not skipped and summary.get("verdict") == "clean"
               and margin is not None and margin > EPSILON)
        record = {
            "cell": name,
            "classification": cell.classification,
            "consistent": not bad,
            "control_events": ctl.get("events", 0),
            "error": cell.metrics.error,
            "leak_margin": None if margin is None
            else round(margin, 6),
            "oracle_events": summary.get("events", 0),
            "verdict": summary.get("verdict"),
        }
        cells.append(record)
        if bad:
            inconsistent.append(name)
        if record["control_events"]:
            control_events.append(name)
    return {
        "attacks": list(matrix.attacks),
        "cells": cells,
        "control_event_cells": control_events,
        "defenses": list(matrix.defenses),
        "epsilon": EPSILON,
        "inconsistent": inconsistent,
        "label": DEFAULT_LABEL,
        "master_seed": DEFAULT_MASTER_SEED,
        "ok": not inconsistent and not control_events,
    }


def _table(payload: Dict[str, Any]) -> str:
    header = (f"{'cell':<28} {'class':<11} {'oracle':<7} "
              f"{'events':>7} {'margin':>8} {'ctl':>4}  status")
    lines = [header, "-" * len(header)]
    for cell in payload["cells"]:
        margin = "—" if cell["leak_margin"] is None \
            else f"{cell['leak_margin']:+.3f}"
        if cell["error"] is not None:
            status = "skipped (error)"
        elif not cell["consistent"]:
            status = "INCONSISTENT"
        elif cell["control_events"]:
            status = "CONTROL-EVENTS"
        else:
            status = "ok"
        lines.append(
            f"{cell['cell']:<28} {cell['classification']:<11} "
            f"{cell['verdict'] or '—':<7} {cell['oracle_events']:>7} "
            f"{margin:>8} {cell['control_events']:>4}  {status}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point (``python -m repro.tools.oraclecheck``)."""
    parser = argparse.ArgumentParser(
        description="cross-validate taint-oracle verdicts against "
                    "the statistical matrix verdicts")
    parser.add_argument("--attacks", nargs="*", default=None,
                        help="rows to check (default: all)")
    parser.add_argument("--defenses", nargs="*", default=None,
                        help="columns to check (default: all)")
    parser.add_argument("--samples", type=int, default=600,
                        help="port-contention Monitor samples")
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument("--cache-dir", default=None,
                        help="content-addressed trial cache directory "
                             "(default: $REPRO_CACHE_DIR, else off)")
    parser.add_argument("--json", action="store_true",
                        help="emit the full payload as JSON")
    args = parser.parse_args(argv)
    from repro.memo import resolve_store
    store = resolve_store(args.cache_dir)
    payload = run_check(tuple(args.attacks or ()),
                        tuple(args.defenses or ()),
                        samples=args.samples, workers=args.workers,
                        store=store)
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(_table(payload))
        print()
        print(f"inconsistent cells: {len(payload['inconsistent'])}; "
              f"cells with secret-free control events: "
              f"{len(payload['control_event_cells'])}")
    return 0 if payload["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
