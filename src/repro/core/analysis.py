"""Denoising and analysis of replay-gathered measurements.

MicroScope's power is statistical: each replay yields one noisy sample,
and replaying until a confidence threshold is met turns an unreliable
channel into a reliable one (§4.1.4, §5.2.1).  This module provides

* threshold derivation from calibration samples (the paper sets its
  contention threshold "slightly less than 120 cycles" from the
  mul-side distribution — Fig. 10a),
* sequential confidence tracking that tells the Replayer when to stop,
* cache-probe classification for the Prime+Probe configuration, and
* AES key-material recovery from extracted table lines.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence



# --- latency thresholding ----------------------------------------------------

def percentile(samples: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]) without numpy."""
    if not samples:
        raise ValueError("no samples")
    if not 0 <= q <= 100:
        raise ValueError("percentile out of range")
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1,
                      math.ceil(q / 100.0 * len(ordered)) - 1))
    return ordered[rank]


def derive_threshold(calibration: Sequence[float], margin: float = 2.0,
                     q: float = 99.5) -> float:
    """Derive a contention threshold from a quiet-case calibration run:
    just above (almost) everything seen without contention."""
    return percentile(calibration, q) + margin


def count_above(samples: Iterable[float], threshold: float) -> int:
    return sum(1 for s in samples if s > threshold)


@dataclass
class ContentionSummary:
    """Summary of one monitor trace against a threshold."""

    samples: int
    above: int
    threshold: float

    @property
    def rate(self) -> float:
        return self.above / self.samples if self.samples else 0.0


def summarize(samples: Sequence[float],
              threshold: float) -> ContentionSummary:
    return ContentionSummary(len(samples), count_above(samples, threshold),
                             threshold)


# --- sequential confidence ---------------------------------------------------

@dataclass
class ConfidenceTracker:
    """Sequential probability-ratio test between two Bernoulli rates.

    The Replayer models "victim ran the divide side" as above-threshold
    samples arriving at ``rate_h1`` and "mul side" as ``rate_h0``, and
    keeps replaying until the log-likelihood ratio clears the recipe's
    confidence bound (§5.2.1's confidence threshold).
    """

    rate_h0: float = 0.002
    rate_h1: float = 0.02
    confidence: float = 0.999
    _llr: float = field(default=0.0, init=False)
    _observations: int = field(default=0, init=False)

    def __post_init__(self):
        if not 0 < self.rate_h0 < self.rate_h1 < 1:
            raise ValueError("need 0 < rate_h0 < rate_h1 < 1")
        if not 0.5 < self.confidence < 1:
            raise ValueError("confidence must be in (0.5, 1)")

    @property
    def bound(self) -> float:
        return math.log(self.confidence / (1 - self.confidence))

    def observe(self, above_threshold: bool):
        """Feed one monitor sample's classification."""
        if above_threshold:
            self._llr += math.log(self.rate_h1 / self.rate_h0)
        else:
            self._llr += math.log((1 - self.rate_h1) / (1 - self.rate_h0))
        self._observations += 1

    def observe_many(self, flags: Iterable[bool]):
        for flag in flags:
            self.observe(flag)

    @property
    def observations(self) -> int:
        return self._observations

    @property
    def decided(self) -> bool:
        return abs(self._llr) >= self.bound

    @property
    def verdict(self) -> Optional[bool]:
        """True = H1 (contention present), False = H0, None = undecided."""
        if self._llr >= self.bound:
            return True
        if self._llr <= -self.bound:
            return False
        return None


# --- cache probe classification ---------------------------------------------

def classify_hits(latencies: Sequence[int], hit_threshold: int
                  ) -> List[int]:
    """Indices whose probe latency indicates a near-core hit."""
    return [i for i, lat in enumerate(latencies) if lat <= hit_threshold]


def majority_lines(replay_hits: Sequence[Iterable[int]],
                   quorum: Optional[int] = None) -> List[int]:
    """Combine per-replay hit sets: lines seen in at least *quorum*
    replays (default: majority) are accepted — the denoising step."""
    counts: Dict[int, int] = {}
    total = 0
    for hits in replay_hits:
        total += 1
        for line in set(hits):
            counts[line] = counts.get(line, 0) + 1
    if total == 0:
        return []
    needed = quorum if quorum is not None else total // 2 + 1
    return sorted(line for line, n in counts.items() if n >= needed)


# --- AES key recovery ---------------------------------------------------------

#: For middle round 1: (statement, table) -> index of the ciphertext /
#: round-key byte involved.  Statement *s*, table *t* reads byte
#: position *t* of state word ``(s - t) mod 4`` (the Fig. 8a pattern),
#: and byte position *t* of word *w* is ciphertext byte ``4w + t``.
def round1_byte_index(statement: int, table: int) -> int:
    if not 0 <= statement < 4 or not 0 <= table < 4:
        raise ValueError("statement and table must be 0..3")
    word = (statement - table) % 4
    return 4 * word + table


@dataclass
class LineObservation:
    """One extracted fact: in round 1, *statement* read *table* on
    cache *line* while decrypting *ciphertext*."""

    ciphertext: bytes
    statement: int
    table: int
    line: int


def recover_high_nibbles(observations: Sequence[LineObservation]
                         ) -> Dict[int, int]:
    """First-round attack at cache-line granularity.

    The round-1 index is ``ct_byte ^ k_byte`` and a 64-byte line covers
    16 consecutive entries, so the observed line equals the XOR of the
    *high nibbles*: ``line = (ct_byte >> 4) ^ (k_byte >> 4)``.  Each
    observation therefore pins the high nibble of one key byte; multiple
    blocks must agree (a consistency check against extraction errors).

    Returns ``{key_byte_index: high_nibble}``.
    """
    nibbles: Dict[int, int] = {}
    for obs in observations:
        byte_index = round1_byte_index(obs.statement, obs.table)
        ct_byte = obs.ciphertext[byte_index]
        candidate = (ct_byte >> 4) ^ obs.line
        if byte_index in nibbles and nibbles[byte_index] != candidate:
            raise ValueError(
                f"inconsistent observations for key byte {byte_index}: "
                f"{nibbles[byte_index]:#x} vs {candidate:#x}")
        nibbles[byte_index] = candidate
    return nibbles


@dataclass
class IndexObservation:
    """Entry-granularity observation (e.g. MicroScope denoising a
    sub-line channel like MemJam [39]): exact table index."""

    ciphertext: bytes
    statement: int
    table: int
    index: int


def recover_round_key(observations: Sequence[IndexObservation]
                      ) -> Dict[int, int]:
    """At entry granularity the round-1 index reveals the full key
    byte: ``k_byte = ct_byte ^ index``."""
    key_bytes: Dict[int, int] = {}
    for obs in observations:
        byte_index = round1_byte_index(obs.statement, obs.table)
        candidate = obs.ciphertext[byte_index] ^ obs.index
        if byte_index in key_bytes and key_bytes[byte_index] != candidate:
            raise ValueError(
                f"inconsistent observations for key byte {byte_index}")
        key_bytes[byte_index] = candidate
    return key_bytes


def assemble_round_key(key_bytes: Dict[int, int]) -> bytes:
    """Build the 16-byte round key; raises if any byte is missing."""
    missing = [i for i in range(16) if i not in key_bytes]
    if missing:
        raise ValueError(f"missing key bytes: {missing}")
    return bytes(key_bytes[i] for i in range(16))
