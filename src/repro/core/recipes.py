"""Attack Recipes (§5.2.1).

An :class:`AttackRecipe` bundles everything the MicroScope module needs
for one microarchitectural replay attack: the replay handle, the
optional pivot, addresses to monitor for cache-based side channels, a
confidence threshold, and the attack functions invoked from the fault
trampoline.  "This modular design allows an attacker to use a variety
of approaches to perform an attack, and to dynamically change the
attack recipe depending on the victim behavior."
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.kernel.process import Process
from repro.vm.faults import PageFault


class WalkLocation(enum.Enum):
    """Where page-table entries sit when the walker needs them —
    the §4.1.2 page-walk-duration tuning knob."""

    PWC = "pwc"      # upper levels hit the page-walk cache
    L1 = "l1"
    L2 = "l2"
    L3 = "l3"
    DRAM = "dram"


@dataclass(frozen=True)
class WalkTuning:
    """Placement of the translation path for the next walk.

    ``upper`` covers PGD/PUD/PMD, ``leaf`` the PTE.  Short walks
    (``PWC``/``L1``) give small speculation windows for single-stepping
    (§4.4); long walks (``DRAM``) give windows bounded only by the ROB.
    """

    upper: WalkLocation = WalkLocation.PWC
    leaf: WalkLocation = WalkLocation.DRAM

    def __post_init__(self):
        if self.leaf is WalkLocation.PWC:
            raise ValueError("the leaf PTE is never cached in the PWC")


class ReplayAction(enum.Enum):
    """What the attack function tells the module to do with a fault."""

    REPLAY = "replay"      # keep the present bit clear: another replay
    RELEASE = "release"    # set the present bit: forward progress
    PIVOT = "pivot"        # release the handle, arm the pivot (§4.2.2)
    HALT = "halt"          # stop the victim entirely


@dataclass
class ReplayDecision:
    action: ReplayAction
    #: Extra simulated cycles the module spends (probing, priming...).
    extra_cost: int = 0


@dataclass
class ReplayEvent:
    """Context handed to attack functions on every trampoline entry."""

    recipe: "AttackRecipe"
    context: object          # HardwareContext
    fault: PageFault
    replay_no: int           # 1-based count of handle faults so far
    is_pivot_fault: bool


#: An attack function: inspects the event (and typically probes or
#: reads monitor state through the module) and decides what next.
AttackFunction = Callable[[ReplayEvent], ReplayDecision]


def replay_n_times(n: int) -> AttackFunction:
    """The simplest §4.1.4 strategy: unconditionally replay *n* times,
    then release."""

    def attack_fn(event: ReplayEvent) -> ReplayDecision:
        if event.replay_no >= n:
            return ReplayDecision(ReplayAction.RELEASE)
        return ReplayDecision(ReplayAction.REPLAY)

    return attack_fn


@dataclass
class AttackRecipe:
    """All state the module keeps for one attack (§5.2.1)."""

    name: str
    process: Process
    replay_handle_va: int
    pivot_va: Optional[int] = None
    monitor_addrs: List[int] = field(default_factory=list)
    #: Stop-condition confidence used by ConfidenceTracker-based
    #: attack functions.
    confidence: float = 0.999
    max_replays: int = 1000
    walk_tuning: WalkTuning = field(default_factory=WalkTuning)
    #: Flush the monitored lines before every replay (re-prime; §4.1.4
    #: step 5).
    prime_monitor_addrs: bool = False
    attack_function: Optional[AttackFunction] = None
    #: Invoked on pivot faults; None selects the default §4.2.2 swap.
    pivot_function: Optional[AttackFunction] = None

    # --- mutable attack-progress state ---------------------------------
    replays: int = 0
    pivot_faults: int = 0
    released: bool = False
    #: Per-replay probe results appended by attack functions.
    probe_log: List[object] = field(default_factory=list)

    def __post_init__(self):
        if self.pivot_va is not None:
            from repro.vm import address as vaddr
            if vaddr.same_page(self.pivot_va, self.replay_handle_va):
                raise ValueError(
                    "pivot must live on a different page than the replay "
                    "handle (§4.2.2)")

    # --- snapshot support -------------------------------------------------

    def capture(self) -> tuple:
        """Clone mutable recipe state.  ``pivot_va`` and
        ``monitor_addrs`` are included because the Table-2 interface
        mutates them after construction."""
        return (self.pivot_va, list(self.monitor_addrs), self.replays,
                self.pivot_faults, self.released, list(self.probe_log))

    def restore(self, state: tuple):
        (self.pivot_va, monitor_addrs, self.replays, self.pivot_faults,
         self.released, probe_log) = state
        self.monitor_addrs = list(monitor_addrs)
        self.probe_log = list(probe_log)

    def decide(self, event: ReplayEvent) -> ReplayDecision:
        if event.is_pivot_fault and self.pivot_function is not None:
            return self.pivot_function(event)
        if not event.is_pivot_fault and self.attack_function is not None:
            return self.attack_function(event)
        # Defaults: handle faults replay up to max_replays; pivot
        # faults perform the standard swap back to the handle.
        if event.is_pivot_fault:
            return ReplayDecision(ReplayAction.PIVOT)
        if event.replay_no >= self.max_replays:
            return ReplayDecision(ReplayAction.RELEASE)
        return ReplayDecision(ReplayAction.REPLAY)
