"""Replay-handle discovery (§4.1.1).

"A replay handle can be any memory access instruction that occurs
shortly before a sensitive instruction in program order, and that
satisfies two conditions.  First, it accesses data from a different
page than the sensitive instruction.  Second, the sensitive instruction
is not data dependent on the replay handle."

This module finds such instructions by static analysis of a victim
program: a backward def-use scan establishes (in)dependence, and an
optional address map (the OS knows the victim's layout) establishes
page-distinctness.  It also powers the §8 observation that
PF-obliviousness *adds* replay handles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.isa.instructions import Instruction
from repro.isa.program import Program
from repro.vm import address as vaddr


@dataclass(frozen=True)
class HandleCandidate:
    """One viable replay handle for a given sensitive instruction."""

    index: int              # instruction index of the handle
    distance: int           # instructions between handle and target
    instruction: Instruction

    def __str__(self) -> str:
        return f"[{self.index}] {self.instruction} (distance {self.distance})"


def _dependents_of(program: Program, start: int, end: int) -> Set[int]:
    """Indices in ``(start, end]`` transitively data-dependent on the
    instruction at *start* (straight-line approximation: follows
    register def-use chains in program order)."""
    tainted_regs: Set[str] = set()
    dest = program[start].dest()
    if dest is not None:
        tainted_regs.add(dest)
    dependent: Set[int] = set()
    for i in range(start + 1, end + 1):
        instr = program[i]
        if any(src in tainted_regs for src in instr.sources()):
            dependent.add(i)
            d = instr.dest()
            if d is not None:
                tainted_regs.add(d)
        else:
            d = instr.dest()
            if d is not None:
                tainted_regs.discard(d)
    return dependent


def find_replay_handles(program: Program, sensitive_index: int,
                        window: int = 64,
                        address_of: Optional[Dict[int, int]] = None
                        ) -> List[HandleCandidate]:
    """Enumerate replay-handle candidates for *sensitive_index*.

    *window* bounds how far before the sensitive instruction to look
    (a handle must be close enough that the ROB can hold both).
    *address_of* optionally maps instruction index -> accessed VA so
    the different-page condition can be checked; without it, loads
    whose page relationship is unknown are still reported (the caller
    resolves pages at arm time).
    """
    if not 0 <= sensitive_index < len(program):
        raise ValueError("sensitive_index outside program")
    candidates: List[HandleCandidate] = []
    start = max(0, sensitive_index - window)
    for i in range(start, sensitive_index):
        instr = program[i]
        if not instr.is_memory:
            continue
        if sensitive_index in _dependents_of(program, i, sensitive_index):
            continue  # condition 2: no data dependence
        if address_of is not None and i in address_of \
                and sensitive_index in address_of:
            if vaddr.same_page(address_of[i],
                               address_of[sensitive_index]):
                continue  # condition 1: different pages
        candidates.append(HandleCandidate(
            index=i, distance=sensitive_index - i, instruction=instr))
    return candidates


def count_memory_instructions(program: Program) -> int:
    """Total loads+stores — the upper bound on handle opportunities
    (used by the PF-obliviousness ablation)."""
    return sum(1 for instr in program.instructions if instr.is_memory)
