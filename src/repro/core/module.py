"""The MicroScope kernel module (§5).

Implements the execution path of Figure 9: page faults whose PTE is
registered as under attack are redirected from the kernel's page-fault
handler to this module via a trampoline (a kernel fault hook).  The
module owns the Attack Recipes, performs the §5.2.2 attack operations
(software page walks, PTE/PWC/TLB/cache flushing, cache priming and
probing, Monitor signalling), and exposes the §5.2.3 user interface of
Table 2::

    provide_replay_handle(addr)    provide_pivot(addr)
    provide_monitor_addr(addr)     initiate_page_walk(addr, length)
    initiate_page_fault(addr)
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.recipes import (
    AttackRecipe,
    ReplayAction,
    ReplayDecision,
    ReplayEvent,
    WalkLocation,
    WalkTuning,
)
from repro.cpu.traps import TrapAction
from repro.kernel.kernel import Kernel
from repro.kernel.process import Process
from repro.observability.stats import MicroScopeStats
from repro.observability.tracer import MICROSCOPE_TID
from repro.vm import address as vaddr
from repro.vm.faults import PageFault

__all__ = ["MicroScopeConfig", "MicroScopeModule", "MicroScopeStats"]


@dataclass
class MicroScopeConfig:
    """Timing model of the module's kernel-side work."""

    #: Base cycles for trampoline entry + PTE bookkeeping per fault.
    fault_handler_cost: int = 2500
    #: Cycles per cache-line flush (clflush-ish).
    flush_cost: int = 40
    #: Cycles per probed line (timed reload).
    probe_cost: int = 60
    #: Cycles to invalidate one TLB entry.
    invlpg_cost: int = 30
    #: Probe measurement-noise probability: with this chance a probed
    #: line's latency reads as the wrong class (prefetchers, system
    #: activity, timer granularity on real hardware).  MicroScope's
    #: whole point is that replaying lets it vote this noise away; the
    #: single-shot baselines cannot.
    probe_noise: float = 0.0
    probe_noise_seed: int = 99


class MicroScopeModule:
    """Kernel-resident replay-attack engine."""

    def __init__(self, kernel: Kernel,
                 config: Optional[MicroScopeConfig] = None):
        self.kernel = kernel
        self.machine = kernel.machine
        self.config = config or MicroScopeConfig()
        self.stats = MicroScopeStats()
        #: (pid, vpn) -> (recipe, is_pivot)
        self._armed: Dict[Tuple[int, int], Tuple[AttackRecipe, bool]] = {}
        self.recipes: List[AttackRecipe] = []
        self._noise = random.Random(self.config.probe_noise_seed)
        kernel.add_fault_hook(self._trampoline)
        self.machine.metrics.register_group(
            "microscope", self.stats, replace=True)
        self.machine.metrics.register_pull(
            "microscope.recipe", self._recipe_metrics, replace=True)

    def _recipe_metrics(self) -> Dict[str, int]:
        """Per-recipe replay/release progress for the metrics dump."""
        values: Dict[str, int] = {}
        for recipe in self.recipes:
            values[f"{recipe.name}.replays"] = recipe.replays
            values[f"{recipe.name}.pivot_faults"] = recipe.pivot_faults
            values[f"{recipe.name}.released"] = int(recipe.released)
        return values

    # ------------------------------------------------------------------
    # Table 2: the user interface (§5.2.3)
    # ------------------------------------------------------------------

    def provide_replay_handle(self, process: Process, addr: int,
                              **recipe_kwargs) -> AttackRecipe:
        """Register *addr* as a replay handle; returns the new recipe."""
        recipe = AttackRecipe(
            name=recipe_kwargs.pop("name", f"recipe-{len(self.recipes)}"),
            process=process, replay_handle_va=addr, **recipe_kwargs)
        self.recipes.append(recipe)
        return recipe

    def provide_pivot(self, recipe: AttackRecipe, addr: int):
        """Attach a pivot address to an existing recipe (§4.2.2)."""
        if vaddr.same_page(addr, recipe.replay_handle_va):
            raise ValueError("pivot must be on a different page than the "
                             "replay handle")
        recipe.pivot_va = addr

    def provide_monitor_addr(self, recipe: AttackRecipe, addr: int):
        """Add an address to probe for cache-based attacks."""
        recipe.monitor_addrs.append(addr)

    def initiate_page_walk(self, process: Process, addr: int,
                           length: int = 4):
        """Force the next access to *addr* to perform a page walk whose
        first ``4 - length`` levels hit the PWC and whose remaining
        *length* levels access memory (walk of *length*, Table 2)."""
        if not 1 <= length <= vaddr.NUM_LEVELS:
            raise ValueError("walk length must be 1..4")
        self.kernel.invlpg(process, addr)
        walk = process.page_tables.software_walk(addr)
        self.machine.pwc.invalidate_va(process.pcid, addr)
        for step in walk.steps[:-1]:
            if step.level < vaddr.NUM_LEVELS - length:
                self.machine.pwc.insert(process.pcid, addr, step.level,
                                        step.entry)
            else:
                self.machine.hierarchy.flush_line(step.entry_paddr)
        self.machine.hierarchy.flush_line(walk.steps[-1].entry_paddr)

    def initiate_page_fault(self, process: Process, addr: int):
        """Arrange for the next access to *addr* to minor-fault."""
        self.kernel.set_present(process, addr, False)
        self._flush_translation_path(process, addr)

    # ------------------------------------------------------------------
    # Attack operations (§5.2.2)
    # ------------------------------------------------------------------

    def _flush_translation_path(self, process: Process, addr: int) -> int:
        """Flush PWC, TLB and the cached page-table entries for *addr*
        (Fig. 3, attack-setup step).  Returns the cycle cost."""
        walk = process.page_tables.software_walk(addr)
        self.machine.pwc.invalidate_va(process.pcid, addr)
        self.kernel.invlpg(process, addr)
        for paddr in walk.entry_paddrs():
            self.machine.hierarchy.flush_line(paddr)
        return (len(walk.steps) * self.config.flush_cost
                + self.config.invlpg_cost)

    def apply_walk_tuning(self, process: Process, addr: int,
                          tuning: WalkTuning) -> int:
        """Place the translation path per *tuning* (§4.1.2).  Returns
        the cycle cost of the placement work."""
        cost = self._flush_translation_path(process, addr)
        walk = process.page_tables.software_walk(addr)
        for step in walk.steps[:-1]:
            if tuning.upper is WalkLocation.PWC:
                # The OS warms the PWC by touching a sibling address
                # that shares the upper walk path.
                self.machine.pwc.insert(process.pcid, addr, step.level,
                                        step.entry)
            elif tuning.upper is not WalkLocation.DRAM:
                self._place_line(step.entry_paddr, tuning.upper)
                cost += self.config.probe_cost
        leaf_paddr = walk.steps[-1].entry_paddr
        if tuning.leaf is not WalkLocation.DRAM:
            self._place_line(leaf_paddr, tuning.leaf)
            cost += self.config.probe_cost
        return cost

    def _place_line(self, paddr: int, where: WalkLocation):
        """Install *paddr*'s line so a demand access hits at *where*."""
        hierarchy = self.machine.hierarchy
        hierarchy.flush_line(paddr)
        hierarchy.access(paddr)  # now resident in every level
        if where is WalkLocation.L1:
            return
        hierarchy.level_named("L1D").invalidate(paddr)
        if where is WalkLocation.L2:
            return
        hierarchy.level_named("L2").invalidate(paddr)
        if where is not WalkLocation.L3:
            raise ValueError(f"cannot place a line in {where}")

    def expected_walk_latency(self, tuning: WalkTuning) -> int:
        """Analytic walk latency for *tuning* (used to choose window
        sizes; mirrors the hardware walker's cost model)."""
        hierarchy = self.machine.hierarchy
        per_level = {
            WalkLocation.PWC: self.machine.pwc.hit_latency,
            WalkLocation.L1: hierarchy.hit_latency(0),
            WalkLocation.L2: hierarchy.hit_latency(1),
            WalkLocation.L3: hierarchy.hit_latency(2),
            WalkLocation.DRAM: hierarchy.hit_latency(-1),
        }
        upper = 3 * per_level[tuning.upper]
        leaf = per_level[tuning.leaf]
        overhead = vaddr.NUM_LEVELS  # walker per-level overhead
        return upper + leaf + overhead

    def prime_lines(self, process: Process, addrs) -> int:
        """Evict the given VAs from the whole hierarchy (Prime; §4.1.4
        step 5).  Returns cycle cost."""
        self.stats.primes += 1
        count = 0
        for va in addrs:
            self.machine.hierarchy.flush_line(process.translate_any(va))
            count += 1
        return count * self.config.flush_cost

    def probe_lines(self, process: Process, addrs) -> List[int]:
        """Timed reload of the given VAs (Probe); returns latencies.

        Probing inevitably pulls the lines close to the core, which is
        why the Replayer re-primes before the next replay.  When
        ``probe_noise`` is configured, each measurement misreads with
        that probability (modelling real-hardware interference).
        """
        self.stats.probes += 1
        latencies = [
            self.machine.hierarchy.access(process.translate_any(va))
            for va in addrs]
        if not self.config.probe_noise:
            return latencies
        hit = self.machine.hierarchy.hit_latency(0)
        miss = self.machine.hierarchy.hit_latency(-1)
        mid = (hit + miss) // 2
        noisy = []
        for latency in latencies:
            if self._noise.random() < self.config.probe_noise:
                latency = miss if latency <= mid else hit
            noisy.append(latency)
        return noisy

    def peek_lines(self, process: Process, addrs) -> List[int]:
        """Ground-truth (non-intrusive) cache level per VA, for
        experiment validation only — not available to a real attacker."""
        return [self.machine.hierarchy.peek_level(process.translate_any(va))
                for va in addrs]

    # ------------------------------------------------------------------
    # Arming and the fault trampoline (Fig. 9)
    # ------------------------------------------------------------------

    def arm(self, recipe: AttackRecipe):
        """Attack setup (Fig. 3 step 1): register the handle (and
        pivot) pages and make the handle's next access fault."""
        key = (recipe.process.pid, vaddr.vpn(recipe.replay_handle_va))
        self._armed[key] = (recipe, False)
        if recipe.pivot_va is not None:
            pivot_key = (recipe.process.pid, vaddr.vpn(recipe.pivot_va))
            self._armed[pivot_key] = (recipe, True)
        self.initiate_page_fault(recipe.process, recipe.replay_handle_va)
        self.apply_walk_tuning(recipe.process, recipe.replay_handle_va,
                               recipe.walk_tuning)

    def disarm(self, recipe: AttackRecipe):
        """Withdraw from the attack, restoring forward progress."""
        self.kernel.set_present(recipe.process, recipe.replay_handle_va,
                                True)
        if recipe.pivot_va is not None:
            self.kernel.set_present(recipe.process, recipe.pivot_va, True)
        for key, (armed_recipe, _pivot) in list(self._armed.items()):
            if armed_recipe is recipe:
                del self._armed[key]

    def _trampoline(self, context, fault: PageFault
                    ) -> Optional[TrapAction]:
        """Kernel fault hook: claims faults on pages under attack."""
        process = context.process
        if process is None:
            return None
        key = (process.pid, fault.vpn)
        armed = self._armed.get(key)
        if armed is None:
            return None
        recipe, is_pivot = armed
        if is_pivot:
            recipe.pivot_faults += 1
            self.stats.pivot_faults += 1
        else:
            recipe.replays += 1
            self.stats.handle_faults += 1
        event = ReplayEvent(recipe=recipe, context=context, fault=fault,
                            replay_no=recipe.replays,
                            is_pivot_fault=is_pivot)
        decision = recipe.decide(event)
        cost = self.config.fault_handler_cost + decision.extra_cost
        cost += self._apply_decision(recipe, fault, decision, is_pivot)
        tracer = self.machine.tracer
        if tracer is not None:
            tracer.complete(
                f"replay:{recipe.name}", self.machine.cycle, cost,
                cat="replay", tid=MICROSCOPE_TID,
                replay_no=recipe.replays, action=decision.action.name,
                pivot=is_pivot, ctx=context.context_id)
        if decision.action is ReplayAction.HALT:
            return TrapAction(cost=cost, halt=True)
        return TrapAction(cost=cost)

    def _apply_decision(self, recipe: AttackRecipe, fault: PageFault,
                        decision: ReplayDecision, is_pivot: bool) -> int:
        process = recipe.process
        handle_va = recipe.replay_handle_va
        pivot_va = recipe.pivot_va
        faulting_va = pivot_va if is_pivot else handle_va
        other_va = handle_va if is_pivot else pivot_va
        cost = 0
        if decision.action is ReplayAction.REPLAY:
            # Leave the present bit clear; re-flush the translation
            # path so the next walk repeats (Fig. 3, timeline 2).
            cost += self.apply_walk_tuning(process, faulting_va,
                                           recipe.walk_tuning)
            if recipe.prime_monitor_addrs and recipe.monitor_addrs:
                cost += self.prime_lines(process, recipe.monitor_addrs)
        elif decision.action is ReplayAction.RELEASE:
            self.kernel.set_present(process, faulting_va, True)
            recipe.released = True
            self.stats.releases += 1
        elif decision.action is ReplayAction.PIVOT:
            if other_va is None:
                raise ValueError(f"{recipe.name}: PIVOT without a pivot "
                                 f"address")
            # §4.2.2: release the faulting page, arm the other one.
            self.kernel.set_present(process, faulting_va, True)
            self.kernel.set_present(process, other_va, False)
            cost += self.apply_walk_tuning(process, other_va,
                                           recipe.walk_tuning)
            if recipe.prime_monitor_addrs and recipe.monitor_addrs:
                cost += self.prime_lines(process, recipe.monitor_addrs)
        elif decision.action is ReplayAction.HALT:
            return cost
        return cost

    def action_for_halt(self) -> TrapAction:
        return TrapAction(cost=self.config.fault_handler_cost, halt=True)

    # ------------------------------------------------------------------
    # snapshot support
    # ------------------------------------------------------------------

    def capture(self) -> tuple:
        """Clone module state.  Recipe objects are shared by reference
        (attack closures hold them); their mutable progress state is
        cloned per recipe."""
        return (
            self.stats.capture(),
            dict(self._armed),
            [(recipe, recipe.capture()) for recipe in self.recipes],
            self._noise.getstate(),
        )

    def restore(self, state: tuple):
        stats, armed, recipes, noise = state
        self.stats.restore(stats)
        self._armed = dict(armed)
        self.recipes = [recipe for recipe, _ in recipes]
        for recipe, recipe_state in recipes:
            recipe.restore(recipe_state)
        self._noise.setstate(noise)
