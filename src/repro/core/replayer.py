"""The Replayer: attack orchestration (Fig. 3).

The Replayer is the untrusted-OS actor of the paper.  It owns the
machine, the kernel and the MicroScope module, sets up victims inside
enclaves, arms attack recipes, runs the simulation, and harvests the
Monitor's measurements.  Concrete attacks in
:mod:`repro.core.attacks` build on this driver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.config import MachineConfig
from repro.core.module import MicroScopeConfig, MicroScopeModule
from repro.core.recipes import AttackRecipe
from repro.cpu.machine import Machine
from repro.kernel.kernel import Kernel, KernelConfig
from repro.kernel.process import Process
from repro.kernel.shm import SharedChannel
from repro.oracle.runtime import note_machine as _oracle_note_machine
from repro.sgx.enclave import EnclaveConfig, SGXPlatform
from repro.snapshot import MachineSnapshot


@dataclass
class AttackEnvironment:
    """A fully wired platform: machine + kernel + SGX + MicroScope."""

    machine: Machine
    kernel: Kernel
    sgx: SGXPlatform
    module: MicroScopeModule

    @classmethod
    def build(cls, machine_config: Optional[MachineConfig] = None,
              kernel_config: Optional[KernelConfig] = None,
              module_config: Optional[MicroScopeConfig] = None
              ) -> "AttackEnvironment":
        machine = Machine(machine_config)
        kernel = Kernel(machine, kernel_config)
        sgx = SGXPlatform(kernel)
        module = MicroScopeModule(kernel, module_config)
        return cls(machine, kernel, sgx, module)


class Replayer:
    """Drives a victim (and optionally a monitor) under replay.

    With a :class:`~repro.memo.window.WindowMemo` attached
    (``memo=``), :meth:`run_window` serves repeated replay windows
    from the cache instead of re-simulating them; without one it is a
    plain :meth:`run_until_released`.
    """

    def __init__(self, env: Optional[AttackEnvironment] = None,
                 memo: Optional[object] = None, **env_kwargs):
        self.env = env or AttackEnvironment.build(**env_kwargs)
        # Warm-started environments were built outside any oracle
        # activation; (re)offer the machine so an active oracle's hub
        # attaches before the trial runs (idempotent, no-op when idle).
        _oracle_note_machine(self.env.machine)
        self.machine = self.env.machine
        self.kernel = self.env.kernel
        self.sgx = self.env.sgx
        self.module = self.env.module
        self.memo = memo
        self._checkpoint: Optional[MachineSnapshot] = None

    # --- checkpoint / rewind ----------------------------------------------

    def checkpoint(self) -> MachineSnapshot:
        """Snapshot the whole platform (typically right after victim
        launch) so every subsequent trial can fork from it."""
        self._checkpoint = MachineSnapshot.take(self.env)
        return self._checkpoint

    def rewind(self, snapshot: Optional[MachineSnapshot] = None
               ) -> MachineSnapshot:
        """Restore the platform to *snapshot* (default: the last
        :meth:`checkpoint`).  The snapshot survives, so rewinding many
        times replays from the identical starting state."""
        snapshot = snapshot if snapshot is not None else self._checkpoint
        if snapshot is None:
            raise RuntimeError("rewind() without a prior checkpoint()")
        snapshot.restore(self.env)
        return snapshot

    # --- setup helpers ---------------------------------------------------

    def create_victim_process(self, name: str = "victim",
                              enclave: bool = True,
                              enclave_config: Optional[EnclaveConfig] = None
                              ) -> Process:
        process = self.kernel.create_process(name)
        if enclave:
            self.sgx.create_enclave(process, enclave_config,
                                    name=f"{name}-enclave")
        return process

    def create_monitor_process(self, name: str = "monitor") -> Process:
        return self.kernel.create_process(name)

    def launch_victim(self, process: Process, program,
                      context_id: int = 0):
        """Enter the enclave (when present) and schedule the victim."""
        if process.enclave is not None:
            process.enclave.enter(self.machine.contexts[context_id],
                                  program)
        else:
            self.kernel.launch(process, program, context_id)

    def launch_monitor(self, process: Process, program,
                       context_id: int = 1):
        self.kernel.launch(process, program, context_id)

    def shared_channel(self, *processes: Process) -> SharedChannel:
        channel = SharedChannel(self.kernel)
        for process in processes:
            channel.map_into(process)
        return channel

    # --- run control -------------------------------------------------------

    def run(self, max_cycles: int = 5_000_000,
            until: Optional[Callable[[Machine], bool]] = None) -> int:
        return self.machine.run(max_cycles, until)

    def run_until_released(self, recipe: AttackRecipe,
                           max_cycles: int = 5_000_000) -> int:
        """Run until the recipe releases the victim (or budget ends)."""
        return self.machine.run(
            max_cycles, until=lambda _m: recipe.released)

    def run_window(self, recipe: AttackRecipe,
                   max_cycles: int = 5_000_000) -> int:
        """Run one replay window (until *recipe* releases the victim),
        memoized when a :class:`~repro.memo.window.WindowMemo` is
        attached.

        The window is keyed by the platform snapshot at entry plus the
        recipe's fingerprint; on a hit the recorded final snapshot is
        spliced back into the machine bit-exactly and the recorded
        cycle count returned.  A recipe whose callbacks cannot be
        keyed soundly (bound methods, closures over live objects) runs
        cold and bumps the memo's ``uncacheable`` counter.
        """
        if self.memo is None:
            return self.run_until_released(recipe, max_cycles)
        from repro.memo.keys import Unmemoizable, recipe_fingerprint
        try:
            extra = {"recipe": recipe_fingerprint(recipe),
                     "max_cycles": max_cycles}
        except Unmemoizable:
            self.memo.note_uncacheable()
            return self.run_until_released(recipe, max_cycles)
        return self.memo.run(
            self.env, extra,
            lambda: self.run_until_released(recipe, max_cycles))

    def run_until_victim_done(self, context_id: int = 0,
                              max_cycles: int = 5_000_000) -> int:
        context = self.machine.contexts[context_id]
        return self.machine.run(max_cycles,
                                until=lambda _m: context.finished())

    # --- convenience passthroughs -----------------------------------------

    def arm(self, recipe: AttackRecipe):
        self.module.arm(recipe)

    def disarm(self, recipe: AttackRecipe):
        self.module.disarm(recipe)
