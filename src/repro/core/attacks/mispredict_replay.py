"""Branch mispredictions as (bounded) replay handles (§7.1).

"Any instruction which can squash speculative execution, e.g. a branch
that mispredicts, can cause some subsequent code to be replayed.
Since a branch will not mispredict an infinite number of times, the
application will eventually make forward progress."

The attacker primes the branch predictor (as in [33]) so the victim's
secret-dependent branch mispredicts, which makes the transmit code of
*both* paths execute once (wrong path, then right path) — a small,
bounded number of replays, contrasted here with the unbounded
page-fault replays of the main attack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.config import MachineConfig
from repro.core.replayer import AttackEnvironment, Replayer
from repro.isa.instructions import Opcode
from repro.sgx.enclave import EnclaveConfig
from repro.victims.control_flow import setup_control_flow_victim


@dataclass
class MispredictReplayResult:
    secret: int
    primed_taken: bool
    mispredicted: bool
    #: Execution-unit usage observed by the SMT sibling.
    mul_issues: int
    div_issues: int
    #: Squashed-then-refetched dynamic instructions.
    replayed_instructions: int

    @property
    def both_paths_observed(self) -> bool:
        return self.mul_issues >= 2 and self.div_issues >= 2


@dataclass
class MispredictReplayAttack:
    """Measure the replays obtainable from one primed misprediction."""

    #: Machine-level defense knobs (``None`` = stock platform).
    machine: Optional[MachineConfig] = None

    def run(self, secret: int, primed_taken: bool
            ) -> MispredictReplayResult:
        # No predictor flush: the attacker's priming must survive into
        # the victim's execution (the [33]-style setup).
        rep = Replayer(AttackEnvironment.build(
            machine_config=self.machine))
        victim_proc = rep.create_victim_process(
            "victim",
            enclave_config=EnclaveConfig(
                flush_predictor_on_boundary=False))
        victim = setup_control_flow_victim(victim_proc, secret)
        core = rep.machine.core

        counts: Dict[str, int] = {"mul": 0, "div": 0}

        def observer(context, entry):
            if context.context_id != 0:
                return
            if entry.instr.op is Opcode.FDIV:
                counts["div"] += 1
            elif entry.instr.op is Opcode.MUL:
                counts["mul"] += 1

        core.issue_hooks.append(observer)
        # Prime the counter for the victim's secret branch.
        branch_index = next(
            i for i, ins in enumerate(victim.program.instructions)
            if ins.is_cond_branch)
        core.predictor.prime(branch_index, primed_taken)
        rep.launch_victim(victim_proc, victim.program)
        rep.run_until_victim_done(context_id=0, max_cycles=100_000)
        ctx = rep.machine.contexts[0]
        # Taken == div side in the Fig. 6 victim.
        mispredicted = primed_taken != bool(secret)
        return MispredictReplayResult(
            secret=secret, primed_taken=primed_taken,
            mispredicted=mispredicted,
            mul_issues=counts["mul"], div_issues=counts["div"],
            replayed_instructions=ctx.stats.replays)


def infer_secret_by_priming(
        secret: int,
        machine: Optional[MachineConfig] = None) -> Dict[str, object]:
    """The §4.2.3 inference: with the predictor in a known state,
    *whether a misprediction happens* reveals ``secret == prediction``.

    The attacker primes "taken" (div side); observing both paths'
    units fire means a misprediction, i.e. the secret was the mul
    side.  Returns the attacker's guess and the evidence.
    """
    attack = MispredictReplayAttack(machine=machine)
    result = attack.run(secret, primed_taken=True)
    misprediction_observed = result.both_paths_observed
    guessed_secret = 0 if misprediction_observed else 1
    return {
        "guessed_secret": guessed_secret,
        "correct": guessed_secret == secret,
        "misprediction_observed": misprediction_observed,
        "result": result,
    }
