"""End-to-end microarchitectural replay attacks."""

from repro.core.attacks.aes_cache import (
    AESCacheAttack,
    ExtractionResult,
    Figure11Result,
    ProbeRecord,
)
from repro.core.attacks.adaptive import AdaptiveAttackResult, AdaptiveWalkAttack
from repro.core.attacks.aes_key_recovery import (
    AESKeyRecoveryAttack,
    KeyRecoveryResult,
    Round1Attribution,
    attribute_round1,
    nibble_candidates,
)
from repro.core.attacks.control_flow import (
    CacheCFVictim,
    ControlFlowCacheAttack,
    ControlFlowCacheResult,
    setup_cache_cf_victim,
)
from repro.core.attacks.interrupt_replay import (
    InterruptReplayAttack,
    InterruptReplayResult,
)
from repro.core.attacks.loop_secret import LoopSecretAttack, LoopSecretResult
from repro.core.attacks.mispredict_replay import (
    MispredictReplayAttack,
    MispredictReplayResult,
    infer_secret_by_priming,
)
from repro.core.attacks.port_contention import (
    PortContentionAttack,
    PortContentionResult,
    run_figure10,
)
from repro.core.attacks.rdrand import RdrandBiasAttack, RdrandBiasResult
from repro.core.attacks.rsa import ModExpExtractionAttack, ModExpExtractionResult
from repro.core.attacks.single_secret import (
    SUBNORMAL,
    SecretIdExtractionAttack,
    SecretIdResult,
    SubnormalDetectionAttack,
    SubnormalResult,
)
from repro.core.attacks.tsx_replay import (
    TSGXInteraction,
    TSXReplayAttack,
    TSXReplayResult,
)

__all__ = [
    "AdaptiveAttackResult",
    "AdaptiveWalkAttack",
    "AESCacheAttack",
    "AESKeyRecoveryAttack",
    "KeyRecoveryResult",
    "Round1Attribution",
    "attribute_round1",
    "nibble_candidates",
    "ExtractionResult",
    "Figure11Result",
    "ProbeRecord",
    "CacheCFVictim",
    "ControlFlowCacheAttack",
    "ControlFlowCacheResult",
    "setup_cache_cf_victim",
    "InterruptReplayAttack",
    "InterruptReplayResult",
    "LoopSecretAttack",
    "LoopSecretResult",
    "MispredictReplayAttack",
    "MispredictReplayResult",
    "infer_secret_by_priming",
    "PortContentionAttack",
    "PortContentionResult",
    "run_figure10",
    "RdrandBiasAttack",
    "RdrandBiasResult",
    "ModExpExtractionAttack",
    "ModExpExtractionResult",
    "SUBNORMAL",
    "SecretIdExtractionAttack",
    "SecretIdResult",
    "SubnormalDetectionAttack",
    "SubnormalResult",
    "TSGXInteraction",
    "TSXReplayAttack",
    "TSXReplayResult",
]
