"""Interrupts as replay handles (§7.1's closing generalisation).

Any event that squashes speculative state can replay code.  Timer
interrupts are taken at retirement: everything in flight — including
instructions that already *executed* and leaked — is squashed and
re-fetched.  An attacker with interrupt control (the SGX-Step
machinery) can therefore replay a window unboundedly by firing the
next interrupt before the sensitive instruction retires: the
"zero-stepping" corner of interrupt-driven attacks, recast as a replay
engine.

Unlike page-fault handles, the window anchor is temporal (interrupt
arrival) rather than spatial (a chosen address), so this variant needs
no page-table manipulation at all — pure scheduling power.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.config import MachineConfig
from repro.core.replayer import AttackEnvironment, Replayer
from repro.isa.instructions import Opcode
from repro.victims.control_flow import setup_control_flow_victim


@dataclass
class InterruptReplayResult:
    secret: int
    replays_requested: int
    transmit_executions: int
    interrupts_delivered: int
    victim_finished: bool
    #: Per-unit execution counts (both branch sides), so the attacker
    #: can *infer* the secret instead of merely detecting the leak.
    mul_executions: int = 0
    div_executions: int = 0

    @property
    def leaked(self) -> bool:
        """More transmit executions than the architectural count means
        squashed (replayed) executions were observed."""
        return self.transmit_executions > 2

    @property
    def guessed(self) -> Optional[int]:
        """The attacker's call: the amplified unit is the taken side."""
        if self.div_executions == self.mul_executions:
            return None
        return 1 if self.div_executions > self.mul_executions else 0

    @property
    def correct(self) -> bool:
        return self.guessed == self.secret


@dataclass
class InterruptReplayAttack:
    """Replay the Fig. 6 victim's transmit window with timer
    interrupts instead of page faults."""

    replays: int = 8
    #: Machine-level defense knobs (``None`` = stock platform).
    machine: Optional[MachineConfig] = None
    #: Cap on squash-and-refetch windows the platform grants.
    replay_budget: Optional[int] = None

    def run(self, secret: int = 1) -> InterruptReplayResult:
        rep = Replayer(AttackEnvironment.build(
            machine_config=self.machine))
        victim_proc = rep.create_victim_process("irq-victim")
        victim = setup_control_flow_victim(victim_proc, secret)
        core = rep.machine.core
        ctx = rep.machine.contexts[0]

        counts = {"div": 0, "mul": 0}

        def observer(context, entry):
            if context.context_id != 0:
                return
            if entry.instr.op is Opcode.FDIV:
                counts["div"] += 1
            elif entry.instr.op is Opcode.MUL:
                counts["mul"] += 1

        core.issue_hooks.append(observer)
        rep.launch_victim(victim_proc, victim.program)

        delivered = 0
        limit = self.replays if self.replay_budget is None \
            else min(self.replays, self.replay_budget)
        budget = 3_000_000
        while budget > 0 and not ctx.finished():
            rep.machine.step(1)
            budget -= 1
            if delivered >= limit or ctx.pending_interrupt:
                continue
            # Fire while a transmit instruction is in flight and has
            # already executed (leaked) but not retired: the squash
            # forces it to re-execute — a replay.
            if any(e.instr.op in (Opcode.FDIV, Opcode.MUL)
                   and e.issue_cycle is not None
                   for e in ctx.rob.entries):
                ctx.pending_interrupt = "replay-irq"
                delivered += 1
        transmit = counts["div"] if secret == 1 else counts["mul"]
        return InterruptReplayResult(
            secret=secret, replays_requested=self.replays,
            transmit_executions=transmit,
            interrupts_delivered=delivered,
            victim_finished=ctx.finished(),
            mul_executions=counts["mul"],
            div_executions=counts["div"])
