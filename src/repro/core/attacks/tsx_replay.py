"""TSX transaction aborts as replay handles (§7.1).

"Intel's TSX will abort a transaction if dirty data is evicted from
the private cache, which can be easily controlled by an attacker."
Each abort rolls the victim back to its TBEGIN and the fallback path
retries — an architectural replay whose window is the *whole
transaction*, not the ROB.

Two consequences the paper highlights, both demonstrated here:

* the replayed window can be arbitrarily large;
* fencing RDRAND no longer helps: the transaction body executes (and
  leaks) architecturally before the abort rolls it back, so the §7.2
  bias attack works even against fenced RDRAND.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.replayer import AttackEnvironment, Replayer
from repro.cpu.config import CoreConfig
from repro.config import MachineConfig
from repro.isa.instructions import Opcode
from repro.victims.integrity import setup_tsx_victim


@dataclass
class TSXReplayResult:
    outputs: List[int]
    desired_parity: int
    fenced: bool
    total_aborts: int
    trials: int

    @property
    def bias(self) -> float:
        if not self.outputs:
            return 0.0
        good = sum(1 for v in self.outputs
                   if v % 2 == self.desired_parity)
        return good / len(self.outputs)

    @property
    def mean_replays(self) -> float:
        return self.total_aborts / self.trials if self.trials else 0.0


@dataclass
class TSXReplayAttack:
    """Bias the TSX victim's committed RDRAND value by selectively
    aborting transactions whose observed parity is undesired."""

    desired_parity: int = 0
    trials: int = 25
    max_aborts_per_trial: int = 60
    fenced: bool = True   # the point: the fence does NOT stop this one

    def run(self) -> TSXReplayResult:
        outputs: List[int] = []
        total_aborts = 0
        for trial in range(self.trials):
            value, aborts = self._one_trial(trial)
            outputs.append(value)
            total_aborts += aborts
        return TSXReplayResult(outputs=outputs,
                               desired_parity=self.desired_parity,
                               fenced=self.fenced,
                               total_aborts=total_aborts,
                               trials=self.trials)

    def _one_trial(self, trial: int):
        rep = Replayer(AttackEnvironment.build(
            machine_config=MachineConfig(core=CoreConfig(
                rdrand_fenced=self.fenced,
                rdrand_seed=0x7531 + trial))))
        victim_proc = rep.create_victim_process("tsx-victim")
        victim = setup_tsx_victim(victim_proc,
                                  max_retries=self.max_aborts_per_trial)
        core = rep.machine.core
        victim_ctx = rep.machine.contexts[0]
        buffer_paddr = victim_proc.translate_any(victim.txn_buffer_va)

        # Observer: parity leaks through unit usage *inside* the
        # transaction (these instructions execute and even retire into
        # the transactional buffer before any abort).
        window = {"mul": 0, "div": 0}

        def issue_observer(context, entry):
            if context.context_id != 0:
                return
            if entry.instr.op is Opcode.FDIV:
                window["div"] += 1
            elif entry.instr.op is Opcode.MUL:
                window["mul"] += 1

        core.issue_hooks.append(issue_observer)

        def undesired_parity_observed() -> bool:
            if self.desired_parity == 0:
                return window["div"] >= 2
            return window["mul"] >= 2

        rep.launch_victim(victim_proc, victim.program)
        # Drive the machine, evicting the write-set line whenever the
        # observed parity is wrong — the attacker-controlled abort.
        budget = 3_000_000
        while budget > 0 and not victim_ctx.finished():
            # Fine-grained polling: the parity must be acted on before
            # the transaction commits.
            rep.machine.step(10)
            budget -= 10
            if victim_ctx.in_transaction and undesired_parity_observed():
                rep.machine.hierarchy.flush_line(buffer_paddr)
                window["mul"] = window["div"] = 0
            elif not victim_ctx.in_transaction:
                window["mul"] = window["div"] = 0
        value = victim.read_output(victim_proc)
        return value, victim_ctx.stats.txn_aborts


@dataclass
class TSGXInteraction:
    """Helper for the §8 T-SGX discussion: with an abort threshold of
    N, the attacker still gets N-1 replays before termination."""

    threshold: int = 10

    def replays_available(self) -> int:
        return self.threshold - 1
