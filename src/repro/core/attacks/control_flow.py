"""Control-Flow-Secret attacks (§4.2.3).

Two ways to read a secret-dependent branch direction, on top of the
machinery demonstrated elsewhere:

* :class:`ControlFlowCacheAttack` — when the two branch paths access
  *different cache lines* (Fig. 4c lines 3/5), the Replayer probes
  which line was touched in the replay window;
* the port-contention variant (different *computations* on the two
  paths) is :class:`~repro.core.attacks.port_contention.\
PortContentionAttack`, and the misprediction-based inference is
  :func:`~repro.core.attacks.mispredict_replay.infer_secret_by_priming`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.config import MachineConfig
from repro.core.analysis import classify_hits
from repro.core.recipes import (
    ReplayAction,
    ReplayDecision,
    WalkLocation,
    WalkTuning,
)
from repro.core.replayer import AttackEnvironment, Replayer
from repro.isa.program import Program, ProgramBuilder
from repro.kernel.process import Process
from repro.oracle.runtime import note_secret_write
from repro.victims.common import REPLAY_HANDLE, TRANSMIT


@dataclass(frozen=True)
class CacheCFVictim:
    """Fig. 4c with cache-line transmits: each path touches its own
    line of a public page."""

    program: Program
    handle_va: int
    secret_va: int
    lineB_va: int   # touched when secret == 0
    lineC_va: int   # touched when secret == 1


def setup_cache_cf_victim(process: Process, secret: int) -> CacheCFVictim:
    if secret not in (0, 1):
        raise ValueError("secret must be 0 or 1")
    handle_va = process.alloc(4096, "cfc-handle")
    data_va = process.alloc(4096, "cfc-data")
    if process.enclave is not None:
        secret_va = process.enclave.private_base + 64
    else:
        secret_va = process.alloc(4096, "cfc-secret")
    process.write(secret_va, secret)
    note_secret_write(process, secret_va)
    lineB_va = data_va          # line 0
    lineC_va = data_va + 512    # line 8
    b = ProgramBuilder("control-flow-cache")
    b.li("r1", handle_va)
    b.li("r2", secret_va)
    b.li("r3", lineB_va)
    b.li("r4", lineC_va)
    b.load("r5", "r1", 0, comment=REPLAY_HANDLE)
    b.load("r6", "r2", 0)
    b.li("r7", 0)
    b.bne("r6", "r7", "path_c")
    b.load("r8", "r3", 0, comment=f"{TRANSMIT}-B")
    b.jmp("done")
    b.label("path_c")
    b.load("r8", "r4", 0, comment=f"{TRANSMIT}-C")
    b.label("done")
    b.halt()
    return CacheCFVictim(b.build(), handle_va, secret_va, lineB_va,
                         lineC_va)


@dataclass
class ControlFlowCacheResult:
    secret: int
    guessed: Optional[int]
    replays: int
    hitsB: int
    hitsC: int

    @property
    def correct(self) -> bool:
        return self.guessed == self.secret


@dataclass
class ControlFlowCacheAttack:
    """Extract the branch direction via the Prime+Probe configuration
    (Monitor folded into the Replayer, §4.1.3)."""

    replays: int = 5
    walk_tuning: WalkTuning = field(default_factory=lambda: WalkTuning(
        upper=WalkLocation.PWC, leaf=WalkLocation.DRAM))
    #: Machine-level defense knobs (e.g. ``fence_on_flush``) — the
    #: platform the victim runs on, not an attack parameter.
    machine: Optional[MachineConfig] = None
    #: Cap on replay windows the platform grants (T-SGX / Déjà-Vu
    #: style budgets); ``None`` means the attacker-chosen ``replays``.
    replay_budget: Optional[int] = None

    def run(self, secret: int) -> ControlFlowCacheResult:
        rep = Replayer(AttackEnvironment.build(
            machine_config=self.machine))
        victim_proc = rep.create_victim_process("cf-victim")
        victim = setup_cache_cf_victim(victim_proc, secret)
        module = rep.module
        probe_addrs = [victim.lineB_va, victim.lineC_va]
        threshold = rep.machine.hierarchy.hit_latency(1)
        hits = {"B": 0, "C": 0}
        limit = self.replays if self.replay_budget is None \
            else min(self.replays, self.replay_budget)

        def attack_fn(event) -> ReplayDecision:
            lat = module.probe_lines(victim_proc, probe_addrs)
            touched = classify_hits(lat, threshold)
            if 0 in touched:
                hits["B"] += 1
            if 1 in touched:
                hits["C"] += 1
            cost = module.prime_lines(victim_proc, probe_addrs)
            if event.replay_no >= limit:
                return ReplayDecision(ReplayAction.RELEASE,
                                      extra_cost=cost)
            return ReplayDecision(ReplayAction.REPLAY, extra_cost=cost)

        recipe = module.provide_replay_handle(
            victim_proc, victim.handle_va, name="cf-cache",
            attack_function=attack_fn, walk_tuning=self.walk_tuning,
            max_replays=10**9)
        rep.launch_victim(victim_proc, victim.program)
        module.prime_lines(victim_proc, probe_addrs)
        rep.arm(recipe)
        rep.run_until_victim_done(context_id=0, max_cycles=5_000_000)

        if hits["B"] == hits["C"]:
            guessed = None
        else:
            guessed = 0 if hits["B"] > hits["C"] else 1
        return ControlFlowCacheResult(secret=secret, guessed=guessed,
                                      replays=recipe.replays,
                                      hitsB=hits["B"], hitsC=hits["C"])
