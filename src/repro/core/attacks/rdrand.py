"""The §7.2 integrity attack: biasing RDRAND via selective replay.

Strategy: the replay handle faults; the victim's RDRAND executes
speculatively in the walk shadow and its parity leaks through the
execution units (divider vs multiplier).  The OS races the hardware
page walker — "set/clear the present bit before the walker reaches
it" — releasing the walk exactly when the observed parity is the
desired one, so the *same dynamic RDRAND instance* the attacker liked
retires.  Undesired draws keep the present bit clear, get squashed,
and are re-drawn.

Intel's actual RDRAND carries an (incidental) fence.  With
``rdrand_fenced=True`` the transmit code cannot execute before the
handle resolves, the parity never leaks in time, and the attacker is
reduced to blind releases — the bias disappears.  "The lesson is that
there should be such a fence, for security reasons."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.module import MicroScopeConfig
from repro.core.recipes import (
    ReplayAction,
    ReplayDecision,
    WalkLocation,
    WalkTuning,
)
from repro.core.replayer import AttackEnvironment, Replayer
from repro.cpu.config import CoreConfig
from repro.config import MachineConfig
from repro.isa.instructions import Opcode
from repro.victims.integrity import setup_rdrand_victim


@dataclass
class RdrandBiasResult:
    outputs: List[int]
    desired_parity: int
    fenced: bool
    total_replays: int
    blind_releases: int

    @property
    def bias(self) -> float:
        """Fraction of outputs with the desired parity (0.5 = fair)."""
        if not self.outputs:
            return 0.0
        good = sum(1 for v in self.outputs
                   if v % 2 == self.desired_parity)
        return good / len(self.outputs)


@dataclass
class RdrandBiasAttack:
    """Run many victim sessions, biasing each draw via replay."""

    desired_parity: int = 0        # bias towards even values
    trials: int = 40
    max_replays_per_trial: int = 40
    fenced: bool = False
    walk_tuning: WalkTuning = field(default_factory=lambda: WalkTuning(
        upper=WalkLocation.PWC, leaf=WalkLocation.DRAM))

    def run(self) -> RdrandBiasResult:
        outputs: List[int] = []
        total_replays = 0
        blind = 0
        for trial in range(self.trials):
            value, replays, was_blind = self._one_trial(trial)
            outputs.append(value)
            total_replays += replays
            blind += int(was_blind)
        return RdrandBiasResult(outputs=outputs,
                                desired_parity=self.desired_parity,
                                fenced=self.fenced,
                                total_replays=total_replays,
                                blind_releases=blind)

    def _one_trial(self, trial: int):
        rep = Replayer(AttackEnvironment.build(
            machine_config=MachineConfig(core=CoreConfig(
                rdrand_fenced=self.fenced,
                rdrand_seed=0xABCD + trial)),
            module_config=MicroScopeConfig(fault_handler_cost=2000)))
        victim_proc = rep.create_victim_process("rdrand-victim")
        victim = setup_rdrand_victim(victim_proc)
        core = rep.machine.core

        # The SMT observer: unit usage of the victim context since the
        # last window began.  (Stands in for the timed port-contention
        # monitor demonstrated in the §6.1 attack.)
        window = {"mul": 0, "div": 0}

        def issue_observer(context, entry):
            if context.context_id != 0:
                return
            if entry.instr.op is Opcode.FDIV:
                window["div"] += 1
            elif entry.instr.op is Opcode.MUL:
                window["mul"] += 1

        core.issue_hooks.append(issue_observer)

        def observed_parity() -> Optional[int]:
            if window["div"] >= 2:
                return 1
            if window["mul"] >= 2:
                return 0
            return None

        state = {"blind": False}

        def race(context, entry) -> bool:
            # Called at walk end for the faulted handle: win the race
            # (set present before the walker reads the leaf) only when
            # the observed parity is the desired one.
            if entry.addr is None or context.context_id != 0:
                return False
            if observed_parity() == self.desired_parity:
                rep.kernel.set_present(victim_proc, victim.handle_va,
                                       True)
                return True
            return False

        core.pte_race_hooks.append(race)

        def attack_fn(event) -> ReplayDecision:
            window["mul"] = window["div"] = 0
            if event.replay_no >= self.max_replays_per_trial:
                state["blind"] = True
                return ReplayDecision(ReplayAction.RELEASE)
            return ReplayDecision(ReplayAction.REPLAY)

        recipe = rep.module.provide_replay_handle(
            victim_proc, victim.handle_va, name="rdrand-bias",
            attack_function=attack_fn, walk_tuning=self.walk_tuning,
            max_replays=10**9)
        rep.launch_victim(victim_proc, victim.program)
        rep.arm(recipe)
        rep.run_until_victim_done(context_id=0, max_cycles=10_000_000)
        value = victim.read_output(victim_proc)
        return value, recipe.replays, state["blind"]
