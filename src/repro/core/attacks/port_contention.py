"""The port-contention attack of §4.3 / §6.1 (Figure 10).

Setup: the victim runs the Control-Flow-Secret code of Fig. 6 inside an
enclave on SMT context 0; the Monitor (Fig. 7) free-runs on SMT context
1, timing bursts of floating-point divisions.  The Replayer faults the
victim's replay handle and keeps the present bit clear, so the two
secret-dependent operations replay over and over in the shadow of the
page walk.  If the secret selects the division side, the victim's
divides occupy the shared non-pipelined divider and a fraction of the
Monitor's bursts cross the contention threshold; on the multiply side
they do not.

The experiment reports exactly what Fig. 10 plots: every Monitor
latency sample, the threshold, and the above-threshold counts.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.analysis import ConfidenceTracker, derive_threshold, summarize
from repro.core.recipes import (
    ReplayAction,
    ReplayDecision,
    WalkLocation,
    WalkTuning,
)
from repro.core.module import MicroScopeConfig
from repro.core.replayer import AttackEnvironment, Replayer
from repro.config import MachineConfig
from repro.snapshot import warm_start
from repro.victims.control_flow import setup_control_flow_victim
from repro.victims.monitor import setup_port_contention_monitor


@dataclass
class PortContentionResult:
    """Everything Figure 10 needs, for one victim secret."""

    secret: int                   # ground truth (0 = mul, 1 = div)
    samples: List[int]            # all Monitor latencies, in order
    threshold: float
    above_threshold: int
    replays: int
    verdict: Optional[bool]       # attacker's call: True = div side
    cycles: int

    @property
    def correct(self) -> bool:
        return self.verdict is not None and int(self.verdict) == self.secret


@dataclass
class PortContentionAttack:
    """One-shot driver for the Fig. 10 experiment."""

    measurements: int = 10_000
    divs_per_sample: int = 4
    #: Replay-handler cost: dominates the replay period.  Real fault
    #: handling plus the module's flushes is on the order of 10 us
    #: (tens of thousands of cycles), which is what makes the
    #: above-threshold counts small fractions of the trace (§6.1).
    fault_handler_cost: int = 18_000
    walk_tuning: WalkTuning = field(default_factory=lambda: WalkTuning(
        upper=WalkLocation.PWC, leaf=WalkLocation.DRAM))
    #: RDTSC measurement jitter (cycles): models timer noise.
    rdtsc_jitter: int = 3
    divisions: int = 2
    multiplications: int = 2
    max_cycles: int = 50_000_000
    #: Machine-level defense knobs; merged with the attack's own
    #: ``rdtsc_jitter`` (which models the Monitor's timer, not a
    #: defense).  ``None`` = stock platform.
    machine: Optional[MachineConfig] = None
    #: Cap on replay windows the platform grants before the handle is
    #: released (T-SGX / Déjà-Vu style budgets).
    replay_budget: Optional[int] = None

    def _build_environment(self) -> Replayer:
        base = self.machine if self.machine is not None \
            else MachineConfig()
        machine_config = dataclasses.replace(
            base, core=dataclasses.replace(
                base.core, rdtsc_jitter=self.rdtsc_jitter))
        env = AttackEnvironment.build(
            machine_config=machine_config,
            module_config=MicroScopeConfig(
                fault_handler_cost=self.fault_handler_cost))
        return Replayer(env)

    def _machine_key(self) -> tuple:
        return (self.fault_handler_cost, self.rdtsc_jitter,
                self.divs_per_sample, repr(self.machine))

    def _build_calibration_environment(self, samples: int):
        rep = self._build_environment()
        monitor_proc = rep.create_monitor_process()
        monitor = setup_port_contention_monitor(
            monitor_proc, samples, self.divs_per_sample)
        rep.launch_monitor(monitor_proc, monitor.program, context_id=1)
        return rep.env, (monitor_proc, monitor)

    def _build_attack_environment(self):
        """Builder for the warm-start cache: victim and Monitor both
        launched, no recipe yet.  The victim is built with secret 0;
        :meth:`run` rewrites the secret word after every rewind, so
        both Fig. 10 panels share this one snapshot."""
        rep = self._build_environment()
        victim_proc = rep.create_victim_process("victim")
        victim = setup_control_flow_victim(
            victim_proc, 0, divisions=self.divisions,
            multiplications=self.multiplications)
        monitor_proc = rep.create_monitor_process("monitor")
        monitor = setup_port_contention_monitor(
            monitor_proc, self.measurements, self.divs_per_sample)
        rep.launch_victim(victim_proc, victim.program)
        rep.launch_monitor(monitor_proc, monitor.program, context_id=1)
        return rep.env, (victim_proc, victim, monitor_proc, monitor)

    def calibrate(self, samples: int = 2000) -> float:
        """Derive the contention threshold from a quiet run of the
        Monitor (no victim replaying) — how the paper picks its
        ~120-cycle line from the mul-side distribution."""
        env, (monitor_proc, monitor) = warm_start(
            ("fig10-calibrate", samples) + self._machine_key(),
            lambda: self._build_calibration_environment(samples))
        rep = Replayer(env)
        rep.run_until_victim_done(context_id=1,
                                  max_cycles=self.max_cycles)
        calibration = monitor.read_samples(monitor_proc)
        return derive_threshold(calibration)

    def prepare(self, secret: int):
        """Warm-start the launched environment, retarget the secret,
        and arm the replay recipe.  Returns the armed run state; used
        by :meth:`run` and by checkpoint/rewind benchmarks that want
        to snapshot mid-attack."""
        env, (victim_proc, victim, monitor_proc, monitor) = warm_start(
            ("fig10-attack", self.measurements, self.divisions,
             self.multiplications) + self._machine_key(),
            self._build_attack_environment)
        victim.write_secret(victim_proc, secret)
        rep = Replayer(env)

        monitor_ctx = rep.machine.contexts[1]

        def attack_fn(event) -> ReplayDecision:
            # Keep replaying until the Monitor's buffer is full; then
            # let the victim make forward progress (§4.1.4 step 6).
            # A budgeted platform forces the release early.
            if self.replay_budget is not None \
                    and event.replay_no >= self.replay_budget:
                return ReplayDecision(ReplayAction.RELEASE)
            if monitor_ctx.finished():
                return ReplayDecision(ReplayAction.RELEASE)
            return ReplayDecision(ReplayAction.REPLAY)

        recipe = rep.module.provide_replay_handle(
            victim_proc, victim.handle_va + 0x20,
            name="fig10-port-contention",
            attack_function=attack_fn,
            walk_tuning=self.walk_tuning,
            max_replays=10**9)
        rep.arm(recipe)
        return rep, recipe, monitor_proc, monitor, monitor_ctx

    def finish(self, rep: Replayer, recipe, monitor_proc, monitor,
               monitor_ctx, secret: int,
               threshold: float) -> PortContentionResult:
        """Run an armed attack to completion and harvest Fig. 10."""
        cycles = rep.machine.run(
            self.max_cycles,
            until=lambda _m: monitor_ctx.finished() and recipe.released)
        # Drain the victim to completion (it retires normally now).
        rep.run_until_victim_done(context_id=0, max_cycles=1_000_000)

        samples = monitor.read_samples(monitor_proc)
        summary = summarize(samples, threshold)
        verdict = self._classify(samples, threshold)
        return PortContentionResult(
            secret=secret, samples=samples, threshold=threshold,
            above_threshold=summary.above, replays=recipe.replays,
            verdict=verdict, cycles=cycles)

    def run(self, secret: int,
            threshold: Optional[float] = None) -> PortContentionResult:
        """Execute the full attack against a victim holding *secret*."""
        if threshold is None:
            threshold = self.calibrate()
        rep, recipe, monitor_proc, monitor, monitor_ctx = \
            self.prepare(secret)
        return self.finish(rep, recipe, monitor_proc, monitor,
                           monitor_ctx, secret, threshold)

    def _classify(self, samples: List[int],
                  threshold: float) -> Optional[bool]:
        """Sequential test: is the above-threshold rate the contended
        one?  (The attacker's per-sample decision loop.)"""
        tracker = ConfidenceTracker(rate_h0=0.0005, rate_h1=0.004)
        for sample in samples:
            tracker.observe(sample > threshold)
            if tracker.decided:
                break
        if tracker.verdict is not None:
            return tracker.verdict
        # Undecided after the full trace: fall back to the MAP choice.
        rate = sum(1 for s in samples if s > threshold) / len(samples)
        return rate > (0.0005 + 0.004) / 2


def _panel_trial(params, _seed: int) -> PortContentionResult:
    """One Fig. 10 panel as a harness sweep trial (top-level so the
    pool can pickle it; panels warm-start from the shared post-launch
    snapshot and differ only in the rewritten secret word)."""
    attack, secret, threshold = params
    return attack.run(secret=secret, threshold=threshold)


def run_figure10(measurements: int = 10_000,
                 attack: Optional[PortContentionAttack] = None,
                 workers: int = 1, policy=None) -> dict:
    """Reproduce both panels of Figure 10; returns a result dict keyed
    ``"mul"`` / ``"div"``.  The panels are independent simulations and
    share only the calibrated threshold, so ``workers=2`` runs them in
    parallel with identical results.  Pass a
    :class:`~repro.harness.FaultPolicy` as *policy* to retry panels
    whose worker crashes or hangs (each panel is a pure function of
    the attack parameters, so retries reproduce it exactly)."""
    attack = attack or PortContentionAttack(measurements=measurements)
    threshold = attack.calibrate()
    from repro.harness import run_resilient_sweep
    sweep = run_resilient_sweep(
        _panel_trial,
        [(attack, 0, threshold), (attack, 1, threshold)],
        workers=workers, policy=policy, label="fig10")
    mul, div = sweep.results()
    return {"mul": mul, "div": div}
